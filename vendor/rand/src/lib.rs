//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in an environment with no crates.io access, so the
//! subset of the `rand` 0.8 API the simulator uses is vendored here: a
//! seedable deterministic generator ([`rngs::StdRng`], xoshiro256++ over a
//! SplitMix64-expanded seed), the [`Rng`] extension trait with `gen` /
//! `gen_range`, and [`SeedableRng`]. Stream values differ from upstream
//! `StdRng` (which is ChaCha12); everything in-tree only relies on
//! determinism per seed and uniformity, both of which hold.

#![warn(missing_docs)]

/// Concrete generator types.
pub mod rngs {
    /// The standard deterministic generator: xoshiro256++.
    ///
    /// Passes BigCrush-grade statistical tests per its authors; more than
    /// adequate for Poisson fault sampling and test-input generation.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        pub(crate) fn next_u64_impl(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// A source of randomness with convenience sampling methods.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` from its canonical distribution
    /// (uniform over the full domain; `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        T: UniformInt,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Samples a `bool` that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl Rng for rngs::StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next_u64_impl()
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable from raw uniform bits (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: Rng>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types `gen_range` can sample.
pub trait UniformInt: Copy + PartialOrd {
    /// Uniform sample from `[low, high]` (inclusive on both ends).
    fn sample_inclusive<R: Rng>(rng: &mut R, low: Self, high: Self) -> Self;
    /// `self - 1` in the type's own arithmetic (for half-open ranges).
    fn decrement(self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            #[inline]
            fn sample_inclusive<R: Rng>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                // Multiply-shift bounded sampling (Lemire); the tiny modulo
                // bias of a plain % would also be fine at these span sizes,
                // but this keeps the distribution exact.
                let hi = ((u128::from(rng.next_u64()) * span) >> 64) as i128;
                (low as i128 + hi) as $t
            }
            #[inline]
            fn decrement(self) -> Self {
                self - 1
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

impl<T: UniformInt> SampleRange<T> for std::ops::Range<T> {
    #[inline]
    fn sample_from<R: Rng>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, self.start, self.end.decrement())
    }
}

impl<T: UniformInt> SampleRange<T> for std::ops::RangeInclusive<T> {
    #[inline]
    fn sample_from<R: Rng>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, the reference seeding for xoshiro.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        rngs::StdRng { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_hits_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = rng.gen_range(5u64..=7);
            assert!((5..=7).contains(&v));
        }
    }
}
