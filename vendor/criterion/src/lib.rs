//! Offline stand-in for the `criterion` crate.
//!
//! This workspace builds without crates.io access, so the subset of the
//! criterion 0.5 API the bench targets use is vendored here: groups,
//! `bench_function`, `iter` / `iter_batched`, and the `criterion_group!` /
//! `criterion_main!` macros. Measurement is a calibrated wall-clock loop
//! reporting the median of `sample_size` samples — no outlier statistics,
//! no HTML reports. In test mode (`cargo test --benches` passes `--test`)
//! every benchmark body runs exactly once as a smoke test.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export for call sites that use `criterion::black_box`.
pub use std::hint::black_box;

/// Per-batch input-size hint (accepted for API compatibility).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small setup output: batch many iterations per setup call.
    SmallInput,
    /// Large setup output: one iteration per setup call.
    LargeInput,
    /// Exactly one iteration per setup call.
    PerIteration,
}

/// Top-level benchmark harness state.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Self {
            sample_size: 10,
            measurement_time: Duration::from_millis(200),
            test_mode,
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark (median is reported).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total measurement budget per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let sample_size = self.sample_size;
        run_benchmark(self, &id, sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Benchmarks one function under `group/id`.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_benchmark(self.criterion, &full, sample_size, f);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

fn run_benchmark(
    criterion: &Criterion,
    id: &str,
    sample_size: usize,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        mode: if criterion.test_mode {
            Mode::Test
        } else {
            Mode::Calibrate
        },
        iters: 1,
        elapsed: Duration::ZERO,
    };
    if criterion.test_mode {
        f(&mut bencher);
        println!("test {id} ... ok (bench smoke)");
        return;
    }
    // Calibration pass: find an iteration count that fills one sample slot.
    f(&mut bencher);
    let per_iter = bencher.elapsed.as_secs_f64() / bencher.iters as f64;
    let slot = criterion.measurement_time.as_secs_f64() / sample_size as f64;
    let iters = ((slot / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000_000);
    let mut samples = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        bencher.mode = Mode::Measure;
        bencher.iters = iters;
        bencher.elapsed = Duration::ZERO;
        f(&mut bencher);
        samples.push(bencher.elapsed.as_secs_f64() / iters as f64);
    }
    samples.sort_by(f64::total_cmp);
    let median = samples[samples.len() / 2];
    let lo = samples[0];
    let hi = samples[samples.len() - 1];
    println!(
        "{id:<50} time: [{} {} {}]",
        format_time(lo),
        format_time(median),
        format_time(hi)
    );
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Test,
    Calibrate,
    Measure,
}

/// Timing handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    mode: Mode,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    fn planned_iters(&self) -> u64 {
        match self.mode {
            Mode::Test => 1,
            Mode::Calibrate => 3,
            Mode::Measure => self.iters,
        }
    }

    /// Times repeated calls of `routine`.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let iters = self.planned_iters();
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let iters = self.planned_iters();
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
        self.iters = iters;
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(5));
        c.test_mode = false;
        let mut calls = 0u64;
        {
            let mut group = c.benchmark_group("g");
            group.bench_function("noop", |b| {
                b.iter(|| {
                    calls += 1;
                })
            });
            group.finish();
        }
        assert!(calls > 0);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(2));
        c.test_mode = false;
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
    }

    #[test]
    fn format_time_scales() {
        assert!(format_time(5e-9).ends_with("ns"));
        assert!(format_time(5e-6).ends_with("µs"));
        assert!(format_time(5e-3).ends_with("ms"));
        assert!(format_time(5.0).ends_with('s'));
    }
}
