//! Offline stand-in for the `proptest` crate.
//!
//! This workspace builds without crates.io access, so the subset of the
//! proptest 1.x API the test suites use is vendored here:
//!
//! * the [`proptest!`] macro (per-function strategies via `name in strategy`
//!   or `name: Type` arguments, optional `#![proptest_config(..)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`],
//! * [`arbitrary::any`] plus range, tuple, and collection strategies.
//!
//! Failing cases panic with the rendered message (no shrinking); case
//! generation is deterministic per test name so CI failures reproduce.

#![warn(missing_docs)]

/// Runner configuration and the deterministic case generator.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
        /// Accepted for API compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
        /// Accepted for API compatibility; persistence is not implemented.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self {
                cases: 64,
                max_shrink_iters: 0,
                max_global_rejects: 1024,
            }
        }
    }

    /// Deterministic per-test random source (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from the test's name, so each property sees
        /// a stable stream across runs and machines.
        #[must_use]
        pub fn for_test(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self { state: h }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform integer in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty sampling bound");
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and primitive strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + rng.below(span + 1) as i128) as $t
                }
            }
        )*};
    }
    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

/// `any::<T>()` and the [`Arbitrary`](arbitrary::Arbitrary) trait.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one value uniformly from the type's domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.unit_f64()
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Canonical strategy for `T` (full domain for integers).
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

/// Collection strategies: `vec` and `btree_set`.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
        }
    }

    /// Strategy producing a `Vec` of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` strategy with the given element strategy and size bounds.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy producing a `BTreeSet` of distinct values.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            let mut set = std::collections::BTreeSet::new();
            // Bounded retries: if the element domain is smaller than the
            // requested size the set saturates at the domain size.
            let mut attempts = 0usize;
            while set.len() < n && attempts < 64 * (n + 1) {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }

    /// `BTreeSet` strategy with the given element strategy and size bounds.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Everything a test module needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "proptest assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*);
    };
}

/// Skips the current generated case when its precondition does not hold.
///
/// Expands to a `continue` of the case loop, so it may only be used at the
/// top level of a `proptest!` body (which is how the real macro is used
/// throughout this workspace).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

/// Defines property tests. Each function argument is either
/// `name in strategy` or `name: Type` (shorthand for `any::<Type>()`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($args:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_case! {
                cfg = $cfg; name = $name;
                args = [$($args)*]; pats = []; strats = [];
                body = $body
            }
        }
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    // All arguments munched: emit the case loop.
    (cfg = $cfg:expr; name = $name:ident;
     args = []; pats = [$($pat:ident)*]; strats = [$($strat:expr;)*];
     body = $body:block
    ) => {{
        let __cfg: $crate::test_runner::ProptestConfig = $cfg;
        let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
        for __case in 0..__cfg.cases {
            let _ = __case;
            let ($($pat,)*) = (
                $($crate::strategy::Strategy::generate(&($strat), &mut __rng),)*
            );
            $body
        }
    }};
    // `name: Type` argument (trailing comma).
    (cfg = $cfg:expr; name = $name:ident;
     args = [$arg:ident : $ty:ty, $($restargs:tt)*];
     pats = [$($pat:ident)*]; strats = [$($strat:expr;)*]; body = $body:block
    ) => {
        $crate::__proptest_case! {
            cfg = $cfg; name = $name;
            args = [$($restargs)*];
            pats = [$($pat)* $arg];
            strats = [$($strat;)* $crate::arbitrary::any::<$ty>();];
            body = $body
        }
    };
    // `name: Type` argument (last).
    (cfg = $cfg:expr; name = $name:ident;
     args = [$arg:ident : $ty:ty];
     pats = [$($pat:ident)*]; strats = [$($strat:expr;)*]; body = $body:block
    ) => {
        $crate::__proptest_case! {
            cfg = $cfg; name = $name;
            args = [];
            pats = [$($pat)* $arg];
            strats = [$($strat;)* $crate::arbitrary::any::<$ty>();];
            body = $body
        }
    };
    // `name in strategy` argument (trailing comma).
    (cfg = $cfg:expr; name = $name:ident;
     args = [$arg:ident in $s:expr, $($restargs:tt)*];
     pats = [$($pat:ident)*]; strats = [$($strat:expr;)*]; body = $body:block
    ) => {
        $crate::__proptest_case! {
            cfg = $cfg; name = $name;
            args = [$($restargs)*];
            pats = [$($pat)* $arg];
            strats = [$($strat;)* $s;];
            body = $body
        }
    };
    // `name in strategy` argument (last).
    (cfg = $cfg:expr; name = $name:ident;
     args = [$arg:ident in $s:expr];
     pats = [$($pat:ident)*]; strats = [$($strat:expr;)*]; body = $body:block
    ) => {
        $crate::__proptest_case! {
            cfg = $cfg; name = $name;
            args = [];
            pats = [$($pat)* $arg];
            strats = [$($strat;)* $s;];
            body = $body
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, .. ProptestConfig::default() })]

        #[test]
        fn typed_args_and_strategies(x: u32, y in 10usize..20, z in 0.0f64..1.0) {
            let _ = x;
            prop_assert!((10..20).contains(&y));
            prop_assert!((0.0..1.0).contains(&z));
        }

        #[test]
        fn collections(v in crate::collection::vec(crate::arbitrary::any::<i16>(), 0..50),
                       s in crate::collection::btree_set(0usize..39, 1..=2)) {
            prop_assert!(v.len() < 50);
            prop_assert!(!s.is_empty() && s.len() <= 2);
            prop_assert!(s.iter().all(|&e| e < 39));
        }

        #[test]
        fn tuples(ops in crate::collection::vec((0u8..3, any::<u32>(), 0u32..128), 1..10)) {
            for &(op, _val, addr) in &ops {
                prop_assert!(op < 3);
                prop_assert!(addr < 128);
            }
        }

        #[test]
        fn assume_skips(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = crate::test_runner::TestRng::for_test("t");
        let mut b = crate::test_runner::TestRng::for_test("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
