//! Target-platform description.
//!
//! The paper's testbed is an NXP LH7A400-class SoC: a 32-bit ARM9 core at
//! 200 MHz with a 64 KB on-chip L1 scratchpad SRAM, modelled at 65 nm.
//! [`Platform`] collects the clock, per-cycle core energy and memory
//! geometry that every executor and the optimizer consume.

use crate::cacti::SramModel;

/// Bytes per architectural word.
pub const WORD_BYTES: usize = 4;

/// Static description of the simulated SoC.
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    /// Core clock, Hz.
    pub clock_hz: f64,
    /// Active-core (logic-only) energy per cycle, pJ (CPI-folded: one
    /// "cycle" here is one issued instruction-equivalent of the ARM9
    /// pipeline). Memory energy is charged separately per access.
    pub cpu_pj_per_cycle: f64,
    /// Average instruction fetches per cycle issued to the on-chip SRAM.
    /// The LH7A400 runs code from the same 64 KB SRAM that holds data, so
    /// fetch traffic pays the array's per-access energy — this is why
    /// protecting the whole L1 with multi-bit ECC is so expensive
    /// (HW-mitigation baseline). Code words are assumed scrubbed /
    /// shadowed from flash and are not part of the data-fault surface the
    /// paper's scheme (or any compared scheme) recovers.
    pub ifetch_per_cycle: f64,
    /// Size of the vulnerable L1 scratchpad in 32-bit words.
    pub l1_words: usize,
    /// Cycles consumed by the software part of committing one checkpoint
    /// (branch, status-register push; excludes the chunk copy itself).
    pub checkpoint_trigger_cycles: u64,
    /// Cycles consumed by the Read-Error-Interrupt service routine
    /// (pipeline flush, vector, status-register restore, return).
    pub isr_cycles: u64,
}

impl Platform {
    /// The NXP LH7A400-class platform of the paper: ARM9 at 200 MHz,
    /// 64 KB L1 SRAM.
    ///
    /// # Examples
    ///
    /// ```
    /// use chunkpoint_sim::Platform;
    ///
    /// let p = Platform::lh7a400();
    /// assert_eq!(p.l1_bytes(), 64 * 1024);
    /// assert_eq!(p.clock_hz, 200.0e6);
    /// ```
    #[must_use]
    pub fn lh7a400() -> Self {
        Self {
            clock_hz: 200.0e6,
            // ARM926EJ-S class core at 65 nm: ~0.11 mW/MHz total, of
            // which roughly half is the SRAM/cache subsystem (charged per
            // access) — leaving ~55 pJ/cycle of core logic.
            cpu_pj_per_cycle: 55.0,
            // ~2/3 of cycles fetch from the on-chip SRAM (CPI ≈ 1.5).
            ifetch_per_cycle: 0.67,
            l1_words: 64 * 1024 / WORD_BYTES,
            checkpoint_trigger_cycles: 24,
            isr_cycles: 120,
        }
    }

    /// L1 capacity in bytes.
    #[must_use]
    pub fn l1_bytes(&self) -> usize {
        self.l1_words * WORD_BYTES
    }

    /// Geometry of the (unprotected) L1 array: the paper's reference for
    /// all area-overhead percentages.
    #[must_use]
    pub fn l1_model(&self) -> SramModel {
        SramModel::new(self.l1_words, 32)
    }

    /// Geometry of the L1 array when every word carries `check_bits`
    /// additional stored bits (the *HW-mitigation* baseline).
    #[must_use]
    pub fn l1_model_with_ecc(&self, check_bits: usize) -> SramModel {
        SramModel::new(self.l1_words, 32 + check_bits)
    }

    /// Geometry of an L1′ buffer of `words` words carrying `check_bits`
    /// check bits per word.
    #[must_use]
    pub fn l1_prime_model(&self, words: usize, check_bits: usize) -> SramModel {
        SramModel::new(words.max(1), 32 + check_bits)
    }

    /// Seconds corresponding to `cycles` at this clock.
    #[must_use]
    pub fn seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.clock_hz
    }
}

impl Default for Platform {
    fn default() -> Self {
        Self::lh7a400()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lh7a400_geometry() {
        let p = Platform::lh7a400();
        assert_eq!(p.l1_words, 16384);
        assert_eq!(p.l1_bytes(), 65536);
        assert_eq!(p.l1_model().bits_per_word(), 32);
    }

    #[test]
    fn ecc_widens_words() {
        let p = Platform::lh7a400();
        let protected = p.l1_model_with_ecc(7);
        assert_eq!(protected.bits_per_word(), 39);
        assert!(protected.area_um2() > p.l1_model().area_um2());
    }

    #[test]
    fn l1_prime_never_zero_words() {
        let p = Platform::lh7a400();
        assert_eq!(p.l1_prime_model(0, 48).words(), 1);
    }

    #[test]
    fn seconds_at_200mhz() {
        let p = Platform::lh7a400();
        assert!((p.seconds(200_000_000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn default_is_lh7a400() {
        assert_eq!(Platform::default(), Platform::lh7a400());
    }
}
