//! The processor-side memory interface.
//!
//! Workloads execute against the [`MemoryBus`] trait: every load/store goes
//! through the simulated hierarchy, is charged cycles and energy, and may
//! fail with [`ReadFault`] when the array's detector flags an uncorrectable
//! word (the hardware half of Fig. 2a). Mitigation executors in
//! `chunkpoint-core` implement this trait with scheme-specific policies;
//! [`PlainBus`] is the single-array building block they are made of.

use chunkpoint_ecc::Decoded;

use crate::energy::{Component, EnergyLedger};
use crate::platform::Platform;
use crate::sram::Sram;

/// Word-granular address on the simulated bus.
pub type WordAddr = u32;

/// A detected-uncorrectable read: the hardware event that raises the
/// paper's *Read Error Interrupt*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadFault {
    /// Faulting word address.
    pub addr: WordAddr,
    /// Cycle at which the faulty read was issued.
    pub cycle: u64,
}

impl std::fmt::Display for ReadFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "uncorrectable read at word {:#x} (cycle {})",
            self.addr, self.cycle
        )
    }
}

impl std::error::Error for ReadFault {}

/// CPU-visible memory interface used by every workload.
///
/// Implementations charge cycles and energy for each operation; `tick`
/// accounts pure computation between memory operations.
pub trait MemoryBus {
    /// Loads a word; fails if the protection scheme detects an
    /// uncorrectable error.
    ///
    /// # Errors
    ///
    /// Returns [`ReadFault`] on a detected-uncorrectable word. Silent
    /// corruption (undetectable with the scheme in force) returns `Ok`
    /// with wrong data — by design.
    fn load(&mut self, addr: WordAddr) -> Result<u32, ReadFault>;

    /// Loads `count` contiguous words starting at `start`, appending the
    /// payloads to `sink`.
    ///
    /// The default forwards to [`MemoryBus::load`] per word (identical
    /// cycle/energy accounting); it exists so bulk movers — checkpoint
    /// commits, end-of-frame drains — go through one batch entry point
    /// that implementations may specialise.
    ///
    /// # Errors
    ///
    /// Returns the first [`ReadFault`]; `sink` then holds the payloads
    /// loaded before the fault.
    fn load_block(
        &mut self,
        start: WordAddr,
        count: u32,
        sink: &mut Vec<u32>,
    ) -> Result<(), ReadFault> {
        sink.reserve(count as usize);
        for i in 0..count {
            sink.push(self.load(start + i)?);
        }
        Ok(())
    }

    /// Stores a word.
    fn store(&mut self, addr: WordAddr, value: u32);

    /// Advances time by `cycles` cycles of pure computation.
    fn tick(&mut self, cycles: u64);

    /// Current simulation time in cycles.
    fn now(&self) -> u64;
}

/// A contiguous region of words in the address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Region {
    /// First word address.
    pub base: WordAddr,
    /// Length in words.
    pub words: u32,
}

impl Region {
    /// Address of the `i`-th word of the region.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.words`.
    #[must_use]
    pub fn word(&self, i: u32) -> WordAddr {
        assert!(
            i < self.words,
            "index {i} outside region of {} words",
            self.words
        );
        self.base + i
    }

    /// One-past-the-end address.
    #[must_use]
    pub fn end(&self) -> WordAddr {
        self.base + self.words
    }

    /// Whether `addr` falls inside the region.
    #[must_use]
    pub fn contains(&self, addr: WordAddr) -> bool {
        (self.base..self.end()).contains(&addr)
    }

    /// Iterates the region's word addresses.
    pub fn iter(&self) -> impl Iterator<Item = WordAddr> {
        self.base..self.end()
    }
}

/// Bump allocator carving named regions out of an L1 of fixed size.
///
/// # Examples
///
/// ```
/// use chunkpoint_sim::AddressMap;
///
/// let mut map = AddressMap::new(1024);
/// let input = map.alloc("input", 256)?;
/// let output = map.alloc("output", 256)?;
/// assert_eq!(input.end(), output.base);
/// # Ok::<(), chunkpoint_sim::AllocError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AddressMap {
    capacity_words: u32,
    next: WordAddr,
    regions: Vec<(String, Region)>,
}

/// Error returned when an allocation does not fit in the remaining space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocError {
    requested: u32,
    available: u32,
    name: String,
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cannot allocate {} words for '{}': only {} words left",
            self.requested, self.name, self.available
        )
    }
}

impl std::error::Error for AllocError {}

impl AddressMap {
    /// Creates an allocator over `capacity_words` words starting at 0.
    #[must_use]
    pub fn new(capacity_words: u32) -> Self {
        Self {
            capacity_words,
            next: 0,
            regions: Vec::new(),
        }
    }

    /// Allocates a named region of `words` words.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] when the region does not fit.
    pub fn alloc(&mut self, name: impl Into<String>, words: u32) -> Result<Region, AllocError> {
        let name = name.into();
        let available = self.capacity_words - self.next;
        if words > available {
            return Err(AllocError {
                requested: words,
                available,
                name,
            });
        }
        let region = Region {
            base: self.next,
            words,
        };
        self.next += words;
        self.regions.push((name, region));
        Ok(region)
    }

    /// Words still unallocated.
    #[must_use]
    pub fn free_words(&self) -> u32 {
        self.capacity_words - self.next
    }

    /// All named regions allocated so far.
    #[must_use]
    pub fn regions(&self) -> &[(String, Region)] {
        &self.regions
    }

    /// Finds a region by name.
    #[must_use]
    pub fn region(&self, name: &str) -> Option<Region> {
        self.regions
            .iter()
            .find_map(|(n, r)| (n == name).then_some(*r))
    }
}

/// A single-array bus: one SRAM, one ledger, straightforward policies.
///
/// Corrected reads cost the scheme's correction latency; uncorrectable
/// reads surface as [`ReadFault`]. This is both the *Default* / *HW* /
/// *SW-detect* building block and the substrate the hybrid executor wraps.
#[derive(Debug)]
pub struct PlainBus {
    sram: Sram,
    platform: Platform,
    ledger: EnergyLedger,
    now: u64,
    access_cycles: u64,
    read_latency: u64,
    read_pj: f64,
    write_pj: f64,
    ecc_factor: f64,
    correction_latency: u64,
    memory_component: Component,
}

impl PlainBus {
    /// Builds a bus over `sram` on `platform`, charging energy to
    /// `memory_component` in the ledger.
    #[must_use]
    pub fn new(sram: Sram, platform: Platform, memory_component: Component) -> Self {
        let model = sram.model();
        let overhead = chunkpoint_ecc::CodeOverhead::for_kind(sram.kind())
            .expect("sram scheme was already built, overhead must exist");
        Self {
            access_cycles: model.access_cycles(platform.clock_hz),
            read_latency: u64::from(overhead.read_latency_cycles),
            read_pj: model.read_energy_pj(),
            write_pj: model.write_energy_pj(),
            ecc_factor: overhead.access_energy_factor,
            correction_latency: u64::from(overhead.correction_latency_cycles),
            sram,
            platform,
            ledger: EnergyLedger::new(),
            now: 0,
            memory_component,
        }
    }

    /// The underlying array.
    #[must_use]
    pub fn sram(&self) -> &Sram {
        &self.sram
    }

    /// Mutable access to the underlying array (fault injection in tests).
    pub fn sram_mut(&mut self) -> &mut Sram {
        &mut self.sram
    }

    /// Energy/cycle ledger accumulated so far.
    #[must_use]
    pub fn ledger(&self) -> &EnergyLedger {
        &self.ledger
    }

    /// Mutable ledger access, letting co-simulated components (e.g. a
    /// checkpoint buffer) post energy into the same account.
    pub fn ledger_mut(&mut self) -> &mut EnergyLedger {
        &mut self.ledger
    }

    /// Consumes the bus, returning its ledger and array.
    #[must_use]
    pub fn into_parts(self) -> (EnergyLedger, Sram) {
        (self.ledger, self.sram)
    }

    /// Platform description.
    #[must_use]
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    fn charge_access(&mut self, pj: f64) {
        self.ledger.add(self.memory_component, pj);
        let ecc_extra = pj * (self.ecc_factor - 1.0);
        if ecc_extra > 0.0 {
            self.ledger.add(Component::EccLogic, ecc_extra);
        }
        self.now += self.access_cycles;
        self.ledger.add_cycles(self.access_cycles);
    }
}

impl MemoryBus for PlainBus {
    fn load(&mut self, addr: WordAddr) -> Result<u32, ReadFault> {
        self.charge_access(self.read_pj);
        if self.read_latency > 0 {
            // Pipelined ECC check delay paid by every read (wide codes).
            self.now += self.read_latency;
            self.ledger.add_cycles(self.read_latency);
        }
        match self.sram.read(addr as usize, self.now) {
            Decoded::Clean { data } => Ok(data),
            Decoded::Corrected { data, .. } => {
                self.now += self.correction_latency;
                self.ledger.add_cycles(self.correction_latency);
                Ok(data)
            }
            Decoded::DetectedUncorrectable => Err(ReadFault {
                addr,
                cycle: self.now,
            }),
        }
    }

    fn store(&mut self, addr: WordAddr, value: u32) {
        self.charge_access(self.write_pj);
        self.sram.write(addr as usize, value, self.now);
    }

    fn tick(&mut self, cycles: u64) {
        self.now += cycles;
        self.ledger.add_cycles(cycles);
        self.ledger.add(
            Component::Cpu,
            self.platform.cpu_pj_per_cycle * cycles as f64,
        );
        // Instruction fetches from the same on-chip SRAM: pay the array's
        // per-read energy (and its ECC factor under HW mitigation).
        let fetch_pj = self.platform.ifetch_per_cycle * cycles as f64 * self.read_pj;
        self.ledger.add(self.memory_component, fetch_pj);
        let ecc_extra = fetch_pj * (self.ecc_factor - 1.0);
        if ecc_extra > 0.0 {
            self.ledger.add(Component::EccLogic, ecc_extra);
        }
    }

    fn now(&self) -> u64 {
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultProcess;
    use chunkpoint_ecc::EccKind;

    fn bus(kind: EccKind) -> PlainBus {
        let sram = Sram::new("l1", 256, kind, FaultProcess::disabled()).unwrap();
        PlainBus::new(sram, Platform::lh7a400(), Component::L1)
    }

    #[test]
    fn region_arithmetic() {
        let r = Region { base: 10, words: 4 };
        assert_eq!(r.word(0), 10);
        assert_eq!(r.word(3), 13);
        assert_eq!(r.end(), 14);
        assert!(r.contains(13));
        assert!(!r.contains(14));
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![10, 11, 12, 13]);
    }

    #[test]
    fn address_map_allocates_contiguously() {
        let mut map = AddressMap::new(100);
        let a = map.alloc("a", 60).unwrap();
        let b = map.alloc("b", 40).unwrap();
        assert_eq!(a.base, 0);
        assert_eq!(b.base, 60);
        assert_eq!(map.free_words(), 0);
        assert!(map.alloc("c", 1).is_err());
        assert_eq!(map.region("a"), Some(a));
        assert_eq!(map.region("missing"), None);
    }

    #[test]
    fn alloc_error_is_informative() {
        let mut map = AddressMap::new(10);
        let err = map.alloc("big", 11).unwrap_err();
        assert!(err.to_string().contains("big"));
        assert!(err.to_string().contains("11"));
    }

    #[test]
    fn loads_and_stores_charge_energy_and_time() {
        let mut bus = bus(EccKind::Secded);
        bus.store(0, 42);
        let t_after_store = bus.now();
        assert!(t_after_store > 0);
        assert!(bus.ledger().component_pj(Component::L1) > 0.0);
        assert_eq!(bus.load(0).unwrap(), 42);
        assert!(bus.now() > t_after_store);
        // SECDED access-energy factor posts something to EccLogic.
        assert!(bus.ledger().component_pj(Component::EccLogic) > 0.0);
    }

    #[test]
    fn tick_charges_cpu_and_ifetch() {
        let mut bus = bus(EccKind::None);
        bus.tick(100);
        assert_eq!(bus.now(), 100);
        let platform = Platform::lh7a400();
        assert!(
            (bus.ledger().component_pj(Component::Cpu) - 100.0 * platform.cpu_pj_per_cycle).abs()
                < 1e-9
        );
        // Instruction fetches hit L1 too.
        let expected_fetch =
            100.0 * platform.ifetch_per_cycle * bus.sram().model().read_energy_pj();
        assert!((bus.ledger().component_pj(Component::L1) - expected_fetch).abs() < 1e-6);
    }

    #[test]
    fn uncorrectable_read_faults() {
        let mut bus = bus(EccKind::Parity);
        bus.store(7, 0xFFFF_FFFF);
        bus.sram_mut().inject(7, 3, 1);
        let err = bus.load(7).unwrap_err();
        assert_eq!(err.addr, 7);
        assert!(err.to_string().contains("uncorrectable"));
    }

    #[test]
    fn corrected_read_costs_latency() {
        let mut bus = bus(EccKind::Secded);
        bus.store(3, 5);
        let before = bus.now();
        bus.sram_mut().inject(3, 0, 1);
        assert_eq!(bus.load(3).unwrap(), 5);
        // 1 access cycle + 1 correction cycle.
        assert_eq!(bus.now() - before, 2);
    }

    #[test]
    fn silent_corruption_with_nocode() {
        let mut bus = bus(EccKind::None);
        bus.store(1, 0);
        bus.sram_mut().inject(1, 4, 1);
        assert_eq!(bus.load(1).unwrap(), 16); // wrong data, no complaint
    }
}
