//! Lightweight execution tracing for debugging and for reconstructing the
//! paper's Fig. 1 timeline (phases, checkpoints, errors, rollbacks) —
//! plus the access-granular [`RecordingBus`] wrapper that captures a
//! workload's exact load/store/tick sequence for trace-driven replay.

use crate::bus::{MemoryBus, ReadFault, WordAddr};

/// One traced event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A computation phase began.
    PhaseStart {
        /// Phase index.
        phase: usize,
        /// Cycle at which it began.
        cycle: u64,
    },
    /// A computation phase finished cleanly.
    PhaseEnd {
        /// Phase index.
        phase: usize,
        /// Cycle at which it ended.
        cycle: u64,
    },
    /// A checkpoint was committed and its chunk buffered to L1′.
    Checkpoint {
        /// Checkpoint index CH(i).
        index: usize,
        /// Commit cycle.
        cycle: u64,
        /// Words buffered into L1′ (state + chunk).
        chunk_words: u32,
    },
    /// A read-error interrupt fired.
    ReadError {
        /// Faulting word address.
        addr: WordAddr,
        /// Cycle of the faulty read.
        cycle: u64,
    },
    /// The system rolled back to a checkpoint.
    Rollback {
        /// Target checkpoint index.
        to_checkpoint: usize,
        /// Cycle at which the rollback completed.
        cycle: u64,
    },
    /// A whole-task restart (the SW-baseline response to an error).
    TaskRestart {
        /// Restart cycle.
        cycle: u64,
    },
}

impl TraceEvent {
    /// Cycle at which the event occurred.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        match *self {
            TraceEvent::PhaseStart { cycle, .. }
            | TraceEvent::PhaseEnd { cycle, .. }
            | TraceEvent::Checkpoint { cycle, .. }
            | TraceEvent::ReadError { cycle, .. }
            | TraceEvent::Rollback { cycle, .. }
            | TraceEvent::TaskRestart { cycle } => cycle,
        }
    }
}

/// Bounded in-order event log.
///
/// # Examples
///
/// ```
/// use chunkpoint_sim::{Trace, TraceEvent};
///
/// let mut trace = Trace::new(16);
/// trace.push(TraceEvent::PhaseStart { phase: 0, cycle: 0 });
/// trace.push(TraceEvent::PhaseEnd { phase: 0, cycle: 900 });
/// assert_eq!(trace.events().len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl Trace {
    /// Creates a trace that keeps at most `capacity` events (0 disables
    /// recording entirely).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            events: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Records an event, dropping it if the trace is full.
    pub fn push(&mut self, event: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.dropped += 1;
        }
    }

    /// Recorded events in order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events dropped because the trace was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of rollbacks recorded.
    #[must_use]
    pub fn rollbacks(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Rollback { .. }))
            .count()
    }

    /// Number of checkpoints recorded.
    #[must_use]
    pub fn checkpoints(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Checkpoint { .. }))
            .count()
    }

    /// Renders an ASCII timeline (one line per event) for examples/tests.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            let line = match event {
                TraceEvent::PhaseStart { phase, cycle } => {
                    format!("{cycle:>10} | P{phase} start")
                }
                TraceEvent::PhaseEnd { phase, cycle } => {
                    format!("{cycle:>10} | P{phase} end")
                }
                TraceEvent::Checkpoint {
                    index,
                    cycle,
                    chunk_words,
                } => {
                    format!("{cycle:>10} | CH({index}) commit, {chunk_words} words -> L1'")
                }
                TraceEvent::ReadError { addr, cycle } => {
                    format!("{cycle:>10} | READ ERROR @ {addr:#x}")
                }
                TraceEvent::Rollback {
                    to_checkpoint,
                    cycle,
                } => {
                    format!("{cycle:>10} | rollback -> CH({to_checkpoint})")
                }
                TraceEvent::TaskRestart { cycle } => {
                    format!("{cycle:>10} | task restart")
                }
            };
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

/// One recorded bus access, the unit of trace-driven replay.
///
/// Loads record the address only — a replay re-issues the load against
/// its own bus and takes whatever that bus returns, so faults during
/// replay behave exactly as they would under the original workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessRecord {
    /// A checked word load.
    Load(WordAddr),
    /// A word store with its payload.
    Store(WordAddr, u32),
    /// Pure computation time.
    Tick(u64),
}

/// A [`MemoryBus`] wrapper that forwards every access to an inner bus
/// while appending it to an access log. Run a workload through one of
/// these once, then replay the captured sequence through any mitigation
/// stack — same addresses, same payloads, same compute gaps.
pub struct RecordingBus<'a> {
    inner: &'a mut dyn MemoryBus,
    log: Vec<AccessRecord>,
}

impl std::fmt::Debug for RecordingBus<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecordingBus")
            .field("recorded", &self.log.len())
            .finish_non_exhaustive()
    }
}

impl<'a> RecordingBus<'a> {
    /// Wraps `inner`, starting with an empty log.
    #[must_use]
    pub fn new(inner: &'a mut dyn MemoryBus) -> Self {
        Self {
            inner,
            log: Vec::new(),
        }
    }

    /// The accesses recorded so far, in issue order.
    #[must_use]
    pub fn log(&self) -> &[AccessRecord] {
        &self.log
    }

    /// Drains and returns the log, leaving the recorder empty — the
    /// segment boundary primitive (call after `init`, then after each
    /// block).
    pub fn take_log(&mut self) -> Vec<AccessRecord> {
        std::mem::take(&mut self.log)
    }
}

impl MemoryBus for RecordingBus<'_> {
    fn load(&mut self, addr: WordAddr) -> Result<u32, ReadFault> {
        self.log.push(AccessRecord::Load(addr));
        self.inner.load(addr)
    }

    fn store(&mut self, addr: WordAddr, value: u32) {
        self.log.push(AccessRecord::Store(addr, value));
        self.inner.store(addr, value);
    }

    fn tick(&mut self, cycles: u64) {
        self.log.push(AccessRecord::Tick(cycles));
        self.inner.tick(cycles);
    }

    fn now(&self) -> u64 {
        self.inner.now()
    }
}

/// Replays a recorded access sequence against `bus`.
///
/// Loads are re-issued checked (their payloads are discarded), stores
/// replay the recorded payloads, ticks advance time — so the bus sees
/// the original workload's exact access pattern.
///
/// # Errors
///
/// Returns the first [`ReadFault`] a replayed load hits.
pub fn replay_records(records: &[AccessRecord], bus: &mut dyn MemoryBus) -> Result<(), ReadFault> {
    for record in records {
        match *record {
            AccessRecord::Load(addr) => {
                bus.load(addr)?;
            }
            AccessRecord::Store(addr, value) => bus.store(addr, value),
            AccessRecord::Tick(cycles) => bus.tick(cycles),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let mut trace = Trace::new(10);
        trace.push(TraceEvent::PhaseStart { phase: 0, cycle: 0 });
        trace.push(TraceEvent::Checkpoint {
            index: 1,
            cycle: 50,
            chunk_words: 11,
        });
        trace.push(TraceEvent::Rollback {
            to_checkpoint: 1,
            cycle: 80,
        });
        assert_eq!(trace.events().len(), 3);
        assert_eq!(trace.checkpoints(), 1);
        assert_eq!(trace.rollbacks(), 1);
        assert_eq!(trace.events()[2].cycle(), 80);
    }

    #[test]
    fn drops_beyond_capacity() {
        let mut trace = Trace::new(1);
        trace.push(TraceEvent::TaskRestart { cycle: 1 });
        trace.push(TraceEvent::TaskRestart { cycle: 2 });
        assert_eq!(trace.events().len(), 1);
        assert_eq!(trace.dropped(), 1);
    }

    #[test]
    fn zero_capacity_records_nothing() {
        let mut trace = Trace::new(0);
        trace.push(TraceEvent::TaskRestart { cycle: 1 });
        assert!(trace.events().is_empty());
        assert_eq!(trace.dropped(), 1);
    }

    #[test]
    fn recording_and_replay_reproduce_the_bus_state() {
        use crate::energy::Component;
        use crate::fault::FaultProcess;
        use crate::platform::Platform;
        use crate::sram::Sram;
        use crate::PlainBus;
        use chunkpoint_ecc::EccKind;

        let fresh = || {
            let sram = Sram::new("l1", 64, EccKind::Secded, FaultProcess::disabled()).unwrap();
            PlainBus::new(sram, Platform::lh7a400(), Component::L1)
        };
        let mut original = fresh();
        let mut recorder = RecordingBus::new(&mut original);
        for i in 0..8u32 {
            recorder.store(i, i * 3 + 1);
        }
        recorder.tick(100);
        for i in 0..8u32 {
            recorder.load(i).unwrap();
        }
        let log = recorder.take_log();
        assert!(recorder.log().is_empty());
        assert_eq!(log.len(), 17);

        let mut replayed = fresh();
        replay_records(&log, &mut replayed).unwrap();
        assert_eq!(replayed.now(), original.now());
        for i in 0..8u32 {
            assert_eq!(replayed.load(i).unwrap(), original.load(i).unwrap());
        }
    }

    #[test]
    fn render_mentions_key_events() {
        let mut trace = Trace::new(10);
        trace.push(TraceEvent::ReadError {
            addr: 0x40,
            cycle: 123,
        });
        trace.push(TraceEvent::Rollback {
            to_checkpoint: 2,
            cycle: 130,
        });
        let text = trace.render();
        assert!(text.contains("READ ERROR"));
        assert!(text.contains("rollback -> CH(2)"));
    }
}
