//! Lightweight execution tracing for debugging and for reconstructing the
//! paper's Fig. 1 timeline (phases, checkpoints, errors, rollbacks).

use crate::bus::WordAddr;

/// One traced event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A computation phase began.
    PhaseStart {
        /// Phase index.
        phase: usize,
        /// Cycle at which it began.
        cycle: u64,
    },
    /// A computation phase finished cleanly.
    PhaseEnd {
        /// Phase index.
        phase: usize,
        /// Cycle at which it ended.
        cycle: u64,
    },
    /// A checkpoint was committed and its chunk buffered to L1′.
    Checkpoint {
        /// Checkpoint index CH(i).
        index: usize,
        /// Commit cycle.
        cycle: u64,
        /// Words buffered into L1′ (state + chunk).
        chunk_words: u32,
    },
    /// A read-error interrupt fired.
    ReadError {
        /// Faulting word address.
        addr: WordAddr,
        /// Cycle of the faulty read.
        cycle: u64,
    },
    /// The system rolled back to a checkpoint.
    Rollback {
        /// Target checkpoint index.
        to_checkpoint: usize,
        /// Cycle at which the rollback completed.
        cycle: u64,
    },
    /// A whole-task restart (the SW-baseline response to an error).
    TaskRestart {
        /// Restart cycle.
        cycle: u64,
    },
}

impl TraceEvent {
    /// Cycle at which the event occurred.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        match *self {
            TraceEvent::PhaseStart { cycle, .. }
            | TraceEvent::PhaseEnd { cycle, .. }
            | TraceEvent::Checkpoint { cycle, .. }
            | TraceEvent::ReadError { cycle, .. }
            | TraceEvent::Rollback { cycle, .. }
            | TraceEvent::TaskRestart { cycle } => cycle,
        }
    }
}

/// Bounded in-order event log.
///
/// # Examples
///
/// ```
/// use chunkpoint_sim::{Trace, TraceEvent};
///
/// let mut trace = Trace::new(16);
/// trace.push(TraceEvent::PhaseStart { phase: 0, cycle: 0 });
/// trace.push(TraceEvent::PhaseEnd { phase: 0, cycle: 900 });
/// assert_eq!(trace.events().len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl Trace {
    /// Creates a trace that keeps at most `capacity` events (0 disables
    /// recording entirely).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            events: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Records an event, dropping it if the trace is full.
    pub fn push(&mut self, event: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.dropped += 1;
        }
    }

    /// Recorded events in order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events dropped because the trace was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of rollbacks recorded.
    #[must_use]
    pub fn rollbacks(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Rollback { .. }))
            .count()
    }

    /// Number of checkpoints recorded.
    #[must_use]
    pub fn checkpoints(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Checkpoint { .. }))
            .count()
    }

    /// Renders an ASCII timeline (one line per event) for examples/tests.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            let line = match event {
                TraceEvent::PhaseStart { phase, cycle } => {
                    format!("{cycle:>10} | P{phase} start")
                }
                TraceEvent::PhaseEnd { phase, cycle } => {
                    format!("{cycle:>10} | P{phase} end")
                }
                TraceEvent::Checkpoint {
                    index,
                    cycle,
                    chunk_words,
                } => {
                    format!("{cycle:>10} | CH({index}) commit, {chunk_words} words -> L1'")
                }
                TraceEvent::ReadError { addr, cycle } => {
                    format!("{cycle:>10} | READ ERROR @ {addr:#x}")
                }
                TraceEvent::Rollback {
                    to_checkpoint,
                    cycle,
                } => {
                    format!("{cycle:>10} | rollback -> CH({to_checkpoint})")
                }
                TraceEvent::TaskRestart { cycle } => {
                    format!("{cycle:>10} | task restart")
                }
            };
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let mut trace = Trace::new(10);
        trace.push(TraceEvent::PhaseStart { phase: 0, cycle: 0 });
        trace.push(TraceEvent::Checkpoint {
            index: 1,
            cycle: 50,
            chunk_words: 11,
        });
        trace.push(TraceEvent::Rollback {
            to_checkpoint: 1,
            cycle: 80,
        });
        assert_eq!(trace.events().len(), 3);
        assert_eq!(trace.checkpoints(), 1);
        assert_eq!(trace.rollbacks(), 1);
        assert_eq!(trace.events()[2].cycle(), 80);
    }

    #[test]
    fn drops_beyond_capacity() {
        let mut trace = Trace::new(1);
        trace.push(TraceEvent::TaskRestart { cycle: 1 });
        trace.push(TraceEvent::TaskRestart { cycle: 2 });
        assert_eq!(trace.events().len(), 1);
        assert_eq!(trace.dropped(), 1);
    }

    #[test]
    fn zero_capacity_records_nothing() {
        let mut trace = Trace::new(0);
        trace.push(TraceEvent::TaskRestart { cycle: 1 });
        assert!(trace.events().is_empty());
        assert_eq!(trace.dropped(), 1);
    }

    #[test]
    fn render_mentions_key_events() {
        let mut trace = Trace::new(10);
        trace.push(TraceEvent::ReadError {
            addr: 0x40,
            cycle: 123,
        });
        trace.push(TraceEvent::Rollback {
            to_checkpoint: 2,
            cycle: 130,
        });
        let text = trace.render();
        assert!(text.contains("READ ERROR"));
        assert!(text.contains("rollback -> CH(2)"));
    }
}
