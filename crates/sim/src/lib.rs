//! # chunkpoint-sim
//!
//! A cycle-approximate simulator of the paper's target platform — the
//! substrate that replaces MPARM + CACTI in this reproduction.
//!
//! * [`Sram`] — bit-accurate SRAM arrays storing full ECC codewords, with
//!   lazy Poisson fault materialisation ([`FaultProcess`]).
//! * [`SramModel`] — CACTI-6.5-style analytic area / energy / timing
//!   curves at 65 nm.
//! * [`Platform`] — the NXP LH7A400-class SoC description (ARM9, 200 MHz,
//!   64 KB L1).
//! * [`MemoryBus`] / [`PlainBus`] — the CPU-side load/store interface all
//!   workloads run against, with cycle and energy accounting in
//!   [`EnergyLedger`].
//! * [`Trace`] — event log reconstructing Fig. 1-style timelines.
//!
//! ## Example: silent corruption vs. detection
//!
//! ```
//! use chunkpoint_sim::{Component, FaultProcess, MemoryBus, PlainBus, Platform, Sram};
//! use chunkpoint_ecc::EccKind;
//!
//! // A parity-protected scratchpad with no background faults.
//! let sram = Sram::new("l1", 128, EccKind::Parity, FaultProcess::disabled())?;
//! let mut bus = PlainBus::new(sram, Platform::lh7a400(), Component::L1);
//!
//! bus.store(0, 0xDEAD_BEEF);
//! assert_eq!(bus.load(0)?, 0xDEAD_BEEF);
//!
//! // Inject an upset: parity detects it and the load faults.
//! bus.sram_mut().inject(0, 9, 1);
//! assert!(bus.load(0).is_err());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bus;
mod cacti;
mod energy;
mod fault;
mod platform;
mod sram;
mod trace;

pub use bus::{AddressMap, AllocError, MemoryBus, PlainBus, ReadFault, Region, WordAddr};
pub use cacti::{logic_area_um2, SramModel, GATE_AREA_UM2};
pub use energy::{Component, EnergyLedger};
pub use fault::{Burst, FaultEvent, FaultProcess, FaultTimeline, UpsetModel};
pub use platform::{Platform, WORD_BYTES};
pub use sram::{Sram, SramStats};
pub use trace::{replay_records, AccessRecord, RecordingBus, Trace, TraceEvent};
