//! Intermittent-fault injection.
//!
//! The paper's fault model: single-event upsets strike SRAM words at a rate
//! of λ words/cycle (the evaluation uses λ = 10⁻⁶ word⁻¹·cycle⁻¹, an upper
//! bound taken from ERSA, the paper.s ref. 14); with technology scaling a growing fraction
//! of strikes are *multi-bit* upsets (SMUs) flipping several physically
//! adjacent bits [5]. Faults persist in the array until the word is
//! rewritten — they are intermittent from the program's point of view
//! because they appear between a write and a later read.
//!
//! [`FaultProcess`] samples strike counts from the exact Poisson law of the
//! per-cycle Bernoulli process and applies adjacent-bit bursts with a
//! configurable width distribution.

use chunkpoint_ecc::BitBuf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Distribution of the burst width of a single strike.
#[derive(Debug, Clone, PartialEq)]
pub enum UpsetModel {
    /// Classic single-bit upsets only.
    SingleBit,
    /// Multi-bit upsets: width w is drawn from the given probability table.
    MultiBit {
        /// `weights[i]` = relative probability of a burst of width `i + 1`.
        weights: Vec<f64>,
    },
}

impl UpsetModel {
    /// The SMU width distribution used throughout the paper's evaluation:
    /// scaled-technology measurements (ref. 5 of the paper, 65 nm and below) where ~55 % of
    /// events upset more than one bit.
    #[must_use]
    pub fn smu_65nm() -> Self {
        UpsetModel::MultiBit {
            weights: vec![0.45, 0.25, 0.15, 0.08, 0.05, 0.02],
        }
    }

    /// Maximum burst width this model can produce.
    #[must_use]
    pub fn max_width(&self) -> usize {
        match self {
            UpsetModel::SingleBit => 1,
            UpsetModel::MultiBit { weights } => weights.len(),
        }
    }

    fn sample_width(&self, rng: &mut StdRng) -> usize {
        match self {
            UpsetModel::SingleBit => 1,
            UpsetModel::MultiBit { weights } => {
                let total: f64 = weights.iter().sum();
                let mut x = rng.gen::<f64>() * total;
                for (i, w) in weights.iter().enumerate() {
                    if x < *w {
                        return i + 1;
                    }
                    x -= w;
                }
                weights.len()
            }
        }
    }
}

/// A single injected strike, for tracing and post-mortem analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Cycle at which the strike was materialised (lazily, at read time).
    pub cycle: u64,
    /// First flipped stored-bit index within the word.
    pub first_bit: usize,
    /// Number of adjacent bits flipped.
    pub width: usize,
}

/// A strike cluster at one instant: every word whose exposure window
/// crosses `cycle` is struck with probability `rate`, at most `words`
/// strikes in total across the array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Burst {
    /// Burst instant in cycles.
    pub cycle: u64,
    /// Cap on struck words across the whole array.
    pub words: u32,
    /// Per-word strike probability in `(0, 1]`.
    pub rate: f64,
}

/// A deterministic dynamic fault regime layered on a [`FaultProcess`]:
/// piecewise-constant rate shifts, strike bursts at instants, and an
/// idealized background scrub.
///
/// Everything stays a pure function of `(seed, access sequence)`: the
/// rate λ(t) is integrated exactly over each word's exposure window, a
/// burst consumes one uniform draw per crossing word, and scrubbing only
/// clamps exposure windows — so a timeline run is byte-identical across
/// machines and thread counts, like every other simulation.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultTimeline {
    /// `(cycle, λ)` pairs, non-decreasing in cycle: from each instant on,
    /// the Poisson rate becomes the paired value (the base rate applies
    /// before the first shift).
    pub shifts: Vec<(u64, f64)>,
    /// Strike clusters, non-decreasing in cycle.
    pub bursts: Vec<Burst>,
    /// Background scrub period: accumulated-fault exposure windows are
    /// clamped to the most recent period boundary, modelling an idealized
    /// scrubber that rewrites every word each period at zero cost.
    pub scrub_period: Option<u64>,
}

impl FaultTimeline {
    /// Whether the timeline changes anything at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shifts.is_empty() && self.bursts.is_empty() && self.scrub_period.is_none()
    }

    /// ∫λ(t)dt over the half-open window `[start, end)` with base rate
    /// `base` before the first shift.
    fn integrate(&self, base: f64, start: u64, end: u64) -> f64 {
        if start >= end {
            return 0.0;
        }
        let mut rate = base;
        for &(cycle, shifted) in &self.shifts {
            if cycle <= start {
                rate = shifted;
            } else {
                break;
            }
        }
        let mut total = 0.0;
        let mut t = start;
        for &(cycle, shifted) in &self.shifts {
            if cycle <= start {
                continue;
            }
            if cycle >= end {
                break;
            }
            total += rate * (cycle - t) as f64;
            t = cycle;
            rate = shifted;
        }
        total + rate * (end - t) as f64
    }
}

/// Poisson process injecting bit-flip bursts into stored words.
///
/// # Examples
///
/// ```
/// use chunkpoint_sim::{FaultProcess, UpsetModel};
/// use chunkpoint_ecc::BitBuf;
///
/// // An aggressive rate so the example actually strikes.
/// let mut faults = FaultProcess::new(1e-2, UpsetModel::smu_65nm(), 42);
/// let mut word = BitBuf::new(39);
/// let events = faults.expose(&mut word, 10_000, 0);
/// assert!(!events.is_empty());
/// assert_eq!(word.count_ones() > 0, true);
/// ```
#[derive(Debug, Clone)]
pub struct FaultProcess {
    rate_per_word_cycle: f64,
    model: UpsetModel,
    rng: StdRng,
    strikes: u64,
    bits_flipped: u64,
    timeline: Option<FaultTimeline>,
    /// Remaining word budget per timeline burst, parallel to
    /// `timeline.bursts`.
    burst_remaining: Vec<u32>,
}

impl FaultProcess {
    /// Creates a process with strike rate λ (strikes per word per cycle).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is negative, NaN, or ≥ 1.
    #[must_use]
    pub fn new(rate: f64, model: UpsetModel, seed: u64) -> Self {
        assert!(
            rate.is_finite() && (0.0..1.0).contains(&rate),
            "fault rate must be in [0, 1), got {rate}"
        );
        Self {
            rate_per_word_cycle: rate,
            model,
            rng: StdRng::seed_from_u64(seed),
            strikes: 0,
            bits_flipped: 0,
            timeline: None,
            burst_remaining: Vec::new(),
        }
    }

    /// Attaches a [`FaultTimeline`]: rate shifts, bursts, and scrubbing
    /// become part of this process's exposure law.
    ///
    /// # Panics
    ///
    /// Panics if a shift rate is outside `[0, 1)`, a burst rate outside
    /// `(0, 1]`, shift or burst instants decrease, or a scrub period is 0.
    #[must_use]
    pub fn with_timeline(mut self, timeline: FaultTimeline) -> Self {
        for window in timeline.shifts.windows(2) {
            assert!(
                window[0].0 <= window[1].0,
                "shift instants must be non-decreasing"
            );
        }
        for &(_, rate) in &timeline.shifts {
            assert!(
                rate.is_finite() && (0.0..1.0).contains(&rate),
                "shift rate must be in [0, 1), got {rate}"
            );
        }
        for window in timeline.bursts.windows(2) {
            assert!(
                window[0].cycle <= window[1].cycle,
                "burst instants must be non-decreasing"
            );
        }
        for burst in &timeline.bursts {
            assert!(
                burst.rate.is_finite() && burst.rate > 0.0 && burst.rate <= 1.0,
                "burst rate must be in (0, 1], got {}",
                burst.rate
            );
        }
        assert!(
            timeline.scrub_period != Some(0),
            "scrub period must be at least 1 cycle"
        );
        self.burst_remaining = timeline.bursts.iter().map(|b| b.words).collect();
        self.timeline = Some(timeline);
        self
    }

    /// The attached timeline, if any.
    #[must_use]
    pub fn timeline(&self) -> Option<&FaultTimeline> {
        self.timeline.as_ref()
    }

    /// A disabled process (λ = 0) for fault-free golden runs.
    #[must_use]
    pub fn disabled() -> Self {
        Self::new(0.0, UpsetModel::SingleBit, 0)
    }

    /// Restarts the strike stream from `seed`, keeping the rate and the
    /// upset model. Statistics counters are reset: after a reseed the
    /// process is indistinguishable from a freshly built one.
    ///
    /// This is the knob for long-lived harnesses that re-roll the fault
    /// stream of an existing array between episodes. Note the campaign
    /// engine does *not* use it — campaigns reseed at the configuration
    /// level (`SystemConfig::with_seed`) so each scenario builds its
    /// processes from the derived `(campaign_seed, index)` seed; mixing
    /// `reseed` into a campaign scenario would step outside that
    /// reproducibility contract.
    pub fn reseed(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
        self.strikes = 0;
        self.bits_flipped = 0;
        if let Some(timeline) = &self.timeline {
            self.burst_remaining = timeline.bursts.iter().map(|b| b.words).collect();
        }
    }

    /// Strike rate λ.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.rate_per_word_cycle
    }

    /// Total strikes injected so far.
    #[must_use]
    pub fn strikes(&self) -> u64 {
        self.strikes
    }

    /// Total bits flipped so far.
    #[must_use]
    pub fn bits_flipped(&self) -> u64 {
        self.bits_flipped
    }

    /// Samples the number of strikes over an exposure window of `cycles`
    /// ending at `now`, honoring the attached timeline if any.
    fn sample_strike_count(&mut self, cycles: u64, now: u64) -> u64 {
        if self.timeline.is_none() {
            return self.sample_poisson(self.rate_per_word_cycle * cycles as f64);
        }
        let end = now;
        let mut start = end.saturating_sub(cycles);
        let timeline = self.timeline.as_ref().expect("checked above");
        if let Some(period) = timeline.scrub_period {
            // The scrubber rewrote every word at the last period boundary,
            // so accumulated exposure before it is gone.
            start = start.max((end / period) * period);
        }
        let lambda = timeline.integrate(self.rate_per_word_cycle, start, end);
        let mut count = self.sample_poisson(lambda);
        // Bursts: one Bernoulli draw per crossing burst with budget left.
        // `Burst` is `Copy`, so indexing sidesteps the rng borrow.
        for i in 0..self.burst_remaining.len() {
            let burst = self.timeline.as_ref().expect("checked above").bursts[i];
            if self.burst_remaining[i] > 0 && burst.cycle > start && burst.cycle <= end {
                let u: f64 = self.rng.gen();
                if u < burst.rate {
                    self.burst_remaining[i] -= 1;
                    count += 1;
                }
            }
        }
        count
    }

    /// Exact Poisson(λ) by inversion; λ is tiny in all realistic
    /// configurations so this loop terminates immediately.
    fn sample_poisson(&mut self, lambda: f64) -> u64 {
        if lambda <= 0.0 {
            return 0;
        }
        let u: f64 = self.rng.gen();
        let mut cumulative = (-lambda).exp();
        let mut probability = cumulative;
        let mut k = 0u64;
        while u > cumulative && k < 64 {
            k += 1;
            probability *= lambda / k as f64;
            cumulative += probability;
        }
        k
    }

    /// Exposes one stored word for `cycles` cycles, flipping bits in place.
    ///
    /// Returns the strike events applied (empty when the word survived).
    /// Allocates only when a strike actually lands; hot paths that expose
    /// per access use [`FaultProcess::expose_into`] to stay allocation-free
    /// even then.
    pub fn expose(&mut self, word: &mut BitBuf, cycles: u64, now: u64) -> Vec<FaultEvent> {
        let mut events = Vec::new();
        self.expose_into(word, cycles, now, &mut events);
        events
    }

    /// Allocation-free exposure: strike events are appended to the
    /// caller-provided `events` buffer (typically the owning array's
    /// long-lived fault log). Returns the number of strikes applied.
    ///
    /// The common no-strike path performs no allocation and no buffer
    /// traffic at all — it samples one Poisson variate and returns.
    pub fn expose_into(
        &mut self,
        word: &mut BitBuf,
        cycles: u64,
        now: u64,
        events: &mut Vec<FaultEvent>,
    ) -> usize {
        let count = self.sample_strike_count(cycles, now);
        for _ in 0..count {
            let width = self.model.sample_width(&mut self.rng).min(word.len());
            let first_bit = self.rng.gen_range(0..=word.len() - width);
            for bit in first_bit..first_bit + width {
                word.flip(bit);
            }
            self.strikes += 1;
            self.bits_flipped += width as u64;
            events.push(FaultEvent {
                cycle: now,
                first_bit,
                width,
            });
        }
        count as usize
    }

    /// Expected number of faulty words among `words` words exposed for
    /// `cycles` cycles — the `err` term of the paper's Eq. (1)–(2).
    /// Uses the base rate; timeline shifts are a runtime property, not
    /// part of the optimizer's closed-form model.
    #[must_use]
    pub fn expected_strikes(&self, words: usize, cycles: u64) -> f64 {
        self.rate_per_word_cycle * words as f64 * cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_never_strikes() {
        let mut faults = FaultProcess::disabled();
        let mut word = BitBuf::new(39);
        for _ in 0..100 {
            assert!(faults.expose(&mut word, 1_000_000, 0).is_empty());
        }
        assert_eq!(word.count_ones(), 0);
        assert_eq!(faults.strikes(), 0);
    }

    #[test]
    fn strike_rate_matches_poisson_mean() {
        let rate = 1e-4;
        let mut faults = FaultProcess::new(rate, UpsetModel::SingleBit, 7);
        let exposures = 20_000u64;
        let cycles = 100u64;
        let mut total = 0u64;
        for _ in 0..exposures {
            let mut word = BitBuf::new(39);
            total += faults.expose(&mut word, cycles, 0).len() as u64;
        }
        let expected = rate * cycles as f64 * exposures as f64; // = 200
        let observed = total as f64;
        assert!(
            (observed - expected).abs() < 0.25 * expected,
            "observed {observed}, expected {expected}"
        );
    }

    #[test]
    fn smu_model_produces_multi_bit_bursts() {
        let mut faults = FaultProcess::new(0.5, UpsetModel::smu_65nm(), 3);
        let mut widths = Vec::new();
        for _ in 0..500 {
            let mut word = BitBuf::new(64);
            for ev in faults.expose(&mut word, 1, 0) {
                widths.push(ev.width);
            }
        }
        assert!(widths.iter().any(|&w| w >= 2), "no multi-bit bursts seen");
        assert!(widths.iter().all(|&w| w <= 6));
        // Roughly 55% of strikes should be multi-bit.
        let multi = widths.iter().filter(|&&w| w >= 2).count() as f64;
        let frac = multi / widths.len() as f64;
        assert!((0.35..0.75).contains(&frac), "multi-bit fraction {frac}");
    }

    #[test]
    fn bursts_are_adjacent_and_in_range() {
        let mut faults = FaultProcess::new(0.9, UpsetModel::smu_65nm(), 11);
        for _ in 0..200 {
            let mut word = BitBuf::new(39);
            let before = word;
            let events = faults.expose(&mut word, 1, 5);
            for ev in &events {
                assert!(ev.first_bit + ev.width <= 39);
                assert_eq!(ev.cycle, 5);
            }
            if events.len() == 1 {
                // A single burst flips exactly `width` adjacent bits.
                assert_eq!(word.hamming_distance(&before) as usize, events[0].width);
            }
        }
    }

    #[test]
    fn expose_into_matches_expose_and_appends() {
        let mut a = FaultProcess::new(1e-2, UpsetModel::smu_65nm(), 21);
        let mut b = a.clone();
        let mut word_a = BitBuf::new(39);
        let mut word_b = BitBuf::new(39);
        let mut log = vec![FaultEvent {
            cycle: 0,
            first_bit: 0,
            width: 1,
        }];
        let mut total = 0usize;
        for round in 0..50u64 {
            let events = a.expose(&mut word_a, 1000, round);
            total += b.expose_into(&mut word_b, 1000, round, &mut log);
            assert_eq!(
                &log[log.len() - events.len()..],
                &events[..],
                "round {round}"
            );
        }
        assert_eq!(word_a, word_b);
        assert_eq!(log.len(), total + 1, "pre-existing entries must survive");
        assert!(total > 0, "aggressive rate produced no strikes");
    }

    #[test]
    fn deterministic_under_same_seed() {
        let run = |seed| {
            let mut faults = FaultProcess::new(1e-3, UpsetModel::smu_65nm(), seed);
            let mut word = BitBuf::new(39);
            for _ in 0..50 {
                faults.expose(&mut word, 1000, 0);
            }
            (*word.as_words(), faults.strikes())
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9).0, run(10).0);
    }

    #[test]
    fn reseed_restarts_the_stream() {
        let mut reseeded = FaultProcess::new(1e-2, UpsetModel::smu_65nm(), 1);
        let mut fresh = FaultProcess::new(1e-2, UpsetModel::smu_65nm(), 99);
        let mut scratch = BitBuf::new(39);
        reseeded.expose(&mut scratch, 100_000, 0);
        assert!(reseeded.strikes() > 0, "warm-up produced no strikes");
        reseeded.reseed(99);
        assert_eq!(reseeded.strikes(), 0, "reseed must reset statistics");
        let mut word_a = BitBuf::new(39);
        let mut word_b = BitBuf::new(39);
        for round in 0..50 {
            let a = reseeded.expose(&mut word_a, 1000, round);
            let b = fresh.expose(&mut word_b, 1000, round);
            assert_eq!(a, b, "round {round}");
        }
        assert_eq!(word_a, word_b);
    }

    #[test]
    fn expected_strikes_linear() {
        let faults = FaultProcess::new(1e-6, UpsetModel::SingleBit, 0);
        assert!((faults.expected_strikes(1000, 1000) - 1.0).abs() < 1e-9);
        assert!((faults.expected_strikes(0, 1000)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "fault rate")]
    fn rejects_invalid_rate() {
        let _ = FaultProcess::new(1.5, UpsetModel::SingleBit, 0);
    }

    #[test]
    fn timeline_integrates_piecewise_rates() {
        let timeline = FaultTimeline {
            shifts: vec![(100, 0.5), (200, 0.0)],
            ..FaultTimeline::default()
        };
        // Base rate 0.1 until cycle 100, then 0.5, then 0 from 200 on.
        assert!((timeline.integrate(0.1, 0, 100) - 10.0).abs() < 1e-9);
        assert!((timeline.integrate(0.1, 0, 200) - 60.0).abs() < 1e-9);
        assert!((timeline.integrate(0.1, 150, 1000) - 25.0).abs() < 1e-9);
        assert!((timeline.integrate(0.1, 300, 400)).abs() < 1e-12);
        assert!((timeline.integrate(0.1, 50, 50)).abs() < 1e-12);
    }

    #[test]
    fn rate_shift_turns_the_process_on_and_off() {
        let timeline = FaultTimeline {
            shifts: vec![(1_000, 0.2), (2_000, 0.0)],
            ..FaultTimeline::default()
        };
        let mut faults = FaultProcess::new(0.0, UpsetModel::SingleBit, 5).with_timeline(timeline);
        let mut word = BitBuf::new(39);
        // Window entirely before the shift: base rate 0, never strikes.
        for now in (100..=900).step_by(100) {
            assert!(faults.expose(&mut word, 100, now).is_empty(), "now={now}");
        }
        // Windows inside the hot region must strike often.
        let mut hot = 0;
        for now in ((1_100)..=(2_000)).step_by(100) {
            let mut w = BitBuf::new(39);
            hot += faults.expose(&mut w, 100, now).len();
        }
        assert!(hot > 0, "shifted-up rate produced no strikes");
        // After the shift back down the process is quiet again.
        for now in (2_100..=3_000).step_by(100) {
            let mut w = BitBuf::new(39);
            assert!(faults.expose(&mut w, 100, now).is_empty(), "now={now}");
        }
    }

    #[test]
    fn burst_strikes_are_capped_at_word_budget() {
        let timeline = FaultTimeline {
            bursts: vec![Burst {
                cycle: 500,
                words: 3,
                rate: 1.0,
            }],
            ..FaultTimeline::default()
        };
        let mut faults = FaultProcess::new(0.0, UpsetModel::SingleBit, 9).with_timeline(timeline);
        // 10 words all expose windows crossing cycle 500 — only 3 strike.
        let mut struck = 0;
        for _ in 0..10 {
            let mut word = BitBuf::new(39);
            struck += faults.expose(&mut word, 400, 600).len();
        }
        assert_eq!(struck, 3);
        // Words whose window misses the instant are untouched.
        let mut word = BitBuf::new(39);
        assert!(faults.expose(&mut word, 50, 400).is_empty());
    }

    #[test]
    fn scrub_clamps_accumulated_exposure() {
        let run = |scrub: Option<u64>| {
            let timeline = FaultTimeline {
                scrub_period: scrub,
                ..FaultTimeline::default()
            };
            let mut faults =
                FaultProcess::new(1e-3, UpsetModel::SingleBit, 77).with_timeline(timeline);
            let mut total = 0usize;
            for i in 0..200u64 {
                let mut word = BitBuf::new(39);
                // Each word sat untouched for 10_000 cycles.
                total += faults.expose(&mut word, 10_000, 10_000 + i).len();
            }
            total
        };
        let unscrubbed = run(None);
        // A 100-cycle scrub leaves at most ~100 cycles of exposure.
        let scrubbed = run(Some(100));
        assert!(
            scrubbed * 10 < unscrubbed,
            "scrub did not reduce exposure: {scrubbed} vs {unscrubbed}"
        );
    }

    #[test]
    fn timeline_runs_are_deterministic_and_reseedable() {
        let timeline = FaultTimeline {
            shifts: vec![(1_000, 1e-2)],
            bursts: vec![Burst {
                cycle: 2_000,
                words: 2,
                rate: 0.8,
            }],
            scrub_period: Some(50_000),
        };
        let run = |seed| {
            let mut faults = FaultProcess::new(1e-4, UpsetModel::smu_65nm(), seed)
                .with_timeline(timeline.clone());
            let mut word = BitBuf::new(39);
            for now in (500..50_000).step_by(500) {
                faults.expose(&mut word, 500, now);
            }
            (*word.as_words(), faults.strikes())
        };
        assert_eq!(run(4), run(4));
        // Reseed restores the burst budget along with the stream.
        let mut faults =
            FaultProcess::new(1e-4, UpsetModel::smu_65nm(), 4).with_timeline(timeline.clone());
        let mut word = BitBuf::new(39);
        for now in (500..50_000).step_by(500) {
            faults.expose(&mut word, 500, now);
        }
        faults.reseed(4);
        let mut word2 = BitBuf::new(39);
        for now in (500..50_000).step_by(500) {
            faults.expose(&mut word2, 500, now);
        }
        assert_eq!(word, word2);
    }

    #[test]
    #[should_panic(expected = "burst rate")]
    fn rejects_invalid_burst_rate() {
        let timeline = FaultTimeline {
            bursts: vec![Burst {
                cycle: 0,
                words: 1,
                rate: 1.5,
            }],
            ..FaultTimeline::default()
        };
        let _ = FaultProcess::disabled().with_timeline(timeline);
    }
}
