//! Intermittent-fault injection.
//!
//! The paper's fault model: single-event upsets strike SRAM words at a rate
//! of λ words/cycle (the evaluation uses λ = 10⁻⁶ word⁻¹·cycle⁻¹, an upper
//! bound taken from ERSA, the paper.s ref. 14); with technology scaling a growing fraction
//! of strikes are *multi-bit* upsets (SMUs) flipping several physically
//! adjacent bits [5]. Faults persist in the array until the word is
//! rewritten — they are intermittent from the program's point of view
//! because they appear between a write and a later read.
//!
//! [`FaultProcess`] samples strike counts from the exact Poisson law of the
//! per-cycle Bernoulli process and applies adjacent-bit bursts with a
//! configurable width distribution.

use chunkpoint_ecc::BitBuf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Distribution of the burst width of a single strike.
#[derive(Debug, Clone, PartialEq)]
pub enum UpsetModel {
    /// Classic single-bit upsets only.
    SingleBit,
    /// Multi-bit upsets: width w is drawn from the given probability table.
    MultiBit {
        /// `weights[i]` = relative probability of a burst of width `i + 1`.
        weights: Vec<f64>,
    },
}

impl UpsetModel {
    /// The SMU width distribution used throughout the paper's evaluation:
    /// scaled-technology measurements (ref. 5 of the paper, 65 nm and below) where ~55 % of
    /// events upset more than one bit.
    #[must_use]
    pub fn smu_65nm() -> Self {
        UpsetModel::MultiBit {
            weights: vec![0.45, 0.25, 0.15, 0.08, 0.05, 0.02],
        }
    }

    /// Maximum burst width this model can produce.
    #[must_use]
    pub fn max_width(&self) -> usize {
        match self {
            UpsetModel::SingleBit => 1,
            UpsetModel::MultiBit { weights } => weights.len(),
        }
    }

    fn sample_width(&self, rng: &mut StdRng) -> usize {
        match self {
            UpsetModel::SingleBit => 1,
            UpsetModel::MultiBit { weights } => {
                let total: f64 = weights.iter().sum();
                let mut x = rng.gen::<f64>() * total;
                for (i, w) in weights.iter().enumerate() {
                    if x < *w {
                        return i + 1;
                    }
                    x -= w;
                }
                weights.len()
            }
        }
    }
}

/// A single injected strike, for tracing and post-mortem analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Cycle at which the strike was materialised (lazily, at read time).
    pub cycle: u64,
    /// First flipped stored-bit index within the word.
    pub first_bit: usize,
    /// Number of adjacent bits flipped.
    pub width: usize,
}

/// Poisson process injecting bit-flip bursts into stored words.
///
/// # Examples
///
/// ```
/// use chunkpoint_sim::{FaultProcess, UpsetModel};
/// use chunkpoint_ecc::BitBuf;
///
/// // An aggressive rate so the example actually strikes.
/// let mut faults = FaultProcess::new(1e-2, UpsetModel::smu_65nm(), 42);
/// let mut word = BitBuf::new(39);
/// let events = faults.expose(&mut word, 10_000, 0);
/// assert!(!events.is_empty());
/// assert_eq!(word.count_ones() > 0, true);
/// ```
#[derive(Debug, Clone)]
pub struct FaultProcess {
    rate_per_word_cycle: f64,
    model: UpsetModel,
    rng: StdRng,
    strikes: u64,
    bits_flipped: u64,
}

impl FaultProcess {
    /// Creates a process with strike rate λ (strikes per word per cycle).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is negative, NaN, or ≥ 1.
    #[must_use]
    pub fn new(rate: f64, model: UpsetModel, seed: u64) -> Self {
        assert!(
            rate.is_finite() && (0.0..1.0).contains(&rate),
            "fault rate must be in [0, 1), got {rate}"
        );
        Self {
            rate_per_word_cycle: rate,
            model,
            rng: StdRng::seed_from_u64(seed),
            strikes: 0,
            bits_flipped: 0,
        }
    }

    /// A disabled process (λ = 0) for fault-free golden runs.
    #[must_use]
    pub fn disabled() -> Self {
        Self::new(0.0, UpsetModel::SingleBit, 0)
    }

    /// Restarts the strike stream from `seed`, keeping the rate and the
    /// upset model. Statistics counters are reset: after a reseed the
    /// process is indistinguishable from a freshly built one.
    ///
    /// This is the knob for long-lived harnesses that re-roll the fault
    /// stream of an existing array between episodes. Note the campaign
    /// engine does *not* use it — campaigns reseed at the configuration
    /// level (`SystemConfig::with_seed`) so each scenario builds its
    /// processes from the derived `(campaign_seed, index)` seed; mixing
    /// `reseed` into a campaign scenario would step outside that
    /// reproducibility contract.
    pub fn reseed(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
        self.strikes = 0;
        self.bits_flipped = 0;
    }

    /// Strike rate λ.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.rate_per_word_cycle
    }

    /// Total strikes injected so far.
    #[must_use]
    pub fn strikes(&self) -> u64 {
        self.strikes
    }

    /// Total bits flipped so far.
    #[must_use]
    pub fn bits_flipped(&self) -> u64 {
        self.bits_flipped
    }

    /// Samples the number of strikes over an exposure window of `cycles`.
    fn sample_strike_count(&mut self, cycles: u64) -> u64 {
        if self.rate_per_word_cycle == 0.0 || cycles == 0 {
            return 0;
        }
        // Exact Poisson(λ·cycles) by inversion; λ·cycles is tiny in all
        // realistic configurations so this loop terminates immediately.
        let lambda = self.rate_per_word_cycle * cycles as f64;
        let u: f64 = self.rng.gen();
        let mut cumulative = (-lambda).exp();
        let mut probability = cumulative;
        let mut k = 0u64;
        while u > cumulative && k < 64 {
            k += 1;
            probability *= lambda / k as f64;
            cumulative += probability;
        }
        k
    }

    /// Exposes one stored word for `cycles` cycles, flipping bits in place.
    ///
    /// Returns the strike events applied (empty when the word survived).
    /// Allocates only when a strike actually lands; hot paths that expose
    /// per access use [`FaultProcess::expose_into`] to stay allocation-free
    /// even then.
    pub fn expose(&mut self, word: &mut BitBuf, cycles: u64, now: u64) -> Vec<FaultEvent> {
        let mut events = Vec::new();
        self.expose_into(word, cycles, now, &mut events);
        events
    }

    /// Allocation-free exposure: strike events are appended to the
    /// caller-provided `events` buffer (typically the owning array's
    /// long-lived fault log). Returns the number of strikes applied.
    ///
    /// The common no-strike path performs no allocation and no buffer
    /// traffic at all — it samples one Poisson variate and returns.
    pub fn expose_into(
        &mut self,
        word: &mut BitBuf,
        cycles: u64,
        now: u64,
        events: &mut Vec<FaultEvent>,
    ) -> usize {
        let count = self.sample_strike_count(cycles);
        for _ in 0..count {
            let width = self.model.sample_width(&mut self.rng).min(word.len());
            let first_bit = self.rng.gen_range(0..=word.len() - width);
            for bit in first_bit..first_bit + width {
                word.flip(bit);
            }
            self.strikes += 1;
            self.bits_flipped += width as u64;
            events.push(FaultEvent {
                cycle: now,
                first_bit,
                width,
            });
        }
        count as usize
    }

    /// Expected number of faulty words among `words` words exposed for
    /// `cycles` cycles — the `err` term of the paper's Eq. (1)–(2).
    #[must_use]
    pub fn expected_strikes(&self, words: usize, cycles: u64) -> f64 {
        self.rate_per_word_cycle * words as f64 * cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_never_strikes() {
        let mut faults = FaultProcess::disabled();
        let mut word = BitBuf::new(39);
        for _ in 0..100 {
            assert!(faults.expose(&mut word, 1_000_000, 0).is_empty());
        }
        assert_eq!(word.count_ones(), 0);
        assert_eq!(faults.strikes(), 0);
    }

    #[test]
    fn strike_rate_matches_poisson_mean() {
        let rate = 1e-4;
        let mut faults = FaultProcess::new(rate, UpsetModel::SingleBit, 7);
        let exposures = 20_000u64;
        let cycles = 100u64;
        let mut total = 0u64;
        for _ in 0..exposures {
            let mut word = BitBuf::new(39);
            total += faults.expose(&mut word, cycles, 0).len() as u64;
        }
        let expected = rate * cycles as f64 * exposures as f64; // = 200
        let observed = total as f64;
        assert!(
            (observed - expected).abs() < 0.25 * expected,
            "observed {observed}, expected {expected}"
        );
    }

    #[test]
    fn smu_model_produces_multi_bit_bursts() {
        let mut faults = FaultProcess::new(0.5, UpsetModel::smu_65nm(), 3);
        let mut widths = Vec::new();
        for _ in 0..500 {
            let mut word = BitBuf::new(64);
            for ev in faults.expose(&mut word, 1, 0) {
                widths.push(ev.width);
            }
        }
        assert!(widths.iter().any(|&w| w >= 2), "no multi-bit bursts seen");
        assert!(widths.iter().all(|&w| w <= 6));
        // Roughly 55% of strikes should be multi-bit.
        let multi = widths.iter().filter(|&&w| w >= 2).count() as f64;
        let frac = multi / widths.len() as f64;
        assert!((0.35..0.75).contains(&frac), "multi-bit fraction {frac}");
    }

    #[test]
    fn bursts_are_adjacent_and_in_range() {
        let mut faults = FaultProcess::new(0.9, UpsetModel::smu_65nm(), 11);
        for _ in 0..200 {
            let mut word = BitBuf::new(39);
            let before = word;
            let events = faults.expose(&mut word, 1, 5);
            for ev in &events {
                assert!(ev.first_bit + ev.width <= 39);
                assert_eq!(ev.cycle, 5);
            }
            if events.len() == 1 {
                // A single burst flips exactly `width` adjacent bits.
                assert_eq!(word.hamming_distance(&before) as usize, events[0].width);
            }
        }
    }

    #[test]
    fn expose_into_matches_expose_and_appends() {
        let mut a = FaultProcess::new(1e-2, UpsetModel::smu_65nm(), 21);
        let mut b = a.clone();
        let mut word_a = BitBuf::new(39);
        let mut word_b = BitBuf::new(39);
        let mut log = vec![FaultEvent {
            cycle: 0,
            first_bit: 0,
            width: 1,
        }];
        let mut total = 0usize;
        for round in 0..50u64 {
            let events = a.expose(&mut word_a, 1000, round);
            total += b.expose_into(&mut word_b, 1000, round, &mut log);
            assert_eq!(
                &log[log.len() - events.len()..],
                &events[..],
                "round {round}"
            );
        }
        assert_eq!(word_a, word_b);
        assert_eq!(log.len(), total + 1, "pre-existing entries must survive");
        assert!(total > 0, "aggressive rate produced no strikes");
    }

    #[test]
    fn deterministic_under_same_seed() {
        let run = |seed| {
            let mut faults = FaultProcess::new(1e-3, UpsetModel::smu_65nm(), seed);
            let mut word = BitBuf::new(39);
            for _ in 0..50 {
                faults.expose(&mut word, 1000, 0);
            }
            (*word.as_words(), faults.strikes())
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9).0, run(10).0);
    }

    #[test]
    fn reseed_restarts_the_stream() {
        let mut reseeded = FaultProcess::new(1e-2, UpsetModel::smu_65nm(), 1);
        let mut fresh = FaultProcess::new(1e-2, UpsetModel::smu_65nm(), 99);
        let mut scratch = BitBuf::new(39);
        reseeded.expose(&mut scratch, 100_000, 0);
        assert!(reseeded.strikes() > 0, "warm-up produced no strikes");
        reseeded.reseed(99);
        assert_eq!(reseeded.strikes(), 0, "reseed must reset statistics");
        let mut word_a = BitBuf::new(39);
        let mut word_b = BitBuf::new(39);
        for round in 0..50 {
            let a = reseeded.expose(&mut word_a, 1000, round);
            let b = fresh.expose(&mut word_b, 1000, round);
            assert_eq!(a, b, "round {round}");
        }
        assert_eq!(word_a, word_b);
    }

    #[test]
    fn expected_strikes_linear() {
        let faults = FaultProcess::new(1e-6, UpsetModel::SingleBit, 0);
        assert!((faults.expected_strikes(1000, 1000) - 1.0).abs() < 1e-9);
        assert!((faults.expected_strikes(0, 1000)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "fault rate")]
    fn rejects_invalid_rate() {
        let _ = FaultProcess::new(1.5, UpsetModel::SingleBit, 0);
    }
}
