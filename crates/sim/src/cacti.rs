//! Analytic SRAM area / energy / timing model (CACTI-6.5-style, 65 nm).
//!
//! The paper sizes its memories with CACTI 6.5 at 65 nm. CACTI itself is a
//! large C++ tool; what the optimization problem (Eqs. 4–5) and Fig. 4
//! actually consume are smooth, monotone curves of area, per-access energy,
//! leakage and access time versus capacity and word width. This module
//! provides those curves as closed-form fits anchored to published CACTI
//! 6.5 65 nm data points:
//!
//! * 6T cell area ≈ 0.525 µm²/bit at 65 nm;
//! * array efficiency (cell area / total area) ≈ 65–70 % for a 64 KB macro,
//!   dropping below 50 % for KB-scale buffers (periphery dominates);
//! * dynamic read energy for a 64 KB, 32-bit-word macro ≈ 45 pJ;
//! * access time ≈ 1–3 ns over the KB–64 KB range.
//!
//! Only the *shape* of these curves matters for reproducing the paper's
//! relative results; absolute joules are not claimed.

/// 6T SRAM cell area at 65 nm, µm² per bit.
const CELL_AREA_UM2_PER_BIT: f64 = 0.525;

/// Area of one 2-input-gate equivalent of synthesized logic at 65 nm, µm².
/// Used to cost the ECC encoder/decoder blocks attached to a macro.
pub const GATE_AREA_UM2: f64 = 1.6;

/// Leakage power per stored bit at 65 nm, µW.
const LEAKAGE_UW_PER_BIT: f64 = 0.0012;

/// Geometry and derived physical figures of one SRAM macro.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SramModel {
    words: usize,
    bits_per_word: usize,
}

impl SramModel {
    /// Describes a macro of `words` words of `bits_per_word` stored bits
    /// (check bits included).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(words: usize, bits_per_word: usize) -> Self {
        assert!(words > 0, "SRAM must have at least one word");
        assert!(bits_per_word > 0, "SRAM words must have at least one bit");
        Self {
            words,
            bits_per_word,
        }
    }

    /// Number of addressable words.
    #[must_use]
    pub fn words(&self) -> usize {
        self.words
    }

    /// Stored bits per word (payload + check bits).
    #[must_use]
    pub fn bits_per_word(&self) -> usize {
        self.bits_per_word
    }

    /// Total stored bits.
    #[must_use]
    pub fn total_bits(&self) -> f64 {
        (self.words * self.bits_per_word) as f64
    }

    /// Array efficiency: fraction of macro area occupied by cells.
    ///
    /// Saturates near 0.70 for large macros and falls towards 0.30 for
    /// small buffers where decoders/sense-amps dominate — the effect that
    /// makes a tiny L1′ proportionally more expensive per bit and shapes
    /// the feasible region of Fig. 4.
    #[must_use]
    pub fn array_efficiency(&self) -> f64 {
        let bits = self.total_bits();
        0.30 + 0.40 * bits / (bits + 20_000.0)
    }

    /// Macro area in µm² (cells / efficiency, i.e. periphery included).
    #[must_use]
    pub fn area_um2(&self) -> f64 {
        CELL_AREA_UM2_PER_BIT * self.total_bits() / self.array_efficiency()
    }

    /// Macro area in mm².
    #[must_use]
    pub fn area_mm2(&self) -> f64 {
        self.area_um2() / 1.0e6
    }

    /// Dynamic energy of one read access, pJ.
    ///
    /// Grows with the square root of capacity (bitline/wordline length) and
    /// linearly with the accessed word width.
    #[must_use]
    pub fn read_energy_pj(&self) -> f64 {
        let bits = self.total_bits();
        // Wider words burn proportionally more in the data path but the
        // decode/wordline share is width-independent.
        let width_factor = 0.6 + 0.4 * self.bits_per_word as f64 / 32.0;
        width_factor * (2.0 + 0.06 * bits.sqrt())
    }

    /// Dynamic energy of one write access, pJ (≈1.1× read in CACTI fits).
    #[must_use]
    pub fn write_energy_pj(&self) -> f64 {
        1.1 * self.read_energy_pj()
    }

    /// Total leakage power, µW.
    #[must_use]
    pub fn leakage_uw(&self) -> f64 {
        LEAKAGE_UW_PER_BIT * self.total_bits() / self.array_efficiency()
    }

    /// Random access time, ns.
    #[must_use]
    pub fn access_time_ns(&self) -> f64 {
        let bits = self.total_bits().max(1.0);
        0.45 + 0.22 * (bits / 1024.0).max(1.0).log2()
    }

    /// Access latency in CPU cycles at `clock_hz`.
    #[must_use]
    pub fn access_cycles(&self, clock_hz: f64) -> u64 {
        let cycle_ns = 1.0e9 / clock_hz;
        (self.access_time_ns() / cycle_ns).ceil().max(1.0) as u64
    }
}

/// Area of a block of synthesized logic, µm².
#[must_use]
pub fn logic_area_um2(gate_equivalents: u64) -> f64 {
    gate_equivalents as f64 * GATE_AREA_UM2
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l1_64kb() -> SramModel {
        SramModel::new(16 * 1024, 32)
    }

    #[test]
    fn l1_area_in_plausible_range() {
        // CACTI 6.5 reports roughly 0.3–0.8 mm² for a 64 KB 65 nm macro.
        let area = l1_64kb().area_mm2();
        assert!((0.2..1.0).contains(&area), "area = {area} mm2");
    }

    #[test]
    fn l1_read_energy_in_plausible_range() {
        let e = l1_64kb().read_energy_pj();
        assert!((20.0..80.0).contains(&e), "energy = {e} pJ");
    }

    #[test]
    fn efficiency_increases_with_capacity() {
        let small = SramModel::new(64, 32);
        let large = l1_64kb();
        assert!(small.array_efficiency() < large.array_efficiency());
        assert!(large.array_efficiency() < 0.70);
        assert!(small.array_efficiency() > 0.29);
    }

    #[test]
    fn area_monotone_in_words_and_width() {
        let base = SramModel::new(256, 39);
        assert!(SramModel::new(512, 39).area_um2() > base.area_um2());
        assert!(SramModel::new(256, 64).area_um2() > base.area_um2());
    }

    #[test]
    fn small_buffers_cost_more_per_bit() {
        let small = SramModel::new(32, 32);
        let large = l1_64kb();
        let per_bit_small = small.area_um2() / small.total_bits();
        let per_bit_large = large.area_um2() / large.total_bits();
        assert!(per_bit_small > 1.5 * per_bit_large);
    }

    #[test]
    fn energy_scales_with_word_width() {
        let narrow = SramModel::new(256, 32);
        let wide = SramModel::new(256, 176); // BCH t=18 word
        assert!(wide.read_energy_pj() > narrow.read_energy_pj());
        assert!(wide.write_energy_pj() > wide.read_energy_pj());
    }

    #[test]
    fn access_fits_one_cycle_at_200mhz() {
        // The LH7A400 runs its scratchpad single-cycle at 200 MHz.
        assert_eq!(l1_64kb().access_cycles(200.0e6), 1);
    }

    #[test]
    fn leakage_positive_and_monotone() {
        assert!(l1_64kb().leakage_uw() > SramModel::new(64, 32).leakage_uw());
    }

    #[test]
    #[should_panic(expected = "at least one word")]
    fn zero_words_panics() {
        let _ = SramModel::new(0, 32);
    }
}
