//! Cycle and energy accounting.
//!
//! MPARM's role in the paper is to report per-module energy and timing for
//! each run; [`EnergyLedger`] is our equivalent: every simulated action
//! posts cycles and picojoules against a [`Component`], and reports can be
//! diffed between mitigation schemes.

use std::collections::BTreeMap;

/// Architectural components that consume energy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Component {
    /// Processor core (active computation).
    Cpu,
    /// The vulnerable L1 scratchpad SRAM.
    L1,
    /// The protected checkpoint buffer L1′.
    L1Prime,
    /// ECC encode/decode logic attached to either memory.
    EccLogic,
    /// Checkpoint commit work (chunk copy control, status-register save).
    Checkpoint,
    /// Read-error-interrupt service routine.
    Isr,
    /// Leakage (integrated over elapsed time).
    Leakage,
}

impl Component {
    /// All components, in display order.
    pub const ALL: [Component; 7] = [
        Component::Cpu,
        Component::L1,
        Component::L1Prime,
        Component::EccLogic,
        Component::Checkpoint,
        Component::Isr,
        Component::Leakage,
    ];
}

impl std::fmt::Display for Component {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Component::Cpu => "cpu",
            Component::L1 => "l1",
            Component::L1Prime => "l1'",
            Component::EccLogic => "ecc",
            Component::Checkpoint => "checkpoint",
            Component::Isr => "isr",
            Component::Leakage => "leakage",
        };
        f.write_str(name)
    }
}

/// Accumulates energy (pJ) per component plus a global cycle counter.
///
/// # Examples
///
/// ```
/// use chunkpoint_sim::{Component, EnergyLedger};
///
/// let mut ledger = EnergyLedger::new();
/// ledger.add(Component::L1, 45.2);
/// ledger.add_cycles(3);
/// assert_eq!(ledger.cycles(), 3);
/// assert!((ledger.total_pj() - 45.2).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EnergyLedger {
    energy_pj: BTreeMap<Component, f64>,
    cycles: u64,
}

impl EnergyLedger {
    /// Creates an empty ledger.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Posts `pj` picojoules against `component`.
    ///
    /// # Panics
    ///
    /// Panics (debug) on negative or non-finite energy.
    pub fn add(&mut self, component: Component, pj: f64) {
        debug_assert!(pj.is_finite() && pj >= 0.0, "bad energy {pj}");
        *self.energy_pj.entry(component).or_insert(0.0) += pj;
    }

    /// Advances the global cycle counter.
    pub fn add_cycles(&mut self, cycles: u64) {
        self.cycles += cycles;
    }

    /// Elapsed cycles.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Energy charged to one component, pJ.
    #[must_use]
    pub fn component_pj(&self, component: Component) -> f64 {
        self.energy_pj.get(&component).copied().unwrap_or(0.0)
    }

    /// Total energy across all components, pJ.
    #[must_use]
    pub fn total_pj(&self) -> f64 {
        self.energy_pj.values().sum()
    }

    /// Total energy in µJ.
    #[must_use]
    pub fn total_uj(&self) -> f64 {
        self.total_pj() / 1.0e6
    }

    /// Folds another ledger into this one (cycles add up too).
    pub fn merge(&mut self, other: &EnergyLedger) {
        for (&component, &pj) in &other.energy_pj {
            self.add(component, pj);
        }
        self.cycles += other.cycles;
    }

    /// Charges integrated leakage for `cycles` cycles of a block leaking
    /// `leakage_uw` µW at `clock_hz`.
    pub fn add_leakage(&mut self, leakage_uw: f64, cycles: u64, clock_hz: f64) {
        // µW · s → pJ : 1 µW·s = 1e6 pJ.
        let seconds = cycles as f64 / clock_hz;
        self.add(Component::Leakage, leakage_uw * seconds * 1.0e6);
    }

    /// Per-component breakdown, in display order, skipping zero entries.
    #[must_use]
    pub fn breakdown(&self) -> Vec<(Component, f64)> {
        Component::ALL
            .iter()
            .filter_map(|&c| {
                let pj = self.component_pj(c);
                (pj > 0.0).then_some((c, pj))
            })
            .collect()
    }
}

impl std::fmt::Display for EnergyLedger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "cycles: {}", self.cycles)?;
        for (component, pj) in self.breakdown() {
            writeln!(f, "  {component:<10} {:12.1} pJ", pj)?;
        }
        write!(f, "  {:<10} {:12.1} pJ", "total", self.total_pj())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ledger_is_zero() {
        let ledger = EnergyLedger::new();
        assert_eq!(ledger.cycles(), 0);
        assert_eq!(ledger.total_pj(), 0.0);
        assert!(ledger.breakdown().is_empty());
    }

    #[test]
    fn accumulates_per_component() {
        let mut ledger = EnergyLedger::new();
        ledger.add(Component::L1, 10.0);
        ledger.add(Component::L1, 5.0);
        ledger.add(Component::Cpu, 1.0);
        assert!((ledger.component_pj(Component::L1) - 15.0).abs() < 1e-12);
        assert!((ledger.total_pj() - 16.0).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = EnergyLedger::new();
        a.add(Component::Cpu, 1.0);
        a.add_cycles(10);
        let mut b = EnergyLedger::new();
        b.add(Component::Cpu, 2.0);
        b.add(Component::Isr, 4.0);
        b.add_cycles(5);
        a.merge(&b);
        assert_eq!(a.cycles(), 15);
        assert!((a.component_pj(Component::Cpu) - 3.0).abs() < 1e-12);
        assert!((a.component_pj(Component::Isr) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn leakage_integration() {
        let mut ledger = EnergyLedger::new();
        // 1 µW for 200e6 cycles at 200 MHz = 1 µW·s = 1e6 pJ.
        ledger.add_leakage(1.0, 200_000_000, 200.0e6);
        assert!((ledger.component_pj(Component::Leakage) - 1.0e6).abs() < 1.0);
    }

    #[test]
    fn breakdown_is_ordered_and_sparse() {
        let mut ledger = EnergyLedger::new();
        ledger.add(Component::Isr, 1.0);
        ledger.add(Component::Cpu, 1.0);
        let components: Vec<Component> = ledger.breakdown().into_iter().map(|(c, _)| c).collect();
        assert_eq!(components, vec![Component::Cpu, Component::Isr]);
    }

    #[test]
    fn display_contains_total() {
        let mut ledger = EnergyLedger::new();
        ledger.add(Component::L1, 2.0);
        let text = ledger.to_string();
        assert!(text.contains("total"));
        assert!(text.contains("l1"));
    }
}
