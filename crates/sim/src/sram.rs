//! Bit-accurate SRAM array with lazy fault materialisation.
//!
//! Every word is stored as its full ECC codeword, so injected faults hit
//! real stored bits (data *or* check bits) and are only discovered — or
//! missed, for weak codes — when the word is next read, exactly like a
//! physical array. Fault exposure is materialised lazily at access time
//! from the elapsed cycles since the word was last written/read, which is
//! statistically identical to a per-cycle process but costs O(accesses).

use chunkpoint_ecc::{build_scheme, BitBuf, Decoded, EccKind, EccScheme};

use crate::cacti::SramModel;
use crate::fault::{FaultEvent, FaultProcess};

/// Access statistics for one array.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SramStats {
    /// Number of word reads.
    pub reads: u64,
    /// Number of word writes.
    pub writes: u64,
    /// Reads that returned corrected data.
    pub corrected_reads: u64,
    /// Reads that flagged an uncorrectable error.
    pub failed_reads: u64,
    /// Total bits corrected by the array's ECC.
    pub bits_corrected: u64,
    /// Strikes materialised into stored bits.
    pub strikes: u64,
}

/// A word-addressable SRAM protected by a configurable ECC scheme.
///
/// # Examples
///
/// ```
/// use chunkpoint_sim::{Sram, FaultProcess};
/// use chunkpoint_ecc::{EccKind, Decoded};
///
/// let mut mem = Sram::new("l1", 1024, EccKind::Secded, FaultProcess::disabled())?;
/// mem.write(5, 0xFEED_BEEF, 0);
/// assert_eq!(mem.read(5, 10), Decoded::Clean { data: 0xFEED_BEEF });
/// # Ok::<(), chunkpoint_ecc::BuildSchemeError>(())
/// ```
#[derive(Debug)]
pub struct Sram {
    name: String,
    kind: EccKind,
    scheme: Box<dyn EccScheme>,
    words: Vec<BitBuf>,
    /// Cycle at which each word's stored bits were last materialised.
    last_touch: Vec<u64>,
    faults: FaultProcess,
    stats: SramStats,
    event_log: Vec<FaultEvent>,
    /// Reusable decode scratch for [`Sram::read_block`].
    decode_scratch: Vec<Decoded>,
}

impl Sram {
    /// Creates an array of `words` words protected by `kind`, subject to
    /// `faults`.
    ///
    /// # Errors
    ///
    /// Propagates scheme construction failures.
    ///
    /// # Panics
    ///
    /// Panics if `words == 0`.
    pub fn new(
        name: impl Into<String>,
        words: usize,
        kind: EccKind,
        faults: FaultProcess,
    ) -> Result<Self, chunkpoint_ecc::BuildSchemeError> {
        assert!(words > 0, "SRAM needs at least one word");
        let scheme = build_scheme(kind)?;
        let blank = scheme.encode(0);
        Ok(Self {
            name: name.into(),
            kind,
            words: vec![blank; words],
            last_touch: vec![0; words],
            scheme,
            faults,
            stats: SramStats::default(),
            event_log: Vec::new(),
            decode_scratch: Vec::new(),
        })
    }

    /// Array name (for traces and reports).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Protection scheme in force.
    #[must_use]
    pub fn kind(&self) -> EccKind {
        self.kind
    }

    /// Number of addressable words.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the array has zero words (never true by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Stored bits per word, check bits included.
    #[must_use]
    pub fn bits_per_word(&self) -> usize {
        self.scheme.total_bits()
    }

    /// Physical model of this array for area/energy/timing queries.
    #[must_use]
    pub fn model(&self) -> SramModel {
        SramModel::new(self.len(), self.bits_per_word())
    }

    /// Access statistics so far.
    #[must_use]
    pub fn stats(&self) -> SramStats {
        self.stats
    }

    /// Fault events materialised so far.
    #[must_use]
    pub fn fault_log(&self) -> &[FaultEvent] {
        &self.event_log
    }

    /// Replaces the fault process (e.g. to disable faults for a golden run).
    pub fn set_faults(&mut self, faults: FaultProcess) {
        self.faults = faults;
    }

    fn expose(&mut self, addr: usize, now: u64) {
        let elapsed = now.saturating_sub(self.last_touch[addr]);
        if elapsed > 0 {
            // Strikes are pushed straight into the array's long-lived log:
            // the overwhelmingly common no-strike exposure allocates and
            // copies nothing.
            let strikes =
                self.faults
                    .expose_into(&mut self.words[addr], elapsed, now, &mut self.event_log);
            self.stats.strikes += strikes as u64;
        }
        self.last_touch[addr] = now;
    }

    /// Reads the word at `addr` at time `now`, materialising any faults
    /// accumulated since the last access and running the ECC decoder.
    ///
    /// Corrected data is also scrubbed back into the array (read-repair),
    /// as the paper's Fig. 2(a) flow implies for correctable reads.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn read(&mut self, addr: usize, now: u64) -> Decoded {
        assert!(addr < self.words.len(), "read past end of {}", self.name);
        self.expose(addr, now);
        self.stats.reads += 1;
        let outcome = self.scheme.decode(&self.words[addr]);
        match outcome {
            Decoded::Corrected {
                data,
                bits_corrected,
            } => {
                self.stats.corrected_reads += 1;
                self.stats.bits_corrected += u64::from(bits_corrected);
                self.words[addr] = self.scheme.encode(data);
            }
            Decoded::DetectedUncorrectable => {
                self.stats.failed_reads += 1;
            }
            Decoded::Clean { .. } => {}
        }
        outcome
    }

    /// Writes `value` at `addr` at time `now`, re-encoding the word (which
    /// clears any latent faults in it).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn write(&mut self, addr: usize, value: u32, now: u64) {
        assert!(addr < self.words.len(), "write past end of {}", self.name);
        self.words[addr] = self.scheme.encode(value);
        self.last_touch[addr] = now;
        self.stats.writes += 1;
    }

    /// Writes a contiguous block of words starting at `addr` at time
    /// `now`, encoding the whole block through one
    /// [`EccScheme::encode_block`] dispatch.
    ///
    /// # Panics
    ///
    /// Panics if the block exceeds the array.
    pub fn write_block(&mut self, addr: usize, values: &[u32], now: u64) {
        assert!(
            addr + values.len() <= self.words.len(),
            "block write past end of {}",
            self.name
        );
        self.scheme
            .encode_block(values, &mut self.words[addr..addr + values.len()]);
        for touch in &mut self.last_touch[addr..addr + values.len()] {
            *touch = now;
        }
        self.stats.writes += values.len() as u64;
    }

    /// Reads `count` contiguous words starting at `addr` at time `now`:
    /// materialises accumulated faults, decodes the whole block through
    /// one [`EccScheme::decode_block`] dispatch, applies read-repair to
    /// corrected words, and appends the payloads to `sink`.
    ///
    /// The entire block is read (and charged to statistics) even when a
    /// word fails — the model is a burst transfer, not a word loop.
    /// Returns the offset of the first uncorrectable word, if any.
    ///
    /// # Errors
    ///
    /// Returns `Err(offset)` when word `addr + offset` was
    /// detected-uncorrectable; `sink` then contains the payloads of the
    /// words before it (failed or later words contribute nothing).
    ///
    /// # Panics
    ///
    /// Panics if the block exceeds the array.
    pub fn read_block(
        &mut self,
        addr: usize,
        count: usize,
        now: u64,
        sink: &mut Vec<u32>,
    ) -> Result<(), usize> {
        assert!(
            addr + count <= self.words.len(),
            "block read past end of {}",
            self.name
        );
        for i in addr..addr + count {
            self.expose(i, now);
        }
        self.stats.reads += count as u64;
        let mut scratch = std::mem::take(&mut self.decode_scratch);
        scratch.clear();
        scratch.resize(count, Decoded::Clean { data: 0 });
        self.scheme
            .decode_block(&self.words[addr..addr + count], &mut scratch);
        let mut failed: Option<usize> = None;
        for (offset, outcome) in scratch.iter().enumerate() {
            match *outcome {
                Decoded::Clean { data } => {
                    if failed.is_none() {
                        sink.push(data);
                    }
                }
                Decoded::Corrected {
                    data,
                    bits_corrected,
                } => {
                    self.stats.corrected_reads += 1;
                    self.stats.bits_corrected += u64::from(bits_corrected);
                    self.words[addr + offset] = self.scheme.encode(data);
                    if failed.is_none() {
                        sink.push(data);
                    }
                }
                Decoded::DetectedUncorrectable => {
                    self.stats.failed_reads += 1;
                    failed.get_or_insert(offset);
                }
            }
        }
        self.decode_scratch = scratch;
        match failed {
            None => Ok(()),
            Some(offset) => Err(offset),
        }
    }

    /// Returns the decoded payload without materialising faults, running
    /// ECC, or touching statistics — a debugging/verification backdoor
    /// equivalent to a simulator's memory dump.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    #[must_use]
    pub fn peek(&self, addr: usize) -> u32 {
        assert!(addr < self.words.len(), "peek past end of {}", self.name);
        let r = self.scheme.check_bits();
        // Payload location depends on the scheme's layout; NoCode/Parity/
        // SECDED keep data in the low bits, BCH keeps it above the parity.
        match self.kind {
            EccKind::Bch { .. } => self.words[addr].extract_u32(r),
            EccKind::InterleavedSecded { .. } => match self.scheme.decode(&self.words[addr]) {
                Decoded::Clean { data } | Decoded::Corrected { data, .. } => data,
                Decoded::DetectedUncorrectable => 0,
            },
            _ => self.words[addr].extract_u32(0),
        }
    }

    /// Forcibly flips `width` adjacent stored bits of `addr` starting at
    /// `first_bit` — deterministic fault injection for tests.
    ///
    /// # Panics
    ///
    /// Panics if the burst exceeds the stored word.
    pub fn inject(&mut self, addr: usize, first_bit: usize, width: usize) {
        assert!(addr < self.words.len(), "inject past end of {}", self.name);
        let word = &mut self.words[addr];
        assert!(first_bit + width <= word.len(), "burst exceeds stored word");
        for bit in first_bit..first_bit + width {
            word.flip(bit);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::UpsetModel;

    fn quiet(words: usize, kind: EccKind) -> Sram {
        Sram::new("test", words, kind, FaultProcess::disabled()).unwrap()
    }

    #[test]
    fn write_read_roundtrip_all_kinds() {
        for kind in EccKind::catalog() {
            let mut mem = quiet(16, kind);
            mem.write(3, 0xABCD_0123, 0);
            assert_eq!(
                mem.read(3, 100),
                Decoded::Clean { data: 0xABCD_0123 },
                "{kind}"
            );
            assert_eq!(mem.peek(3), 0xABCD_0123, "{kind}");
        }
    }

    #[test]
    fn initial_contents_are_zero() {
        let mut mem = quiet(8, EccKind::Secded);
        assert_eq!(mem.read(0, 0), Decoded::Clean { data: 0 });
    }

    #[test]
    fn injected_single_bit_corrected_by_secded() {
        let mut mem = quiet(8, EccKind::Secded);
        mem.write(1, 0xFFFF_0000, 0);
        mem.inject(1, 5, 1);
        assert_eq!(
            mem.read(1, 1),
            Decoded::Corrected {
                data: 0xFFFF_0000,
                bits_corrected: 1
            }
        );
        // Read-repair scrubbed the word: next read is clean.
        assert_eq!(mem.read(1, 2), Decoded::Clean { data: 0xFFFF_0000 });
        assert_eq!(mem.stats().corrected_reads, 1);
    }

    #[test]
    fn injected_double_bit_detected_by_secded() {
        let mut mem = quiet(8, EccKind::Secded);
        mem.write(1, 0xFFFF_0000, 0);
        mem.inject(1, 5, 2);
        assert_eq!(mem.read(1, 1), Decoded::DetectedUncorrectable);
        assert_eq!(mem.stats().failed_reads, 1);
    }

    #[test]
    fn write_clears_latent_faults() {
        let mut mem = quiet(8, EccKind::Parity);
        mem.write(0, 7, 0);
        mem.inject(0, 2, 1);
        mem.write(0, 9, 1);
        assert_eq!(mem.read(0, 2), Decoded::Clean { data: 9 });
    }

    #[test]
    fn faults_materialise_with_exposure() {
        let faults = FaultProcess::new(1e-3, UpsetModel::smu_65nm(), 99);
        let mut mem = Sram::new("faulty", 4, EccKind::Bch { t: 6 }, faults).unwrap();
        mem.write(0, 0x1234_5678, 0);
        // 1e6 cycles at 1e-3/word/cycle ≈ 1000 strikes; BCH-6 will fail
        // eventually, but every decode outcome must be accounted.
        let mut seen_strike = false;
        for i in 1..=50u64 {
            let _ = mem.read(0, i * 20_000);
            if mem.stats().strikes > 0 {
                seen_strike = true;
                break;
            }
        }
        assert!(seen_strike, "no strike materialised in 1e6 cycles");
        assert!(!mem.fault_log().is_empty());
    }

    #[test]
    fn stats_count_reads_and_writes() {
        let mut mem = quiet(8, EccKind::None);
        mem.write(0, 1, 0);
        mem.write(1, 2, 0);
        let _ = mem.read(0, 1);
        let stats = mem.stats();
        assert_eq!(stats.writes, 2);
        assert_eq!(stats.reads, 1);
    }

    #[test]
    fn block_write_read_roundtrip_all_kinds() {
        for kind in EccKind::catalog() {
            let mut mem = quiet(32, kind);
            let values: Vec<u32> = (0..16u32).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
            mem.write_block(4, &values, 0);
            let mut sink = Vec::new();
            mem.read_block(4, 16, 10, &mut sink).unwrap();
            assert_eq!(sink, values, "{kind}");
            assert_eq!(mem.stats().reads, 16, "{kind}");
            assert_eq!(mem.stats().writes, 16, "{kind}");
        }
    }

    #[test]
    fn block_read_repairs_and_reports_first_failure() {
        let mut mem = quiet(8, EccKind::Secded);
        mem.write_block(0, &[1, 2, 3, 4], 0);
        mem.inject(1, 3, 1); // correctable
        mem.inject(3, 5, 2); // uncorrectable
        let mut sink = Vec::new();
        assert_eq!(mem.read_block(0, 4, 1, &mut sink), Err(3));
        assert_eq!(sink, vec![1, 2, 3], "payloads before the failure");
        assert_eq!(mem.stats().corrected_reads, 1);
        assert_eq!(mem.stats().failed_reads, 1);
        // Read-repair scrubbed word 1: a fresh block read is clean.
        sink.clear();
        mem.write(3, 4, 2);
        mem.read_block(0, 4, 3, &mut sink).unwrap();
        assert_eq!(sink, vec![1, 2, 3, 4]);
        assert_eq!(mem.stats().corrected_reads, 1, "no second correction");
    }

    #[test]
    fn model_reflects_geometry() {
        let mem = quiet(256, EccKind::Secded);
        assert_eq!(mem.model().bits_per_word(), 39);
        assert_eq!(mem.model().words(), 256);
    }

    #[test]
    #[should_panic(expected = "past end")]
    fn out_of_range_read_panics() {
        let mut mem = quiet(4, EccKind::None);
        let _ = mem.read(4, 0);
    }
}
