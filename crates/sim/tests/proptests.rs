//! Property-based tests of the simulator substrate.

use proptest::prelude::*;

use chunkpoint_ecc::EccKind;
use chunkpoint_sim::{
    Component, EnergyLedger, FaultProcess, MemoryBus, PlainBus, Platform, Sram, SramModel,
    UpsetModel,
};

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    /// Area, energy and leakage are monotone in both geometry axes.
    #[test]
    fn sram_model_monotonicity(
        words in 8usize..4096,
        bits in 32usize..128,
        d_words in 1usize..512,
        d_bits in 1usize..64,
    ) {
        let a = SramModel::new(words, bits);
        let b = SramModel::new(words + d_words, bits + d_bits);
        prop_assert!(b.area_um2() > a.area_um2());
        prop_assert!(b.read_energy_pj() > a.read_energy_pj());
        prop_assert!(b.leakage_uw() > a.leakage_uw());
        prop_assert!(b.access_time_ns() >= a.access_time_ns());
    }

    /// Writes always clear latent faults; a read immediately after a
    /// write returns the written value, under any protection scheme.
    #[test]
    fn write_then_read_is_clean(
        value: u32,
        addr in 0usize..64,
        kind_idx in 0usize..28,
        seed: u64,
    ) {
        let kinds = EccKind::catalog();
        let kind = kinds[kind_idx % kinds.len()];
        let faults = FaultProcess::new(1e-3, UpsetModel::smu_65nm(), seed);
        let mut mem = Sram::new("t", 64, kind, faults).unwrap();
        // Let faults accumulate somewhere first.
        let _ = mem.read(addr, 100_000);
        mem.write(addr, value, 200_000);
        // Same-cycle read: zero exposure, must be clean.
        prop_assert_eq!(
            mem.read(addr, 200_000),
            chunkpoint_ecc::Decoded::Clean { data: value }
        );
    }

    /// The ledger's total is always the sum of the component breakdown,
    /// and merging is additive.
    #[test]
    fn ledger_accounting_consistent(
        charges in proptest::collection::vec((0usize..7, 0.0f64..1e6), 1..40),
    ) {
        let components = Component::ALL;
        let mut a = EnergyLedger::new();
        let mut b = EnergyLedger::new();
        for (i, &(c, pj)) in charges.iter().enumerate() {
            if i % 2 == 0 {
                a.add(components[c], pj);
            } else {
                b.add(components[c], pj);
            }
        }
        let breakdown_sum: f64 = a.breakdown().iter().map(|&(_, pj)| pj).sum();
        prop_assert!((a.total_pj() - breakdown_sum).abs() < 1e-6);
        let total = a.total_pj() + b.total_pj();
        a.merge(&b);
        prop_assert!((a.total_pj() - total).abs() < 1e-6);
    }

    /// Bus time never goes backwards and energy never decreases.
    #[test]
    fn bus_time_and_energy_monotone(
        ops in proptest::collection::vec((0u8..3, any::<u32>(), 0u32..128), 1..60),
    ) {
        let sram = Sram::new("l1", 128, EccKind::Secded, FaultProcess::disabled()).unwrap();
        let mut bus = PlainBus::new(sram, Platform::lh7a400(), Component::L1);
        let mut last_now = 0;
        let mut last_energy = 0.0;
        for &(op, value, addr) in &ops {
            match op {
                0 => bus.store(addr, value),
                1 => { let _ = bus.load(addr); }
                _ => bus.tick(u64::from(value % 1000)),
            }
            prop_assert!(bus.now() >= last_now);
            prop_assert!(bus.ledger().total_pj() >= last_energy);
            last_now = bus.now();
            last_energy = bus.ledger().total_pj();
        }
    }

    /// Fault strikes scale linearly with exposure (statistically).
    #[test]
    fn exposure_scaling(seed in 0u64..10_000) {
        let mut faults = FaultProcess::new(1e-4, UpsetModel::SingleBit, seed);
        let mut short_strikes = 0u64;
        let mut long_strikes = 0u64;
        for _ in 0..200 {
            let mut w = chunkpoint_ecc::BitBuf::new(39);
            short_strikes += faults.expose(&mut w, 100, 0).len() as u64;
            let mut w = chunkpoint_ecc::BitBuf::new(39);
            long_strikes += faults.expose(&mut w, 1000, 0).len() as u64;
        }
        // 10x the exposure -> more strikes (statistically robust at these
        // counts: E[short] = 2, E[long] = 20).
        prop_assert!(long_strikes >= short_strikes);
    }
}
