//! Prometheus-style text exposition: rendering a [`MetricsRegistry`]
//! into the `text/plain; version=0.0.4` scrape format, and a parser for
//! that format so tests (and the `ci.sh` smoke) can do genuine
//! scrape-parse round trips instead of string-grepping.
//!
//! Rendering is deterministic: families appear in registration order,
//! series within a family in registration order, and floats use Rust's
//! shortest-roundtrip formatting — two scrapes of an idle registry are
//! byte-identical.

use crate::registry::{Instrument, MetricsRegistry};

/// Formats a float the way the exposition format expects: shortest
/// roundtrip for finite values, `+Inf` / `-Inf` / `NaN` otherwise.
fn format_value(value: f64) -> String {
    if value.is_nan() {
        "NaN".to_owned()
    } else if value.is_infinite() {
        if value > 0.0 { "+Inf" } else { "-Inf" }.to_owned()
    } else {
        format!("{value}")
    }
}

/// Escapes a label value: backslash, double quote, and newline get
/// backslash escapes (the only three the format defines).
fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn write_labels(out: &mut String, labels: &[(String, String)], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (key, value) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(key);
        out.push_str("=\"");
        out.push_str(&escape_label_value(value));
        out.push('"');
    }
    if let Some((key, value)) = extra {
        if !first {
            out.push(',');
        }
        out.push_str(key);
        out.push_str("=\"");
        out.push_str(&escape_label_value(value));
        out.push('"');
    }
    out.push('}');
}

/// Renders every series in `registry` as Prometheus exposition text.
#[must_use]
pub fn render_text(registry: &MetricsRegistry) -> String {
    let mut out = String::new();
    let mut announced: Vec<String> = Vec::new();
    registry.each_series(|series| {
        if !announced.iter().any(|n| n == &series.name) {
            announced.push(series.name.clone());
            let kind = match series.instrument {
                Instrument::Counter(_) => "counter",
                Instrument::Gauge(_) => "gauge",
                Instrument::Histogram(_) => "histogram",
            };
            out.push_str(&format!("# HELP {} {}\n", series.name, series.help));
            out.push_str(&format!("# TYPE {} {}\n", series.name, kind));
        }
        match &series.instrument {
            Instrument::Counter(counter) => {
                out.push_str(&series.name);
                write_labels(&mut out, &series.labels, None);
                out.push_str(&format!(" {}\n", counter.get()));
            }
            Instrument::Gauge(gauge) => {
                out.push_str(&series.name);
                write_labels(&mut out, &series.labels, None);
                out.push_str(&format!(" {}\n", gauge.get()));
            }
            Instrument::Histogram(histogram) => {
                let cumulative = histogram.cumulative();
                for (i, count) in cumulative.iter().enumerate() {
                    let le = match histogram.bounds().get(i) {
                        Some(bound) => format_value(*bound),
                        None => "+Inf".to_owned(),
                    };
                    out.push_str(&format!("{}_bucket", series.name));
                    write_labels(&mut out, &series.labels, Some(("le", &le)));
                    out.push_str(&format!(" {count}\n"));
                }
                out.push_str(&format!("{}_sum", series.name));
                write_labels(&mut out, &series.labels, None);
                out.push_str(&format!(" {}\n", format_value(histogram.sum())));
                out.push_str(&format!("{}_count", series.name));
                write_labels(&mut out, &series.labels, None);
                out.push_str(&format!(" {}\n", histogram.count()));
            }
        }
    });
    out
}

/// One parsed sample line: `name{labels} value`.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (for histograms, includes the `_bucket`/`_sum`/
    /// `_count` suffix — the parser does not reassemble families).
    pub name: String,
    /// Label pairs in the order they appeared.
    pub labels: Vec<(String, String)>,
    /// The sample value (`+Inf`/`-Inf`/`NaN` parse to the f64 specials).
    pub value: f64,
}

/// A parsed scrape: every sample line of an exposition document.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Scrape {
    /// All samples, in document order.
    pub samples: Vec<Sample>,
}

impl Scrape {
    /// Parses exposition text into samples, skipping comments and blank
    /// lines.
    ///
    /// # Errors
    ///
    /// Returns a description naming the offending line when a sample
    /// line does not follow the `name{labels} value` grammar.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut samples = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            samples.push(
                parse_sample(line).map_err(|e| format!("line {}: {e}: {line:?}", lineno + 1))?,
            );
        }
        Ok(Self { samples })
    }

    /// Looks up a sample by exact name and label set (order-insensitive
    /// on labels).
    #[must_use]
    pub fn value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| {
                s.name == name
                    && s.labels.len() == labels.len()
                    && labels
                        .iter()
                        .all(|(k, v)| s.labels.iter().any(|(sk, sv)| sk == k && sv == v))
            })
            .map(|s| s.value)
    }

    /// Sum of every sample of `name` across label sets — handy for
    /// "total requests regardless of endpoint" assertions.
    #[must_use]
    pub fn total(&self, name: &str) -> f64 {
        self.samples
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.value)
            .sum()
    }
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let bytes = line.as_bytes();
    let mut pos = 0;
    while pos < bytes.len()
        && (bytes[pos].is_ascii_alphanumeric() || bytes[pos] == b'_' || bytes[pos] == b':')
    {
        pos += 1;
    }
    if pos == 0 {
        return Err("missing metric name".to_owned());
    }
    let name = line[..pos].to_owned();
    let mut labels = Vec::new();
    if bytes.get(pos) == Some(&b'{') {
        pos += 1;
        loop {
            if bytes.get(pos) == Some(&b'}') {
                pos += 1;
                break;
            }
            let key_start = pos;
            while pos < bytes.len() && (bytes[pos].is_ascii_alphanumeric() || bytes[pos] == b'_') {
                pos += 1;
            }
            if pos == key_start {
                return Err("missing label name".to_owned());
            }
            let key = line[key_start..pos].to_owned();
            if bytes.get(pos) != Some(&b'=') || bytes.get(pos + 1) != Some(&b'"') {
                return Err("expected =\" after label name".to_owned());
            }
            pos += 2;
            let mut value = String::new();
            loop {
                match bytes.get(pos) {
                    None => return Err("unterminated label value".to_owned()),
                    Some(b'"') => {
                        pos += 1;
                        break;
                    }
                    Some(b'\\') => {
                        match bytes.get(pos + 1) {
                            Some(b'\\') => value.push('\\'),
                            Some(b'"') => value.push('"'),
                            Some(b'n') => value.push('\n'),
                            _ => return Err("invalid escape in label value".to_owned()),
                        }
                        pos += 2;
                    }
                    Some(_) => {
                        // Advance one UTF-8 code point.
                        let rest = &line[pos..];
                        let c = rest.chars().next().expect("non-empty");
                        value.push(c);
                        pos += c.len_utf8();
                    }
                }
            }
            labels.push((key, value));
            match bytes.get(pos) {
                Some(b',') => pos += 1,
                Some(b'}') => {}
                _ => return Err("expected ',' or '}' after label".to_owned()),
            }
        }
    }
    let rest = line[pos..].trim();
    if rest.is_empty() {
        return Err("missing sample value".to_owned());
    }
    // A timestamp may trail the value; keep only the first token.
    let value_token = rest.split_ascii_whitespace().next().expect("non-empty");
    let value = match value_token {
        "+Inf" | "Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        token => token
            .parse::<f64>()
            .map_err(|_| format!("invalid sample value {token:?}"))?,
    };
    Ok(Sample {
        name,
        labels,
        value,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_counters_gauges_and_histograms() {
        let registry = MetricsRegistry::new();
        let c = registry.counter_with("req_total", &[("endpoint", "healthz")], "requests served");
        c.add(3);
        let g = registry.gauge("depth", "queue depth");
        g.set(-2);
        let h = registry.histogram("lat_seconds", &[0.5, 1.0], "latency");
        h.observe(0.25);
        h.observe(2.0);
        let text = render_text(&registry);
        assert_eq!(
            text,
            "# HELP req_total requests served\n\
             # TYPE req_total counter\n\
             req_total{endpoint=\"healthz\"} 3\n\
             # HELP depth queue depth\n\
             # TYPE depth gauge\n\
             depth -2\n\
             # HELP lat_seconds latency\n\
             # TYPE lat_seconds histogram\n\
             lat_seconds_bucket{le=\"0.5\"} 1\n\
             lat_seconds_bucket{le=\"1\"} 1\n\
             lat_seconds_bucket{le=\"+Inf\"} 2\n\
             lat_seconds_sum 2.25\n\
             lat_seconds_count 2\n"
        );
    }

    #[test]
    fn help_and_type_appear_once_per_family() {
        let registry = MetricsRegistry::new();
        registry
            .counter_with("req_total", &[("endpoint", "a")], "requests")
            .inc();
        registry
            .counter_with("req_total", &[("endpoint", "b")], "requests")
            .inc();
        let text = render_text(&registry);
        assert_eq!(text.matches("# HELP req_total").count(), 1);
        assert_eq!(text.matches("# TYPE req_total").count(), 1);
        assert_eq!(text.matches("req_total{").count(), 2);
    }

    #[test]
    fn label_values_escape_and_round_trip() {
        let registry = MetricsRegistry::new();
        let tricky = "a\\b\"c\nd";
        registry
            .counter_with("odd_total", &[("path", tricky)], "odd")
            .add(7);
        let text = render_text(&registry);
        assert!(text.contains(r#"odd_total{path="a\\b\"c\nd"} 7"#));
        let scrape = Scrape::parse(&text).expect("parse back");
        assert_eq!(scrape.value("odd_total", &[("path", tricky)]), Some(7.0));
    }

    #[test]
    fn full_render_parse_round_trip() {
        let registry = MetricsRegistry::new();
        registry.counter("jobs_total", "jobs").add(11);
        registry.gauge("depth", "depth").set(4);
        let h = registry.histogram("wall_seconds", &[0.0, 1.5, 30.0], "wall");
        h.observe(0.0);
        h.observe(1.5);
        h.observe(31.0);
        let scrape = Scrape::parse(&render_text(&registry)).expect("parse");
        assert_eq!(scrape.value("jobs_total", &[]), Some(11.0));
        assert_eq!(scrape.value("depth", &[]), Some(4.0));
        assert_eq!(
            scrape.value("wall_seconds_bucket", &[("le", "0")]),
            Some(1.0)
        );
        assert_eq!(
            scrape.value("wall_seconds_bucket", &[("le", "1.5")]),
            Some(2.0)
        );
        assert_eq!(
            scrape.value("wall_seconds_bucket", &[("le", "+Inf")]),
            Some(3.0)
        );
        assert_eq!(scrape.value("wall_seconds_count", &[]), Some(3.0));
        assert_eq!(scrape.value("wall_seconds_sum", &[]), Some(32.5));
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        for bad in [
            "{no_name=\"x\"} 1",
            "name{unterminated=\"x} 1",
            "name{k=\"v\"",
            "name",
            "name notanumber",
            "name{k=\"v\" extra} 2",
        ] {
            assert!(Scrape::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parser_handles_specials_and_timestamps() {
        let scrape = Scrape::parse("a 1e3 1700000000\nb +Inf\nc NaN\n").expect("parse");
        assert_eq!(scrape.value("a", &[]), Some(1000.0));
        assert_eq!(scrape.value("b", &[]), Some(f64::INFINITY));
        assert!(scrape.value("c", &[]).expect("c").is_nan());
    }
}
