//! # chunkpoint-telemetry
//!
//! The workspace's observability layer, std-only like everything else:
//!
//! * **Metrics** — a process-wide [`MetricsRegistry`] of atomic
//!   [`Counter`]s, [`Gauge`]s, and fixed-bucket [`Histogram`]s
//!   ([`registry`]). Registration takes a lock once; the handles are
//!   lock-free, so request handlers and pool workers record for the
//!   cost of an atomic add.
//! * **Exposition** — [`render_text`] serializes a registry in the
//!   Prometheus text scrape format, and [`Scrape`] parses it back, so
//!   the `GET /metrics` endpoint and its tests speak the same grammar
//!   ([`expose`]).
//! * **Tracing** — [`Tracer`] / [`Span`] write structured JSON-line
//!   span and event records with *deterministic* span ids (derived via
//!   the campaign engine's SplitMix64 finalizer, never from time), so a
//!   fixed workload reproduces its span tree exactly ([`trace`]).
//! * **Engine adapter** — [`install_campaign_metrics`] plugs the
//!   campaign engine's dependency-free `TelemetrySink` seam into the
//!   global registry ([`campaign_sink`]).
//!
//! Everything here is strictly out-of-band: canonical campaign report
//! bytes are identical with telemetry live or absent — the parity
//! suites run with a live registry and prove it.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod campaign_sink;
pub mod expose;
pub mod registry;
pub mod trace;

pub use campaign_sink::{
    install_campaign_metrics, install_campaign_metrics_traced, RegistrySink, SCENARIO_WALL_BUCKETS,
};
pub use expose::{render_text, Sample, Scrape};
pub use registry::{Counter, Gauge, Histogram, MetricsRegistry, LATENCY_BUCKETS};
pub use trace::{derive_span_id, Span, Tracer};

use std::sync::OnceLock;

static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();

/// The process-wide registry every instrumented layer records into and
/// `GET /metrics` renders from.
#[must_use]
pub fn global() -> &'static MetricsRegistry {
    GLOBAL.get_or_init(MetricsRegistry::new)
}
