//! The metrics registry: named, labelled series of atomic counters,
//! gauges, and fixed-bucket histograms.
//!
//! Registration (name + label set → handle) takes a mutex once; the
//! handles it returns are `Arc`s over plain atomics, so the *hot path*
//! — `inc`, `add`, `set`, `observe` — is lock-free and safe to call
//! from request handlers, pool workers, and dispatch loops. Registering
//! the same `(name, labels)` twice returns the same underlying series,
//! which is what lets independently-initialized layers (the server, the
//! job manager, a coordinator embedded in the same process) share one
//! registry without coordinating.
//!
//! Telemetry is strictly out-of-band: nothing in this module feeds back
//! into campaign execution, so canonical report bytes are identical
//! with a live registry or none at all.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, value: i64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram over `f64` observations.
///
/// Bucket upper bounds are chosen at registration and never change; an
/// implicit `+Inf` bucket catches everything above the last bound.
/// `observe` is lock-free: one `fetch_add` on the bucket, one on the
/// count, and a CAS loop folding the observation into the bit-packed
/// `f64` sum.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// One slot per bound plus the `+Inf` overflow slot.
    buckets: Vec<AtomicU64>,
    /// `f64` bits of the running sum (CAS-updated).
    sum_bits: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing: {bounds:?}"
        );
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite (+Inf is implicit): {bounds:?}"
        );
        Self {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            count: AtomicU64::new(0),
        }
    }

    /// Records one observation. Non-finite values land in the `+Inf`
    /// bucket and are excluded from the sum (a single `NaN` must not
    /// poison the series).
    pub fn observe(&self, value: f64) {
        let slot = if value.is_finite() {
            self.bounds
                .iter()
                .position(|&bound| value <= bound)
                .unwrap_or(self.bounds.len())
        } else {
            self.bounds.len()
        };
        self.buckets[slot].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        if value.is_finite() {
            let mut current = self.sum_bits.load(Ordering::Relaxed);
            loop {
                let next = (f64::from_bits(current) + value).to_bits();
                match self.sum_bits.compare_exchange_weak(
                    current,
                    next,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(seen) => current = seen,
                }
            }
        }
    }

    /// The bucket upper bounds (the implicit `+Inf` not included).
    #[must_use]
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// **Cumulative** per-bucket counts in bound order, ending with the
    /// `+Inf` bucket (which always equals [`Histogram::count`]) — the
    /// shape Prometheus `_bucket{le=...}` samples carry.
    #[must_use]
    pub fn cumulative(&self) -> Vec<u64> {
        let mut total = 0u64;
        self.buckets
            .iter()
            .map(|bucket| {
                total += bucket.load(Ordering::Relaxed);
                total
            })
            .collect()
    }

    /// Sum of all finite observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }
}

/// Request-latency bucket bounds (seconds) shared by the service's
/// per-endpoint histograms: sub-millisecond cache hits up through
/// multi-second campaign submissions.
pub const LATENCY_BUCKETS: [f64; 11] = [
    0.000_25, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.1, 0.25, 1.0, 2.5, 10.0,
];

/// One registered series: a metric name, its label pairs, and the
/// instrument behind it.
#[derive(Debug)]
pub(crate) struct Series {
    pub(crate) name: String,
    pub(crate) help: String,
    pub(crate) labels: Vec<(String, String)>,
    pub(crate) instrument: Instrument,
}

#[derive(Debug)]
pub(crate) enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Instrument {
    fn kind(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

/// A set of named, labelled metric series. One process-wide instance
/// lives behind [`crate::global`]; tests build private ones.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    series: Mutex<Vec<Series>>,
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().enumerate().all(|(i, c)| {
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
        })
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or re-fetches) an unlabelled counter.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, &[], help)
    }

    /// Registers (or re-fetches) a labelled counter. The same
    /// `(name, labels)` always answers the same underlying series.
    ///
    /// # Panics
    ///
    /// Panics on an invalid metric name or on a kind clash with an
    /// existing series of the same name (programmer errors).
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Arc<Counter> {
        match self.register(name, labels, help, || {
            Instrument::Counter(Arc::new(Counter::default()))
        }) {
            Instrument::Counter(counter) => counter,
            other => panic!("{name} is a {}, not a counter", other.kind()),
        }
    }

    /// Registers (or re-fetches) an unlabelled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[], help)
    }

    /// Registers (or re-fetches) a labelled gauge.
    ///
    /// # Panics
    ///
    /// Panics on an invalid metric name or a kind clash.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Arc<Gauge> {
        match self.register(name, labels, help, || {
            Instrument::Gauge(Arc::new(Gauge::default()))
        }) {
            Instrument::Gauge(gauge) => gauge,
            other => panic!("{name} is a {}, not a gauge", other.kind()),
        }
    }

    /// Registers (or re-fetches) an unlabelled histogram over `bounds`.
    pub fn histogram(&self, name: &str, bounds: &[f64], help: &str) -> Arc<Histogram> {
        self.histogram_with(name, &[], bounds, help)
    }

    /// Registers (or re-fetches) a labelled histogram over `bounds`
    /// (strictly increasing, finite; `+Inf` is implicit). A re-fetch
    /// keeps the original bounds — series never change shape.
    ///
    /// # Panics
    ///
    /// Panics on an invalid metric name, invalid bounds, or a kind
    /// clash.
    pub fn histogram_with(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
        help: &str,
    ) -> Arc<Histogram> {
        match self.register(name, labels, help, || {
            Instrument::Histogram(Arc::new(Histogram::new(bounds)))
        }) {
            Instrument::Histogram(histogram) => histogram,
            other => panic!("{name} is a {}, not a histogram", other.kind()),
        }
    }

    fn register(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
        build: impl FnOnce() -> Instrument,
    ) -> Instrument {
        assert!(valid_name(name), "invalid metric name {name:?}");
        for (key, _) in labels {
            assert!(valid_name(key), "invalid label name {key:?} on {name}");
        }
        let mut series = self.series.lock().expect("registry poisoned");
        if let Some(existing) = series
            .iter()
            .find(|s| s.name == name && matches_labels(&s.labels, labels))
        {
            return clone_instrument(&existing.instrument);
        }
        if let Some(family) = series.iter().find(|s| s.name == name) {
            let family_kind = family.instrument.kind();
            let family_help = family.help.clone();
            let incoming = build();
            assert!(
                family_kind == incoming.kind(),
                "metric {name} registered as both {family_kind} and {}",
                incoming.kind()
            );
            let handle = clone_instrument(&incoming);
            series.push(Series {
                name: name.to_owned(),
                help: family_help,
                labels: own_labels(labels),
                instrument: incoming,
            });
            return handle;
        }
        let instrument = build();
        let handle = clone_instrument(&instrument);
        series.push(Series {
            name: name.to_owned(),
            help: help.to_owned(),
            labels: own_labels(labels),
            instrument,
        });
        handle
    }

    /// Runs `f` over every registered series, in registration order —
    /// the seam the exposition renderer reads through.
    pub(crate) fn each_series(&self, mut f: impl FnMut(&Series)) {
        let series = self.series.lock().expect("registry poisoned");
        for s in series.iter() {
            f(s);
        }
    }
}

fn matches_labels(owned: &[(String, String)], borrowed: &[(&str, &str)]) -> bool {
    owned.len() == borrowed.len()
        && owned
            .iter()
            .zip(borrowed)
            .all(|((ok, ov), (bk, bv))| ok == bk && ov == bv)
}

fn own_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    labels
        .iter()
        .map(|&(k, v)| (k.to_owned(), v.to_owned()))
        .collect()
}

fn clone_instrument(instrument: &Instrument) -> Instrument {
    match instrument {
        Instrument::Counter(c) => Instrument::Counter(Arc::clone(c)),
        Instrument::Gauge(g) => Instrument::Gauge(Arc::clone(g)),
        Instrument::Histogram(h) => Instrument::Histogram(Arc::clone(h)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_do_arithmetic() {
        let registry = MetricsRegistry::new();
        let c = registry.counter("c_total", "a counter");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = registry.gauge("g", "a gauge");
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn same_name_and_labels_share_one_series() {
        let registry = MetricsRegistry::new();
        let a = registry.counter_with("req_total", &[("endpoint", "healthz")], "requests");
        let b = registry.counter_with("req_total", &[("endpoint", "healthz")], "requests");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        // A different label value is a different series in the family.
        let c = registry.counter_with("req_total", &[("endpoint", "submit")], "requests");
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn histogram_buckets_are_cumulative_with_inf_overflow() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("lat", &[1.0, 2.0, 4.0], "latency");
        for v in [0.5, 1.0, 1.5, 4.0, 100.0] {
            h.observe(v);
        }
        // le=1: {0.5, 1.0}; le=2: +{1.5}; le=4: +{4.0}; +Inf: +{100.0}.
        assert_eq!(h.cumulative(), vec![2, 3, 4, 5]);
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 107.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_edge_values_zero_max_and_nan() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("edge", &[0.0, 10.0], "edges");
        h.observe(0.0); // exactly the first bound: le="0" bucket
        h.observe(10.0); // exactly the last bound: still inside it
        h.observe(10.000001); // just past: +Inf only
        h.observe(f64::NAN); // +Inf, excluded from the sum
        h.observe(f64::INFINITY); // +Inf, excluded from the sum
        assert_eq!(h.cumulative(), vec![1, 2, 5]);
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 20.000001).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_are_refused() {
        let registry = MetricsRegistry::new();
        let _ = registry.histogram("bad", &[2.0, 1.0], "nope");
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn kind_clashes_are_refused() {
        let registry = MetricsRegistry::new();
        let _ = registry.gauge("thing", "a gauge");
        let _ = registry.counter("thing", "now a counter?");
    }
}
