//! The adapter that plugs the campaign engine's [`TelemetrySink`] seam
//! into the metrics registry.
//!
//! `chunkpoint_campaign` defines the trait and the install point but
//! knows nothing about registries; this module supplies the concrete
//! sink (scenario wall-time histogram + pool queue-depth gauge) and a
//! one-call installer every serving entry point can invoke blindly.

use std::sync::Arc;

use chunkpoint_campaign::telemetry::{install_sink, TelemetrySink};

use crate::registry::{Gauge, Histogram, MetricsRegistry};

/// Scenario wall-time bucket bounds (seconds): paper-scale scenarios run
/// milliseconds to minutes depending on `scale` and the fault rate.
pub const SCENARIO_WALL_BUCKETS: [f64; 10] =
    [0.001, 0.005, 0.025, 0.1, 0.25, 1.0, 5.0, 30.0, 120.0, 600.0];

/// A [`TelemetrySink`] backed by registry series.
#[derive(Debug)]
pub struct RegistrySink {
    wall: Arc<Histogram>,
    depth: Arc<Gauge>,
}

impl RegistrySink {
    /// Builds the sink's series in `registry`.
    #[must_use]
    pub fn new(registry: &MetricsRegistry) -> Self {
        Self {
            wall: registry.histogram(
                "campaign_scenario_wall_seconds",
                &SCENARIO_WALL_BUCKETS,
                "Wall-clock execution time of completed scenarios",
            ),
            depth: registry.gauge(
                "campaign_queue_depth",
                "Scenarios dealt to the pool and not yet delivered",
            ),
        }
    }
}

impl TelemetrySink for RegistrySink {
    fn scenario_completed(&self, wall_seconds: f64) {
        self.wall.observe(wall_seconds);
    }

    fn queue_depth(&self, depth: i64) {
        self.depth.set(depth);
    }
}

/// Installs a [`RegistrySink`] over the global registry. First caller
/// wins (the seam is process-wide); safe to call from every entry
/// point.
pub fn install_campaign_metrics() -> bool {
    install_sink(Box::new(RegistrySink::new(crate::global())))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_records_into_its_registry() {
        let registry = MetricsRegistry::new();
        let sink = RegistrySink::new(&registry);
        sink.scenario_completed(0.01);
        sink.scenario_completed(2.0);
        sink.queue_depth(7);
        let text = crate::expose::render_text(&registry);
        let scrape = crate::expose::Scrape::parse(&text).expect("parse");
        assert_eq!(
            scrape.value("campaign_scenario_wall_seconds_count", &[]),
            Some(2.0)
        );
        assert_eq!(scrape.value("campaign_queue_depth", &[]), Some(7.0));
    }
}
