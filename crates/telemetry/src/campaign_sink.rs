//! The adapter that plugs the campaign engine's [`TelemetrySink`] seam
//! into the metrics registry.
//!
//! `chunkpoint_campaign` defines the trait and the install point but
//! knows nothing about registries; this module supplies the concrete
//! sink (scenario wall-time histogram + pool queue-depth gauge +
//! timeline-scenario `expect` verdict counters) and a one-call
//! installer every serving entry point can invoke blindly.

use std::sync::Arc;

use chunkpoint_campaign::telemetry::{install_sink, TelemetrySink};

use chunkpoint_campaign::JsonValue;

use crate::registry::{Counter, Gauge, Histogram, MetricsRegistry};
use crate::trace::Span;

/// Scenario wall-time bucket bounds (seconds): paper-scale scenarios run
/// milliseconds to minutes depending on `scale` and the fault rate.
pub const SCENARIO_WALL_BUCKETS: [f64; 10] =
    [0.001, 0.005, 0.025, 0.1, 0.25, 1.0, 5.0, 30.0, 120.0, 600.0];

/// A [`TelemetrySink`] backed by registry series.
#[derive(Debug)]
pub struct RegistrySink {
    wall: Arc<Histogram>,
    depth: Arc<Gauge>,
    expect_pass: Arc<Counter>,
    expect_fail: Arc<Counter>,
    span: Option<Span>,
}

impl RegistrySink {
    /// Builds the sink's series in `registry`. Every series — including
    /// the `expect` verdict counters — is registered here, so the first
    /// `/metrics` scrape exposes them at zero before any campaign runs.
    #[must_use]
    pub fn new(registry: &MetricsRegistry) -> Self {
        Self {
            wall: registry.histogram(
                "campaign_scenario_wall_seconds",
                &SCENARIO_WALL_BUCKETS,
                "Wall-clock execution time of completed scenarios",
            ),
            depth: registry.gauge(
                "campaign_queue_depth",
                "Scenarios dealt to the pool and not yet delivered",
            ),
            expect_pass: registry.counter(
                "scenario_expect_pass_total",
                "Timeline-scenario expect blocks that held against the finished run",
            ),
            expect_fail: registry.counter(
                "scenario_expect_fail_total",
                "Timeline-scenario expect blocks with at least one failed assertion",
            ),
            span: None,
        }
    }

    /// Attaches a trace span: each `expect` verdict additionally emits
    /// an `expect_evaluated` event inside it. Under a disabled tracer
    /// the span writes nothing, so this costs one branch per verdict.
    #[must_use]
    pub fn with_span(mut self, span: Span) -> Self {
        self.span = Some(span);
        self
    }
}

impl TelemetrySink for RegistrySink {
    fn scenario_completed(&self, wall_seconds: f64) {
        self.wall.observe(wall_seconds);
    }

    fn queue_depth(&self, depth: i64) {
        self.depth.set(depth);
    }

    fn expect_evaluated(&self, passed: bool) {
        if passed {
            self.expect_pass.inc();
        } else {
            self.expect_fail.inc();
        }
        if let Some(span) = &self.span {
            if span.is_traced() {
                span.event(
                    "expect_evaluated",
                    JsonValue::object().field("passed", passed),
                );
            }
        }
    }
}

/// Installs a [`RegistrySink`] over the global registry. First caller
/// wins (the seam is process-wide); safe to call from every entry
/// point.
pub fn install_campaign_metrics() -> bool {
    install_sink(Box::new(RegistrySink::new(crate::global())))
}

/// Like [`install_campaign_metrics`], but the installed sink also emits
/// an `expect_evaluated` trace event per `expect` verdict inside `span`.
pub fn install_campaign_metrics_traced(span: Span) -> bool {
    install_sink(Box::new(RegistrySink::new(crate::global()).with_span(span)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_records_into_its_registry() {
        let registry = MetricsRegistry::new();
        let sink = RegistrySink::new(&registry);
        sink.scenario_completed(0.01);
        sink.scenario_completed(2.0);
        sink.queue_depth(7);
        let text = crate::expose::render_text(&registry);
        let scrape = crate::expose::Scrape::parse(&text).expect("parse");
        assert_eq!(
            scrape.value("campaign_scenario_wall_seconds_count", &[]),
            Some(2.0)
        );
        assert_eq!(scrape.value("campaign_queue_depth", &[]), Some(7.0));
    }

    #[test]
    fn expect_counters_scrape_zero_before_any_verdict() {
        let registry = MetricsRegistry::new();
        let _sink = RegistrySink::new(&registry);
        let text = crate::expose::render_text(&registry);
        let scrape = crate::expose::Scrape::parse(&text).expect("parse");
        assert_eq!(scrape.value("scenario_expect_pass_total", &[]), Some(0.0));
        assert_eq!(scrape.value("scenario_expect_fail_total", &[]), Some(0.0));
    }

    #[test]
    fn expect_verdicts_increment_and_trace() {
        let registry = MetricsRegistry::new();
        let tracer = crate::trace::Tracer::to_writer(Box::new(SharedBuf::default()));
        let span = tracer.root("test");
        let sink = RegistrySink::new(&registry).with_span(span);
        sink.expect_evaluated(true);
        sink.expect_evaluated(true);
        sink.expect_evaluated(false);
        let text = crate::expose::render_text(&registry);
        let scrape = crate::expose::Scrape::parse(&text).expect("parse");
        assert_eq!(scrape.value("scenario_expect_pass_total", &[]), Some(2.0));
        assert_eq!(scrape.value("scenario_expect_fail_total", &[]), Some(1.0));
    }

    /// A `Write` handing every byte to a process-local buffer the test
    /// can inspect after the tracer flushes.
    #[derive(Default, Clone)]
    struct SharedBuf(Arc<std::sync::Mutex<Vec<u8>>>);

    impl std::io::Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().expect("lock").extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn traced_sink_emits_expect_events() {
        let buf = SharedBuf::default();
        let tracer = crate::trace::Tracer::to_writer(Box::new(buf.clone()));
        let registry = MetricsRegistry::new();
        let sink = RegistrySink::new(&registry).with_span(tracer.root("campaign"));
        sink.expect_evaluated(false);
        let bytes = buf.0.lock().expect("lock").clone();
        let text = String::from_utf8(bytes).expect("utf8");
        let event = text
            .lines()
            .find(|line| line.contains("\"expect_evaluated\""))
            .expect("expect_evaluated event in trace");
        assert!(event.contains("\"passed\":false"), "{event}");
    }
}
