//! Structured trace spans with deterministic ids.
//!
//! A [`Tracer`] writes JSON-line records — `span_begin`, `event`,
//! `span_end` — to an optional sink (a file behind `--trace-out`,
//! stderr for interactive bins, or nothing at all). Two properties are
//! load-bearing:
//!
//! * **Deterministic ids.** A span's id is derived from its parent's
//!   id, its name, and its sibling index via the same SplitMix64
//!   finalizer the campaign engine uses for scenario seeds — never from
//!   wall-clock time or randomness. Re-running a fixed workload
//!   reproduces the exact span tree, so trace diffs are meaningful.
//! * **Out-of-band timing.** `t_us` (microseconds since the tracer's
//!   epoch) and `dur_us` are the *only* nondeterministic fields; strip
//!   them and the log is byte-stable for a fixed seed. Nothing here
//!   feeds back into execution.
//!
//! Sink failures are swallowed: tracing must never change what the
//! traced code does.

use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use chunkpoint_campaign::seed::{mix64, GOLDEN_GAMMA};
use chunkpoint_campaign::JsonValue;

/// FNV-1a over the span name: folds the name into the id derivation so
/// differently-named siblings get unrelated ids.
fn fnv1a(name: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Derives a span id from its parent id, name, and 0-based sibling
/// sequence number. Pure function — the whole determinism story.
#[must_use]
pub fn derive_span_id(parent: u64, name: &str, seq: u64) -> u64 {
    mix64(parent ^ fnv1a(name) ^ seq.wrapping_add(1).wrapping_mul(GOLDEN_GAMMA))
}

struct TracerInner {
    sink: Mutex<Box<dyn Write + Send>>,
    epoch: Instant,
    root_seq: AtomicU64,
}

/// A handle to a trace sink. Cloning is cheap (an `Arc`); a
/// [`Tracer::disabled`] tracer costs a branch per call and writes
/// nothing.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.inner.is_some())
            .finish()
    }
}

impl Tracer {
    /// A tracer that records nothing.
    #[must_use]
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// A tracer writing JSON lines to `writer`.
    #[must_use]
    pub fn to_writer(writer: Box<dyn Write + Send>) -> Self {
        Self {
            inner: Some(Arc::new(TracerInner {
                sink: Mutex::new(writer),
                epoch: Instant::now(),
                root_seq: AtomicU64::new(0),
            })),
        }
    }

    /// A tracer appending JSON lines to stderr (the interactive-bin
    /// progress channel).
    #[must_use]
    pub fn to_stderr() -> Self {
        Self::to_writer(Box::new(std::io::stderr()))
    }

    /// A tracer writing JSON lines to a freshly created/truncated file.
    ///
    /// # Errors
    ///
    /// Propagates the `File::create` failure.
    pub fn to_file(path: &Path) -> std::io::Result<Self> {
        Ok(Self::to_writer(Box::new(std::fs::File::create(path)?)))
    }

    /// Whether this tracer writes anywhere.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a root span. Root ids derive from parent id 0 and the
    /// tracer-wide root sequence.
    #[must_use]
    pub fn root(&self, name: &str) -> Span {
        let seq = match &self.inner {
            Some(inner) => inner.root_seq.fetch_add(1, Ordering::Relaxed),
            None => 0,
        };
        self.open_span(0, name, seq)
    }

    fn open_span(&self, parent: u64, name: &str, seq: u64) -> Span {
        let id = derive_span_id(parent, name, seq);
        let span = Span {
            tracer: self.clone(),
            id,
            parent,
            name: name.to_owned(),
            start: Instant::now(),
            child_seq: AtomicU64::new(0),
        };
        self.write_record(
            record("span_begin", self.now_us())
                .field("span", hex_id(id))
                .field(
                    "parent",
                    if parent == 0 {
                        JsonValue::Null
                    } else {
                        JsonValue::Str(hex_id(parent))
                    },
                )
                .field("name", name),
        );
        span
    }

    fn now_us(&self) -> u64 {
        match &self.inner {
            Some(inner) => u64::try_from(inner.epoch.elapsed().as_micros()).unwrap_or(u64::MAX),
            None => 0,
        }
    }

    fn write_record(&self, record: JsonValue) {
        if let Some(inner) = &self.inner {
            let mut line = record.render();
            line.push('\n');
            if let Ok(mut sink) = inner.sink.lock() {
                // Out-of-band: a full disk or closed pipe must not
                // disturb the traced code.
                let _ = sink.write_all(line.as_bytes());
                let _ = sink.flush();
            }
        }
    }
}

fn record(kind: &str, t_us: u64) -> JsonValue {
    JsonValue::object().field("t_us", t_us).field("kind", kind)
}

fn hex_id(id: u64) -> String {
    format!("{id:016x}")
}

/// An open span. Dropping it emits the `span_end` record with the
/// monotonic-clock duration.
#[derive(Debug)]
pub struct Span {
    tracer: Tracer,
    id: u64,
    parent: u64,
    name: String,
    start: Instant,
    child_seq: AtomicU64,
}

impl Span {
    /// This span's deterministic id.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The parent span's id (0 for roots).
    #[must_use]
    pub fn parent_id(&self) -> u64 {
        self.parent
    }

    /// Whether this span writes anywhere — `false` under a disabled
    /// tracer, letting callers skip building event fields entirely.
    #[must_use]
    pub fn is_traced(&self) -> bool {
        self.tracer.is_enabled()
    }

    /// Opens a child span; ids incorporate this span's id and the
    /// child's sibling index.
    #[must_use]
    pub fn child(&self, name: &str) -> Span {
        let seq = self.child_seq.fetch_add(1, Ordering::Relaxed);
        self.tracer.open_span(self.id, name, seq)
    }

    /// Emits a point-in-time event inside this span. `fields` must be a
    /// `JsonValue::object()` (use [`Span::note`] for the no-field case).
    pub fn event(&self, name: &str, fields: JsonValue) {
        let mut rec = record("event", self.tracer.now_us())
            .field("span", hex_id(self.id))
            .field("name", name);
        if let JsonValue::Object(extra) = fields {
            for (key, value) in extra {
                rec = rec.field(&key, value);
            }
        }
        self.tracer.write_record(rec);
    }

    /// Emits a field-free event.
    pub fn note(&self, name: &str) {
        self.event(name, JsonValue::object());
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let dur_us = u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.tracer.write_record(
            record("span_end", self.tracer.now_us())
                .field("span", hex_id(self.id))
                .field("name", self.name.as_str())
                .field("dur_us", dur_us),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    /// A Write that forwards lines over a channel so the test can read
    /// what the tracer emitted.
    struct ChannelWriter(mpsc::Sender<String>);

    impl Write for ChannelWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            let _ = self
                .0
                .send(String::from_utf8_lossy(buf).trim_end().to_owned());
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn strip_timing(line: &str) -> String {
        let doc = JsonValue::parse(line).expect("trace line is JSON");
        let JsonValue::Object(fields) = doc else {
            panic!("trace line is not an object")
        };
        JsonValue::Object(
            fields
                .into_iter()
                .filter(|(k, _)| k != "t_us" && k != "dur_us")
                .collect(),
        )
        .render()
    }

    fn run_workload() -> Vec<String> {
        let (tx, rx) = mpsc::channel();
        let tracer = Tracer::to_writer(Box::new(ChannelWriter(tx)));
        {
            let root = tracer.root("campaign");
            let a = root.child("dispatch");
            a.event("sent", JsonValue::object().field("shard", 0u64));
            drop(a);
            let b = root.child("dispatch");
            b.note("sent-quiet");
            drop(b);
        }
        drop(tracer);
        rx.iter().collect()
    }

    #[test]
    fn span_tree_structure_is_deterministic() {
        let first: Vec<String> = run_workload().iter().map(|l| strip_timing(l)).collect();
        let second: Vec<String> = run_workload().iter().map(|l| strip_timing(l)).collect();
        assert_eq!(first, second);
        // begin(root), begin(a), event, end(a), begin(b), event, end(b), end(root)
        assert_eq!(first.len(), 8);
        assert!(first[0].contains("span_begin"));
        assert!(first[0].contains("\"parent\":null"));
        assert!(first[7].contains("span_end"));
    }

    #[test]
    fn sibling_spans_with_equal_names_get_distinct_ids() {
        let tracer = Tracer::disabled();
        let root = tracer.root("r");
        let a = root.child("dispatch");
        let b = root.child("dispatch");
        assert_ne!(a.id(), b.id());
        assert_eq!(a.parent_id(), root.id());
        // And the derivation is a pure function of (parent, name, seq).
        assert_eq!(a.id(), derive_span_id(root.id(), "dispatch", 0));
        assert_eq!(b.id(), derive_span_id(root.id(), "dispatch", 1));
    }

    #[test]
    fn disabled_tracer_still_hands_out_consistent_ids() {
        let t1 = Tracer::disabled();
        let t2 = Tracer::disabled();
        assert_eq!(t1.root("x").id(), t2.root("x").id());
        assert!(!t1.is_enabled());
    }
}
