//! Exposition-format acceptance: the renderer's edge cases — bucket
//! boundaries at `0`, `f64::MAX`, and `+Inf`; label-value escaping —
//! and the scrape-parse round trip, all over a fresh registry (the
//! process-global one would couple these assertions to whatever else
//! the test binary touched).

use chunkpoint_telemetry::{render_text, MetricsRegistry, Scrape};

/// Observations landing exactly *on* a bucket bound count into that
/// bucket (`le` is ≤), zero lands in the lowest bucket that admits it,
/// `f64::MAX` overflows every finite bound into `+Inf`, and the
/// `+Inf` bucket always equals `_count`.
#[test]
fn bucket_boundaries_zero_max_and_infinity() {
    let registry = MetricsRegistry::new();
    let histogram = registry.histogram("edge_seconds", &[0.0, 1.0, 10.0], "boundary cases");
    histogram.observe(0.0); // == first bound: le="0" admits it
    histogram.observe(1.0); // == second bound: le="1", not le="0"
    histogram.observe(10.0); // == last finite bound
    histogram.observe(f64::MAX); // over every finite bound
    histogram.observe(f64::INFINITY); // +Inf bucket only, excluded from sum

    let scrape = Scrape::parse(&render_text(&registry)).expect("parse own exposition");
    let bucket = |le: &str| {
        scrape
            .value("edge_seconds_bucket", &[("le", le)])
            .unwrap_or_else(|| panic!("bucket le={le}"))
    };
    // Cumulative counts: each bucket includes everything below it.
    assert_eq!(bucket("0"), 1.0, "0.0 lands on its own bound");
    assert_eq!(bucket("1"), 2.0, "1.0 lands on its bound, not below");
    assert_eq!(bucket("10"), 3.0);
    assert_eq!(bucket("+Inf"), 5.0, "MAX and +Inf overflow to +Inf");
    assert_eq!(
        scrape.value("edge_seconds_count", &[]),
        Some(5.0),
        "+Inf bucket equals _count"
    );
    // The sum skips non-finite observations but keeps MAX.
    let sum = scrape.value("edge_seconds_sum", &[]).expect("sum");
    assert!(sum.is_finite() && sum >= f64::MAX, "sum = {sum}");
}

/// An empty-bounds histogram is legal: everything lands in `+Inf`.
#[test]
fn degenerate_histogram_is_all_infinity() {
    let registry = MetricsRegistry::new();
    let histogram = registry.histogram("lone_seconds", &[], "one catch-all bucket");
    histogram.observe(0.0);
    histogram.observe(1e300);
    let scrape = Scrape::parse(&render_text(&registry)).expect("parse");
    assert_eq!(
        scrape.value("lone_seconds_bucket", &[("le", "+Inf")]),
        Some(2.0)
    );
    assert_eq!(scrape.value("lone_seconds_count", &[]), Some(2.0));
}

/// Label values escape exactly `\`, `"`, and newline — and the parser
/// undoes it, so hostile values survive a scrape round trip.
#[test]
fn label_escaping_round_trips() {
    let registry = MetricsRegistry::new();
    let hostile = "quote\" backslash\\ newline\n done";
    registry
        .counter_with("escapes_total", &[("path", hostile)], "escaping")
        .add(7);
    let text = render_text(&registry);
    assert!(
        text.contains(r#"path="quote\" backslash\\ newline\n done""#),
        "escaped form missing:\n{text}"
    );
    assert!(
        !text.contains("newline\n done"),
        "raw newline leaked into the exposition"
    );
    let scrape = Scrape::parse(&text).expect("parse");
    assert_eq!(
        scrape.value("escapes_total", &[("path", hostile)]),
        Some(7.0),
        "the parsed label value must match the original, unescaped"
    );
}

/// The full scrape round trip across every instrument kind: render,
/// parse, and compare sample-for-sample; a second render of the
/// untouched registry is byte-identical.
#[test]
fn scrape_round_trip_every_kind() {
    let registry = MetricsRegistry::new();
    registry.counter("jobs_total", "jobs").add(3);
    registry
        .counter_with("requests_total", &[("endpoint", "submit")], "requests")
        .add(41);
    registry
        .counter_with("requests_total", &[("endpoint", "status")], "requests")
        .inc();
    registry.gauge("depth", "queue depth").set(-12);
    let histogram = registry.histogram("wait_seconds", &[0.5, 2.0], "waits");
    histogram.observe(0.25);
    histogram.observe(1.5);

    let text = render_text(&registry);
    let scrape = Scrape::parse(&text).expect("parse");
    assert_eq!(scrape.value("jobs_total", &[]), Some(3.0));
    assert_eq!(
        scrape.value("requests_total", &[("endpoint", "submit")]),
        Some(41.0)
    );
    assert_eq!(scrape.total("requests_total"), 42.0);
    assert_eq!(scrape.value("depth", &[]), Some(-12.0));
    assert_eq!(
        scrape.value("wait_seconds_bucket", &[("le", "0.5")]),
        Some(1.0)
    );
    assert_eq!(
        scrape.value("wait_seconds_bucket", &[("le", "2")]),
        Some(2.0)
    );
    assert_eq!(scrape.value("wait_seconds_sum", &[]), Some(1.75));
    assert_eq!(render_text(&registry), text, "idle re-render changed bytes");
}
