//! The protected checkpoint buffer L1′ (Fig. 3).
//!
//! A small SRAM between the processing unit and L1, carrying a strong
//! multi-bit BCH code. Because its capacity is a few dozen words, both the
//! wide code and its decoder are cheap in absolute terms — the key
//! observation of the paper. The buffer stores, per checkpoint, the
//! serialized "status registers" (task state words) followed by the data
//! chunk.

use chunkpoint_ecc::EccKind;
use chunkpoint_sim::{
    logic_area_um2, Component, EnergyLedger, FaultProcess, Sram, SramModel, UpsetModel,
};

/// Failure to restore a checkpoint from L1′: the buffer itself took an
/// uncorrectable strike (essentially impossible at realistic rates with
/// t ≥ 6, but the simulator accounts for it honestly).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestoreError {
    /// Buffer word that failed to decode.
    pub word_index: u32,
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "l1' word {} uncorrectable", self.word_index)
    }
}

impl std::error::Error for RestoreError {}

/// The fault-tolerant buffer L1′.
#[derive(Debug)]
pub struct ProtectedBuffer {
    sram: Sram,
    read_pj: f64,
    write_pj: f64,
    stores: u64,
    loads: u64,
}

impl ProtectedBuffer {
    /// Builds an L1′ of `words` words protected by BCH of strength `t`,
    /// subject to the same fault environment as the rest of the chip.
    ///
    /// # Panics
    ///
    /// Panics if the BCH configuration is invalid (`t` outside 1..=18).
    #[must_use]
    pub fn new(words: u32, t: u8, error_rate: f64, seed: u64) -> Self {
        let faults = if error_rate > 0.0 {
            FaultProcess::new(error_rate, UpsetModel::smu_65nm(), seed)
        } else {
            FaultProcess::disabled()
        };
        let sram = Sram::new("l1prime", words.max(1) as usize, EccKind::Bch { t }, faults)
            .expect("valid BCH strength");
        let model = sram.model();
        Self {
            read_pj: model.read_energy_pj(),
            write_pj: model.write_energy_pj(),
            sram,
            stores: 0,
            loads: 0,
        }
    }

    /// Buffer capacity in words.
    #[must_use]
    pub fn words(&self) -> u32 {
        self.sram.len() as u32
    }

    /// Physical model (for area accounting).
    #[must_use]
    pub fn model(&self) -> SramModel {
        self.sram.model()
    }

    /// Total macro area including the BCH codec logic, µm².
    #[must_use]
    pub fn area_um2(&self) -> f64 {
        let overhead =
            chunkpoint_ecc::CodeOverhead::for_kind(self.sram.kind()).expect("buffer scheme exists");
        self.model().area_um2() + logic_area_um2(overhead.logic_gates())
    }

    /// Writes `values` into the buffer starting at word 0, charging
    /// energy to [`Component::L1Prime`].
    ///
    /// The whole checkpoint goes through one
    /// [`chunkpoint_ecc::EccScheme::encode_block`] dispatch — the BCH
    /// encoder's remainder tables stay hot across the burst.
    ///
    /// # Panics
    ///
    /// Panics if `values` exceeds the buffer capacity.
    pub fn store_checkpoint(&mut self, values: &[u32], now: u64, ledger: &mut EnergyLedger) {
        assert!(
            values.len() <= self.sram.len(),
            "checkpoint of {} words exceeds l1' capacity {}",
            values.len(),
            self.sram.len()
        );
        self.sram.write_block(0, values, now);
        ledger.add(Component::L1Prime, self.write_pj * values.len() as f64);
        self.stores += values.len() as u64;
    }

    /// Reads `n` words back (the ISR's restore path), charging energy.
    ///
    /// The restore is a burst transfer: all `n` words are read (and
    /// charged) through one block decode even when one fails mid-burst.
    ///
    /// # Errors
    ///
    /// Returns [`RestoreError`] if a word is uncorrectable even under the
    /// buffer's BCH code.
    pub fn load_checkpoint(
        &mut self,
        n: u32,
        now: u64,
        ledger: &mut EnergyLedger,
    ) -> Result<Vec<u32>, RestoreError> {
        let mut out = Vec::with_capacity(n as usize);
        ledger.add(Component::L1Prime, self.read_pj * f64::from(n));
        self.loads += u64::from(n);
        match self.sram.read_block(0, n as usize, now, &mut out) {
            Ok(()) => Ok(out),
            Err(offset) => Err(RestoreError {
                word_index: offset as u32,
            }),
        }
    }

    /// Underlying array (test fault injection).
    pub fn sram_mut(&mut self) -> &mut Sram {
        &mut self.sram
    }

    /// Total words written so far.
    #[must_use]
    pub fn stores(&self) -> u64 {
        self.stores
    }

    /// Total words read so far.
    #[must_use]
    pub fn loads(&self) -> u64 {
        self.loads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_roundtrip() {
        let mut buffer = ProtectedBuffer::new(32, 8, 0.0, 0);
        let mut ledger = EnergyLedger::new();
        let data: Vec<u32> = (0..20).map(|i| i * 31).collect();
        buffer.store_checkpoint(&data, 100, &mut ledger);
        let back = buffer.load_checkpoint(20, 200, &mut ledger).unwrap();
        assert_eq!(back, data);
        assert!(ledger.component_pj(Component::L1Prime) > 0.0);
        assert_eq!(buffer.stores(), 20);
        assert_eq!(buffer.loads(), 20);
    }

    #[test]
    fn survives_smu_bursts() {
        let mut buffer = ProtectedBuffer::new(8, 8, 0.0, 0);
        let mut ledger = EnergyLedger::new();
        buffer.store_checkpoint(&[0xAAAA_5555; 8], 0, &mut ledger);
        // An 8-bit adjacent burst in every word.
        for w in 0..8 {
            buffer.sram_mut().inject(w, 10, 8);
        }
        let back = buffer.load_checkpoint(8, 1, &mut ledger).unwrap();
        assert_eq!(back, vec![0xAAAA_5555; 8]);
    }

    #[test]
    fn restore_error_when_code_exceeded() {
        // Beyond-t patterns are outside the code's guarantee: some
        // miscorrect to a different codeword, others are flagged. Find a
        // flagged one (they are the common case) and verify the error
        // surfaces as RestoreError with the right word index.
        let mut ledger = EnergyLedger::new();
        let mut found = false;
        for spread in 1..=12usize {
            let mut buffer = ProtectedBuffer::new(4, 2, 0.0, 0);
            buffer.store_checkpoint(&[7; 4], 0, &mut ledger);
            for k in 0..5 {
                buffer.sram_mut().inject(2, (k * spread) % 40, 1);
            }
            if let Err(err) = buffer.load_checkpoint(4, 1, &mut ledger) {
                assert_eq!(err.word_index, 2);
                assert!(err.to_string().contains("uncorrectable"));
                found = true;
                break;
            }
        }
        assert!(found, "no 5-flip pattern was flagged across 12 spreads");
    }

    #[test]
    fn area_includes_codec_logic() {
        let buffer = ProtectedBuffer::new(16, 8, 0.0, 0);
        assert!(buffer.area_um2() > buffer.model().area_um2());
    }

    #[test]
    #[should_panic(expected = "exceeds l1' capacity")]
    fn oversized_checkpoint_panics() {
        let mut buffer = ProtectedBuffer::new(2, 6, 0.0, 0);
        let mut ledger = EnergyLedger::new();
        buffer.store_checkpoint(&[1, 2, 3], 0, &mut ledger);
    }
}
