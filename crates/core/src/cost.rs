//! The analytic overhead model of Section II-A (Eqs. 1–2).
//!
//! For a candidate chunk size the model predicts the storage cost
//! `C_store` (buffering each chunk into L1′ at every checkpoint), the
//! computation cost `C_comp` (checkpoint triggers plus expected
//! error-recovery work), and the cycle overhead `D(S_CH)` used by
//! constraint (5). The optimizer minimises `J = C_store + C_comp`.

use chunkpoint_ecc::{BchCode, CodeOverhead, EccKind, EccScheme};
use chunkpoint_sim::{Platform, SramModel};
use chunkpoint_workloads::Benchmark;

/// Cost-model output for one candidate design point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostBreakdown {
    /// `C_store` (Eq. 1), pJ: (N_CH · S_CH + err) · E(S_CH).
    pub store_pj: f64,
    /// `C_comp` (Eq. 2), pJ: N_CH · E_CH + err · (E_ISR + E(F(S_CH))).
    pub comp_pj: f64,
    /// Expected number of faulty chunks per task (`err`).
    pub expected_errors: f64,
    /// Number of checkpoints N_CH.
    pub n_checkpoints: usize,
    /// Total protected-buffer words (chunk + serialized state).
    pub buffer_words: u32,
    /// Predicted mitigation cycle overhead D(S_CH).
    pub overhead_cycles: f64,
    /// Predicted baseline (mitigation-free) task cycles.
    pub base_cycles: f64,
}

impl CostBreakdown {
    /// The objective `J = C_store + C_comp` (Eq. 3), pJ.
    #[must_use]
    pub fn objective_pj(&self) -> f64 {
        self.store_pj + self.comp_pj
    }

    /// Predicted relative cycle overhead D / base.
    #[must_use]
    pub fn cycle_fraction(&self) -> f64 {
        self.overhead_cycles / self.base_cycles
    }
}

/// The cost model for one benchmark in one fault environment.
#[derive(Debug, Clone)]
pub struct CostModel {
    platform: Platform,
    benchmark: Benchmark,
    scale: f64,
    error_rate: f64,
    /// L1′ BCH check bits (cached: generator construction is not free).
    prime_check_bits: usize,
    /// L1′ codec logic size, gate equivalents (cached).
    prime_logic_gates: u64,
    l1_read_pj: f64,
}

impl CostModel {
    /// Builds the model.
    ///
    /// # Panics
    ///
    /// Panics if `l1_prime_t` is not a valid BCH strength.
    #[must_use]
    pub fn new(
        benchmark: Benchmark,
        platform: &Platform,
        error_rate: f64,
        scale: f64,
        l1_prime_t: u8,
    ) -> Self {
        let code = BchCode::for_word(l1_prime_t as usize)
            .unwrap_or_else(|e| panic!("invalid L1' strength t={l1_prime_t}: {e}"));
        let overhead = CodeOverhead::for_kind(EccKind::Bch { t: l1_prime_t })
            .expect("strength already validated");
        let l1_read_pj = platform.l1_model().read_energy_pj();
        Self {
            platform: platform.clone(),
            benchmark,
            scale,
            error_rate,
            prime_check_bits: code.check_bits(),
            prime_logic_gates: overhead.logic_gates(),
            l1_read_pj,
        }
    }

    /// Physical model of an L1′ sized for `buffer_words`.
    #[must_use]
    pub fn l1_prime_model(&self, buffer_words: u32) -> SramModel {
        SramModel::new(buffer_words.max(1) as usize, 32 + self.prime_check_bits)
    }

    /// Total L1′ area (array + codec logic), µm².
    #[must_use]
    pub fn l1_prime_area_um2(&self, buffer_words: u32) -> f64 {
        self.l1_prime_model(buffer_words).area_um2()
            + chunkpoint_sim::logic_area_um2(self.prime_logic_gates)
    }

    /// Evaluates Eqs. (1)–(2) for a candidate chunk size.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_words == 0`.
    #[must_use]
    pub fn evaluate(&self, chunk_words: u32) -> CostBreakdown {
        assert!(chunk_words > 0, "chunk must be at least one word");
        let profile = self.benchmark.profile_for_chunk(chunk_words, self.scale);
        let n_ch = profile.total_blocks;
        let buffer_words = profile.protected_words();
        let cycles_per_block =
            (profile.compute_cycles_per_block + profile.accesses_per_block) as f64;
        let base_cycles = n_ch as f64 * cycles_per_block;

        // err: expected faulty-chunk events per task. Live words exposed
        // between consecutive checkpoints ≈ the protected set (chunk +
        // state); exposure integrates to base_cycles · live_words.
        let expected_errors = self.error_rate * base_cycles * f64::from(buffer_words);

        // E(S_CH): per-word write energy of the S_CH-sized buffer (Eq. 1
        // charges one buffer access per stored word, plus err restores).
        let prime_model = self.l1_prime_model(buffer_words);
        let e_sch = prime_model.write_energy_pj();
        let store_pj = (n_ch as f64 * f64::from(buffer_words) + expected_errors) * e_sch;

        // E_CH: software checkpoint trigger.
        let cpu_pj = self.platform.cpu_pj_per_cycle;
        let e_ch = self.platform.checkpoint_trigger_cycles as f64 * cpu_pj;
        // E_ISR: interrupt entry/exit plus restoring the chunk from L1′
        // into L1.
        let l1_write_pj = self.platform.l1_model().write_energy_pj();
        let e_isr = self.platform.isr_cycles as f64 * cpu_pj
            + f64::from(buffer_words) * (prime_model.read_energy_pj() + l1_write_pj);
        // E(F(S_CH)): recomputing one chunk (core + instruction fetches +
        // data accesses).
        let cycle_pj = cpu_pj + self.platform.ifetch_per_cycle * self.l1_read_pj;
        let e_recompute = profile.compute_cycles_per_block as f64 * cycle_pj
            + profile.accesses_per_block as f64 * self.l1_read_pj;
        let comp_pj = n_ch as f64 * e_ch + expected_errors * (e_isr + e_recompute);

        // D(S_CH): mitigation cycles — chunk copies at every checkpoint
        // plus expected recovery work.
        let copy_cycles = f64::from(buffer_words) * 2.0; // read L1 + write L1'
        let overhead_cycles = n_ch as f64
            * (copy_cycles + self.platform.checkpoint_trigger_cycles as f64)
            + expected_errors * (self.platform.isr_cycles as f64 + cycles_per_block);

        CostBreakdown {
            store_pj,
            comp_pj,
            expected_errors,
            n_checkpoints: n_ch,
            buffer_words,
            overhead_cycles,
            base_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(benchmark: Benchmark) -> CostModel {
        CostModel::new(benchmark, &Platform::lh7a400(), 1e-6, 1.0, 8)
    }

    #[test]
    fn objective_is_sum() {
        let cost = model(Benchmark::AdpcmEncode).evaluate(8);
        assert!((cost.objective_pj() - (cost.store_pj + cost.comp_pj)).abs() < 1e-9);
        assert!(cost.store_pj > 0.0);
        assert!(cost.comp_pj > 0.0);
    }

    #[test]
    fn tiny_chunks_pay_checkpoint_cost() {
        // With many checkpoints, C_comp's N_CH·E_CH term and the per-word
        // buffering dominate; the objective at K=1 must exceed the
        // objective at a moderate K.
        let m = model(Benchmark::AdpcmDecode);
        assert!(m.evaluate(1).objective_pj() > m.evaluate(16).objective_pj());
    }

    #[test]
    fn huge_chunks_pay_recovery_cost() {
        // With huge chunks the expected-error term (err · recompute)
        // and per-checkpoint volume grow; the objective turns back up,
        // giving the interior optimum of Table I.
        let m = model(Benchmark::AdpcmDecode);
        assert!(m.evaluate(512).objective_pj() > m.evaluate(16).objective_pj());
    }

    #[test]
    fn expected_errors_scale_with_rate() {
        let low =
            CostModel::new(Benchmark::G721Decode, &Platform::lh7a400(), 1e-8, 1.0, 8).evaluate(16);
        let high =
            CostModel::new(Benchmark::G721Decode, &Platform::lh7a400(), 1e-6, 1.0, 8).evaluate(16);
        assert!(high.expected_errors > 50.0 * low.expected_errors);
    }

    #[test]
    fn buffer_includes_state_words() {
        let cost = model(Benchmark::G721Encode).evaluate(16);
        // G.726 state is 24 words.
        assert_eq!(cost.buffer_words, 16 + 24);
    }

    #[test]
    fn stronger_code_means_bigger_buffer_area() {
        let weak = CostModel::new(Benchmark::AdpcmEncode, &Platform::lh7a400(), 1e-6, 1.0, 6);
        let strong = CostModel::new(Benchmark::AdpcmEncode, &Platform::lh7a400(), 1e-6, 1.0, 16);
        assert!(strong.l1_prime_area_um2(32) > weak.l1_prime_area_um2(32));
    }

    #[test]
    fn cycle_fraction_reasonable_at_moderate_chunks() {
        let cost = model(Benchmark::AdpcmEncode).evaluate(16);
        assert!(cost.cycle_fraction() > 0.0);
        assert!(cost.cycle_fraction() < 1.0, "{}", cost.cycle_fraction());
    }
}
