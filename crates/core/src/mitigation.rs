//! The four system configurations compared in Fig. 5.

use chunkpoint_ecc::EccKind;

/// Interleaved-parity ways of the L1 detector used by the SW baseline and
/// the hybrid scheme: sized to the widest burst the 65 nm SMU model
/// produces, so every single strike is detected. (Plain single parity —
/// the paper's literal "check parity bit" — would miss every even-width
/// burst; see `chunkpoint_ecc::InterleavedParity`.)
pub const DETECTOR_WAYS: u8 = 6;

/// A mitigation strategy for the vulnerable L1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MitigationScheme {
    /// *Default*: no mitigation at all — errors silently corrupt data.
    Default,
    /// *HW-mitigation*: the entire L1 carries multi-bit ECC of strength
    /// `t`. Fully corrects in hardware at a (prohibitive) area and energy
    /// cost — the paper cites >80 % area for an 8-bit code on 64 KB.
    HwEcc {
        /// Correction strength of the full-array code.
        t: u8,
    },
    /// *SW-mitigation*: minimal detection (parity) on L1; any detected
    /// error restarts the whole task from scratch.
    SwRestart,
    /// *Proposed*: parity detection on L1 plus the checkpoint/rollback
    /// scheme with a `chunk_words`-word data chunk buffered in a BCH-
    /// protected L1′ of strength `l1_prime_t`.
    Hybrid {
        /// Data-chunk size in 32-bit words (S_CH / 4).
        chunk_words: u32,
        /// BCH correction strength of the L1′ buffer.
        l1_prime_t: u8,
    },
    /// The paper's *literal* Fig. 2a reading: hybrid rollback with a
    /// single even-parity detector on L1. Unsound under multi-bit upsets
    /// (misses every even-width burst) — kept as an executable
    /// counter-example justifying the interleaved-parity substitution.
    HybridSingleParity {
        /// Data-chunk size in 32-bit words (S_CH / 4).
        chunk_words: u32,
        /// BCH correction strength of the L1′ buffer.
        l1_prime_t: u8,
    },
    /// The classic SSU-era defence: SECDED on L1 plus periodic scrubbing
    /// (sweep the array, correct single-bit upsets before they
    /// accumulate). Under *multi-bit* upsets a single strike already
    /// exceeds SECDED, so scrubbing restarts the task on every detected
    /// double and can even be silently mis-corrected by wider bursts —
    /// the motivating failure of the paper's introduction.
    ScrubbedSecded {
        /// Cycles between scrub sweeps.
        interval_cycles: u32,
    },
}

impl MitigationScheme {
    /// The paper's HW baseline: 8-bit ECC over the whole L1.
    #[must_use]
    pub fn hw_baseline() -> Self {
        MitigationScheme::HwEcc { t: 8 }
    }

    /// ECC scheme carried by the L1 array under this mitigation.
    #[must_use]
    pub fn l1_kind(&self) -> EccKind {
        match *self {
            MitigationScheme::Default => EccKind::None,
            MitigationScheme::HwEcc { t } => EccKind::Bch { t },
            MitigationScheme::SwRestart | MitigationScheme::Hybrid { .. } => {
                EccKind::InterleavedParity {
                    ways: DETECTOR_WAYS,
                }
            }
            MitigationScheme::HybridSingleParity { .. } => EccKind::Parity,
            MitigationScheme::ScrubbedSecded { .. } => EccKind::Secded,
        }
    }

    /// Whether this scheme guarantees error-free output under the fault
    /// model (detection capability never exceeded by injected strikes).
    #[must_use]
    pub fn claims_full_mitigation(&self) -> bool {
        !matches!(self, MitigationScheme::Default)
    }

    /// Short label used in reports and plots.
    #[must_use]
    pub fn label(&self) -> String {
        match *self {
            MitigationScheme::Default => "default".to_owned(),
            MitigationScheme::HwEcc { t } => format!("hw-ecc(t={t})"),
            MitigationScheme::SwRestart => "sw-restart".to_owned(),
            MitigationScheme::Hybrid {
                chunk_words,
                l1_prime_t,
            } => {
                format!("hybrid(chunk={chunk_words}w, t={l1_prime_t})")
            }
            MitigationScheme::HybridSingleParity {
                chunk_words,
                l1_prime_t,
            } => {
                format!("hybrid-1parity(chunk={chunk_words}w, t={l1_prime_t})")
            }
            MitigationScheme::ScrubbedSecded { interval_cycles } => {
                format!("scrub-secded(every {interval_cycles} cycles)")
            }
        }
    }
}

impl std::fmt::Display for MitigationScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l1_kinds() {
        assert_eq!(MitigationScheme::Default.l1_kind(), EccKind::None);
        assert_eq!(
            MitigationScheme::hw_baseline().l1_kind(),
            EccKind::Bch { t: 8 }
        );
        assert_eq!(
            MitigationScheme::SwRestart.l1_kind(),
            EccKind::InterleavedParity {
                ways: DETECTOR_WAYS
            }
        );
        assert_eq!(
            MitigationScheme::Hybrid {
                chunk_words: 11,
                l1_prime_t: 8
            }
            .l1_kind(),
            EccKind::InterleavedParity {
                ways: DETECTOR_WAYS
            }
        );
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<String> = [
            MitigationScheme::Default,
            MitigationScheme::hw_baseline(),
            MitigationScheme::SwRestart,
            MitigationScheme::Hybrid {
                chunk_words: 16,
                l1_prime_t: 6,
            },
        ]
        .iter()
        .map(MitigationScheme::label)
        .collect();
        for (i, a) in labels.iter().enumerate() {
            for b in labels.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn only_default_lacks_mitigation() {
        assert!(!MitigationScheme::Default.claims_full_mitigation());
        assert!(MitigationScheme::SwRestart.claims_full_mitigation());
        assert!(MitigationScheme::hw_baseline().claims_full_mitigation());
    }
}
