//! The chunk-size / checkpoint-count optimization of Eqs. (3)–(7).
//!
//! The paper solves the problem with the MATLAB optimization toolbox; the
//! decision space here is small and integral (S_CH = K·W_size with K a
//! few hundred at most, Eq. 6–7), so this module finds the *exact* integer
//! optimum by exhaustive search over (K, t) and also exposes the
//! area-feasibility region of Fig. 4.

use chunkpoint_sim::Platform;
use chunkpoint_workloads::Benchmark;

use crate::config::SystemConfig;
use crate::cost::{CostBreakdown, CostModel};

/// Largest chunk size explored (words), matching Fig. 4's x-axis.
pub const MAX_CHUNK_WORDS: u32 = 512;

/// Smallest L1′ BCH strength that corrects every burst our SMU model can
/// produce (widths up to 6 bits) in a single strike.
pub const MIN_L1_PRIME_T: u8 = 6;

/// Largest L1′ BCH strength explored, matching Fig. 4's y-axis.
pub const MAX_L1_PRIME_T: u8 = 18;

/// One evaluated design point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignPoint {
    /// Benchmark the point was evaluated for.
    pub benchmark: Benchmark,
    /// Chunk size in words (K of Eq. 6, with W_size = 4 bytes).
    pub chunk_words: u32,
    /// L1′ BCH strength.
    pub l1_prime_t: u8,
    /// Cost-model output.
    pub cost: CostBreakdown,
    /// L1′ area (array + codec), µm².
    pub area_um2: f64,
    /// Area as a fraction of the L1 macro (constraint 4 compares this to
    /// OV1).
    pub area_fraction: f64,
}

impl DesignPoint {
    /// Whether the point satisfies both hard constraints.
    #[must_use]
    pub fn is_feasible(&self, config: &SystemConfig) -> bool {
        self.area_fraction <= config.constraints.area_overhead
            && self.cost.cycle_fraction() <= config.constraints.cycle_overhead
    }
}

fn evaluate_with_model(
    model: &CostModel,
    benchmark: Benchmark,
    chunk_words: u32,
    l1_prime_t: u8,
    config: &SystemConfig,
) -> DesignPoint {
    let cost = model.evaluate(chunk_words);
    let area_um2 = model.l1_prime_area_um2(cost.buffer_words);
    let l1_area = config.platform.l1_model().area_um2();
    DesignPoint {
        benchmark,
        chunk_words,
        l1_prime_t,
        cost,
        area_um2,
        area_fraction: area_um2 / l1_area,
    }
}

fn model_for(benchmark: Benchmark, l1_prime_t: u8, config: &SystemConfig) -> CostModel {
    CostModel::new(
        benchmark,
        &config.platform,
        config.faults.error_rate,
        config.scale,
        l1_prime_t,
    )
}

/// Evaluates one (benchmark, K, t) candidate.
///
/// # Panics
///
/// Panics if `chunk_words == 0` or `t` is not a valid BCH strength.
#[must_use]
pub fn evaluate(
    benchmark: Benchmark,
    chunk_words: u32,
    l1_prime_t: u8,
    config: &SystemConfig,
) -> DesignPoint {
    let model = model_for(benchmark, l1_prime_t, config);
    evaluate_with_model(&model, benchmark, chunk_words, l1_prime_t, config)
}

/// Finds the energy-optimal feasible design point for a benchmark by
/// exhaustive search (exact integer optimum of Eq. 3).
///
/// Returns `None` when no (K, t) candidate satisfies the constraints.
#[must_use]
pub fn optimize(benchmark: Benchmark, config: &SystemConfig) -> Option<DesignPoint> {
    let mut best: Option<DesignPoint> = None;
    for t in MIN_L1_PRIME_T..=MAX_L1_PRIME_T {
        let model = model_for(benchmark, t, config);
        for k in 1..=MAX_CHUNK_WORDS {
            let point = evaluate_with_model(&model, benchmark, k, t, config);
            if !point.is_feasible(config) {
                continue;
            }
            let better = best
                .as_ref()
                .is_none_or(|b| point.cost.objective_pj() < b.cost.objective_pj());
            if better {
                best = Some(point);
            }
        }
    }
    best
}

/// A deliberately sub-optimal but feasible point for the "proposed
/// (sub-optimal)" bars of Fig. 5: the *smallest* feasible chunk at the
/// optimum's code strength — more checkpoints, more per-checkpoint
/// trigger and buffering overhead.
#[must_use]
pub fn suboptimal(benchmark: Benchmark, config: &SystemConfig) -> Option<DesignPoint> {
    let best = optimize(benchmark, config)?;
    let model = model_for(benchmark, best.l1_prime_t, config);
    (1..=best.chunk_words)
        .map(|k| evaluate_with_model(&model, benchmark, k, best.l1_prime_t, config))
        .find(|p| p.is_feasible(config))
}

/// Sweeps the objective over every chunk size at a fixed code strength
/// (the data behind the chunk-size-sensitivity ablation).
#[must_use]
pub fn sweep(benchmark: Benchmark, l1_prime_t: u8, config: &SystemConfig) -> Vec<DesignPoint> {
    let model = model_for(benchmark, l1_prime_t, config);
    (1..=MAX_CHUNK_WORDS)
        .map(|k| evaluate_with_model(&model, benchmark, k, l1_prime_t, config))
        .collect()
}

/// The Fig. 4 feasibility region: for each buffer size (words), the
/// maximum number of correctable bits per word whose L1′ implementation
/// still fits the area budget (benchmark-independent — pure area).
///
/// Returns `(buffer_words, max_feasible_t)` pairs; `max_feasible_t == 0`
/// means even t = 1 does not fit.
#[must_use]
pub fn feasible_region(config: &SystemConfig) -> Vec<(u32, u8)> {
    let l1_area = config.platform.l1_model().area_um2();
    let budget = config.constraints.area_overhead * l1_area;
    // Cache the per-strength code geometry (generator construction is not
    // free and this sweep probes 512 × 18 points).
    let geometry: Vec<(usize, u64)> = (1..=MAX_L1_PRIME_T)
        .map(|t| bch_geometry(t).expect("strength in supported range"))
        .collect();
    (1..=MAX_CHUNK_WORDS)
        .map(|words| {
            let mut max_t = 0u8;
            for t in 1..=MAX_L1_PRIME_T {
                let (check_bits, gates) = geometry[t as usize - 1];
                let area = config
                    .platform
                    .l1_prime_model(words as usize, check_bits)
                    .area_um2()
                    + chunkpoint_sim::logic_area_um2(gates);
                if area <= budget {
                    max_t = t;
                }
            }
            (words, max_t)
        })
        .collect()
}

/// Check bits and codec gate count for a word-level BCH of strength `t`.
fn bch_geometry(t: u8) -> Option<(usize, u64)> {
    let code = chunkpoint_ecc::BchCode::for_word(t as usize).ok()?;
    let overhead =
        chunkpoint_ecc::CodeOverhead::for_kind(chunkpoint_ecc::EccKind::Bch { t }).ok()?;
    use chunkpoint_ecc::EccScheme;
    Some((code.check_bits(), overhead.logic_gates()))
}

/// Area of an L1′ of `words` words with strength-`t` BCH (array + codec).
#[must_use]
pub fn buffer_area_um2(platform: &Platform, words: u32, t: u8) -> f64 {
    let (check_bits, gates) = bch_geometry(t).unwrap_or((0, 0));
    platform
        .l1_prime_model(words as usize, check_bits)
        .area_um2()
        + chunkpoint_sim::logic_area_um2(gates)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> SystemConfig {
        SystemConfig::paper(0)
    }

    #[test]
    fn every_benchmark_has_a_feasible_optimum() {
        for benchmark in Benchmark::ALL {
            let best = optimize(benchmark, &config())
                .unwrap_or_else(|| panic!("{benchmark}: no feasible point"));
            assert!(best.is_feasible(&config()), "{benchmark}");
            assert!(best.chunk_words >= 1, "{benchmark}");
            println!(
                "{benchmark}: K={} t={} buffer={}w J={:.0}pJ area={:.2}% cycles={:.2}%",
                best.chunk_words,
                best.l1_prime_t,
                best.cost.buffer_words,
                best.cost.objective_pj(),
                100.0 * best.area_fraction,
                100.0 * best.cost.cycle_fraction(),
            );
        }
    }

    #[test]
    fn optimum_beats_neighbours() {
        let cfg = config();
        for benchmark in [Benchmark::AdpcmEncode, Benchmark::JpegDecode] {
            let best = optimize(benchmark, &cfg).unwrap();
            for delta in [-2i64, -1, 1, 2, 8] {
                let k = best.chunk_words as i64 + delta;
                if k < 1 || k > i64::from(MAX_CHUNK_WORDS) {
                    continue;
                }
                let other = evaluate(benchmark, k as u32, best.l1_prime_t, &cfg);
                if other.is_feasible(&cfg) {
                    assert!(
                        best.cost.objective_pj() <= other.cost.objective_pj(),
                        "{benchmark}: K={} beaten by K={k}",
                        best.chunk_words
                    );
                }
            }
        }
    }

    #[test]
    fn suboptimal_is_feasible_but_worse() {
        let cfg = config();
        let benchmark = Benchmark::AdpcmDecode;
        let best = optimize(benchmark, &cfg).unwrap();
        let sub = suboptimal(benchmark, &cfg).unwrap();
        assert!(sub.is_feasible(&cfg));
        assert!(sub.cost.objective_pj() >= best.cost.objective_pj());
    }

    #[test]
    fn feasible_region_shrinks_with_strength() {
        let region = feasible_region(&config());
        assert_eq!(region.len(), MAX_CHUNK_WORDS as usize);
        // Monotone: max feasible t never increases with buffer size.
        for window in region.windows(2) {
            assert!(window[1].1 <= window[0].1, "{window:?}");
        }
        // Small buffers accept strong codes, huge ones only weak.
        let (_, t_small) = region[7]; // 8 words
        let (_, t_large) = region[MAX_CHUNK_WORDS as usize - 1];
        assert!(t_small > t_large, "small={t_small} large={t_large}");
        assert!(t_small >= 8, "8-word buffer should allow strong codes");
    }

    #[test]
    fn tighter_budget_shrinks_region() {
        let mut tight = config();
        tight.constraints = crate::config::SystemConstraints::new(0.01, 0.10);
        let loose_region = feasible_region(&config());
        let tight_region = feasible_region(&tight);
        for (l, t) in loose_region.iter().zip(tight_region.iter()) {
            assert!(t.1 <= l.1);
        }
    }

    #[test]
    fn buffer_area_monotone() {
        let p = Platform::lh7a400();
        assert!(buffer_area_um2(&p, 64, 8) > buffer_area_um2(&p, 32, 8));
        assert!(buffer_area_um2(&p, 32, 12) > buffer_area_um2(&p, 32, 6));
    }

    #[test]
    fn sweep_covers_range_and_contains_optimum() {
        let cfg = config();
        let best = optimize(Benchmark::AdpcmEncode, &cfg).unwrap();
        let points = sweep(Benchmark::AdpcmEncode, best.l1_prime_t, &cfg);
        assert_eq!(points.len(), MAX_CHUNK_WORDS as usize);
        let min = points
            .iter()
            .filter(|p| p.is_feasible(&cfg))
            .min_by(|a, b| {
                a.cost
                    .objective_pj()
                    .partial_cmp(&b.cost.objective_pj())
                    .unwrap()
            })
            .unwrap();
        assert_eq!(min.chunk_words, best.chunk_words);
    }
}
