//! # chunkpoint-core
//!
//! The paper's contribution: a hybrid HW-SW mitigation scheme for
//! intermittent (single-event multi-bit) errors in the on-chip SRAMs of
//! streaming embedded systems, after Sabry, Atienza and Catthoor,
//! *"A Hybrid HW-SW Approach for Intermittent Error Mitigation in
//! Streaming-Based Embedded Systems"*, DATE 2012.
//!
//! ## The scheme in one paragraph
//!
//! Each streaming task is divided into computation phases; the data a
//! phase produces (plus the serialized codec state) is a **data chunk**.
//! At every **checkpoint** the chunk is verified through the L1's cheap
//! parity detector and buffered into a tiny, strongly BCH-protected
//! buffer **L1′**. A faulty read — anywhere — raises a **Read Error
//! Interrupt** whose handler restores state from L1′ and re-executes only
//! the current phase. Chunk size and checkpoint count are chosen by an
//! energy-minimising optimizer under hard area (5 %) and cycle (10 %)
//! overhead constraints.
//!
//! ## Quick start
//!
//! ```
//! use chunkpoint_core::{optimize, run, golden, MitigationScheme, SystemConfig};
//! use chunkpoint_workloads::Benchmark;
//!
//! let mut config = SystemConfig::paper(42);
//! config.scale = 0.25; // shorter run for the doctest
//!
//! // 1. size the chunk and L1' optimally,
//! let best = optimize(Benchmark::AdpcmDecode, &config).expect("feasible design");
//!
//! // 2. run under injected faults,
//! let report = run(
//!     Benchmark::AdpcmDecode,
//!     MitigationScheme::Hybrid {
//!         chunk_words: best.chunk_words,
//!         l1_prime_t: best.l1_prime_t,
//!     },
//!     &config,
//! );
//!
//! // 3. full error mitigation: output identical to the fault-free run.
//! let reference = golden(Benchmark::AdpcmDecode, &config);
//! assert!(report.output_matches(&reference));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod cost;
mod l1prime;
mod mitigation;
mod optimizer;
mod runner;

pub use config::{FaultEnvironment, SystemConfig, SystemConstraints};
pub use cost::{CostBreakdown, CostModel};
pub use l1prime::{ProtectedBuffer, RestoreError};
pub use mitigation::{MitigationScheme, DETECTOR_WAYS};
pub use optimizer::{
    buffer_area_um2, evaluate, feasible_region, optimize, suboptimal, sweep, DesignPoint,
    MAX_CHUNK_WORDS, MAX_L1_PRIME_T, MIN_L1_PRIME_T,
};
pub use runner::{golden, golden_task, run, run_task, RunReport, TaskSource};
