//! Executes a benchmark under a mitigation scheme and reports energy,
//! timing and correctness — the reproduction's equivalent of one MPARM
//! simulation run.
//!
//! The hybrid executor implements the paper's full protocol:
//!
//! * after every computation phase the produced chunk and serialized state
//!   are read back through the parity-checked bus (the "L cycles" check of
//!   Fig. 1) and, if clean, committed to the BCH-protected L1′;
//! * any detected-uncorrectable read — during execution or during the
//!   commit read-back — raises the Read Error Interrupt (Fig. 2a), whose
//!   service routine restores the status registers/state from L1′
//!   (Fig. 2b) and re-executes only the faulty phase;
//! * an uncorrectable strike *inside* L1′ (astronomically unlikely at
//!   t ≥ 6) falls back to a whole-task restart, counted separately.

use chunkpoint_sim::{
    Component, EnergyLedger, FaultProcess, MemoryBus, PlainBus, Sram, Trace, TraceEvent, UpsetModel,
};
use chunkpoint_workloads::{Benchmark, StreamingTask, TaskError};

use crate::config::SystemConfig;
use crate::l1prime::ProtectedBuffer;
use crate::mitigation::MitigationScheme;

/// Retry budget per phase before the run is declared unrecoverable.
const MAX_ATTEMPTS_PER_BLOCK: u32 = 64;
/// Whole-task restart budget (SW baseline and hybrid fallback).
const MAX_RESTARTS: u32 = 256;

/// A factory handing the runner fresh task instances.
///
/// The runner may build the task several times (the SW baseline restarts
/// from scratch; the hybrid builds one task per chunk configuration), so
/// it needs a *source* rather than a task. [`run`] wraps the built-in
/// [`Benchmark`]s; [`run_task`] accepts any user-defined
/// [`StreamingTask`] implementation — the extension point a downstream
/// system would use for its own kernels (see `examples/custom_task.rs`).
pub struct TaskSource<'a> {
    /// Display name for reports.
    pub name: String,
    /// Builds a fresh task processing `chunk_words`-word chunks per phase.
    pub build: &'a dyn Fn(u32) -> Box<dyn StreamingTask>,
    /// Chunk granularity used by executors that do not checkpoint
    /// (Default / HW / SW / scrubbing).
    pub default_chunk_words: u32,
}

impl std::fmt::Debug for TaskSource<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskSource")
            .field("name", &self.name)
            .field("default_chunk_words", &self.default_chunk_words)
            .finish_non_exhaustive()
    }
}

/// Outcome of one simulated run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Name of the task that was executed.
    pub task: String,
    /// Scheme in force.
    pub scheme: MitigationScheme,
    /// Energy and cycle ledger (leakage included).
    pub ledger: EnergyLedger,
    /// Drained output words, in production order.
    pub output: Vec<u32>,
    /// Detected-uncorrectable reads observed.
    pub errors_detected: u64,
    /// Checkpoint rollbacks performed (hybrid only).
    pub rollbacks: u64,
    /// Whole-task restarts performed (SW baseline / hybrid fallback).
    pub restarts: u64,
    /// Checkpoints committed (hybrid only).
    pub checkpoints: u64,
    /// Whether the task ran to completion (recovery budgets not exhausted).
    pub completed: bool,
    /// Execution event trace (Fig. 1-style timeline).
    pub trace: Trace,
}

impl RunReport {
    /// Total energy, pJ.
    #[must_use]
    pub fn energy_pj(&self) -> f64 {
        self.ledger.total_pj()
    }

    /// Total execution cycles.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.ledger.cycles()
    }

    /// Whether this run's output is bit-identical to a reference run's.
    #[must_use]
    pub fn output_matches(&self, golden: &RunReport) -> bool {
        self.output == golden.output
    }

    /// Energy normalised to a reference run (the y-axis of Fig. 5).
    #[must_use]
    pub fn energy_ratio(&self, reference: &RunReport) -> f64 {
        self.energy_pj() / reference.energy_pj()
    }

    /// Cycle count normalised to a reference run.
    #[must_use]
    pub fn cycle_ratio(&self, reference: &RunReport) -> f64 {
        self.cycles() as f64 / reference.cycles() as f64
    }
}

fn build_l1_bus(scheme: MitigationScheme, config: &SystemConfig, seed_salt: u64) -> PlainBus {
    // A timeline keeps the process live even at base rate 0 (a burst or
    // a rate shift can still strike). The L1′ protected buffer keeps its
    // plain static process: the paper's scenarios stress the main array.
    let has_timeline = config.timeline.as_ref().is_some_and(|t| !t.is_empty());
    let mut faults = if config.faults.error_rate > 0.0 || has_timeline {
        FaultProcess::new(
            config.faults.error_rate,
            UpsetModel::smu_65nm(),
            config.faults.seed ^ seed_salt,
        )
    } else {
        FaultProcess::disabled()
    };
    if has_timeline {
        faults = faults.with_timeline(config.timeline.clone().expect("checked above"));
    }
    let sram = Sram::new("l1", config.platform.l1_words, scheme.l1_kind(), faults)
        .expect("all scheme kinds are buildable");
    PlainBus::new(sram, config.platform.clone(), Component::L1)
}

fn charge_leakage(bus: &mut PlainBus, extra_leakage_uw: f64) {
    let cycles = bus.now();
    let leak = bus.sram().model().leakage_uw() + extra_leakage_uw;
    let clock = bus.platform().clock_hz;
    bus.ledger_mut().add_leakage(leak, cycles, clock);
}

/// Drains the accumulated frame output (the end-of-task DMA-out of the
/// Default/SW/HW systems) through checked loads.
fn drain_frame(
    task: &dyn StreamingTask,
    bus: &mut PlainBus,
    produced_per_block: &[u32],
    sink: &mut Vec<u32>,
) -> Result<(), chunkpoint_sim::ReadFault> {
    let region = task.output_region();
    for (block, &produced) in produced_per_block.iter().enumerate() {
        if produced == 0 {
            continue;
        }
        let offset = task.output_offset(block);
        assert!(
            offset + produced <= region.words,
            "block {block} output [{offset}, {}) exceeds region of {} words",
            offset + produced,
            region.words
        );
        bus.load_block(region.word(offset), produced, sink)?;
    }
    Ok(())
}

/// Runs `benchmark` under `scheme` in the given configuration.
///
/// # Panics
///
/// Panics only on internal invariant violations (mis-built schemes).
#[must_use]
pub fn run(benchmark: Benchmark, scheme: MitigationScheme, config: &SystemConfig) -> RunReport {
    let scale = config.scale;
    let build = move |chunk_words: u32| benchmark.build_task_scaled(chunk_words, scale);
    let source = TaskSource {
        name: benchmark.name().to_owned(),
        build: &build,
        default_chunk_words: 16,
    };
    run_task(&source, scheme, config)
}

/// Runs an arbitrary user-defined task under `scheme` — the library's
/// extension point for kernels beyond the paper's benchmark set.
#[must_use]
pub fn run_task(
    source: &TaskSource<'_>,
    scheme: MitigationScheme,
    config: &SystemConfig,
) -> RunReport {
    let mut report = match scheme {
        MitigationScheme::Default | MitigationScheme::HwEcc { .. } => {
            run_straight(source, scheme, config)
        }
        MitigationScheme::SwRestart => run_sw_restart(source, config),
        MitigationScheme::Hybrid {
            chunk_words,
            l1_prime_t,
        } => run_hybrid(source, scheme, chunk_words, l1_prime_t, config),
        MitigationScheme::HybridSingleParity {
            chunk_words,
            l1_prime_t,
        } => run_hybrid(source, scheme, chunk_words, l1_prime_t, config),
        MitigationScheme::ScrubbedSecded { interval_cycles } => {
            run_scrubbed(source, interval_cycles, config)
        }
    };
    // Single per-run clone; the executors themselves never touch the name.
    report.task = source.name.clone();
    report
}

/// The fault-free *Default* reference run (denominator of Fig. 5 and the
/// correctness oracle for "full error mitigation").
#[must_use]
pub fn golden(benchmark: Benchmark, config: &SystemConfig) -> RunReport {
    run(benchmark, MitigationScheme::Default, &config.fault_free())
}

/// Fault-free reference for a user-defined task.
#[must_use]
pub fn golden_task(source: &TaskSource<'_>, config: &SystemConfig) -> RunReport {
    run_task(source, MitigationScheme::Default, &config.fault_free())
}

/// Default / HW executors: run every phase once; HW corrects inline, the
/// Default case silently corrupts.
fn run_straight(
    source: &TaskSource<'_>,
    scheme: MitigationScheme,
    config: &SystemConfig,
) -> RunReport {
    let mut task = (source.build)(source.default_chunk_words);
    let mut bus = build_l1_bus(scheme, config, 0x5157_0001);
    let mut trace = Trace::new(4096);
    let mut output = Vec::new();
    let mut errors = 0u64;
    let mut completed = true;
    let mut produced_per_block = vec![0u32; task.total_blocks()];
    if task.init(&mut bus).is_err() {
        completed = false;
    } else {
        #[allow(clippy::needless_range_loop)] // index is also the phase id
        for block in 0..task.total_blocks() {
            trace.push(TraceEvent::PhaseStart {
                phase: block,
                cycle: bus.now(),
            });
            match task.run_block(block, &mut bus) {
                Ok(produced) => {
                    produced_per_block[block] = produced;
                    trace.push(TraceEvent::PhaseEnd {
                        phase: block,
                        cycle: bus.now(),
                    });
                }
                Err(TaskError::Read(fault)) => {
                    trace.push(TraceEvent::ReadError {
                        addr: fault.addr,
                        cycle: fault.cycle,
                    });
                    errors += 1;
                    completed = false;
                    break;
                }
                Err(TaskError::Malformed(_)) => {
                    // Silent corruption broke the stream structure (JPEG in
                    // the Default case). The real decoder would emit
                    // garbage; we keep charging the remaining phases.
                    continue;
                }
                Err(TaskError::Config(_)) => {
                    completed = false;
                    break;
                }
            }
        }
        // Frame complete: DMA the accumulated output out of L1.
        if completed
            && drain_frame(task.as_ref(), &mut bus, &produced_per_block, &mut output).is_err()
        {
            // HW baseline: beyond-t strike even the full-array ECC cannot
            // fix (never observed at realistic rates).
            errors += 1;
            completed = false;
        }
    }
    charge_leakage(&mut bus, 0.0);
    let (ledger, _) = bus.into_parts();
    RunReport {
        task: String::new(), // filled in once by run_task
        scheme,
        ledger,
        output,
        errors_detected: errors,
        rollbacks: 0,
        restarts: 0,
        checkpoints: 0,
        completed,
        trace,
    }
}

/// SW baseline: parity detection, whole-task restart on any detected
/// error.
fn run_sw_restart(source: &TaskSource<'_>, config: &SystemConfig) -> RunReport {
    let mut task = (source.build)(source.default_chunk_words);
    let mut bus = build_l1_bus(MitigationScheme::SwRestart, config, 0x5157_0002);
    let mut trace = Trace::new(4096);
    let mut output = Vec::new();
    let mut errors = 0u64;
    let mut restarts = 0u64;
    let mut completed = false;
    'attempts: while restarts <= u64::from(MAX_RESTARTS) {
        output.clear();
        if task.init(&mut bus).is_err() {
            restarts += 1;
            errors += 1;
            trace.push(TraceEvent::TaskRestart { cycle: bus.now() });
            continue;
        }
        let mut produced_per_block = vec![0u32; task.total_blocks()];
        let mut block = 0usize;
        while block < task.total_blocks() {
            match task.run_block(block, &mut bus) {
                Ok(produced) => produced_per_block[block] = produced,
                Err(TaskError::Read(_)) | Err(TaskError::Malformed(_)) => {
                    errors += 1;
                    restarts += 1;
                    trace.push(TraceEvent::TaskRestart { cycle: bus.now() });
                    continue 'attempts;
                }
                Err(TaskError::Config(_)) => break 'attempts,
            }
            block += 1;
        }
        // End-of-frame DMA-out; a detected error here also restarts.
        if drain_frame(task.as_ref(), &mut bus, &produced_per_block, &mut output).is_err() {
            errors += 1;
            restarts += 1;
            trace.push(TraceEvent::TaskRestart { cycle: bus.now() });
            continue 'attempts;
        }
        completed = true;
        break;
    }
    charge_leakage(&mut bus, 0.0);
    let (ledger, _) = bus.into_parts();
    RunReport {
        task: String::new(), // filled in once by run_task
        scheme: MitigationScheme::SwRestart,
        ledger,
        output,
        errors_detected: errors,
        rollbacks: 0,
        restarts,
        checkpoints: 0,
        completed,
        trace,
    }
}

/// SECDED + periodic scrubbing: between blocks, sweep the task's live
/// regions (correcting accumulated single-bit upsets) and charge the
/// energy of sweeping the whole array. A detected-uncorrectable word —
/// i.e. any multi-bit strike — restarts the task, like the SW baseline.
fn run_scrubbed(source: &TaskSource<'_>, interval_cycles: u32, config: &SystemConfig) -> RunReport {
    let scheme = MitigationScheme::ScrubbedSecded { interval_cycles };
    let mut task = (source.build)(source.default_chunk_words);
    let mut bus = build_l1_bus(scheme, config, 0x5157_0005);
    let mut trace = Trace::new(4096);
    let mut output = Vec::new();
    let mut errors = 0u64;
    let mut restarts = 0u64;
    let mut completed = false;
    let l1_words = config.platform.l1_words as u64;
    'attempts: while restarts <= u64::from(MAX_RESTARTS) {
        output.clear();
        let mut next_scrub = bus.now() + u64::from(interval_cycles);
        if task.init(&mut bus).is_err() {
            restarts += 1;
            errors += 1;
            continue;
        }
        let mut produced_per_block = vec![0u32; task.total_blocks()];
        let mut block = 0usize;
        while block < task.total_blocks() {
            match task.run_block(block, &mut bus) {
                Ok(produced) => produced_per_block[block] = produced,
                Err(TaskError::Read(_)) | Err(TaskError::Malformed(_)) => {
                    errors += 1;
                    restarts += 1;
                    trace.push(TraceEvent::TaskRestart { cycle: bus.now() });
                    continue 'attempts;
                }
                Err(TaskError::Config(_)) => break 'attempts,
            }
            // Periodic scrub sweep.
            if bus.now() >= next_scrub {
                next_scrub = bus.now() + u64::from(interval_cycles);
                let regions = [task.state_region(), task.output_region()];
                for region in regions {
                    for addr in region.iter() {
                        match bus.load(addr) {
                            Ok(value) => bus.store(addr, value),
                            Err(_) => {
                                // Multi-bit strike: beyond SECDED. The
                                // scrubber invalidates the word (a real
                                // system would mark/refill it) so the
                                // restart does not re-trip on it before
                                // the task rewrites it.
                                bus.store(addr, 0);
                                errors += 1;
                                restarts += 1;
                                trace.push(TraceEvent::TaskRestart { cycle: bus.now() });
                                continue 'attempts;
                            }
                        }
                    }
                }
                // Charge the sweep of the rest of the array (the scrubber
                // does not know the live set); time overlaps execution via
                // cycle stealing, energy does not.
                let swept: u64 = regions.iter().map(|r| u64::from(r.words)).sum();
                let rest = l1_words.saturating_sub(swept) as f64;
                let model = bus.sram().model();
                let pj = rest * (model.read_energy_pj() + model.write_energy_pj());
                bus.ledger_mut().add(Component::L1, pj);
            }
            block += 1;
        }
        if drain_frame(task.as_ref(), &mut bus, &produced_per_block, &mut output).is_err() {
            errors += 1;
            restarts += 1;
            trace.push(TraceEvent::TaskRestart { cycle: bus.now() });
            continue 'attempts;
        }
        completed = true;
        break;
    }
    charge_leakage(&mut bus, 0.0);
    let (ledger, _) = bus.into_parts();
    RunReport {
        task: String::new(), // filled in once by run_task
        scheme,
        ledger,
        output,
        errors_detected: errors,
        rollbacks: 0,
        restarts,
        checkpoints: 0,
        completed,
        trace,
    }
}

/// The proposed hybrid executor (shared by the sound interleaved-parity
/// configuration and the literal single-parity counter-example).
fn run_hybrid(
    source: &TaskSource<'_>,
    scheme: MitigationScheme,
    chunk_words: u32,
    l1_prime_t: u8,
    config: &SystemConfig,
) -> RunReport {
    let mut task = (source.build)(chunk_words);
    let mut bus = build_l1_bus(scheme, config, 0x5157_0003);
    let state_words = task.state_region().words;
    let buffer_words = state_words + task.profile().block_words;
    let mut l1_prime = ProtectedBuffer::new(
        buffer_words,
        l1_prime_t,
        config.faults.error_rate,
        config.faults.seed ^ 0x5157_0004,
    );
    let mut trace = Trace::new(8192);
    let mut output = Vec::new();
    let mut errors = 0u64;
    let mut rollbacks = 0u64;
    let mut restarts = 0u64;
    let mut checkpoints = 0u64;
    let mut completed = false;

    'restart: while restarts <= u64::from(MAX_RESTARTS) {
        output.clear();
        if task.init(&mut bus).is_err() {
            restarts += 1;
            continue;
        }
        // CH(0): commit the initial state so phase 0 is recoverable.
        if commit_checkpoint(task.as_mut(), &mut bus, &mut l1_prime, 0, None, &mut trace).is_err() {
            restarts += 1;
            continue;
        }
        checkpoints += 1;

        let total = task.total_blocks();
        let mut block = 0usize;
        while block < total {
            let mut attempts = 0u32;
            loop {
                if attempts >= MAX_ATTEMPTS_PER_BLOCK {
                    break 'restart; // unrecoverable: retry budget exhausted
                }
                attempts += 1;
                trace.push(TraceEvent::PhaseStart {
                    phase: block,
                    cycle: bus.now(),
                });
                let produced = match task.run_block(block, &mut bus) {
                    Ok(produced) => produced,
                    Err(TaskError::Read(fault)) => {
                        trace.push(TraceEvent::ReadError {
                            addr: fault.addr,
                            cycle: fault.cycle,
                        });
                        errors += 1;
                        if service_read_error(
                            task.as_mut(),
                            &mut bus,
                            &mut l1_prime,
                            state_words,
                            &mut trace,
                            block,
                        )
                        .is_err()
                        {
                            restarts += 1;
                            continue 'restart;
                        }
                        rollbacks += 1;
                        continue;
                    }
                    Err(TaskError::Malformed(_)) => {
                        // Parity missed a corruption (even-weight flip) and
                        // the stream structure broke: roll back and
                        // re-execute; the input window is re-DMAed clean.
                        errors += 1;
                        if service_read_error(
                            task.as_mut(),
                            &mut bus,
                            &mut l1_prime,
                            state_words,
                            &mut trace,
                            block,
                        )
                        .is_err()
                        {
                            restarts += 1;
                            continue 'restart;
                        }
                        rollbacks += 1;
                        continue;
                    }
                    Err(TaskError::Config(_)) => break 'restart,
                };
                // Commit CH(block+1): verify chunk + state through the
                // parity-checked bus, then buffer into L1′.
                match commit_checkpoint(
                    task.as_mut(),
                    &mut bus,
                    &mut l1_prime,
                    block + 1,
                    Some((block, produced)),
                    &mut trace,
                ) {
                    Ok(chunk) => {
                        checkpoints += 1;
                        output.extend_from_slice(&chunk[state_words as usize..]);
                        trace.push(TraceEvent::PhaseEnd {
                            phase: block,
                            cycle: bus.now(),
                        });
                        break;
                    }
                    Err(fault) => {
                        trace.push(TraceEvent::ReadError {
                            addr: fault.addr,
                            cycle: fault.cycle,
                        });
                        errors += 1;
                        if service_read_error(
                            task.as_mut(),
                            &mut bus,
                            &mut l1_prime,
                            state_words,
                            &mut trace,
                            block,
                        )
                        .is_err()
                        {
                            restarts += 1;
                            continue 'restart;
                        }
                        rollbacks += 1;
                    }
                }
            }
            block += 1;
        }
        completed = true;
        break;
    }

    charge_leakage(&mut bus, l1_prime.model().leakage_uw());
    let (ledger, _) = bus.into_parts();
    RunReport {
        task: String::new(), // filled in once by run_task
        scheme,
        ledger,
        output,
        errors_detected: errors,
        rollbacks,
        restarts,
        checkpoints,
        completed,
        trace,
    }
}

/// Reads state (+ block `b`'s `produced` output words when `Some((b, produced))`)
/// through the checked bus and stores them into L1′. Returns the committed
/// words `[state..., chunk...]`.
fn commit_checkpoint(
    task: &mut dyn StreamingTask,
    bus: &mut PlainBus,
    l1_prime: &mut ProtectedBuffer,
    index: usize,
    produced: Option<(usize, u32)>,
    trace: &mut Trace,
) -> Result<Vec<u32>, chunkpoint_sim::ReadFault> {
    // Software checkpoint trigger cost.
    bus.tick(bus.platform().checkpoint_trigger_cycles);
    let state_region = task.state_region();
    let capacity = state_region.words + produced.map_or(0, |(_, n)| n);
    let mut words = Vec::with_capacity(capacity as usize);
    // Commit read-back as burst transfers through the batch entry point.
    bus.load_block(state_region.base, state_region.words, &mut words)?;
    if let Some((block, produced)) = produced {
        if produced > 0 {
            let out_region = task.output_region();
            let offset = task.output_offset(block);
            assert!(
                offset + produced <= out_region.words,
                "block {block} chunk [{offset}, {}) exceeds region of {} words",
                offset + produced,
                out_region.words
            );
            bus.load_block(out_region.word(offset), produced, &mut words)?;
        }
    }
    let now = bus.now();
    l1_prime.store_checkpoint(&words, now, bus.ledger_mut());
    trace.push(TraceEvent::Checkpoint {
        index,
        cycle: now,
        chunk_words: words.len() as u32,
    });
    Ok(words)
}

/// The Read Error Interrupt service routine (Fig. 2b): restore the status
/// registers / state region from L1′ and point execution back at the last
/// committed checkpoint. Returns `Err` only when L1′ itself is
/// uncorrectable (fall back to task restart).
fn service_read_error(
    task: &mut dyn StreamingTask,
    bus: &mut PlainBus,
    l1_prime: &mut ProtectedBuffer,
    state_words: u32,
    trace: &mut Trace,
    block: usize,
) -> Result<(), crate::l1prime::RestoreError> {
    // Pipeline flush + vectoring + register restore cost.
    bus.tick(bus.platform().isr_cycles);
    let now = bus.now();
    let restored = l1_prime.load_checkpoint(state_words, now, bus.ledger_mut())?;
    let state_region = task.state_region();
    for (i, &w) in restored.iter().enumerate() {
        bus.store(state_region.word(i as u32), w);
    }
    trace.push(TraceEvent::Rollback {
        to_checkpoint: block,
        cycle: bus.now(),
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config(seed: u64) -> SystemConfig {
        let mut config = SystemConfig::paper(seed);
        config.scale = 0.25;
        config
    }

    #[test]
    fn golden_runs_complete_everywhere() {
        for benchmark in Benchmark::ALL {
            let report = golden(benchmark, &fast_config(1));
            assert!(report.completed, "{benchmark}");
            assert!(!report.output.is_empty(), "{benchmark}");
            assert!(report.energy_pj() > 0.0, "{benchmark}");
            assert_eq!(report.errors_detected, 0, "{benchmark}");
        }
    }

    #[test]
    fn golden_is_deterministic() {
        let a = golden(Benchmark::AdpcmEncode, &fast_config(1));
        let b = golden(Benchmark::AdpcmEncode, &fast_config(2));
        assert!(a.output_matches(&b)); // fault-free: seed must not matter
        assert_eq!(a.cycles(), b.cycles());
    }

    #[test]
    fn hybrid_matches_golden_under_faults() {
        let config = fast_config(42);
        for benchmark in [Benchmark::AdpcmEncode, Benchmark::G721Decode] {
            let reference = golden(benchmark, &config);
            let report = run(
                benchmark,
                MitigationScheme::Hybrid {
                    chunk_words: 16,
                    l1_prime_t: 8,
                },
                &config,
            );
            assert!(report.completed, "{benchmark}");
            assert!(
                report.output_matches(&reference),
                "{benchmark}: hybrid output diverged"
            );
        }
    }

    #[test]
    fn hybrid_commits_checkpoints() {
        let config = fast_config(7);
        let report = run(
            Benchmark::AdpcmDecode,
            MitigationScheme::Hybrid {
                chunk_words: 16,
                l1_prime_t: 8,
            },
            &config,
        );
        assert!(report.checkpoints as usize >= report.output.len() / 16);
        assert!(report.trace.checkpoints() > 0);
    }

    #[test]
    fn default_under_heavy_faults_corrupts_silently() {
        // Full-scale frame (multiple blocks) so the accumulated output
        // buffer has real exposure before the end-of-frame drain.
        let mut config = SystemConfig::paper(3);
        config.faults.error_rate = 1e-4; // aggressive
        let reference = golden(Benchmark::AdpcmEncode, &config);
        let report = run(Benchmark::AdpcmEncode, MitigationScheme::Default, &config);
        // No detection machinery: zero detected errors...
        assert_eq!(report.errors_detected, 0);
        // ...but the output is wrong.
        assert!(!report.output_matches(&reference));
    }

    #[test]
    fn hw_ecc_corrects_and_matches() {
        let mut config = fast_config(4);
        config.faults.error_rate = 1e-5;
        let reference = golden(Benchmark::AdpcmEncode, &config);
        let report = run(
            Benchmark::AdpcmEncode,
            MitigationScheme::hw_baseline(),
            &config,
        );
        assert!(report.completed);
        assert!(report.output_matches(&reference));
    }

    #[test]
    fn sw_restart_recovers() {
        let mut config = fast_config(5);
        config.faults.error_rate = 2e-6;
        let reference = golden(Benchmark::AdpcmEncode, &config);
        let report = run(Benchmark::AdpcmEncode, MitigationScheme::SwRestart, &config);
        assert!(report.completed);
        assert!(report.output_matches(&reference));
    }

    #[test]
    fn energy_ratios_are_sane() {
        let config = fast_config(6);
        let benchmark = Benchmark::AdpcmDecode;
        let reference = golden(benchmark, &config);
        let hybrid = run(
            benchmark,
            MitigationScheme::Hybrid {
                chunk_words: 16,
                l1_prime_t: 8,
            },
            &config,
        );
        let hw = run(benchmark, MitigationScheme::hw_baseline(), &config);
        let ratio_hybrid = hybrid.energy_ratio(&reference);
        let ratio_hw = hw.energy_ratio(&reference);
        assert!(ratio_hybrid > 1.0, "hybrid {ratio_hybrid}");
        assert!(
            ratio_hw > ratio_hybrid,
            "hw {ratio_hw} vs hybrid {ratio_hybrid}"
        );
    }
}
