//! System-level configuration: the designer-provided constraints and fault
//! environment of the paper's evaluation (Section III-A).

use chunkpoint_sim::{FaultTimeline, Platform};

/// The hard design-time constraints of the optimization problem
/// (Eqs. 4–5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemConstraints {
    /// OV1: affordable area overhead as a fraction of the L1 macro area
    /// (the paper's industrial partners allow 5 %).
    pub area_overhead: f64,
    /// OV2: affordable cycle overhead as a fraction of baseline execution
    /// time (the paper uses 10 %).
    pub cycle_overhead: f64,
}

impl SystemConstraints {
    /// The paper's constraint set: OV1 = 5 %, OV2 = 10 %.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            area_overhead: 0.05,
            cycle_overhead: 0.10,
        }
    }

    /// Custom constraints.
    ///
    /// # Panics
    ///
    /// Panics unless both overheads are in `(0, 1)`.
    #[must_use]
    pub fn new(area_overhead: f64, cycle_overhead: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&area_overhead) && area_overhead > 0.0,
            "area overhead must be in (0,1)"
        );
        assert!(
            (0.0..1.0).contains(&cycle_overhead) && cycle_overhead > 0.0,
            "cycle overhead must be in (0,1)"
        );
        Self {
            area_overhead,
            cycle_overhead,
        }
    }
}

impl Default for SystemConstraints {
    fn default() -> Self {
        Self::paper()
    }
}

/// The fault environment of a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEnvironment {
    /// Strike rate λ in words per cycle. The paper's worst case is 1e-6
    /// (upper bound from ERSA, ref. 14 of the paper).
    pub error_rate: f64,
    /// RNG seed for the fault process.
    pub seed: u64,
}

impl FaultEnvironment {
    /// The paper's evaluation point: λ = 10⁻⁶ word/cycle.
    #[must_use]
    pub fn paper(seed: u64) -> Self {
        Self {
            error_rate: 1e-6,
            seed,
        }
    }

    /// A fault-free environment (golden runs).
    #[must_use]
    pub fn fault_free() -> Self {
        Self {
            error_rate: 0.0,
            seed: 0,
        }
    }
}

/// Everything a mitigation executor needs to know about the system.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// The SoC being simulated.
    pub platform: Platform,
    /// Designer constraints.
    pub constraints: SystemConstraints,
    /// Fault environment.
    pub faults: FaultEnvironment,
    /// Input-scale factor passed to the benchmark builders.
    pub scale: f64,
    /// Optional dynamic fault regime (rate shifts, bursts, scrubbing)
    /// applied to the main L1 array — the simulator half of a timeline
    /// scenario. `None` keeps the static Poisson environment and leaves
    /// every pre-existing run byte-identical.
    pub timeline: Option<FaultTimeline>,
}

impl SystemConfig {
    /// The paper's setup on the LH7A400 platform.
    #[must_use]
    pub fn paper(seed: u64) -> Self {
        Self {
            platform: Platform::lh7a400(),
            constraints: SystemConstraints::paper(),
            faults: FaultEnvironment::paper(seed),
            scale: 1.0,
            timeline: None,
        }
    }

    /// Same configuration with faults disabled (golden reference runs).
    /// The timeline is dropped too: golden runs are strike-free by
    /// definition, bursts included.
    #[must_use]
    pub fn fault_free(&self) -> Self {
        Self {
            faults: FaultEnvironment::fault_free(),
            timeline: None,
            ..self.clone()
        }
    }

    /// Same configuration with a different fault-process seed — the
    /// per-scenario knob of a Monte Carlo campaign (rate, platform and
    /// constraints untouched).
    #[must_use]
    pub fn with_seed(&self, seed: u64) -> Self {
        let mut config = self.clone();
        config.faults.seed = seed;
        config
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::paper(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let c = SystemConstraints::paper();
        assert!((c.area_overhead - 0.05).abs() < 1e-12);
        assert!((c.cycle_overhead - 0.10).abs() < 1e-12);
        let f = FaultEnvironment::paper(1);
        assert!((f.error_rate - 1e-6).abs() < 1e-18);
    }

    #[test]
    fn fault_free_config_zeroes_rate_only() {
        let config = SystemConfig::paper(9);
        let golden = config.fault_free();
        assert_eq!(golden.platform, config.platform);
        assert_eq!(golden.constraints, config.constraints);
        assert_eq!(golden.faults.error_rate, 0.0);
    }

    #[test]
    fn with_seed_changes_seed_only() {
        let config = SystemConfig::paper(9);
        let derived = config.with_seed(1234);
        assert_eq!(derived.faults.seed, 1234);
        assert_eq!(derived.faults.error_rate, config.faults.error_rate);
        assert_eq!(derived.platform, config.platform);
        assert_eq!(derived.constraints, config.constraints);
        assert_eq!(derived.scale, config.scale);
    }

    #[test]
    #[should_panic(expected = "area overhead")]
    fn rejects_zero_area_budget() {
        let _ = SystemConstraints::new(0.0, 0.1);
    }
}
