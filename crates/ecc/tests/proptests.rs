//! Property-based tests of the coding-theory invariants every scheme must
//! uphold, under randomly drawn data words and error patterns.

use proptest::collection::btree_set;
use proptest::prelude::*;

use chunkpoint_ecc::{build_scheme, BchCode, BitBuf, Decoded, EccKind, EccScheme, SecdedCode};

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// Every scheme round-trips every data word untouched.
    #[test]
    fn clean_roundtrip_all_schemes(data: u32, kind_idx in 0usize..26) {
        let kinds = EccKind::catalog();
        let kind = kinds[kind_idx % kinds.len()];
        let scheme = build_scheme(kind).expect("catalog kinds build");
        prop_assert_eq!(scheme.decode(&scheme.encode(data)), Decoded::Clean { data });
    }

    /// BCH corrects any pattern of up to t random bit flips.
    #[test]
    fn bch_corrects_up_to_t_random_flips(
        data: u32,
        t in 1usize..=18,
        flip_seed in any::<u64>(),
    ) {
        let code = BchCode::for_word(t).expect("valid strength");
        let mut stored = code.encode(data);
        let len = stored.len();
        // Derive up to t distinct flip positions from the seed.
        let mut positions = std::collections::BTreeSet::new();
        let mut x = flip_seed | 1;
        while positions.len() < t {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            positions.insert((x >> 33) as usize % len);
        }
        for &p in &positions {
            stored.flip(p);
        }
        match code.decode(&stored) {
            Decoded::Corrected { data: d, bits_corrected } => {
                prop_assert_eq!(d, data);
                prop_assert_eq!(bits_corrected as usize, positions.len());
            }
            other => prop_assert!(false, "t={t}: {other:?}"),
        }
    }

    /// SECDED: corrects any 1 flip, detects any 2 flips.
    #[test]
    fn secded_single_correct_double_detect(
        data: u32,
        flips in btree_set(0usize..39, 1..=2),
    ) {
        let code = SecdedCode::new();
        let mut stored = code.encode(data);
        for &p in &flips {
            stored.flip(p);
        }
        match (flips.len(), code.decode(&stored)) {
            (1, Decoded::Corrected { data: d, bits_corrected: 1 }) => {
                prop_assert_eq!(d, data)
            }
            (2, Decoded::DetectedUncorrectable) => {}
            (n, other) => prop_assert!(false, "{n} flips -> {other:?}"),
        }
    }

    /// Interleaved parity detects every adjacent burst up to its width.
    #[test]
    fn interleaved_parity_detects_bursts(
        data: u32,
        ways in 2usize..=8,
        start_frac in 0.0f64..1.0,
        width_frac in 0.0f64..1.0,
    ) {
        let scheme = build_scheme(EccKind::InterleavedParity { ways: ways as u8 })
            .expect("valid ways");
        let mut stored = scheme.encode(data);
        let width = 1 + (width_frac * (ways as f64 - 1.0)) as usize;
        let start = (start_frac * (stored.len() - width) as f64) as usize;
        for p in start..start + width {
            stored.flip(p);
        }
        prop_assert_eq!(scheme.decode(&stored), Decoded::DetectedUncorrectable);
    }

    /// Decoders never return `Clean` for a word that differs from a real
    /// codeword (any nonzero syndrome must surface as Corrected or
    /// Detected) — checked on BCH with arbitrary corruption.
    #[test]
    fn bch_never_claims_clean_on_modified_words(
        data: u32,
        t in 1usize..=8,
        noise: u64,
    ) {
        let code = BchCode::for_word(t).expect("valid strength");
        let clean = code.encode(data);
        let mut stored = clean;
        let len = stored.len();
        // Flip a pseudo-random nonempty subset.
        let mut any = false;
        for p in 0..len {
            if (noise >> (p % 64)) & 1 == 1 && p % 3 == (noise as usize) % 3 {
                stored.flip(p);
                any = true;
            }
        }
        prop_assume!(any);
        if let Decoded::Clean { data: d } = code.decode(&stored) {
            // `Clean` may only ever mean "this is a valid codeword" —
            // either the original (flips cancelled) or, for patterns of
            // weight >= d_min, a different one. It must never be a
            // non-codeword passed through.
            prop_assert_eq!(code.encode(d), stored);
            if stored == clean {
                prop_assert_eq!(d, data);
            }
        }
    }

    /// Check-bit counts reported by schemes match their stored length.
    #[test]
    fn stored_length_is_data_plus_check(kind_idx in 0usize..26, data: u32) {
        let kinds = EccKind::catalog();
        let kind = kinds[kind_idx % kinds.len()];
        let scheme = build_scheme(kind).expect("catalog kinds build");
        prop_assert_eq!(
            scheme.encode(data).len(),
            scheme.data_bits() + scheme.check_bits()
        );
    }

    /// Differential: the table-driven SECDED encoder is bit-identical to
    /// the retained bit-serial reference for every payload.
    #[test]
    fn secded_table_encode_matches_reference(data: u32) {
        let code = SecdedCode::new();
        prop_assert_eq!(code.encode(data), code.encode_reference(data));
    }

    /// Differential: the table-driven BCH encoder (byte-wise remainder
    /// lookups) is bit-identical to the retained LFSR reference for every
    /// strength and payload.
    #[test]
    fn bch_table_encode_matches_reference(data: u32, t in 1usize..=18) {
        let code = BchCode::for_word(t).expect("valid strength");
        prop_assert_eq!(code.encode(data), code.encode_reference(data));
    }

    /// Differential: table-driven and bit-serial BCH decoders agree on
    /// verdict *and* corrected word for every pattern of 0..=t+1 flips —
    /// inside the guarantee and one step beyond it.
    #[test]
    fn bch_table_decode_matches_reference(
        data: u32,
        t in 1usize..=18,
        extra in 0usize..=1,
        flip_seed in any::<u64>(),
    ) {
        let code = BchCode::for_word(t).expect("valid strength");
        let mut stored = code.encode(data);
        let len = stored.len();
        let flips = (flip_seed % (t as u64 + 1)) as usize + extra;
        let mut positions = std::collections::BTreeSet::new();
        let mut x = flip_seed | 1;
        while positions.len() < flips {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            positions.insert((x >> 33) as usize % len);
        }
        for &p in &positions {
            stored.flip(p);
        }
        prop_assert_eq!(code.decode(&stored), code.decode_reference(&stored));
    }

    /// The zero-syndrome fast exit fires exactly on codewords: every
    /// encode lands in it, every nonempty flip pattern within the
    /// detection guarantee falls out of it.
    #[test]
    fn bch_fast_exit_is_exactly_the_codeword_set(
        data: u32,
        t in 1usize..=18,
        flip_seed in any::<u64>(),
    ) {
        let code = BchCode::for_word(t).expect("valid strength");
        let clean = code.encode(data);
        prop_assert!(code.is_codeword(&clean));
        prop_assert_eq!(code.decode(&clean), Decoded::Clean { data });
        let flips = 1 + (flip_seed % t as u64) as usize;
        let mut stored = clean;
        let len = stored.len();
        let mut positions = std::collections::BTreeSet::new();
        let mut x = flip_seed | 1;
        while positions.len() < flips {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            positions.insert((x >> 33) as usize % len);
        }
        for &p in &positions {
            stored.flip(p);
        }
        prop_assert!(!code.is_codeword(&stored), "<=t flips kept a zero syndrome");
    }

    /// Batch APIs are semantically identical to the per-word entry points
    /// for every scheme in the catalog (specialized overrides included).
    #[test]
    fn block_apis_match_per_word(
        kind_idx in 0usize..28,
        words in proptest::collection::vec(any::<u32>(), 1..24),
        flip_seed in any::<u64>(),
    ) {
        let kinds = EccKind::catalog();
        let kind = kinds[kind_idx % kinds.len()];
        let scheme = build_scheme(kind).expect("catalog kinds build");
        let mut block = vec![BitBuf::default(); words.len()];
        scheme.encode_block(&words, &mut block);
        for (i, &w) in words.iter().enumerate() {
            prop_assert_eq!(block[i], scheme.encode(w), "kind {} word {}", kind, i);
        }
        // Corrupt a few stored words, then compare block and per-word
        // decode outcomes.
        let mut x = flip_seed;
        for stored in block.iter_mut() {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let flips = (x >> 60) as usize % 3;
            for f in 0..flips {
                let bit = ((x >> (8 * f)) as usize) % stored.len();
                stored.flip(bit);
            }
        }
        let mut decoded = vec![Decoded::Clean { data: 0 }; block.len()];
        scheme.decode_block(&block, &mut decoded);
        for (i, stored) in block.iter().enumerate() {
            prop_assert_eq!(decoded[i], scheme.decode(stored), "kind {} word {}", kind, i);
        }
    }
}
