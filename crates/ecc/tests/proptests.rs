//! Property-based tests of the coding-theory invariants every scheme must
//! uphold, under randomly drawn data words and error patterns.

use proptest::collection::btree_set;
use proptest::prelude::*;

use chunkpoint_ecc::{build_scheme, BchCode, Decoded, EccKind, EccScheme, SecdedCode};

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// Every scheme round-trips every data word untouched.
    #[test]
    fn clean_roundtrip_all_schemes(data: u32, kind_idx in 0usize..26) {
        let kinds = EccKind::catalog();
        let kind = kinds[kind_idx % kinds.len()];
        let scheme = build_scheme(kind).expect("catalog kinds build");
        prop_assert_eq!(scheme.decode(&scheme.encode(data)), Decoded::Clean { data });
    }

    /// BCH corrects any pattern of up to t random bit flips.
    #[test]
    fn bch_corrects_up_to_t_random_flips(
        data: u32,
        t in 1usize..=18,
        flip_seed in any::<u64>(),
    ) {
        let code = BchCode::for_word(t).expect("valid strength");
        let mut stored = code.encode(data);
        let len = stored.len();
        // Derive up to t distinct flip positions from the seed.
        let mut positions = std::collections::BTreeSet::new();
        let mut x = flip_seed | 1;
        while positions.len() < t {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            positions.insert((x >> 33) as usize % len);
        }
        for &p in &positions {
            stored.flip(p);
        }
        match code.decode(&stored) {
            Decoded::Corrected { data: d, bits_corrected } => {
                prop_assert_eq!(d, data);
                prop_assert_eq!(bits_corrected as usize, positions.len());
            }
            other => prop_assert!(false, "t={t}: {other:?}"),
        }
    }

    /// SECDED: corrects any 1 flip, detects any 2 flips.
    #[test]
    fn secded_single_correct_double_detect(
        data: u32,
        flips in btree_set(0usize..39, 1..=2),
    ) {
        let code = SecdedCode::new();
        let mut stored = code.encode(data);
        for &p in &flips {
            stored.flip(p);
        }
        match (flips.len(), code.decode(&stored)) {
            (1, Decoded::Corrected { data: d, bits_corrected: 1 }) => {
                prop_assert_eq!(d, data)
            }
            (2, Decoded::DetectedUncorrectable) => {}
            (n, other) => prop_assert!(false, "{n} flips -> {other:?}"),
        }
    }

    /// Interleaved parity detects every adjacent burst up to its width.
    #[test]
    fn interleaved_parity_detects_bursts(
        data: u32,
        ways in 2usize..=8,
        start_frac in 0.0f64..1.0,
        width_frac in 0.0f64..1.0,
    ) {
        let scheme = build_scheme(EccKind::InterleavedParity { ways: ways as u8 })
            .expect("valid ways");
        let mut stored = scheme.encode(data);
        let width = 1 + (width_frac * (ways as f64 - 1.0)) as usize;
        let start = (start_frac * (stored.len() - width) as f64) as usize;
        for p in start..start + width {
            stored.flip(p);
        }
        prop_assert_eq!(scheme.decode(&stored), Decoded::DetectedUncorrectable);
    }

    /// Decoders never return `Clean` for a word that differs from a real
    /// codeword (any nonzero syndrome must surface as Corrected or
    /// Detected) — checked on BCH with arbitrary corruption.
    #[test]
    fn bch_never_claims_clean_on_modified_words(
        data: u32,
        t in 1usize..=8,
        noise: u64,
    ) {
        let code = BchCode::for_word(t).expect("valid strength");
        let clean = code.encode(data);
        let mut stored = clean;
        let len = stored.len();
        // Flip a pseudo-random nonempty subset.
        let mut any = false;
        for p in 0..len {
            if (noise >> (p % 64)) & 1 == 1 && p % 3 == (noise as usize) % 3 {
                stored.flip(p);
                any = true;
            }
        }
        prop_assume!(any);
        if let Decoded::Clean { data: d } = code.decode(&stored) {
            // `Clean` may only ever mean "this is a valid codeword" —
            // either the original (flips cancelled) or, for patterns of
            // weight >= d_min, a different one. It must never be a
            // non-codeword passed through.
            prop_assert_eq!(code.encode(d), stored);
            if stored == clean {
                prop_assert_eq!(d, data);
            }
        }
    }

    /// Check-bit counts reported by schemes match their stored length.
    #[test]
    fn stored_length_is_data_plus_check(kind_idx in 0usize..26, data: u32) {
        let kinds = EccKind::catalog();
        let kind = kinds[kind_idx % kinds.len()];
        let scheme = build_scheme(kind).expect("catalog kinds build");
        prop_assert_eq!(
            scheme.encode(data).len(),
            scheme.data_bits() + scheme.check_bits()
        );
    }
}
