//! Hardware-cost estimates for each protection scheme.
//!
//! The paper's optimization problem constrains the *area* of the protected
//! buffer (Eq. 4) and the *cycle* overhead of mitigation (Eq. 5), so the
//! system model needs per-code estimates of storage overhead, codec logic
//! size, and codec latency. The gate counts below are engineering fits to
//! published 65 nm syntheses of parallel Hamming and BCH codecs (encoder
//! ≈ r·w/2 2-input XORs; BCH decoder dominated by the syndrome network and
//! Chien search, growing ≈ t·m²); they only need to be *monotone and
//! correctly shaped* for the feasibility region of Fig. 4 to reproduce.

use crate::bch::BchCode;
use crate::scheme::{build_scheme, BuildSchemeError, EccKind, EccScheme};

/// Static hardware cost of one protection scheme instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodeOverhead {
    /// Redundant stored bits per 32-bit word.
    pub check_bits: usize,
    /// 2-input-gate-equivalent size of the encoder.
    pub encoder_gates: u64,
    /// 2-input-gate-equivalent size of the decoder/corrector.
    pub decoder_gates: u64,
    /// Extra pipeline cycles *every* read spends in the decoder before
    /// data is usable (zero for parity-class detectors and SECDED, which
    /// check combinationally; multi-cycle for wide BCH syndrome networks).
    pub read_latency_cycles: u32,
    /// Extra pipeline cycles a *corrected* read additionally spends in the
    /// corrector (Berlekamp–Massey + Chien for BCH).
    pub correction_latency_cycles: u32,
    /// Relative dynamic-energy multiplier for each access through the codec
    /// (1.0 = bare SRAM access).
    pub access_energy_factor: f64,
}

impl CodeOverhead {
    /// Estimates the overhead of `kind`.
    ///
    /// # Errors
    ///
    /// Returns [`BuildSchemeError`] when `kind` itself is unbuildable.
    ///
    /// # Examples
    ///
    /// ```
    /// use chunkpoint_ecc::{CodeOverhead, EccKind};
    ///
    /// let secded = CodeOverhead::for_kind(EccKind::Secded)?;
    /// let bch8 = CodeOverhead::for_kind(EccKind::Bch { t: 8 })?;
    /// assert!(bch8.check_bits > secded.check_bits);
    /// assert!(bch8.decoder_gates > secded.decoder_gates);
    /// # Ok::<(), chunkpoint_ecc::BuildSchemeError>(())
    /// ```
    pub fn for_kind(kind: EccKind) -> Result<Self, BuildSchemeError> {
        let overhead = match kind {
            EccKind::None => Self {
                check_bits: 0,
                encoder_gates: 0,
                decoder_gates: 0,
                read_latency_cycles: 0,
                correction_latency_cycles: 0,
                access_energy_factor: 1.0,
            },
            EccKind::Parity => Self {
                check_bits: 1,
                encoder_gates: 31,
                decoder_gates: 32,
                read_latency_cycles: 0,
                correction_latency_cycles: 0,
                access_energy_factor: 1.03,
            },
            EccKind::InterleavedParity { ways } => Self {
                check_bits: usize::from(ways),
                encoder_gates: 32,
                decoder_gates: 40,
                read_latency_cycles: 0,
                correction_latency_cycles: 0,
                access_energy_factor: 1.04,
            },
            EccKind::Secded => Self {
                check_bits: 7,
                // 6 parity trees over ~18 inputs each + syndrome decode.
                encoder_gates: 140,
                decoder_gates: 260,
                read_latency_cycles: 0,
                correction_latency_cycles: 1,
                access_energy_factor: 1.18,
            },
            EccKind::TwoDimParity => Self {
                check_bits: 13,
                // 13 parity trees over 4-45 inputs + intersection decode.
                encoder_gates: 110,
                decoder_gates: 170,
                read_latency_cycles: 0,
                correction_latency_cycles: 1,
                access_energy_factor: 1.10,
            },
            EccKind::InterleavedSecded { ways } => {
                let ways = u64::from(ways);
                let scheme = build_scheme(kind)?;
                Self {
                    check_bits: scheme.check_bits(),
                    encoder_gates: 70 * ways,
                    decoder_gates: 130 * ways,
                    read_latency_cycles: 0,
                    correction_latency_cycles: 1,
                    access_energy_factor: 1.18 + 0.02 * ways as f64,
                }
            }
            EccKind::Bch { t } => {
                let code = BchCode::for_word(t as usize)?;
                let r = code.check_bits() as u64;
                let m = u64::from(code.m());
                let t64 = u64::from(t);
                Self {
                    check_bits: code.check_bits(),
                    // Parallel LFSR encoder: r parity trees over ~w/2 taps.
                    encoder_gates: r * 16,
                    // Syndrome network (2t GF multipliers over the stored
                    // word) + Berlekamp–Massey datapath + Chien search.
                    decoder_gates: 2 * t64 * m * m + 55 * t64 * m + 400,
                    // Even a clean read waits on the pipelined syndrome
                    // check of a wide code.
                    read_latency_cycles: 1 + t as u32 / 4,
                    correction_latency_cycles: 2 + t as u32,
                    access_energy_factor: 1.2 + 0.07 * t as f64,
                }
            }
        };
        Ok(overhead)
    }

    /// Total stored bits per word under this scheme.
    #[must_use]
    pub fn total_bits(&self) -> usize {
        32 + self.check_bits
    }

    /// Storage blow-up factor relative to an unprotected 32-bit word.
    #[must_use]
    pub fn storage_factor(&self) -> f64 {
        self.total_bits() as f64 / 32.0
    }

    /// Total codec logic in gate equivalents.
    #[must_use]
    pub fn logic_gates(&self) -> u64 {
        self.encoder_gates + self.decoder_gates
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_free() {
        let oh = CodeOverhead::for_kind(EccKind::None).unwrap();
        assert_eq!(oh.check_bits, 0);
        assert_eq!(oh.logic_gates(), 0);
        assert!((oh.storage_factor() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn check_bits_match_live_schemes() {
        for kind in EccKind::catalog() {
            let oh = CodeOverhead::for_kind(kind).unwrap();
            let scheme = build_scheme(kind).unwrap();
            assert_eq!(oh.check_bits, scheme.check_bits(), "{kind}");
        }
    }

    #[test]
    fn bch_costs_grow_monotonically_with_t() {
        let mut prev = CodeOverhead::for_kind(EccKind::Bch { t: 1 }).unwrap();
        for t in 2..=18u8 {
            let cur = CodeOverhead::for_kind(EccKind::Bch { t }).unwrap();
            assert!(cur.check_bits >= prev.check_bits, "t={t}");
            assert!(cur.decoder_gates > prev.decoder_gates, "t={t}");
            assert!(
                cur.access_energy_factor > prev.access_energy_factor,
                "t={t}"
            );
            assert!(
                cur.correction_latency_cycles > prev.correction_latency_cycles,
                "t={t}"
            );
            prev = cur;
        }
    }

    #[test]
    fn secded_is_cheaper_than_any_bch() {
        let secded = CodeOverhead::for_kind(EccKind::Secded).unwrap();
        let bch1 = CodeOverhead::for_kind(EccKind::Bch { t: 1 }).unwrap();
        assert!(secded.decoder_gates < bch1.decoder_gates);
    }

    #[test]
    fn storage_factor_examples() {
        let oh = CodeOverhead::for_kind(EccKind::Secded).unwrap();
        assert!((oh.storage_factor() - 39.0 / 32.0).abs() < 1e-12);
    }
}
