//! Binary BCH codes with hard-decision algebraic decoding.
//!
//! This is the "multi-bit ECC circuitry" of the paper: a t-error-correcting
//! binary BCH code over GF(2^m), shortened to protect one 32-bit data word.
//! Encoding is systematic (LFSR division by the generator polynomial, as a
//! hardware encoder would implement it); decoding computes syndromes, runs
//! Berlekamp–Massey to obtain the error-locator polynomial, and locates the
//! erroneous bits by Chien search.

use crate::bitbuf::BitBuf;
use crate::gf2m::Gf2m;
use crate::scheme::{BuildSchemeError, Decoded, EccScheme};

/// Maximum supported correction strength for a 32-bit word.
///
/// t = 18 over GF(2^8) needs 32 + 144 = 176 stored bits, still comfortably
/// within [`crate::BitBuf`] capacity; Fig. 4 of the paper explores up to 18
/// correctable bits per word.
pub const MAX_WORD_T: usize = 18;

/// A t-error-correcting binary BCH code shortened to `data_bits` payload bits.
///
/// # Examples
///
/// ```
/// use chunkpoint_ecc::{BchCode, EccScheme, Decoded};
///
/// let code = BchCode::for_word(3)?; // corrects any 3 bit flips
/// let mut stored = code.encode(0xA5A5_5A5A);
/// stored.flip(0);
/// stored.flip(17);
/// stored.flip(33);
/// assert_eq!(
///     code.decode(&stored),
///     Decoded::Corrected { data: 0xA5A5_5A5A, bits_corrected: 3 }
/// );
/// # Ok::<(), chunkpoint_ecc::BuildSchemeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BchCode {
    field: Gf2m,
    t: usize,
    /// Natural code length 2^m - 1.
    n: usize,
    /// Payload bits actually stored (the code is shortened from k to this).
    data_bits: usize,
    /// Generator polynomial over GF(2); index = degree, values 0/1.
    generator: Vec<u8>,
    /// Degree of the generator = number of check bits.
    r: usize,
}

impl BchCode {
    /// Builds a BCH code over GF(2^m) correcting `t` errors with
    /// `data_bits` payload bits.
    ///
    /// # Errors
    ///
    /// Returns an error if the field degree is unsupported, if `t` is zero
    /// or too large for the field, or if the resulting dimension `k` cannot
    /// hold `data_bits` payload bits.
    pub fn new(m: u32, t: usize, data_bits: usize) -> Result<Self, BuildSchemeError> {
        if t == 0 {
            return Err(BuildSchemeError::new("bch requires t >= 1"));
        }
        let field = Gf2m::new(m)
            .map_err(|e| BuildSchemeError::new(format!("bch field: {e}")))?;
        let n = field.order() as usize;
        if 2 * t >= n {
            return Err(BuildSchemeError::new(format!(
                "t = {t} too large for code length n = {n}"
            )));
        }
        let generator = compute_generator(&field, t)?;
        let r = generator.len() - 1;
        let k = n - r;
        if k < data_bits {
            return Err(BuildSchemeError::new(format!(
                "bch(m={m}, t={t}) has k = {k} < {data_bits} payload bits"
            )));
        }
        if r + data_bits > crate::bitbuf::BITBUF_CAPACITY {
            return Err(BuildSchemeError::new(format!(
                "stored word of {} bits exceeds buffer capacity",
                r + data_bits
            )));
        }
        Ok(Self { field, t, n, data_bits, generator, r })
    }

    /// Builds the most area-efficient code correcting `t` errors in one
    /// 32-bit word: the smallest field degree whose dimension fits 32
    /// payload bits.
    ///
    /// # Errors
    ///
    /// Returns an error when `t` is zero or above [`MAX_WORD_T`].
    pub fn for_word(t: usize) -> Result<Self, BuildSchemeError> {
        if t == 0 || t > MAX_WORD_T {
            return Err(BuildSchemeError::new(format!(
                "word-level bch supports 1 <= t <= {MAX_WORD_T}, got {t}"
            )));
        }
        for m in 6..=10u32 {
            if let Ok(code) = Self::new(m, t, 32) {
                return Ok(code);
            }
        }
        Err(BuildSchemeError::new(format!(
            "no field in 6..=10 supports t = {t} with 32 payload bits"
        )))
    }

    /// Correction strength t.
    #[must_use]
    pub fn t(&self) -> usize {
        self.t
    }

    /// Field degree m.
    #[must_use]
    pub fn m(&self) -> u32 {
        self.field.m()
    }

    /// Natural (unshortened) code length 2^m - 1.
    #[must_use]
    pub fn natural_length(&self) -> usize {
        self.n
    }

    /// Generator polynomial coefficients over GF(2) (index = degree).
    #[must_use]
    pub fn generator(&self) -> &[u8] {
        &self.generator
    }

    fn stored_len(&self) -> usize {
        self.r + self.data_bits
    }

    /// Computes the 2t syndromes of a stored word; `None` means all-zero.
    fn syndromes(&self, stored: &BitBuf) -> Option<Vec<u16>> {
        let mut synd = vec![0u16; 2 * self.t];
        let mut any = false;
        for pos in stored.iter_ones() {
            for (j, s) in synd.iter_mut().enumerate() {
                *s ^= self.field.alpha_pow(pos as u64 * (j as u64 + 1));
            }
        }
        for &s in &synd {
            if s != 0 {
                any = true;
                break;
            }
        }
        if any {
            Some(synd)
        } else {
            None
        }
    }

    /// Berlekamp–Massey: returns the error-locator polynomial σ(x)
    /// (index = degree) or `None` when the syndrome sequence is
    /// inconsistent with ≤ t errors.
    fn berlekamp_massey(&self, synd: &[u16]) -> Option<Vec<u16>> {
        let f = &self.field;
        let mut sigma = vec![0u16; self.t + 2];
        let mut prev = vec![0u16; self.t + 2];
        sigma[0] = 1;
        prev[0] = 1;
        let mut l = 0usize;
        let mut shift = 1usize;
        let mut b = 1u16;
        for step in 0..2 * self.t {
            // Discrepancy d = S[step] + Σ σ_i · S[step-i].
            let mut d = synd[step];
            for i in 1..=l.min(step) {
                d ^= f.mul(sigma[i], synd[step - i]);
            }
            if d == 0 {
                shift += 1;
            } else if 2 * l <= step {
                let saved = sigma.clone();
                let scale = f.div(d, b);
                for i in 0..sigma.len().saturating_sub(shift) {
                    let delta = f.mul(scale, prev[i]);
                    if i + shift < sigma.len() {
                        sigma[i + shift] ^= delta;
                    } else if delta != 0 {
                        return None; // locator degree overflow
                    }
                }
                l = step + 1 - l;
                prev = saved;
                b = d;
                shift = 1;
            } else {
                let scale = f.div(d, b);
                for i in 0..sigma.len().saturating_sub(shift) {
                    let delta = f.mul(scale, prev[i]);
                    if i + shift < sigma.len() {
                        sigma[i + shift] ^= delta;
                    } else if delta != 0 {
                        return None;
                    }
                }
                shift += 1;
            }
        }
        let degree = sigma.iter().rposition(|&c| c != 0)?;
        if degree != l || l > self.t {
            return None;
        }
        sigma.truncate(degree + 1);
        Some(sigma)
    }

    /// Chien search: returns erroneous bit positions (must all lie in the
    /// stored, non-shortened region) or `None` on failure.
    fn chien_search(&self, sigma: &[u16]) -> Option<Vec<usize>> {
        let f = &self.field;
        let degree = sigma.len() - 1;
        let mut roots = Vec::with_capacity(degree);
        for pos in 0..self.n {
            // σ(α^{-pos}) == 0 ⇔ error at position `pos`.
            let x = f.alpha_pow((self.n - pos % self.n) as u64 % f.order() as u64);
            if f.eval_poly(sigma, x) == 0 {
                if pos >= self.stored_len() {
                    // Error "located" in the shortened (virtual zero) region:
                    // impossible for a real channel error, so the pattern
                    // exceeded the code's capability.
                    return None;
                }
                roots.push(pos);
                if roots.len() == degree {
                    break;
                }
            }
        }
        if roots.len() == degree {
            Some(roots)
        } else {
            None
        }
    }
}

impl EccScheme for BchCode {
    fn name(&self) -> String {
        format!("BCH(t={}, m={})", self.t, self.field.m())
    }

    fn check_bits(&self) -> usize {
        self.r
    }

    fn correctable_bits(&self) -> usize {
        self.t
    }

    fn detectable_bits(&self) -> usize {
        // Designed distance 2t + 1: while correcting up to t errors the
        // code is only *guaranteed* to flag patterns of up to t further
        // bits (correct-c/detect-d requires c + d < d_min).
        self.t
    }

    fn encode(&self, data: u32) -> BitBuf {
        debug_assert_eq!(self.data_bits, 32);
        let mut stored = BitBuf::new(self.stored_len());
        stored.insert_u32(self.r, data);
        // Systematic encoding: parity = (x^r · m(x)) mod g(x), computed by
        // the same LFSR a hardware encoder uses.
        let mut rem = vec![0u8; self.r];
        for bit in (0..self.data_bits).rev() {
            let feedback = u8::from((data >> bit) & 1 == 1) ^ rem[self.r - 1];
            for i in (1..self.r).rev() {
                rem[i] = rem[i - 1] ^ (feedback & self.generator[i]);
            }
            rem[0] = feedback & self.generator[0];
        }
        for (i, &bit) in rem.iter().enumerate() {
            if bit == 1 {
                stored.set(i, true);
            }
        }
        stored
    }

    fn decode(&self, stored: &BitBuf) -> Decoded {
        assert_eq!(
            stored.len(),
            self.stored_len(),
            "stored word length mismatch for {}",
            self.name()
        );
        let Some(synd) = self.syndromes(stored) else {
            return Decoded::Clean { data: stored.extract_u32(self.r) };
        };
        let Some(sigma) = self.berlekamp_massey(&synd) else {
            return Decoded::DetectedUncorrectable;
        };
        let Some(positions) = self.chien_search(&sigma) else {
            return Decoded::DetectedUncorrectable;
        };
        let mut fixed = *stored;
        for &pos in &positions {
            fixed.flip(pos);
        }
        // Re-check: a pattern beyond t errors can produce a bogus locator;
        // hardware decoders do the same post-correction syndrome check.
        if self.syndromes(&fixed).is_some() {
            return Decoded::DetectedUncorrectable;
        }
        Decoded::Corrected {
            data: fixed.extract_u32(self.r),
            bits_corrected: positions.len() as u32,
        }
    }
}

/// Builds the generator polynomial: lcm of the minimal polynomials of
/// α, α^3, …, α^(2t-1).
fn compute_generator(field: &Gf2m, t: usize) -> Result<Vec<u8>, BuildSchemeError> {
    let mut covered: Vec<u32> = Vec::new();
    // Generator over GF(2), kept as 0/1 coefficients; index = degree.
    let mut gen: Vec<u8> = vec![1];
    for i in (1..=2 * t - 1).step_by(2) {
        let coset = field.cyclotomic_coset(i as u32);
        let rep = *coset.iter().min().expect("nonempty coset");
        if covered.contains(&rep) {
            continue;
        }
        covered.push(rep);
        // Minimal polynomial of α^i: Π_{j ∈ coset} (x − α^j), computed in
        // GF(2^m)[x]; its coefficients always land in GF(2).
        let mut min_poly: Vec<u16> = vec![1];
        for &j in &coset {
            let root = field.alpha_pow(u64::from(j));
            let mut next = vec![0u16; min_poly.len() + 1];
            for (deg, &c) in min_poly.iter().enumerate() {
                next[deg + 1] ^= c; // · x
                next[deg] ^= field.mul(c, root); // · root
            }
            min_poly = next;
        }
        for &c in &min_poly {
            if c > 1 {
                return Err(BuildSchemeError::new(
                    "minimal polynomial coefficient outside GF(2); field tables corrupt",
                ));
            }
        }
        // gen ← gen · min_poly over GF(2).
        let mut product = vec![0u8; gen.len() + min_poly.len() - 1];
        for (a_deg, &a) in gen.iter().enumerate() {
            if a == 0 {
                continue;
            }
            for (b_deg, &b) in min_poly.iter().enumerate() {
                product[a_deg + b_deg] ^= b as u8;
            }
        }
        gen = product;
    }
    Ok(gen)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The canonical BCH(15, 7, t=2) generator is x^8+x^7+x^6+x^4+1.
    #[test]
    fn known_generator_15_7() {
        let code = BchCode::new(4, 2, 7).unwrap();
        assert_eq!(code.check_bits(), 8);
        assert_eq!(code.generator(), &[1, 0, 0, 0, 1, 0, 1, 1, 1]);
    }

    /// BCH(15, 5, t=3) generator is x^10+x^8+x^5+x^4+x^2+x+1.
    #[test]
    fn known_generator_15_5() {
        let code = BchCode::new(4, 3, 5).unwrap();
        assert_eq!(code.check_bits(), 10);
        assert_eq!(code.generator(), &[1, 1, 1, 0, 1, 1, 0, 0, 1, 0, 1]);
    }

    #[test]
    fn for_word_picks_small_fields() {
        // t = 1..5 fit in GF(2^6); check bits never exceed m·t and some
        // cyclotomic cosets are smaller than m, so <= is the right bound.
        for t in 1..=5 {
            let code = BchCode::for_word(t).unwrap();
            assert_eq!(code.m(), 6, "t={t}");
            assert!(code.check_bits() <= 6 * t, "t={t}");
            assert!(code.check_bits() >= 6, "t={t}");
        }
        // t = 6 does not fit in GF(2^6) (k would drop below 32).
        let code = BchCode::for_word(6).unwrap();
        assert_eq!(code.m(), 7);
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(BchCode::new(4, 0, 5).is_err());
        assert!(BchCode::new(4, 8, 5).is_err()); // 2t >= n
        assert!(BchCode::new(6, 6, 32).is_err()); // k too small
        assert!(BchCode::for_word(0).is_err());
        assert!(BchCode::for_word(MAX_WORD_T + 1).is_err());
    }

    #[test]
    fn clean_roundtrip_all_strengths() {
        for t in 1..=MAX_WORD_T {
            let code = BchCode::for_word(t).unwrap();
            for data in [0u32, u32::MAX, 0xDEAD_BEEF, 0x0F0F_0F0F] {
                let stored = code.encode(data);
                assert_eq!(
                    code.decode(&stored),
                    Decoded::Clean { data },
                    "t={t} data={data:#x}"
                );
            }
        }
    }

    #[test]
    fn corrects_exactly_t_errors() {
        for t in [1usize, 2, 4, 8, 12, 18] {
            let code = BchCode::for_word(t).unwrap();
            let data = 0x1357_9BDF;
            let mut stored = code.encode(data);
            // Flip t spread-out bits (data and check region both covered).
            let len = stored.len();
            for e in 0..t {
                stored.flip((e * len / t + e) % len);
            }
            match code.decode(&stored) {
                Decoded::Corrected { data: d, bits_corrected } => {
                    assert_eq!(d, data, "t={t}");
                    assert_eq!(bits_corrected as usize, t, "t={t}");
                }
                other => panic!("t={t}: expected correction, got {other:?}"),
            }
        }
    }

    #[test]
    fn beyond_t_errors_decode_consistently() {
        // Patterns of more than t errors are outside the code's guarantee:
        // the decoder may flag them or land on a *different valid codeword*,
        // but it must never claim the read was clean, never report more
        // than t corrections, and any correction it does report must yield
        // a self-consistent codeword.
        for t in [1usize, 2, 3, 4] {
            let code = BchCode::for_word(t).unwrap();
            let data = 0xFEED_C0DE;
            let mut stored = code.encode(data);
            for e in 0..=t {
                stored.flip(e);
            }
            match code.decode(&stored) {
                Decoded::Clean { .. } => {
                    panic!("t={t}: {} errors decoded as clean", t + 1)
                }
                Decoded::Corrected { data: d, bits_corrected } => {
                    assert!(bits_corrected as usize <= t, "t={t}");
                    // The decoder's output must be a valid codeword.
                    let reencoded = code.encode(d);
                    assert_eq!(code.decode(&reencoded), Decoded::Clean { data: d });
                }
                Decoded::DetectedUncorrectable => {}
            }
        }
    }

    #[test]
    fn two_errors_on_t1_code_never_return_original() {
        // A distance-3 code cannot correct 2 errors; whatever the decoder
        // does it must not reconstruct the original word (that would imply
        // distance >= 5).
        let code = BchCode::for_word(1).unwrap();
        let data = 0xFEED_C0DE;
        let clean = code.encode(data);
        for i in 0..8 {
            for j in (i + 1)..8 {
                let mut bad = clean;
                bad.flip(i);
                bad.flip(j);
                if let Decoded::Clean { data: d } | Decoded::Corrected { data: d, .. } =
                    code.decode(&bad)
                {
                    assert_ne!(d, data, "flips {i},{j} silently healed");
                }
            }
        }
    }

    #[test]
    fn errors_in_check_bits_are_corrected() {
        let code = BchCode::for_word(2).unwrap();
        let data = 0xABCD_EF01;
        let mut stored = code.encode(data);
        stored.flip(0);
        stored.flip(code.check_bits() - 1);
        assert_eq!(
            code.decode(&stored),
            Decoded::Corrected { data, bits_corrected: 2 }
        );
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn decode_wrong_length_panics() {
        let code = BchCode::for_word(1).unwrap();
        let bogus = BitBuf::new(10);
        let _ = code.decode(&bogus);
    }
}
