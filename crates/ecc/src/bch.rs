//! Binary BCH codes with hard-decision algebraic decoding.
//!
//! This is the "multi-bit ECC circuitry" of the paper: a t-error-correcting
//! binary BCH code over GF(2^m), shortened to protect one 32-bit data word.
//! Encoding is systematic (division by the generator polynomial); decoding
//! computes syndromes, runs Berlekamp–Massey to obtain the error-locator
//! polynomial, and locates the erroneous bits by Chien search.
//!
//! ## Table-driven hot path
//!
//! The construction precomputes two families of tables, the same
//! decomposition hardware BCH units and software CRC libraries use:
//!
//! * **Encode**: `x^(r+i) mod g(x)` folded into per-data-byte remainder
//!   tables, so the parity of a 32-bit word is 4 table lookups XORed
//!   together instead of a 32×r LFSR bit loop
//!   ([`BchCode::encode_reference`] keeps the LFSR as the specification).
//! * **Syndromes**: per-stored-byte contribution tables for the t *odd*
//!   syndromes (the even ones follow for free from S_2j = S_j² in
//!   characteristic 2), so syndrome computation is `stored_bytes × t`
//!   table XORs instead of `popcount × 2t` discrete-log exponentiations.
//!
//! A **zero-syndrome fast exit** then skips Berlekamp–Massey and Chien
//! search entirely on clean reads — by far the common case at every fault
//! rate the paper studies.

use crate::bitbuf::BitBuf;
use crate::gf2m::Gf2m;
use crate::scheme::{BuildSchemeError, Decoded, EccScheme};

/// Maximum supported correction strength for a 32-bit word.
///
/// t = 18 over GF(2^8) needs 32 + 144 = 176 stored bits, still comfortably
/// within [`crate::BitBuf`] capacity; Fig. 4 of the paper explores up to 18
/// correctable bits per word.
pub const MAX_WORD_T: usize = 18;

/// Strengths above this skip the syndrome tables (their size grows with
/// `stored_bytes × 256 × t`); every word-level configuration is far below.
const MAX_TABLE_T: usize = 32;

/// Remainder arithmetic over GF(2)[x] with polynomials packed into the
/// same word layout as [`BitBuf`] (bit i of the array = coefficient of
/// x^i). Degrees stay below `BITBUF_CAPACITY`.
type PolyWords = [u64; 4];

#[inline]
fn poly_test_bit(p: &PolyWords, i: usize) -> bool {
    (p[i / 64] >> (i % 64)) & 1 == 1
}

#[inline]
fn poly_set_bit(p: &mut PolyWords, i: usize) {
    p[i / 64] |= 1u64 << (i % 64);
}

#[inline]
fn poly_shl1(p: &mut PolyWords) {
    p[3] = (p[3] << 1) | (p[2] >> 63);
    p[2] = (p[2] << 1) | (p[1] >> 63);
    p[1] = (p[1] << 1) | (p[0] >> 63);
    p[0] <<= 1;
}

#[inline]
fn poly_xor(p: &mut PolyWords, q: &PolyWords) {
    p[0] ^= q[0];
    p[1] ^= q[1];
    p[2] ^= q[2];
    p[3] ^= q[3];
}

#[inline]
fn poly_clear_bit(p: &mut PolyWords, i: usize) {
    p[i / 64] &= !(1u64 << (i % 64));
}

/// A t-error-correcting binary BCH code shortened to `data_bits` payload bits.
///
/// # Examples
///
/// ```
/// use chunkpoint_ecc::{BchCode, EccScheme, Decoded};
///
/// let code = BchCode::for_word(3)?; // corrects any 3 bit flips
/// let mut stored = code.encode(0xA5A5_5A5A);
/// stored.flip(0);
/// stored.flip(17);
/// stored.flip(33);
/// assert_eq!(
///     code.decode(&stored),
///     Decoded::Corrected { data: 0xA5A5_5A5A, bits_corrected: 3 }
/// );
/// # Ok::<(), chunkpoint_ecc::BuildSchemeError>(())
/// ```
#[derive(Clone)]
pub struct BchCode {
    field: Gf2m,
    t: usize,
    /// Natural code length 2^m - 1.
    n: usize,
    /// Payload bits actually stored (the code is shortened from k to this).
    data_bits: usize,
    /// Generator polynomial over GF(2); index = degree, values 0/1.
    generator: Vec<u8>,
    /// Degree of the generator = number of check bits.
    r: usize,
    /// Cached display name, so `name()` never allocates.
    name: String,
    /// `enc_tables[byte_index * 256 + value]` = parity remainder of data
    /// byte `byte_index` holding `value` (only built for 32-bit payloads).
    enc_tables: Option<Vec<PolyWords>>,
    /// `synd_tables[(byte_pos * 256 + value) * t + j]` = contribution of
    /// stored byte `byte_pos` holding `value` to odd syndrome S_(2j+1).
    synd_tables: Option<Vec<u16>>,
}

impl std::fmt::Debug for BchCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BchCode")
            .field("t", &self.t)
            .field("m", &self.field.m())
            .field("n", &self.n)
            .field("data_bits", &self.data_bits)
            .field("r", &self.r)
            .field(
                "enc_tables",
                &self
                    .enc_tables
                    .as_ref()
                    .map(|t| format!("<{} entries>", t.len())),
            )
            .field(
                "synd_tables",
                &self
                    .synd_tables
                    .as_ref()
                    .map(|t| format!("<{} entries>", t.len())),
            )
            .finish_non_exhaustive()
    }
}

impl BchCode {
    /// Builds a BCH code over GF(2^m) correcting `t` errors with
    /// `data_bits` payload bits.
    ///
    /// # Errors
    ///
    /// Returns an error if the field degree is unsupported, if `t` is zero
    /// or too large for the field, or if the resulting dimension `k` cannot
    /// hold `data_bits` payload bits.
    pub fn new(m: u32, t: usize, data_bits: usize) -> Result<Self, BuildSchemeError> {
        if t == 0 {
            return Err(BuildSchemeError::new("bch requires t >= 1"));
        }
        let field = Gf2m::new(m).map_err(|e| BuildSchemeError::new(format!("bch field: {e}")))?;
        let n = field.order() as usize;
        if 2 * t >= n {
            return Err(BuildSchemeError::new(format!(
                "t = {t} too large for code length n = {n}"
            )));
        }
        let generator = compute_generator(&field, t)?;
        let r = generator.len() - 1;
        let k = n - r;
        if k < data_bits {
            return Err(BuildSchemeError::new(format!(
                "bch(m={m}, t={t}) has k = {k} < {data_bits} payload bits"
            )));
        }
        if r + data_bits > crate::bitbuf::BITBUF_CAPACITY {
            return Err(BuildSchemeError::new(format!(
                "stored word of {} bits exceeds buffer capacity",
                r + data_bits
            )));
        }
        let name = format!("BCH(t={t}, m={m})");
        let mut code = Self {
            field,
            t,
            n,
            data_bits,
            generator,
            r,
            name,
            enc_tables: None,
            synd_tables: None,
        };
        code.enc_tables = code.build_enc_tables();
        code.synd_tables = code.build_synd_tables();
        Ok(code)
    }

    /// Builds the most area-efficient code correcting `t` errors in one
    /// 32-bit word: the smallest field degree whose dimension fits 32
    /// payload bits.
    ///
    /// # Errors
    ///
    /// Returns an error when `t` is zero or above [`MAX_WORD_T`].
    pub fn for_word(t: usize) -> Result<Self, BuildSchemeError> {
        if t == 0 || t > MAX_WORD_T {
            return Err(BuildSchemeError::new(format!(
                "word-level bch supports 1 <= t <= {MAX_WORD_T}, got {t}"
            )));
        }
        for m in 6..=10u32 {
            if let Ok(code) = Self::new(m, t, 32) {
                return Ok(code);
            }
        }
        Err(BuildSchemeError::new(format!(
            "no field in 6..=10 supports t = {t} with 32 payload bits"
        )))
    }

    /// Correction strength t.
    #[must_use]
    pub fn t(&self) -> usize {
        self.t
    }

    /// Field degree m.
    #[must_use]
    pub fn m(&self) -> u32 {
        self.field.m()
    }

    /// Natural (unshortened) code length 2^m - 1.
    #[must_use]
    pub fn natural_length(&self) -> usize {
        self.n
    }

    /// Generator polynomial coefficients over GF(2) (index = degree).
    #[must_use]
    pub fn generator(&self) -> &[u8] {
        &self.generator
    }

    fn stored_len(&self) -> usize {
        self.r + self.data_bits
    }

    /// Per-data-byte encode remainder tables: entry `[i][b]` is
    /// `Σ_{k ∈ bits(b)} x^(r + 8i + k) mod g(x)`, so a 32-bit payload
    /// encodes with 4 lookups + XOR folds.
    fn build_enc_tables(&self) -> Option<Vec<PolyWords>> {
        if self.data_bits != 32 {
            // Narrow payloads only occur in generator unit tests; they keep
            // the bit-serial reference path.
            return None;
        }
        // bit_rem[i] = x^(r+i) mod g, built incrementally: multiplying by x
        // shifts, and a resulting x^r term folds back as g - x^r.
        let mut g_low: PolyWords = [0; 4]; // g(x) minus its leading term
        for (deg, &coeff) in self.generator.iter().enumerate().take(self.r) {
            if coeff == 1 {
                poly_set_bit(&mut g_low, deg);
            }
        }
        let mut bit_rem: Vec<PolyWords> = Vec::with_capacity(self.data_bits);
        let mut current: PolyWords = g_low; // x^r mod g
        bit_rem.push(current);
        for _ in 1..self.data_bits {
            poly_shl1(&mut current);
            if poly_test_bit(&current, self.r) {
                poly_clear_bit(&mut current, self.r);
                poly_xor(&mut current, &g_low);
            }
            bit_rem.push(current);
        }
        let mut tables = vec![[0u64; 4]; 4 * 256];
        for byte_index in 0..4usize {
            for value in 1usize..256 {
                let lower = value & (value - 1);
                let bit = value.trailing_zeros() as usize;
                let mut entry = tables[byte_index * 256 + lower];
                poly_xor(&mut entry, &bit_rem[byte_index * 8 + bit]);
                tables[byte_index * 256 + value] = entry;
            }
        }
        Some(tables)
    }

    /// Per-stored-byte odd-syndrome contribution tables.
    fn build_synd_tables(&self) -> Option<Vec<u16>> {
        if self.t > MAX_TABLE_T {
            return None;
        }
        let t = self.t;
        let bytes = self.stored_len().div_ceil(8);
        let mut tables = vec![0u16; bytes * 256 * t];
        for byte_pos in 0..bytes {
            for value in 1usize..256 {
                let lower = value & (value - 1);
                let bit = value.trailing_zeros() as usize;
                let pos = byte_pos * 8 + bit;
                let base = (byte_pos * 256 + value) * t;
                let lower_base = (byte_pos * 256 + lower) * t;
                for j in 0..t {
                    let contrib = if pos < self.stored_len() {
                        self.field.alpha_pow(pos as u64 * (2 * j as u64 + 1))
                    } else {
                        0
                    };
                    tables[base + j] = tables[lower_base + j] ^ contrib;
                }
            }
        }
        Some(tables)
    }

    /// Computes the 2t syndromes of a stored word; `None` means all-zero
    /// (the clean-read fast exit: no Berlekamp–Massey, no Chien search).
    ///
    /// Table path: fold the per-byte contributions of the t odd syndromes,
    /// then square up the even ones (S_2j = S_j² over GF(2^m)).
    fn syndromes(&self, stored: &BitBuf) -> Option<Vec<u16>> {
        let mut odd = [0u16; MAX_TABLE_T];
        match self.odd_syndromes(stored, &mut odd) {
            None => return self.syndromes_reference(stored),
            Some(false) => return None,
            Some(true) => {}
        }
        let mut synd = vec![0u16; 2 * self.t];
        self.expand_syndromes(&odd, &mut synd);
        Some(synd)
    }

    /// Table-driven odd-syndrome fold into a caller-provided buffer.
    /// Returns `None` when no tables are built (fall back to the
    /// reference), otherwise whether any odd syndrome is nonzero. All odd
    /// syndromes vanishing means the whole vector is zero — every even
    /// syndrome is a square of some odd one (S_(2^a·o) = S_o^(2^a)).
    #[inline]
    fn odd_syndromes(&self, stored: &BitBuf, odd: &mut [u16; MAX_TABLE_T]) -> Option<bool> {
        let tables = self.synd_tables.as_deref()?;
        let t = self.t;
        for (byte_pos, value) in stored.bytes().enumerate() {
            if value == 0 {
                continue;
            }
            let base = (byte_pos * 256 + value as usize) * t;
            let row = &tables[base..base + t];
            for (acc, &contrib) in odd[..t].iter_mut().zip(row) {
                *acc ^= contrib;
            }
        }
        let mut nonzero = 0u16;
        for &s in &odd[..t] {
            nonzero |= s;
        }
        Some(nonzero != 0)
    }

    /// Expands the t odd syndromes into the full 2t vector by Frobenius
    /// squaring (S_2k = S_k² over GF(2^m)).
    fn expand_syndromes(&self, odd: &[u16; MAX_TABLE_T], synd: &mut [u16]) {
        let t = self.t;
        for j in 0..t {
            synd[2 * j] = odd[j];
        }
        for k in 1..=t {
            let s = synd[k - 1];
            synd[2 * k - 1] = self.field.mul(s, s);
        }
    }

    /// Bit-serial reference syndrome computation (walks every set stored
    /// bit and exponentiates per syndrome), kept as the specification the
    /// table path is differentially tested and benchmarked against.
    #[doc(hidden)]
    pub fn syndromes_reference(&self, stored: &BitBuf) -> Option<Vec<u16>> {
        let mut synd = vec![0u16; 2 * self.t];
        let mut any = false;
        for pos in stored.iter_ones() {
            for (j, s) in synd.iter_mut().enumerate() {
                *s ^= self.field.alpha_pow(pos as u64 * (j as u64 + 1));
            }
        }
        for &s in &synd {
            if s != 0 {
                any = true;
                break;
            }
        }
        if any {
            Some(synd)
        } else {
            None
        }
    }

    /// Whether the stored word is a codeword (zero syndrome) — the
    /// clean-read fast-exit predicate, exposed for tests and benches.
    #[must_use]
    pub fn is_codeword(&self, stored: &BitBuf) -> bool {
        self.syndromes(stored).is_none()
    }

    /// Berlekamp–Massey: returns the error-locator polynomial σ(x)
    /// (index = degree) or `None` when the syndrome sequence is
    /// inconsistent with ≤ t errors.
    fn berlekamp_massey(&self, synd: &[u16]) -> Option<Vec<u16>> {
        let f = &self.field;
        let mut sigma = vec![0u16; self.t + 2];
        let mut prev = vec![0u16; self.t + 2];
        sigma[0] = 1;
        prev[0] = 1;
        let mut l = 0usize;
        let mut shift = 1usize;
        let mut b = 1u16;
        for step in 0..2 * self.t {
            // Discrepancy d = S[step] + Σ σ_i · S[step-i].
            let mut d = synd[step];
            for i in 1..=l.min(step) {
                d ^= f.mul(sigma[i], synd[step - i]);
            }
            if d == 0 {
                shift += 1;
            } else if 2 * l <= step {
                let saved = sigma.clone();
                let scale = f.div(d, b);
                for i in 0..sigma.len().saturating_sub(shift) {
                    let delta = f.mul(scale, prev[i]);
                    if i + shift < sigma.len() {
                        sigma[i + shift] ^= delta;
                    } else if delta != 0 {
                        return None; // locator degree overflow
                    }
                }
                l = step + 1 - l;
                prev = saved;
                b = d;
                shift = 1;
            } else {
                let scale = f.div(d, b);
                for i in 0..sigma.len().saturating_sub(shift) {
                    let delta = f.mul(scale, prev[i]);
                    if i + shift < sigma.len() {
                        sigma[i + shift] ^= delta;
                    } else if delta != 0 {
                        return None;
                    }
                }
                shift += 1;
            }
        }
        let degree = sigma.iter().rposition(|&c| c != 0)?;
        if degree != l || l > self.t {
            return None;
        }
        sigma.truncate(degree + 1);
        Some(sigma)
    }

    /// Chien search: returns erroneous bit positions (must all lie in the
    /// stored, non-shortened region) or `None` on failure.
    fn chien_search(&self, sigma: &[u16]) -> Option<Vec<usize>> {
        let f = &self.field;
        let degree = sigma.len() - 1;
        let mut roots = Vec::with_capacity(degree);
        for pos in 0..self.n {
            // σ(α^{-pos}) == 0 ⇔ error at position `pos`.
            let x = f.alpha_pow((self.n - pos % self.n) as u64 % f.order() as u64);
            if f.eval_poly(sigma, x) == 0 {
                if pos >= self.stored_len() {
                    // Error "located" in the shortened (virtual zero) region:
                    // impossible for a real channel error, so the pattern
                    // exceeded the code's capability.
                    return None;
                }
                roots.push(pos);
                if roots.len() == degree {
                    break;
                }
            }
        }
        if roots.len() == degree {
            Some(roots)
        } else {
            None
        }
    }

    /// Bit-serial reference encoder: the 32×r LFSR division a minimal
    /// hardware encoder implements, kept as the specification the table
    /// path is differentially tested and benchmarked against.
    #[must_use]
    pub fn encode_reference(&self, data: u32) -> BitBuf {
        let mut stored = BitBuf::new(self.stored_len());
        stored.insert_u32(self.r, data);
        // Systematic encoding: parity = (x^r · m(x)) mod g(x).
        let mut rem = vec![0u8; self.r];
        for bit in (0..self.data_bits).rev() {
            let feedback = u8::from((data >> bit) & 1 == 1) ^ rem[self.r - 1];
            for i in (1..self.r).rev() {
                rem[i] = rem[i - 1] ^ (feedback & self.generator[i]);
            }
            rem[0] = feedback & self.generator[0];
        }
        for (i, &bit) in rem.iter().enumerate() {
            if bit == 1 {
                stored.set(i, true);
            }
        }
        stored
    }

    /// Reference decoder driven by [`Self::syndromes_reference`]; same
    /// Berlekamp–Massey and Chien machinery, bit-serial syndrome path.
    #[must_use]
    pub fn decode_reference(&self, stored: &BitBuf) -> Decoded {
        assert_eq!(
            stored.len(),
            self.stored_len(),
            "stored word length mismatch for {}",
            self.name
        );
        let Some(synd) = self.syndromes_reference(stored) else {
            return Decoded::Clean {
                data: stored.extract_u32(self.r),
            };
        };
        self.decode_with_syndromes(stored, &synd)
    }

    /// Allocation-free correction tail for word-level strengths
    /// (`t <= MAX_TABLE_T`): Berlekamp–Massey over stack arrays, then a
    /// log-domain *incremental* Chien search restricted to the stored
    /// region (positions in the shortened tail cannot carry channel
    /// errors, and missing roots there surface as a count mismatch
    /// exactly as in the full scan).
    fn decode_fast_tail(&self, stored: &BitBuf, synd: &[u16], odd: &[u16; MAX_TABLE_T]) -> Decoded {
        const CAP: usize = MAX_TABLE_T + 2;
        let f = &self.field;
        let slen = self.t + 2;
        let mut sigma = [0u16; CAP];
        let mut prev = [0u16; CAP];
        let mut saved = [0u16; CAP];
        sigma[0] = 1;
        prev[0] = 1;
        let mut l = 0usize;
        let mut shift = 1usize;
        let mut b = 1u16;
        // Live coefficient counts: σ and the previous iterate start as the
        // constant 1, and only the occupied prefixes are scaled/copied.
        let mut sigma_len = 1usize;
        let mut prev_len = 1usize;
        for step in 0..2 * self.t {
            // Binary-code shortcut: syndromes of *any* binary vector
            // satisfy S_2j = S_j² (Frobenius), which makes the
            // discrepancy at every even-syndrome step provably zero
            // (Berlekamp's simplification) — half the iterations reduce
            // to a shift.
            if step % 2 == 1 {
                debug_assert_eq!(
                    {
                        let mut d = synd[step];
                        for i in 1..=l.min(step) {
                            d ^= f.mul(sigma[i], synd[step - i]);
                        }
                        d
                    },
                    0,
                    "nonzero even-step discrepancy in binary BM"
                );
                shift += 1;
                continue;
            }
            let lim = l.min(step);
            let mut d = synd[step];
            // d ^= Σ σ_i · S[step−i], bounds-check-free via zipped slices.
            for (&s_i, &syn) in sigma[1..=lim]
                .iter()
                .zip(synd[step - lim..step].iter().rev())
            {
                d ^= f.mul(s_i, syn);
            }
            if d == 0 {
                shift += 1;
                continue;
            }
            let scale_log = f.log(f.div(d, b));
            let promote = 2 * l <= step;
            let sigma_len_before = sigma_len;
            if promote {
                saved[..sigma_len_before].copy_from_slice(&sigma[..sigma_len_before]);
            }
            // σ(x) ^= scale · x^shift · prev(x), clipped to the σ buffer
            // exactly as the reference loop clips it.
            let span = prev_len.min(slen.saturating_sub(shift));
            for i in 0..span {
                sigma[i + shift] ^= f.mul_log(prev[i], scale_log);
            }
            sigma_len = sigma_len.max((span + shift).min(slen));
            if promote {
                l = step + 1 - l;
                prev[..sigma_len_before].copy_from_slice(&saved[..sigma_len_before]);
                prev_len = sigma_len_before;
                b = d;
                shift = 1;
            } else {
                shift += 1;
            }
        }
        let Some(degree) = sigma[..slen].iter().rposition(|&c| c != 0) else {
            return Decoded::DetectedUncorrectable;
        };
        if degree != l || l > self.t {
            return Decoded::DetectedUncorrectable;
        }
        // Chien search with root deflation. Positions are scanned in
        // ascending order evaluating the *remaining* locator in the log
        // domain (term i advances by α^{-i} per position); every root
        // found divides the locator down by synthetic division, so the
        // tail of the scan evaluates fewer terms — and once a single
        // linear factor remains, its root follows in closed form with no
        // scan at all (the whole search for the dominant 1-flip case).
        debug_assert_eq!(sigma[0], 1, "BM must keep sigma normalized");
        #[inline]
        fn reduce(x: u32, order: u32) -> u32 {
            if x >= order {
                x - order
            } else {
                x
            }
        }
        let order = f.order();
        let stored_len = self.stored_len();
        let mut c = [0u16; CAP];
        c[..=degree].copy_from_slice(&sigma[..=degree]);
        let mut deg = degree;
        let mut roots = [0usize; MAX_TABLE_T];
        let mut found = 0usize;
        let mut next_pos = 0usize;
        let mut logs = [0u32; CAP];
        let mut steps = [0u32; CAP];
        while deg > 1 {
            // Log-domain terms of the current locator, phased to start
            // the scan at `next_pos`. The phase −i·next_pos mod order is
            // accumulated incrementally — no multiply, no division
            // (next_pos < stored_len <= order keeps each increment small).
            let mut terms = 0usize;
            let mut i_times_pos = 0u32;
            for (k, &coeff) in c[1..=deg].iter().enumerate() {
                i_times_pos = reduce(i_times_pos + next_pos as u32, order);
                if coeff != 0 {
                    let step = order - (k as u32 + 1);
                    let phase = reduce(order - i_times_pos, order);
                    logs[terms] = reduce(u32::from(f.log(coeff)) + phase, order);
                    steps[terms] = step;
                    terms += 1;
                }
            }
            let seed = c[0]; // constant term, never zero (σ(0) = σ_0 = 1)
            debug_assert_ne!(seed, 0);
            let mut root: Option<usize> = None;
            let mut pos = next_pos;
            'scan: while pos < stored_len {
                let block = (stored_len - pos).min(4);
                let mut acc = [seed; 4];
                for k in 0..terms {
                    let step = steps[k];
                    let mut l = logs[k];
                    for a in &mut acc {
                        *a ^= f.exp_raw(l as usize);
                        l = reduce(l + step, order);
                    }
                    logs[k] = l;
                }
                for (j, &a) in acc[..block].iter().enumerate() {
                    if a == 0 {
                        root = Some(pos + j);
                        break 'scan;
                    }
                }
                pos += block;
            }
            let Some(p) = root else {
                // Fewer than `degree` roots in the stored region: the
                // pattern exceeded the code's capability.
                return Decoded::DetectedUncorrectable;
            };
            roots[found] = p;
            found += 1;
            // Deflate: c(x) / (x − α^{-p}) by synthetic division
            // (p < stored_len <= order, so the negation needs no modulo).
            let r_log = reduce(order - p as u32, order) as u16;
            let mut carry = c[deg];
            for i in (1..deg).rev() {
                let next = c[i] ^ f.mul_log(carry, r_log);
                c[i] = carry;
                carry = next;
            }
            debug_assert_eq!(
                c[0] ^ f.mul_log(carry, r_log),
                0,
                "nonzero remainder deflating a located root"
            );
            c[0] = carry;
            c[deg] = 0;
            deg -= 1;
            next_pos = p + 1;
        }
        if deg == 1 {
            // Last linear factor c_0 + c_1·x: root x = c_0/c_1 = α^{-p}.
            debug_assert_ne!(c[0], 0);
            if c[1] == 0 {
                return Decoded::DetectedUncorrectable;
            }
            let p = reduce(
                u32::from(f.log(c[1])) + order - u32::from(f.log(c[0])),
                order,
            ) as usize;
            // The root must lie in the unscanned stored region; anything
            // else (shortened tail, or a position already ruled out —
            // e.g. a repeated root) exceeds the code's capability.
            if p < next_pos || p >= stored_len {
                return Decoded::DetectedUncorrectable;
            }
            roots[found] = p;
            found += 1;
        }
        if found != degree {
            return Decoded::DetectedUncorrectable;
        }
        // Re-check: a pattern beyond t errors can produce a bogus locator
        // whose roots do not reproduce the received syndromes (hardware
        // decoders do the same post-correction check). Here it is the
        // XOR of the located bits' table rows against the original odd
        // syndromes — `found × t` lookups, no second pass over the word.
        let tables = self
            .synd_tables
            .as_deref()
            .expect("fast tail only runs with tables");
        let t = self.t;
        let mut delta = [0u16; MAX_TABLE_T];
        for &pos in &roots[..found] {
            let base = ((pos / 8) * 256 + (1 << (pos % 8))) * t;
            let row = &tables[base..base + t];
            for (acc, &contrib) in delta[..t].iter_mut().zip(row) {
                *acc ^= contrib;
            }
        }
        if delta[..t] != odd[..t] {
            return Decoded::DetectedUncorrectable;
        }
        let mut fixed = *stored;
        for &pos in &roots[..found] {
            fixed.flip(pos);
        }
        Decoded::Corrected {
            data: fixed.extract_u32(self.r),
            bits_corrected: found as u32,
        }
    }

    /// Reference correction tail: Berlekamp–Massey, Chien search,
    /// in-place correction, and the post-correction syndrome re-check,
    /// all on the bit-serial reference paths.
    fn decode_with_syndromes(&self, stored: &BitBuf, synd: &[u16]) -> Decoded {
        let Some(sigma) = self.berlekamp_massey(synd) else {
            return Decoded::DetectedUncorrectable;
        };
        let Some(positions) = self.chien_search(&sigma) else {
            return Decoded::DetectedUncorrectable;
        };
        let mut fixed = *stored;
        for &pos in &positions {
            fixed.flip(pos);
        }
        // Re-check: a pattern beyond t errors can produce a bogus locator;
        // hardware decoders do the same post-correction syndrome check.
        if self.syndromes_reference(&fixed).is_some() {
            return Decoded::DetectedUncorrectable;
        }
        Decoded::Corrected {
            data: fixed.extract_u32(self.r),
            bits_corrected: positions.len() as u32,
        }
    }
}

impl EccScheme for BchCode {
    fn name(&self) -> &str {
        &self.name
    }

    fn check_bits(&self) -> usize {
        self.r
    }

    fn correctable_bits(&self) -> usize {
        self.t
    }

    fn detectable_bits(&self) -> usize {
        // Designed distance 2t + 1: while correcting up to t errors the
        // code is only *guaranteed* to flag patterns of up to t further
        // bits (correct-c/detect-d requires c + d < d_min).
        self.t
    }

    fn encode(&self, data: u32) -> BitBuf {
        let Some(tables) = &self.enc_tables else {
            return self.encode_reference(data);
        };
        debug_assert_eq!(self.data_bits, 32);
        let mut rem: PolyWords = [0; 4];
        for (byte_index, value) in data.to_le_bytes().into_iter().enumerate() {
            poly_xor(&mut rem, &tables[byte_index * 256 + value as usize]);
        }
        let mut stored = BitBuf::new(self.stored_len());
        *stored.as_words_mut() = rem;
        stored.or_u32_at(data, self.r);
        stored
    }

    fn decode(&self, stored: &BitBuf) -> Decoded {
        assert_eq!(
            stored.len(),
            self.stored_len(),
            "stored word length mismatch for {}",
            self.name
        );
        // Zero-syndrome fast exit: clean reads never reach the algebraic
        // machinery below. The whole fast path is heap-free — syndromes
        // live in stack arrays.
        let mut odd = [0u16; MAX_TABLE_T];
        match self.odd_syndromes(stored, &mut odd) {
            Some(false) => Decoded::Clean {
                data: stored.extract_u32(self.r),
            },
            Some(true) => {
                let mut synd = [0u16; 2 * MAX_TABLE_T];
                self.expand_syndromes(&odd, &mut synd[..2 * self.t]);
                self.decode_fast_tail(stored, &synd[..2 * self.t], &odd)
            }
            None => {
                // No tables (t beyond the table bound): reference path.
                let Some(synd) = self.syndromes_reference(stored) else {
                    return Decoded::Clean {
                        data: stored.extract_u32(self.r),
                    };
                };
                self.decode_with_syndromes(stored, &synd)
            }
        }
    }

    fn encode_block(&self, data: &[u32], out: &mut [BitBuf]) {
        assert_eq!(
            data.len(),
            out.len(),
            "encode_block length mismatch for {}",
            self.name
        );
        // Specialized batch path: `self.encode` resolves statically inside
        // this impl, so the whole block costs one virtual dispatch and the
        // remainder tables stay hot across it.
        for (&word, slot) in data.iter().zip(out.iter_mut()) {
            *slot = self.encode(word);
        }
    }
}

/// Builds the generator polynomial: lcm of the minimal polynomials of
/// α, α^3, …, α^(2t-1).
fn compute_generator(field: &Gf2m, t: usize) -> Result<Vec<u8>, BuildSchemeError> {
    let mut covered: Vec<u32> = Vec::new();
    // Generator over GF(2), kept as 0/1 coefficients; index = degree.
    let mut gen: Vec<u8> = vec![1];
    for i in (1..=2 * t - 1).step_by(2) {
        let coset = field.cyclotomic_coset(i as u32);
        let rep = *coset.iter().min().expect("nonempty coset");
        if covered.contains(&rep) {
            continue;
        }
        covered.push(rep);
        // Minimal polynomial of α^i: Π_{j ∈ coset} (x − α^j), computed in
        // GF(2^m)[x]; its coefficients always land in GF(2).
        let mut min_poly: Vec<u16> = vec![1];
        for &j in &coset {
            let root = field.alpha_pow(u64::from(j));
            let mut next = vec![0u16; min_poly.len() + 1];
            for (deg, &c) in min_poly.iter().enumerate() {
                next[deg + 1] ^= c; // · x
                next[deg] ^= field.mul(c, root); // · root
            }
            min_poly = next;
        }
        for &c in &min_poly {
            if c > 1 {
                return Err(BuildSchemeError::new(
                    "minimal polynomial coefficient outside GF(2); field tables corrupt",
                ));
            }
        }
        // gen ← gen · min_poly over GF(2).
        let mut product = vec![0u8; gen.len() + min_poly.len() - 1];
        for (a_deg, &a) in gen.iter().enumerate() {
            if a == 0 {
                continue;
            }
            for (b_deg, &b) in min_poly.iter().enumerate() {
                product[a_deg + b_deg] ^= b as u8;
            }
        }
        gen = product;
    }
    Ok(gen)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The canonical BCH(15, 7, t=2) generator is x^8+x^7+x^6+x^4+1.
    #[test]
    fn known_generator_15_7() {
        let code = BchCode::new(4, 2, 7).unwrap();
        assert_eq!(code.check_bits(), 8);
        assert_eq!(code.generator(), &[1, 0, 0, 0, 1, 0, 1, 1, 1]);
    }

    /// BCH(15, 5, t=3) generator is x^10+x^8+x^5+x^4+x^2+x+1.
    #[test]
    fn known_generator_15_5() {
        let code = BchCode::new(4, 3, 5).unwrap();
        assert_eq!(code.check_bits(), 10);
        assert_eq!(code.generator(), &[1, 1, 1, 0, 1, 1, 0, 0, 1, 0, 1]);
    }

    #[test]
    fn for_word_picks_small_fields() {
        // t = 1..5 fit in GF(2^6); check bits never exceed m·t and some
        // cyclotomic cosets are smaller than m, so <= is the right bound.
        for t in 1..=5 {
            let code = BchCode::for_word(t).unwrap();
            assert_eq!(code.m(), 6, "t={t}");
            assert!(code.check_bits() <= 6 * t, "t={t}");
            assert!(code.check_bits() >= 6, "t={t}");
        }
        // t = 6 does not fit in GF(2^6) (k would drop below 32).
        let code = BchCode::for_word(6).unwrap();
        assert_eq!(code.m(), 7);
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(BchCode::new(4, 0, 5).is_err());
        assert!(BchCode::new(4, 8, 5).is_err()); // 2t >= n
        assert!(BchCode::new(6, 6, 32).is_err()); // k too small
        assert!(BchCode::for_word(0).is_err());
        assert!(BchCode::for_word(MAX_WORD_T + 1).is_err());
    }

    #[test]
    fn clean_roundtrip_all_strengths() {
        for t in 1..=MAX_WORD_T {
            let code = BchCode::for_word(t).unwrap();
            for data in [0u32, u32::MAX, 0xDEAD_BEEF, 0x0F0F_0F0F] {
                let stored = code.encode(data);
                assert_eq!(
                    code.decode(&stored),
                    Decoded::Clean { data },
                    "t={t} data={data:#x}"
                );
            }
        }
    }

    #[test]
    fn table_encode_matches_lfsr_reference() {
        for t in 1..=MAX_WORD_T {
            let code = BchCode::for_word(t).unwrap();
            for step in 0..200u32 {
                let data = step.wrapping_mul(2_654_435_761) ^ (step << 13);
                assert_eq!(
                    code.encode(data),
                    code.encode_reference(data),
                    "t={t} data={data:#x}"
                );
            }
        }
    }

    #[test]
    fn table_syndromes_match_reference() {
        for t in [1usize, 2, 4, 8, 18] {
            let code = BchCode::for_word(t).unwrap();
            let clean = code.encode(0x9E37_79B9);
            // Clean word: both paths agree on the zero-syndrome fast exit.
            assert_eq!(code.syndromes(&clean), None, "t={t}");
            assert_eq!(code.syndromes_reference(&clean), None, "t={t}");
            assert!(code.is_codeword(&clean), "t={t}");
            // Corrupted words: identical full syndrome vectors.
            let len = clean.len();
            for flips in 1..=(t + 2) {
                let mut bad = clean;
                for e in 0..flips {
                    bad.flip((e * len / flips + 3 * e) % len);
                }
                assert_eq!(
                    code.syndromes(&bad),
                    code.syndromes_reference(&bad),
                    "t={t} flips={flips}"
                );
                assert!(!code.is_codeword(&bad), "t={t} flips={flips}");
            }
        }
    }

    #[test]
    fn zero_syndrome_fast_exit_skips_correction() {
        // Every valid codeword must decode via the fast exit as Clean —
        // including codewords reached by correcting, which exercises the
        // post-correction re-check path too.
        let code = BchCode::for_word(4).unwrap();
        for data in [0u32, 1, u32::MAX, 0xCAFE_F00D] {
            let stored = code.encode(data);
            assert!(code.is_codeword(&stored));
            assert_eq!(code.decode(&stored), Decoded::Clean { data });
            let mut bad = stored;
            bad.flip(7);
            bad.flip(40);
            match code.decode(&bad) {
                Decoded::Corrected {
                    data: d,
                    bits_corrected: 2,
                } => {
                    assert_eq!(d, data);
                }
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn corrects_exactly_t_errors() {
        for t in [1usize, 2, 4, 8, 12, 18] {
            let code = BchCode::for_word(t).unwrap();
            let data = 0x1357_9BDF;
            let mut stored = code.encode(data);
            // Flip t spread-out bits (data and check region both covered).
            let len = stored.len();
            for e in 0..t {
                stored.flip((e * len / t + e) % len);
            }
            match code.decode(&stored) {
                Decoded::Corrected {
                    data: d,
                    bits_corrected,
                } => {
                    assert_eq!(d, data, "t={t}");
                    assert_eq!(bits_corrected as usize, t, "t={t}");
                }
                other => panic!("t={t}: expected correction, got {other:?}"),
            }
        }
    }

    #[test]
    fn beyond_t_errors_decode_consistently() {
        // Patterns of more than t errors are outside the code's guarantee:
        // the decoder may flag them or land on a *different valid codeword*,
        // but it must never claim the read was clean, never report more
        // than t corrections, and any correction it does report must yield
        // a self-consistent codeword.
        for t in [1usize, 2, 3, 4] {
            let code = BchCode::for_word(t).unwrap();
            let data = 0xFEED_C0DE;
            let mut stored = code.encode(data);
            for e in 0..=t {
                stored.flip(e);
            }
            match code.decode(&stored) {
                Decoded::Clean { .. } => {
                    panic!("t={t}: {} errors decoded as clean", t + 1)
                }
                Decoded::Corrected {
                    data: d,
                    bits_corrected,
                } => {
                    assert!(bits_corrected as usize <= t, "t={t}");
                    // The decoder's output must be a valid codeword.
                    let reencoded = code.encode(d);
                    assert_eq!(code.decode(&reencoded), Decoded::Clean { data: d });
                }
                Decoded::DetectedUncorrectable => {}
            }
        }
    }

    #[test]
    fn two_errors_on_t1_code_never_return_original() {
        // A distance-3 code cannot correct 2 errors; whatever the decoder
        // does it must not reconstruct the original word (that would imply
        // distance >= 5).
        let code = BchCode::for_word(1).unwrap();
        let data = 0xFEED_C0DE;
        let clean = code.encode(data);
        for i in 0..8 {
            for j in (i + 1)..8 {
                let mut bad = clean;
                bad.flip(i);
                bad.flip(j);
                if let Decoded::Clean { data: d } | Decoded::Corrected { data: d, .. } =
                    code.decode(&bad)
                {
                    assert_ne!(d, data, "flips {i},{j} silently healed");
                }
            }
        }
    }

    #[test]
    fn errors_in_check_bits_are_corrected() {
        let code = BchCode::for_word(2).unwrap();
        let data = 0xABCD_EF01;
        let mut stored = code.encode(data);
        stored.flip(0);
        stored.flip(code.check_bits() - 1);
        assert_eq!(
            code.decode(&stored),
            Decoded::Corrected {
                data,
                bits_corrected: 2
            }
        );
    }

    #[test]
    fn block_encode_matches_per_word() {
        let code = BchCode::for_word(8).unwrap();
        let words: Vec<u32> = (0..64u32).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
        let mut block = vec![BitBuf::default(); words.len()];
        code.encode_block(&words, &mut block);
        for (i, &w) in words.iter().enumerate() {
            assert_eq!(block[i], code.encode(w), "word {i}");
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn decode_wrong_length_panics() {
        let code = BchCode::for_word(1).unwrap();
        let bogus = BitBuf::new(10);
        let _ = code.decode(&bogus);
    }
}
