//! The [`EccScheme`] trait: a uniform interface over every word-protection
//! code in this crate, as seen by the memory simulator.
//!
//! A scheme encodes a 32-bit data word into a codeword of
//! `32 + check_bits()` stored bits; fault injection flips arbitrary stored
//! bits (data or check); `decode` classifies the read as clean, corrected,
//! detected-uncorrectable, or — for weak codes — silently wrong.

use crate::bitbuf::BitBuf;

/// Result of decoding a (possibly corrupted) stored codeword.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decoded {
    /// No error detected.
    Clean {
        /// The stored data word.
        data: u32,
    },
    /// Errors were detected and corrected in-place.
    Corrected {
        /// The recovered data word.
        data: u32,
        /// Number of stored bits the decoder flipped back.
        bits_corrected: u32,
    },
    /// An error was detected but exceeds the code's correction capability.
    DetectedUncorrectable,
}

impl Decoded {
    /// The recovered data word, if the decode did not fail.
    #[must_use]
    pub fn data(&self) -> Option<u32> {
        match *self {
            Decoded::Clean { data } | Decoded::Corrected { data, .. } => Some(data),
            Decoded::DetectedUncorrectable => None,
        }
    }

    /// Whether the decoder flagged an (uncorrectable) error.
    #[must_use]
    pub fn is_failure(&self) -> bool {
        matches!(self, Decoded::DetectedUncorrectable)
    }
}

/// A word-level error-protection code.
///
/// Implementations are deterministic and stateless, so a single instance can
/// be shared by every word of a memory array — exactly like the single ECC
/// encoder/decoder block shared by an SRAM macro.
///
/// # Examples
///
/// ```
/// use chunkpoint_ecc::{EccScheme, SecdedCode, Decoded};
///
/// let code = SecdedCode::new();
/// let mut stored = code.encode(0xCAFE_F00D);
/// stored.flip(7); // a single-event upset
/// match code.decode(&stored) {
///     Decoded::Corrected { data, bits_corrected } => {
///         assert_eq!(data, 0xCAFE_F00D);
///         assert_eq!(bits_corrected, 1);
///     }
///     other => panic!("SECDED must correct one bit, got {other:?}"),
/// }
/// ```
pub trait EccScheme: std::fmt::Debug + Send + Sync {
    /// Human-readable code name (e.g. `"BCH(t=4, m=6)"`).
    ///
    /// Implementations with parameterised names cache the string at
    /// construction, so calling this on a hot path never allocates.
    fn name(&self) -> &str;

    /// Number of payload bits per word (always 32 in this crate).
    fn data_bits(&self) -> usize {
        32
    }

    /// Number of redundant check bits stored alongside the payload.
    fn check_bits(&self) -> usize;

    /// Total stored bits per word.
    fn total_bits(&self) -> usize {
        self.data_bits() + self.check_bits()
    }

    /// Guaranteed random-error correction capability t (bits per word).
    fn correctable_bits(&self) -> usize;

    /// Guaranteed random-error detection capability (bits per word).
    fn detectable_bits(&self) -> usize;

    /// Encodes a data word into its stored codeword.
    fn encode(&self, data: u32) -> BitBuf;

    /// Decodes a stored codeword, correcting errors when possible.
    ///
    /// Errors beyond [`EccScheme::detectable_bits`] may be mis-decoded
    /// silently; that is inherent to any code and is part of what the
    /// simulator measures.
    fn decode(&self, stored: &BitBuf) -> Decoded;

    /// Encodes a batch of data words into `out`, one codeword per word.
    ///
    /// The default forwards to [`EccScheme::encode`] per word; callers on
    /// hot paths (the SRAM array, the L1′ checkpoint buffer) use this
    /// entry point so dynamic dispatch is paid once per block instead of
    /// once per word, and so codecs with heavyweight lookup tables keep
    /// them hot across the whole batch.
    ///
    /// # Panics
    ///
    /// Panics if `data` and `out` lengths differ.
    fn encode_block(&self, data: &[u32], out: &mut [BitBuf]) {
        assert_eq!(
            data.len(),
            out.len(),
            "encode_block length mismatch for {}",
            self.name()
        );
        for (&word, slot) in data.iter().zip(out.iter_mut()) {
            *slot = self.encode(word);
        }
    }

    /// Decodes a batch of stored codewords into `out`.
    ///
    /// Semantically identical to mapping [`EccScheme::decode`] over
    /// `stored`; see [`EccScheme::encode_block`] for why a batch entry
    /// point exists.
    ///
    /// # Panics
    ///
    /// Panics if `stored` and `out` lengths differ.
    fn decode_block(&self, stored: &[BitBuf], out: &mut [Decoded]) {
        assert_eq!(
            stored.len(),
            out.len(),
            "decode_block length mismatch for {}",
            self.name()
        );
        for (word, slot) in stored.iter().zip(out.iter_mut()) {
            *slot = self.decode(word);
        }
    }
}

/// Configuration-level identification of a protection scheme.
///
/// This is what system-level code stores in platform descriptions; it is
/// turned into a live codec with [`build_scheme`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EccKind {
    /// No protection: reads return stored bits verbatim.
    None,
    /// Single even-parity bit: detects 1, corrects 0.
    Parity,
    /// `ways` interleaved parity bits: detects any adjacent burst up to
    /// `ways` bits, corrects 0 — the minimal SMU-sound detector.
    InterleavedParity {
        /// Number of interleaved parity ways.
        ways: u8,
    },
    /// Hamming SECDED(39,32): corrects 1, detects 2.
    Secded,
    /// 4×8 two-dimensional parity product code: corrects 1, detects any
    /// adjacent burst up to 8 bits (the paper's cited "2D coding", ref. 7).
    TwoDimParity,
    /// `ways`-way interleaved SECDED: corrects any `ways`-bit adjacent burst.
    InterleavedSecded {
        /// Number of interleaved SECDED sub-codes.
        ways: u8,
    },
    /// Binary BCH with `t`-bit random error correction over the smallest
    /// adequate field.
    Bch {
        /// Correction strength in bits per word.
        t: u8,
    },
}

impl EccKind {
    /// All kinds exercised by the design-space exploration, strongest last.
    #[must_use]
    pub fn catalog() -> Vec<EccKind> {
        let mut kinds = vec![
            EccKind::None,
            EccKind::Parity,
            EccKind::Secded,
            EccKind::TwoDimParity,
        ];
        for ways in [2u8, 4, 6, 8] {
            kinds.push(EccKind::InterleavedParity { ways });
        }
        for ways in [2u8, 4] {
            kinds.push(EccKind::InterleavedSecded { ways });
        }
        for t in 1..=18u8 {
            kinds.push(EccKind::Bch { t });
        }
        kinds
    }
}

impl std::fmt::Display for EccKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EccKind::None => write!(f, "none"),
            EccKind::Parity => write!(f, "parity"),
            EccKind::InterleavedParity { ways } => write!(f, "parity-x{ways}"),
            EccKind::Secded => write!(f, "secded"),
            EccKind::TwoDimParity => write!(f, "2d-parity"),
            EccKind::InterleavedSecded { ways } => write!(f, "secded-x{ways}"),
            EccKind::Bch { t } => write!(f, "bch-t{t}"),
        }
    }
}

/// Error returned when a scheme cannot be constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildSchemeError {
    message: String,
}

impl BuildSchemeError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for BuildSchemeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cannot build ecc scheme: {}", self.message)
    }
}

impl std::error::Error for BuildSchemeError {}

/// Builds a live codec for `kind`.
///
/// # Errors
///
/// Returns [`BuildSchemeError`] for invalid parameters (e.g. a BCH strength
/// beyond t = 18, or an interleave factor that does not divide 32).
///
/// # Examples
///
/// ```
/// use chunkpoint_ecc::{build_scheme, EccKind};
///
/// let code = build_scheme(EccKind::Bch { t: 4 })?;
/// assert!(code.check_bits() > 0);
/// assert_eq!(code.correctable_bits(), 4);
/// # Ok::<(), chunkpoint_ecc::BuildSchemeError>(())
/// ```
pub fn build_scheme(kind: EccKind) -> Result<Box<dyn EccScheme>, BuildSchemeError> {
    match kind {
        EccKind::None => Ok(Box::new(crate::parity::NoCode::new())),
        EccKind::Parity => Ok(Box::new(crate::parity::ParityCode::new())),
        EccKind::InterleavedParity { ways } => crate::parity::InterleavedParity::new(ways as usize)
            .map(|c| Box::new(c) as Box<dyn EccScheme>),
        EccKind::Secded => Ok(Box::new(crate::secded::SecdedCode::new())),
        EccKind::TwoDimParity => Ok(Box::new(crate::twodim::TwoDimParity::new())),
        EccKind::InterleavedSecded { ways } => {
            crate::interleaved::InterleavedSecded::new(ways as usize)
                .map(|c| Box::new(c) as Box<dyn EccScheme>)
        }
        EccKind::Bch { t } => {
            crate::bch::BchCode::for_word(t as usize).map(|c| Box::new(c) as Box<dyn EccScheme>)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decoded_data_accessor() {
        assert_eq!(Decoded::Clean { data: 7 }.data(), Some(7));
        assert_eq!(
            Decoded::Corrected {
                data: 7,
                bits_corrected: 2
            }
            .data(),
            Some(7)
        );
        assert_eq!(Decoded::DetectedUncorrectable.data(), None);
        assert!(Decoded::DetectedUncorrectable.is_failure());
        assert!(!Decoded::Clean { data: 0 }.is_failure());
    }

    #[test]
    fn catalog_contains_all_families() {
        let kinds = EccKind::catalog();
        assert!(kinds.contains(&EccKind::None));
        assert!(kinds.contains(&EccKind::Parity));
        assert!(kinds.contains(&EccKind::Secded));
        assert!(kinds.contains(&EccKind::Bch { t: 18 }));
        assert_eq!(
            kinds
                .iter()
                .filter(|k| matches!(k, EccKind::Bch { .. }))
                .count(),
            18
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(EccKind::None.to_string(), "none");
        assert_eq!(EccKind::Bch { t: 3 }.to_string(), "bch-t3");
        assert_eq!(
            EccKind::InterleavedSecded { ways: 4 }.to_string(),
            "secded-x4"
        );
    }

    #[test]
    fn build_every_catalog_entry() {
        for kind in EccKind::catalog() {
            let scheme = build_scheme(kind).unwrap_or_else(|e| panic!("{kind}: {e}"));
            assert_eq!(scheme.data_bits(), 32, "{kind}");
            // Every scheme round-trips a clean word.
            let word = scheme.encode(0x1234_5678);
            assert_eq!(
                scheme.decode(&word),
                Decoded::Clean { data: 0x1234_5678 },
                "{kind}"
            );
        }
    }

    #[test]
    fn build_rejects_bad_parameters() {
        assert!(build_scheme(EccKind::Bch { t: 0 }).is_err());
        assert!(build_scheme(EccKind::Bch { t: 40 }).is_err());
        assert!(build_scheme(EccKind::InterleavedSecded { ways: 3 }).is_err());
    }
}
