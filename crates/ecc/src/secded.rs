//! Hamming single-error-correct / double-error-detect (SECDED) codes.
//!
//! [`HammingSecded`] is parameterised by payload width so the same machinery
//! serves the classic SECDED(39,32) word code and the narrower sub-codes of
//! the interleaved variant. The construction is the textbook one: check bits
//! sit at power-of-two Hamming positions, the syndrome of a single error
//! equals its position, and an overall parity bit disambiguates single from
//! double errors.

use crate::bitbuf::BitBuf;
use crate::scheme::{Decoded, EccScheme};

/// A SECDED Hamming code over `data_bits` payload bits.
///
/// Stored layout: `[0, data_bits)` payload, `[data_bits, data_bits + c)`
/// Hamming check bits, final bit = overall parity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HammingSecded {
    data_bits: usize,
    /// Number of Hamming check bits c (excluding the overall parity bit).
    hamming_bits: usize,
    /// Hamming position (1-based) of each payload bit.
    data_positions: Vec<usize>,
    /// Maps a nonzero syndrome to the stored-bit index it implicates.
    syndrome_to_stored: Vec<Option<usize>>,
}

impl HammingSecded {
    /// Builds a SECDED code for `data_bits` payload bits (4..=32 supported).
    ///
    /// # Panics
    ///
    /// Panics if `data_bits` is outside `4..=32`.
    #[must_use]
    pub fn new(data_bits: usize) -> Self {
        assert!(
            (4..=32).contains(&data_bits),
            "HammingSecded supports 4..=32 data bits, got {data_bits}"
        );
        let mut hamming_bits = 0usize;
        while (1usize << hamming_bits) < data_bits + hamming_bits + 1 {
            hamming_bits += 1;
        }
        let total_positions = data_bits + hamming_bits;
        let mut data_positions = Vec::with_capacity(data_bits);
        for pos in 1..=total_positions {
            if !pos.is_power_of_two() {
                data_positions.push(pos);
            }
        }
        debug_assert_eq!(data_positions.len(), data_bits);
        // syndrome == Hamming position of the flipped bit.
        let mut syndrome_to_stored = vec![None; total_positions + 1];
        for (i, &pos) in data_positions.iter().enumerate() {
            syndrome_to_stored[pos] = Some(i);
        }
        for c in 0..hamming_bits {
            syndrome_to_stored[1 << c] = Some(data_bits + c);
        }
        Self { data_bits, hamming_bits, data_positions, syndrome_to_stored }
    }

    /// Number of Hamming check bits (excluding overall parity).
    #[must_use]
    pub fn hamming_bits(&self) -> usize {
        self.hamming_bits
    }

    fn stored_len(&self) -> usize {
        self.data_bits + self.hamming_bits + 1
    }

    fn compute_checks(&self, data: u32) -> u32 {
        let mut checks = 0u32;
        for (i, &pos) in self.data_positions.iter().enumerate() {
            if (data >> i) & 1 == 1 {
                checks ^= pos as u32;
            }
        }
        checks
    }
}

impl EccScheme for HammingSecded {
    fn name(&self) -> String {
        format!(
            "SECDED({},{})",
            self.stored_len(),
            self.data_bits
        )
    }

    fn data_bits(&self) -> usize {
        self.data_bits
    }

    fn check_bits(&self) -> usize {
        self.hamming_bits + 1
    }

    fn correctable_bits(&self) -> usize {
        1
    }

    fn detectable_bits(&self) -> usize {
        2
    }

    fn encode(&self, data: u32) -> BitBuf {
        assert!(
            self.data_bits == 32 || data < (1u32 << self.data_bits),
            "payload {data:#x} exceeds {} data bits",
            self.data_bits
        );
        let mut stored = BitBuf::new(self.stored_len());
        for i in 0..self.data_bits {
            stored.set(i, (data >> i) & 1 == 1);
        }
        let checks = self.compute_checks(data);
        for c in 0..self.hamming_bits {
            stored.set(self.data_bits + c, (checks >> c) & 1 == 1);
        }
        let parity = stored.count_ones() % 2 == 1;
        stored.set(self.stored_len() - 1, parity);
        stored
    }

    fn decode(&self, stored: &BitBuf) -> Decoded {
        assert_eq!(
            stored.len(),
            self.stored_len(),
            "stored word length mismatch for {}",
            self.name()
        );
        let mut data = 0u32;
        for i in 0..self.data_bits {
            if stored.get(i) {
                data |= 1 << i;
            }
        }
        let mut stored_checks = 0u32;
        for c in 0..self.hamming_bits {
            if stored.get(self.data_bits + c) {
                stored_checks |= 1 << c;
            }
        }
        let syndrome = self.compute_checks(data) ^ stored_checks;
        let parity_ok = stored.count_ones().is_multiple_of(2);
        match (syndrome, parity_ok) {
            (0, true) => Decoded::Clean { data },
            (0, false) => {
                // Only the overall parity bit flipped; payload is intact.
                Decoded::Corrected { data, bits_corrected: 1 }
            }
            (s, false) => {
                // Single error at Hamming position s.
                match self.syndrome_to_stored.get(s as usize).copied().flatten() {
                    Some(idx) if idx < self.data_bits => Decoded::Corrected {
                        data: data ^ (1 << idx),
                        bits_corrected: 1,
                    },
                    Some(_) => Decoded::Corrected { data, bits_corrected: 1 },
                    // Syndrome points outside the code: ≥2 errors.
                    None => Decoded::DetectedUncorrectable,
                }
            }
            (_, true) => Decoded::DetectedUncorrectable,
        }
    }
}

/// The standard SECDED(39,32) word code used for L1 caches (e.g. the 15 %
/// area-overhead configuration cited in the paper's related work).
///
/// # Examples
///
/// ```
/// use chunkpoint_ecc::{SecdedCode, EccScheme};
///
/// let code = SecdedCode::new();
/// assert_eq!(code.check_bits(), 7); // 6 Hamming + overall parity
/// assert_eq!(code.total_bits(), 39);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecdedCode {
    inner: HammingSecded,
}

impl SecdedCode {
    /// Creates the (39,32) SECDED code.
    #[must_use]
    pub fn new() -> Self {
        Self { inner: HammingSecded::new(32) }
    }
}

impl Default for SecdedCode {
    fn default() -> Self {
        Self::new()
    }
}

impl EccScheme for SecdedCode {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn check_bits(&self) -> usize {
        self.inner.check_bits()
    }

    fn correctable_bits(&self) -> usize {
        1
    }

    fn detectable_bits(&self) -> usize {
        2
    }

    fn encode(&self, data: u32) -> BitBuf {
        self.inner.encode(data)
    }

    fn decode(&self, stored: &BitBuf) -> Decoded {
        self.inner.decode(stored)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn secded_39_32_geometry() {
        let code = SecdedCode::new();
        assert_eq!(code.total_bits(), 39);
        assert_eq!(code.name(), "SECDED(39,32)");
    }

    #[test]
    fn corrects_every_single_bit_flip() {
        let code = SecdedCode::new();
        let data = 0x5A5A_A5A5;
        let clean = code.encode(data);
        for i in 0..clean.len() {
            let mut bad = clean;
            bad.flip(i);
            match code.decode(&bad) {
                Decoded::Corrected { data: d, bits_corrected: 1 } => {
                    assert_eq!(d, data, "flip at {i}")
                }
                other => panic!("flip at {i}: {other:?}"),
            }
        }
    }

    #[test]
    fn detects_every_double_bit_flip() {
        let code = SecdedCode::new();
        let clean = code.encode(0xDEAD_BEEF);
        for i in 0..clean.len() {
            for j in (i + 1)..clean.len() {
                let mut bad = clean;
                bad.flip(i);
                bad.flip(j);
                assert_eq!(
                    code.decode(&bad),
                    Decoded::DetectedUncorrectable,
                    "flips at {i},{j}"
                );
            }
        }
    }

    #[test]
    fn narrow_payload_codes() {
        for width in [4usize, 8, 11, 16, 26] {
            let code = HammingSecded::new(width);
            let data = ((1u32 << width) - 1) & 0x5B5B_5B5B;
            let clean = code.encode(data);
            assert_eq!(code.decode(&clean), Decoded::Clean { data }, "w={width}");
            for i in 0..clean.len() {
                let mut bad = clean;
                bad.flip(i);
                assert_eq!(
                    code.decode(&bad).data(),
                    Some(data),
                    "w={width} flip={i}"
                );
            }
        }
    }

    #[test]
    fn check_bit_counts_match_theory() {
        // c Hamming bits must satisfy 2^c >= data + c + 1.
        assert_eq!(HammingSecded::new(32).hamming_bits(), 6);
        assert_eq!(HammingSecded::new(16).hamming_bits(), 5);
        assert_eq!(HammingSecded::new(8).hamming_bits(), 4);
        assert_eq!(HammingSecded::new(4).hamming_bits(), 3);
    }

    #[test]
    #[should_panic(expected = "supports 4..=32")]
    fn rejects_tiny_payload() {
        let _ = HammingSecded::new(2);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn rejects_oversized_payload_value() {
        let code = HammingSecded::new(8);
        let _ = code.encode(0x100);
    }
}
