//! Hamming single-error-correct / double-error-detect (SECDED) codes.
//!
//! [`HammingSecded`] is parameterised by payload width so the same machinery
//! serves the classic SECDED(39,32) word code and the narrower sub-codes of
//! the interleaved variant. The construction is the textbook one: check bits
//! sit at power-of-two Hamming positions, the syndrome of a single error
//! equals its position, and an overall parity bit disambiguates single from
//! double errors.
//!
//! The hot encode/decode paths are **table-driven and word-parallel**: each
//! check bit has a precomputed payload column mask, so computing the check
//! vector is `hamming_bits` AND+popcount steps over the whole word instead
//! of a loop over payload bit positions, and the stored word (at most 39
//! bits) lives in a single `u64`. The original bit-serial construction is
//! retained as [`HammingSecded::compute_checks_reference`] /
//! [`HammingSecded::encode_reference`] — it is the specification the fast
//! path is differentially tested against.

use crate::bitbuf::BitBuf;
use crate::scheme::{Decoded, EccScheme};

/// A SECDED Hamming code over `data_bits` payload bits.
///
/// Stored layout: `[0, data_bits)` payload, `[data_bits, data_bits + c)`
/// Hamming check bits, final bit = overall parity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HammingSecded {
    data_bits: usize,
    /// Number of Hamming check bits c (excluding the overall parity bit).
    hamming_bits: usize,
    /// Hamming position (1-based) of each payload bit.
    data_positions: Vec<usize>,
    /// `column_masks[c]` = payload bits whose Hamming position has bit `c`
    /// set; check bit `c` is the parity of `data & column_masks[c]`.
    column_masks: Vec<u32>,
    /// Maps a nonzero syndrome to the stored-bit index it implicates.
    syndrome_to_stored: Vec<Option<usize>>,
    /// Cached display name, so `name()` never allocates.
    name: String,
}

impl HammingSecded {
    /// Builds a SECDED code for `data_bits` payload bits (4..=32 supported).
    ///
    /// # Panics
    ///
    /// Panics if `data_bits` is outside `4..=32`.
    #[must_use]
    pub fn new(data_bits: usize) -> Self {
        assert!(
            (4..=32).contains(&data_bits),
            "HammingSecded supports 4..=32 data bits, got {data_bits}"
        );
        let mut hamming_bits = 0usize;
        while (1usize << hamming_bits) < data_bits + hamming_bits + 1 {
            hamming_bits += 1;
        }
        let total_positions = data_bits + hamming_bits;
        let mut data_positions = Vec::with_capacity(data_bits);
        for pos in 1..=total_positions {
            if !pos.is_power_of_two() {
                data_positions.push(pos);
            }
        }
        debug_assert_eq!(data_positions.len(), data_bits);
        // Column masks: the word-parallel transpose of the position list.
        let mut column_masks = vec![0u32; hamming_bits];
        for (i, &pos) in data_positions.iter().enumerate() {
            for (c, mask) in column_masks.iter_mut().enumerate() {
                if pos & (1 << c) != 0 {
                    *mask |= 1 << i;
                }
            }
        }
        // syndrome == Hamming position of the flipped bit.
        let mut syndrome_to_stored = vec![None; total_positions + 1];
        for (i, &pos) in data_positions.iter().enumerate() {
            syndrome_to_stored[pos] = Some(i);
        }
        for c in 0..hamming_bits {
            syndrome_to_stored[1 << c] = Some(data_bits + c);
        }
        let name = format!("SECDED({},{})", data_bits + hamming_bits + 1, data_bits);
        Self {
            data_bits,
            hamming_bits,
            data_positions,
            column_masks,
            syndrome_to_stored,
            name,
        }
    }

    /// Number of Hamming check bits (excluding overall parity).
    #[must_use]
    pub fn hamming_bits(&self) -> usize {
        self.hamming_bits
    }

    fn stored_len(&self) -> usize {
        self.data_bits + self.hamming_bits + 1
    }

    /// Table-driven check-bit computation: one AND + popcount per check
    /// bit over the whole payload word.
    #[inline]
    fn compute_checks(&self, data: u32) -> u32 {
        let mut checks = 0u32;
        for (c, &mask) in self.column_masks.iter().enumerate() {
            checks |= ((data & mask).count_ones() & 1) << c;
        }
        checks
    }

    /// Bit-serial reference for [`Self::compute_checks`] (the original
    /// per-payload-position loop), kept for differential testing and as
    /// the baseline the criterion benches compare against.
    #[must_use]
    pub fn compute_checks_reference(&self, data: u32) -> u32 {
        let mut checks = 0u32;
        for (i, &pos) in self.data_positions.iter().enumerate() {
            if (data >> i) & 1 == 1 {
                checks ^= pos as u32;
            }
        }
        checks
    }

    /// Bit-serial reference encoder: sets every stored bit individually.
    ///
    /// # Panics
    ///
    /// Panics if `data` exceeds the payload width.
    #[must_use]
    pub fn encode_reference(&self, data: u32) -> BitBuf {
        assert!(
            self.data_bits == 32 || data < (1u32 << self.data_bits),
            "payload {data:#x} exceeds {} data bits",
            self.data_bits
        );
        let mut stored = BitBuf::new(self.stored_len());
        for i in 0..self.data_bits {
            stored.set(i, (data >> i) & 1 == 1);
        }
        let checks = self.compute_checks_reference(data);
        for c in 0..self.hamming_bits {
            stored.set(self.data_bits + c, (checks >> c) & 1 == 1);
        }
        let parity = stored.count_ones() % 2 == 1;
        stored.set(self.stored_len() - 1, parity);
        stored
    }
}

impl EccScheme for HammingSecded {
    fn name(&self) -> &str {
        &self.name
    }

    fn data_bits(&self) -> usize {
        self.data_bits
    }

    fn check_bits(&self) -> usize {
        self.hamming_bits + 1
    }

    fn correctable_bits(&self) -> usize {
        1
    }

    fn detectable_bits(&self) -> usize {
        2
    }

    fn encode(&self, data: u32) -> BitBuf {
        assert!(
            self.data_bits == 32 || data < (1u32 << self.data_bits),
            "payload {data:#x} exceeds {} data bits",
            self.data_bits
        );
        // Whole codeword assembled in one u64 (stored_len <= 39).
        let mut w = u64::from(data);
        w |= u64::from(self.compute_checks(data)) << self.data_bits;
        let parity = w.count_ones() & 1;
        w |= u64::from(parity) << (self.stored_len() - 1);
        BitBuf::from_u64(w, self.stored_len())
    }

    fn decode(&self, stored: &BitBuf) -> Decoded {
        assert_eq!(
            stored.len(),
            self.stored_len(),
            "stored word length mismatch for {}",
            self.name
        );
        let w = stored.as_words()[0];
        let data = (w & ((1u64 << self.data_bits) - 1)) as u32;
        let stored_checks = ((w >> self.data_bits) & ((1u64 << self.hamming_bits) - 1)) as u32;
        let syndrome = self.compute_checks(data) ^ stored_checks;
        let parity_ok = w.count_ones() % 2 == 0;
        match (syndrome, parity_ok) {
            (0, true) => Decoded::Clean { data },
            (0, false) => {
                // Only the overall parity bit flipped; payload is intact.
                Decoded::Corrected {
                    data,
                    bits_corrected: 1,
                }
            }
            (s, false) => {
                // Single error at Hamming position s.
                match self.syndrome_to_stored.get(s as usize).copied().flatten() {
                    Some(idx) if idx < self.data_bits => Decoded::Corrected {
                        data: data ^ (1 << idx),
                        bits_corrected: 1,
                    },
                    Some(_) => Decoded::Corrected {
                        data,
                        bits_corrected: 1,
                    },
                    // Syndrome points outside the code: ≥2 errors.
                    None => Decoded::DetectedUncorrectable,
                }
            }
            (_, true) => Decoded::DetectedUncorrectable,
        }
    }
}

/// The standard SECDED(39,32) word code used for L1 caches (e.g. the 15 %
/// area-overhead configuration cited in the paper's related work).
///
/// # Examples
///
/// ```
/// use chunkpoint_ecc::{SecdedCode, EccScheme};
///
/// let code = SecdedCode::new();
/// assert_eq!(code.check_bits(), 7); // 6 Hamming + overall parity
/// assert_eq!(code.total_bits(), 39);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecdedCode {
    inner: HammingSecded,
}

impl SecdedCode {
    /// Creates the (39,32) SECDED code.
    #[must_use]
    pub fn new() -> Self {
        Self {
            inner: HammingSecded::new(32),
        }
    }

    /// Bit-serial reference encoder (see
    /// [`HammingSecded::encode_reference`]).
    #[must_use]
    pub fn encode_reference(&self, data: u32) -> BitBuf {
        self.inner.encode_reference(data)
    }
}

impl Default for SecdedCode {
    fn default() -> Self {
        Self::new()
    }
}

impl EccScheme for SecdedCode {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn check_bits(&self) -> usize {
        self.inner.check_bits()
    }

    fn correctable_bits(&self) -> usize {
        1
    }

    fn detectable_bits(&self) -> usize {
        2
    }

    fn encode(&self, data: u32) -> BitBuf {
        self.inner.encode(data)
    }

    fn decode(&self, stored: &BitBuf) -> Decoded {
        self.inner.decode(stored)
    }

    fn encode_block(&self, data: &[u32], out: &mut [BitBuf]) {
        self.inner.encode_block(data, out);
    }

    fn decode_block(&self, stored: &[BitBuf], out: &mut [Decoded]) {
        self.inner.decode_block(stored, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn secded_39_32_geometry() {
        let code = SecdedCode::new();
        assert_eq!(code.total_bits(), 39);
        assert_eq!(code.name(), "SECDED(39,32)");
    }

    #[test]
    fn corrects_every_single_bit_flip() {
        let code = SecdedCode::new();
        let data = 0x5A5A_A5A5;
        let clean = code.encode(data);
        for i in 0..clean.len() {
            let mut bad = clean;
            bad.flip(i);
            match code.decode(&bad) {
                Decoded::Corrected {
                    data: d,
                    bits_corrected: 1,
                } => {
                    assert_eq!(d, data, "flip at {i}")
                }
                other => panic!("flip at {i}: {other:?}"),
            }
        }
    }

    #[test]
    fn detects_every_double_bit_flip() {
        let code = SecdedCode::new();
        let clean = code.encode(0xDEAD_BEEF);
        for i in 0..clean.len() {
            for j in (i + 1)..clean.len() {
                let mut bad = clean;
                bad.flip(i);
                bad.flip(j);
                assert_eq!(
                    code.decode(&bad),
                    Decoded::DetectedUncorrectable,
                    "flips at {i},{j}"
                );
            }
        }
    }

    #[test]
    fn narrow_payload_codes() {
        for width in [4usize, 8, 11, 16, 26] {
            let code = HammingSecded::new(width);
            let data = ((1u32 << width) - 1) & 0x5B5B_5B5B;
            let clean = code.encode(data);
            assert_eq!(code.decode(&clean), Decoded::Clean { data }, "w={width}");
            for i in 0..clean.len() {
                let mut bad = clean;
                bad.flip(i);
                assert_eq!(code.decode(&bad).data(), Some(data), "w={width} flip={i}");
            }
        }
    }

    #[test]
    fn table_checks_match_reference_everywhere() {
        for width in [4usize, 8, 11, 16, 26, 32] {
            let code = HammingSecded::new(width);
            let mask = if width == 32 {
                u32::MAX
            } else {
                (1 << width) - 1
            };
            for step in 0..1000u32 {
                let data = step.wrapping_mul(2_654_435_761) & mask;
                assert_eq!(
                    code.compute_checks(data),
                    code.compute_checks_reference(data),
                    "w={width} data={data:#x}"
                );
                assert_eq!(
                    code.encode(data),
                    code.encode_reference(data),
                    "w={width} data={data:#x}"
                );
            }
        }
    }

    #[test]
    fn check_bit_counts_match_theory() {
        // c Hamming bits must satisfy 2^c >= data + c + 1.
        assert_eq!(HammingSecded::new(32).hamming_bits(), 6);
        assert_eq!(HammingSecded::new(16).hamming_bits(), 5);
        assert_eq!(HammingSecded::new(8).hamming_bits(), 4);
        assert_eq!(HammingSecded::new(4).hamming_bits(), 3);
    }

    #[test]
    #[should_panic(expected = "supports 4..=32")]
    fn rejects_tiny_payload() {
        let _ = HammingSecded::new(2);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn rejects_oversized_payload_value() {
        let code = HammingSecded::new(8);
        let _ = code.encode(0x100);
    }
}
