//! Bit-interleaved SECDED: a classic low-cost defence against *adjacent*
//! multi-bit upsets (the physical signature of an SMU strike).
//!
//! The 32-bit payload is striped across `ways` independent SECDED sub-codes
//! and the sub-codewords are physically interleaved bit-by-bit, so an
//! adjacent burst of up to `ways` bits lands in distinct sub-codes and every
//! sub-code sees at most one flip.

use crate::bitbuf::BitBuf;
use crate::scheme::{BuildSchemeError, Decoded, EccScheme};
use crate::secded::HammingSecded;

/// A `ways`-way interleaved SECDED code over a 32-bit payload.
///
/// # Examples
///
/// ```
/// use chunkpoint_ecc::{InterleavedSecded, EccScheme, Decoded};
///
/// let code = InterleavedSecded::new(4)?;
/// let mut stored = code.encode(0x0BAD_F00D);
/// // A 4-bit adjacent SMU burst:
/// for i in 10..14 {
///     stored.flip(i);
/// }
/// assert!(matches!(code.decode(&stored), Decoded::Corrected { data: 0x0BAD_F00D, .. }));
/// # Ok::<(), chunkpoint_ecc::BuildSchemeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct InterleavedSecded {
    ways: usize,
    sub: HammingSecded,
    /// Stored bits per sub-codeword.
    sub_len: usize,
    /// Cached display name, so `name()` never allocates.
    name: String,
}

impl InterleavedSecded {
    /// Builds a `ways`-way interleaved code; `ways` must be 2 or 4
    /// (divide 32 with a sub-payload of at least 4 bits).
    ///
    /// # Errors
    ///
    /// Returns [`BuildSchemeError`] for unsupported `ways`.
    pub fn new(ways: usize) -> Result<Self, BuildSchemeError> {
        if !matches!(ways, 2 | 4) {
            return Err(BuildSchemeError::new(format!(
                "interleaved secded supports 2 or 4 ways, got {ways}"
            )));
        }
        let sub = HammingSecded::new(32 / ways);
        let sub_len = sub.data_bits() + sub.check_bits();
        let name = format!("SECDEDx{ways}");
        Ok(Self {
            ways,
            sub,
            sub_len,
            name,
        })
    }

    /// Interleave factor (guaranteed adjacent-burst correction width).
    #[must_use]
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Guaranteed correctable width of an *adjacent* burst, in bits.
    #[must_use]
    pub fn burst_correctable_bits(&self) -> usize {
        self.ways
    }

    fn split_payload(&self, data: u32) -> [u32; 4] {
        let mut parts = [0u32; 4];
        for i in 0..32 {
            if (data >> i) & 1 == 1 {
                parts[i % self.ways] |= 1 << (i / self.ways);
            }
        }
        parts
    }

    fn join_payload(&self, parts: &[u32]) -> u32 {
        let mut data = 0u32;
        for i in 0..32 {
            if (parts[i % self.ways] >> (i / self.ways)) & 1 == 1 {
                data |= 1 << i;
            }
        }
        data
    }
}

impl EccScheme for InterleavedSecded {
    fn name(&self) -> &str {
        &self.name
    }

    fn check_bits(&self) -> usize {
        self.ways * self.sub.check_bits()
    }

    fn correctable_bits(&self) -> usize {
        // Guaranteed for *random* (non-adjacent) errors: one.
        1
    }

    fn detectable_bits(&self) -> usize {
        2
    }

    fn encode(&self, data: u32) -> BitBuf {
        let parts = self.split_payload(data);
        let mut stored = BitBuf::new(self.ways * self.sub_len);
        for (w, &part) in parts[..self.ways].iter().enumerate() {
            let sub = self.sub.encode(part);
            let sub_word = sub.as_words()[0]; // sub_len <= 23 bits
            for i in 0..self.sub_len {
                if (sub_word >> i) & 1 == 1 {
                    stored.set(i * self.ways + w, true);
                }
            }
        }
        stored
    }

    fn decode(&self, stored: &BitBuf) -> Decoded {
        assert_eq!(
            stored.len(),
            self.ways * self.sub_len,
            "stored word length mismatch for {}",
            self.name()
        );
        let stored_words = *stored.as_words();
        let mut parts = [0u32; 4];
        let mut corrected = 0u32;
        for (w, part) in parts[..self.ways].iter_mut().enumerate() {
            let mut sub_word = 0u64;
            for i in 0..self.sub_len {
                let p = i * self.ways + w;
                sub_word |= ((stored_words[p / 64] >> (p % 64)) & 1) << i;
            }
            let sub = BitBuf::from_u64(sub_word, self.sub_len);
            match self.sub.decode(&sub) {
                Decoded::Clean { data } => *part = data,
                Decoded::Corrected {
                    data,
                    bits_corrected,
                } => {
                    corrected += bits_corrected;
                    *part = data;
                }
                Decoded::DetectedUncorrectable => return Decoded::DetectedUncorrectable,
            }
        }
        let data = self.join_payload(&parts[..self.ways]);
        if corrected == 0 {
            Decoded::Clean { data }
        } else {
            Decoded::Corrected {
                data,
                bits_corrected: corrected,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        let x2 = InterleavedSecded::new(2).unwrap();
        // 16-bit sub-payload needs 5 Hamming + 1 parity = 6 check bits/way.
        assert_eq!(x2.check_bits(), 12);
        let x4 = InterleavedSecded::new(4).unwrap();
        // 8-bit sub-payload needs 4 + 1 = 5 check bits/way.
        assert_eq!(x4.check_bits(), 20);
    }

    #[test]
    fn rejects_bad_ways() {
        assert!(InterleavedSecded::new(0).is_err());
        assert!(InterleavedSecded::new(3).is_err());
        assert!(InterleavedSecded::new(8).is_err());
    }

    #[test]
    fn payload_split_join_roundtrip() {
        for ways in [2usize, 4] {
            let code = InterleavedSecded::new(ways).unwrap();
            for data in [0u32, u32::MAX, 0x1234_5678, 0x8000_0001] {
                assert_eq!(code.join_payload(&code.split_payload(data)), data);
            }
        }
    }

    #[test]
    fn corrects_full_width_adjacent_bursts_everywhere() {
        for ways in [2usize, 4] {
            let code = InterleavedSecded::new(ways).unwrap();
            let data = 0xC0DE_D00D;
            let clean = code.encode(data);
            for start in 0..=(clean.len() - ways) {
                let mut bad = clean;
                for i in start..start + ways {
                    bad.flip(i);
                }
                assert_eq!(
                    code.decode(&bad).data(),
                    Some(data),
                    "ways={ways} burst at {start}"
                );
            }
        }
    }

    #[test]
    fn detects_burst_wider_than_ways() {
        let code = InterleavedSecded::new(2).unwrap();
        let clean = code.encode(0x0F0F_F0F0);
        let mut bad = clean;
        // 4 adjacent flips put 2 errors in each of the 2 ways.
        for i in 8..12 {
            bad.flip(i);
        }
        assert_eq!(code.decode(&bad), Decoded::DetectedUncorrectable);
    }

    #[test]
    fn single_random_flip_corrected() {
        let code = InterleavedSecded::new(4).unwrap();
        let data = 0x7777_1111;
        let clean = code.encode(data);
        for i in (0..clean.len()).step_by(7) {
            let mut bad = clean;
            bad.flip(i);
            assert_eq!(code.decode(&bad).data(), Some(data), "flip {i}");
        }
    }
}
