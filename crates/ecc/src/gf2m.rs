//! Arithmetic in the binary extension fields GF(2^m), 3 ≤ m ≤ 14.
//!
//! The field is represented with exp/log tables built from a fixed primitive
//! polynomial per degree, which keeps multiply/divide/inverse O(1) — the same
//! structure a hardware BCH decoder's Galois-field units implement with
//! combinational logic.

/// Primitive polynomials (bit i = coefficient of x^i) for m = 3..=14.
const PRIMITIVE_POLYS: [(u32, u32); 12] = [
    (3, 0b1011),
    (4, 0b1_0011),
    (5, 0b10_0101),
    (6, 0b100_0011),
    (7, 0b1000_1001),
    (8, 0b1_0001_1101),
    (9, 0b10_0001_0001),
    (10, 0b100_0000_1001),
    (11, 0b1000_0000_0101),
    (12, 0b1_0000_0101_0011),
    (13, 0b10_0000_0001_1011),
    (14, 0b100_0100_0100_0011),
];

/// Error returned when requesting an unsupported field degree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildFieldError {
    requested_m: u32,
}

impl std::fmt::Display for BuildFieldError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "field degree m = {} is outside the supported range 3..=14",
            self.requested_m
        )
    }
}

impl std::error::Error for BuildFieldError {}

/// The finite field GF(2^m) with log/antilog tables.
///
/// # Examples
///
/// ```
/// use chunkpoint_ecc::Gf2m;
///
/// let field = Gf2m::new(4)?;
/// let a = 0b0110;
/// let b = field.inv(a);
/// assert_eq!(field.mul(a, b), 1);
/// # Ok::<(), chunkpoint_ecc::BuildFieldError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gf2m {
    m: u32,
    /// Number of nonzero elements: 2^m - 1.
    order: u32,
    /// exp[i] = α^i, doubled to avoid a modulo in `mul`.
    exp: Vec<u16>,
    /// log[x] = i such that α^i = x (log[0] unused).
    log: Vec<u16>,
    poly: u32,
}

impl Gf2m {
    /// Builds GF(2^m) for `3 <= m <= 14`.
    ///
    /// # Errors
    ///
    /// Returns [`BuildFieldError`] when `m` is outside `3..=14`.
    pub fn new(m: u32) -> Result<Self, BuildFieldError> {
        let &(_, poly) = PRIMITIVE_POLYS
            .iter()
            .find(|&&(deg, _)| deg == m)
            .ok_or(BuildFieldError { requested_m: m })?;
        let order = (1u32 << m) - 1;
        let size = 1usize << m;
        let mut exp = vec![0u16; 2 * order as usize];
        let mut log = vec![0u16; size];
        let mut x = 1u32;
        for i in 0..order {
            exp[i as usize] = x as u16;
            log[x as usize] = i as u16;
            x <<= 1;
            if x & (1 << m) != 0 {
                x ^= poly;
            }
        }
        for i in order..(2 * order) {
            exp[i as usize] = exp[(i - order) as usize];
        }
        Ok(Self {
            m,
            order,
            exp,
            log,
            poly,
        })
    }

    /// Field degree m.
    #[must_use]
    pub fn m(&self) -> u32 {
        self.m
    }

    /// Multiplicative group order 2^m - 1.
    #[must_use]
    pub fn order(&self) -> u32 {
        self.order
    }

    /// The primitive polynomial used to construct the field.
    #[must_use]
    pub fn primitive_poly(&self) -> u32 {
        self.poly
    }

    /// α^i for any non-negative exponent.
    #[must_use]
    pub fn alpha_pow(&self, i: u64) -> u16 {
        self.exp[(i % u64::from(self.order)) as usize]
    }

    /// Discrete logarithm of a nonzero element.
    ///
    /// # Panics
    ///
    /// Panics if `x == 0` (zero has no logarithm).
    #[must_use]
    pub fn log(&self, x: u16) -> u16 {
        assert!(x != 0, "log of zero in GF(2^{})", self.m);
        self.log[x as usize]
    }

    /// Raw antilog-table lookup: α^i for `0 <= i < 2·order` without the
    /// modular reduction of [`Gf2m::alpha_pow`] — the Chien-search hot
    /// path keeps its exponents reduced itself.
    #[doc(hidden)]
    #[inline]
    #[must_use]
    pub fn exp_raw(&self, i: usize) -> u16 {
        self.exp[i]
    }

    /// Field multiplication.
    #[inline]
    #[must_use]
    pub fn mul(&self, a: u16, b: u16) -> u16 {
        if a == 0 || b == 0 {
            return 0;
        }
        self.exp[self.log[a as usize] as usize + self.log[b as usize] as usize]
    }

    /// Multiplication by a fixed nonzero element given as its logarithm —
    /// saves one log lookup and one zero test in loops that scale a whole
    /// polynomial (the Berlekamp–Massey update).
    #[doc(hidden)]
    #[inline]
    #[must_use]
    pub fn mul_log(&self, a: u16, log_b: u16) -> u16 {
        if a == 0 {
            return 0;
        }
        self.exp[self.log[a as usize] as usize + log_b as usize]
    }

    /// Field division `a / b`.
    ///
    /// # Panics
    ///
    /// Panics if `b == 0`.
    #[must_use]
    pub fn div(&self, a: u16, b: u16) -> u16 {
        assert!(b != 0, "division by zero in GF(2^{})", self.m);
        if a == 0 {
            return 0;
        }
        let diff = i32::from(self.log[a as usize]) - i32::from(self.log[b as usize]);
        let idx = diff.rem_euclid(self.order as i32) as usize;
        self.exp[idx]
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if `x == 0`.
    #[must_use]
    pub fn inv(&self, x: u16) -> u16 {
        assert!(x != 0, "inverse of zero in GF(2^{})", self.m);
        let l = self.log[x as usize];
        if l == 0 {
            1
        } else {
            self.exp[(self.order - u32::from(l)) as usize]
        }
    }

    /// `x` raised to an arbitrary power, with 0^0 = 1.
    #[must_use]
    pub fn pow(&self, x: u16, e: u64) -> u16 {
        if x == 0 {
            return u16::from(e == 0);
        }
        let l = u64::from(self.log[x as usize]);
        self.exp[((l * (e % u64::from(self.order))) % u64::from(self.order)) as usize]
    }

    /// Evaluates a polynomial with coefficients `coeffs[i]` of x^i at `x`
    /// (Horner's rule).
    #[must_use]
    pub fn eval_poly(&self, coeffs: &[u16], x: u16) -> u16 {
        let mut acc = 0u16;
        for &c in coeffs.iter().rev() {
            acc = self.mul(acc, x) ^ c;
        }
        acc
    }

    /// The cyclotomic coset of `i` modulo 2^m - 1: `{i, 2i, 4i, ...}`.
    #[must_use]
    pub fn cyclotomic_coset(&self, i: u32) -> Vec<u32> {
        let mut coset = vec![i % self.order];
        let mut next = (2 * i) % self.order;
        while next != coset[0] {
            coset.push(next);
            next = (2 * next) % self.order;
        }
        coset
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_out_of_range_degrees() {
        assert!(Gf2m::new(2).is_err());
        assert!(Gf2m::new(15).is_err());
        let err = Gf2m::new(1).unwrap_err();
        assert!(err.to_string().contains("m = 1"));
    }

    #[test]
    fn builds_all_supported_degrees() {
        for m in 3..=14 {
            let field = Gf2m::new(m).expect("supported degree");
            assert_eq!(field.order(), (1 << m) - 1);
        }
    }

    #[test]
    fn exp_log_are_inverse_maps() {
        let field = Gf2m::new(8).unwrap();
        for i in 0..field.order() {
            let x = field.alpha_pow(u64::from(i));
            assert_eq!(u32::from(field.log(x)), i);
        }
    }

    #[test]
    fn multiplication_matches_schoolbook() {
        // Carry-less multiply then reduce by the primitive polynomial.
        let field = Gf2m::new(6).unwrap();
        let poly = field.primitive_poly();
        let m = field.m();
        let slow_mul = |a: u32, b: u32| -> u16 {
            let mut acc = 0u32;
            for bit in 0..m {
                if (b >> bit) & 1 == 1 {
                    acc ^= a << bit;
                }
            }
            for bit in (m..2 * m).rev() {
                if (acc >> bit) & 1 == 1 {
                    acc ^= poly << (bit - m);
                }
            }
            acc as u16
        };
        for a in 0..64u32 {
            for b in 0..64u32 {
                assert_eq!(field.mul(a as u16, b as u16), slow_mul(a, b), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn inverse_and_division() {
        let field = Gf2m::new(10).unwrap();
        for x in 1..=field.order() as u16 {
            let inv = field.inv(x);
            assert_eq!(field.mul(x, inv), 1, "x={x}");
            assert_eq!(field.div(x, x), 1);
        }
        assert_eq!(field.div(0, 5), 0);
    }

    #[test]
    fn pow_edge_cases() {
        let field = Gf2m::new(5).unwrap();
        assert_eq!(field.pow(0, 0), 1);
        assert_eq!(field.pow(0, 3), 0);
        assert_eq!(field.pow(7, 0), 1);
        assert_eq!(field.pow(7, 1), 7);
        // x^(order) == x^0 == 1 for nonzero x.
        assert_eq!(field.pow(9, u64::from(field.order())), 1);
    }

    #[test]
    fn eval_poly_matches_manual() {
        let field = Gf2m::new(4).unwrap();
        // p(x) = 3 + 5x + x^2
        let coeffs = [3u16, 5, 1];
        for x in 0..16u16 {
            let expected = 3 ^ field.mul(5, x) ^ field.mul(x, x);
            assert_eq!(field.eval_poly(&coeffs, x), expected);
        }
    }

    #[test]
    fn cyclotomic_cosets_are_closed_under_doubling() {
        let field = Gf2m::new(6).unwrap();
        for i in 1..10 {
            let coset = field.cyclotomic_coset(i);
            for &c in &coset {
                assert!(coset.contains(&((2 * c) % field.order())));
            }
            // All elements share the same minimal coset representative set.
            assert!(coset.len() as u32 <= field.m());
        }
    }

    #[test]
    #[should_panic(expected = "log of zero")]
    fn log_zero_panics() {
        let field = Gf2m::new(3).unwrap();
        let _ = field.log(0);
    }
}
