//! Two-dimensional (row/column product) parity — the "2D error coding"
//! family the paper cites ([7], Kim et al., MICRO-40) as a lower-cost
//! multi-bit-tolerant alternative to wide block codes.
//!
//! The 32 data bits form a 4×8 grid; one even-parity bit per row (4) and
//! per column (8), plus an overall parity bit covering the whole stored
//! word, give 13 check bits. A single flipped data bit is located by its
//! (row, column) syndrome intersection; the overall bit disambiguates
//! every two-flip pattern (without it, an adjacent row-parity/col-parity
//! pair aliases to a data-bit correction — the classic 2D-parity blind
//! spot), so any adjacent burst of up to 8 bits is detected.

use crate::bitbuf::BitBuf;
use crate::scheme::{Decoded, EccScheme};

/// Grid rows.
const ROWS: usize = 4;
/// Grid columns.
const COLS: usize = 8;
/// Stored layout: 32 data bits, row parities, column parities, and the
/// overall-parity guard bit last (placing it *between* the parity groups
/// would let an odd 3-burst straddling it alias to a data-bit
/// correction).
const ROW_PARITY_BASE: usize = 32;
const COL_PARITY_BASE: usize = 36;
const OVERALL_PARITY_BIT: usize = 44;
const STORED_BITS: usize = 45;

/// Data bits of row r (word-parallel row parity: AND + popcount).
const ROW_MASKS: [u32; ROWS] = [0xFF, 0xFF00, 0x00FF_0000, 0xFF00_0000];
/// Data bits of column c = `COL_STRIDE << c`.
const COL_STRIDE: u32 = 0x0101_0101;

/// The 4×8 two-dimensional parity product code.
///
/// # Examples
///
/// ```
/// use chunkpoint_ecc::{TwoDimParity, EccScheme, Decoded};
///
/// let code = TwoDimParity::new();
/// let mut stored = code.encode(0x00C0_FFEE);
/// stored.flip(13); // single upset -> located at (row 1, col 5)
/// assert_eq!(
///     code.decode(&stored),
///     Decoded::Corrected { data: 0x00C0_FFEE, bits_corrected: 1 }
/// );
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TwoDimParity;

impl TwoDimParity {
    /// Creates the code.
    #[must_use]
    pub fn new() -> Self {
        Self
    }

    /// Row/column syndromes plus the overall-parity check: bit r of `.0`
    /// = row r failure, bit c of `.1` = column c failure, `.2` = overall
    /// parity failed (odd number of stored-bit flips).
    fn syndromes(stored: &BitBuf) -> (u32, u32, bool) {
        let w = stored.as_words()[0];
        let data = w as u32;
        let (mut rows, mut cols) = Self::data_parities(data);
        rows ^= ((w >> ROW_PARITY_BASE) & 0xF) as u32;
        cols ^= ((w >> COL_PARITY_BASE) & 0xFF) as u32;
        (rows, cols, w.count_ones() % 2 == 1)
    }

    /// Row and column parity vectors of a payload word, one AND +
    /// popcount per row/column instead of a walk over the 32 bits.
    fn data_parities(data: u32) -> (u32, u32) {
        let mut rows = 0u32;
        for (r, &mask) in ROW_MASKS.iter().enumerate() {
            rows |= ((data & mask).count_ones() & 1) << r;
        }
        let mut cols = 0u32;
        for c in 0..COLS {
            cols |= ((data & (COL_STRIDE << c)).count_ones() & 1) << c;
        }
        (rows, cols)
    }
}

impl EccScheme for TwoDimParity {
    fn name(&self) -> &str {
        "2D-parity(4x8)"
    }

    fn check_bits(&self) -> usize {
        ROWS + COLS + 1
    }

    fn correctable_bits(&self) -> usize {
        1
    }

    fn detectable_bits(&self) -> usize {
        // Any adjacent burst up to one full row width.
        COLS
    }

    fn encode(&self, data: u32) -> BitBuf {
        let (rows, cols) = Self::data_parities(data);
        let mut w = u64::from(data);
        w |= u64::from(rows) << ROW_PARITY_BASE;
        w |= u64::from(cols) << COL_PARITY_BASE;
        // Overall guard: make the whole stored word even-parity.
        w |= u64::from(w.count_ones() & 1) << OVERALL_PARITY_BIT;
        let stored = BitBuf::from_u64(w, STORED_BITS);
        debug_assert_eq!(stored.count_ones() % 2, 0);
        stored
    }

    fn decode(&self, stored: &BitBuf) -> Decoded {
        assert_eq!(
            stored.len(),
            STORED_BITS,
            "stored word length mismatch for {}",
            self.name()
        );
        let (rows, cols, odd) = Self::syndromes(stored);
        let data = stored.extract_u32(0);
        match (rows.count_ones(), cols.count_ones(), odd) {
            (0, 0, false) => Decoded::Clean { data },
            // Only the overall guard bit flipped; payload intact.
            (0, 0, true) => Decoded::Corrected {
                data,
                bits_corrected: 1,
            },
            // Single data bit at the syndrome intersection (odd weight).
            (1, 1, true) => {
                let r = rows.trailing_zeros() as usize;
                let c = cols.trailing_zeros() as usize;
                let bit = r * COLS + c;
                Decoded::Corrected {
                    data: data ^ (1 << bit),
                    bits_corrected: 1,
                }
            }
            // A lone row/column parity-bit flip (odd weight, payload ok).
            (1, 0, true) | (0, 1, true) => Decoded::Corrected {
                data,
                bits_corrected: 1,
            },
            // Everything else — including every even-weight two-flip
            // pattern the guard bit exposes — is flagged.
            _ => Decoded::DetectedUncorrectable,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        let code = TwoDimParity::new();
        assert_eq!(code.check_bits(), 13);
        assert_eq!(code.total_bits(), 45);
    }

    #[test]
    fn corrects_every_single_flip() {
        let code = TwoDimParity::new();
        let data = 0x5A5A_C3C3;
        let clean = code.encode(data);
        for i in 0..clean.len() {
            let mut bad = clean;
            bad.flip(i);
            assert_eq!(
                code.decode(&bad),
                Decoded::Corrected {
                    data,
                    bits_corrected: 1
                },
                "flip {i}"
            );
        }
    }

    #[test]
    fn detects_all_adjacent_bursts_up_to_eight() {
        let code = TwoDimParity::new();
        let clean = code.encode(0x0F0F_F00F);
        for width in 2..=8usize {
            for start in 0..=(clean.len() - width) {
                let mut bad = clean;
                for i in start..start + width {
                    bad.flip(i);
                }
                // Either flagged, or (harmlessly) corrected back to the
                // original — never a silently wrong payload.
                match code.decode(&bad) {
                    Decoded::DetectedUncorrectable => {}
                    Decoded::Corrected { data, .. } | Decoded::Clean { data } => {
                        assert_eq!(data, 0x0F0F_F00F, "w={width} s={start}");
                    }
                }
            }
        }
    }

    #[test]
    fn some_rectangular_patterns_are_ambiguous() {
        // Four flips at grid corners (r1,c1),(r1,c2),(r2,c1),(r2,c2)
        // cancel all syndromes -> the classic 2D-parity blind spot. Not
        // physically adjacent, so outside the burst model; the guard bit
        // cannot help either (even weight).
        let code = TwoDimParity::new();
        let clean = code.encode(0);
        let mut bad = clean;
        for &bit in &[0usize, 3, 8, 11] {
            bad.flip(bit);
        }
        assert_eq!(
            code.decode(&bad),
            Decoded::Clean {
                data: 0b1001_0000_1001
            }
        );
    }

    #[test]
    fn every_double_flip_is_detected() {
        // The overall guard bit lifts the effective distance to 4: no
        // two-flip pattern (adjacent or not) may be miscorrected.
        let code = TwoDimParity::new();
        let data = 0x1357_9BDF;
        let clean = code.encode(data);
        for i in 0..clean.len() {
            for j in (i + 1)..clean.len() {
                let mut bad = clean;
                bad.flip(i);
                bad.flip(j);
                assert_eq!(
                    code.decode(&bad),
                    Decoded::DetectedUncorrectable,
                    "flips {i},{j}"
                );
            }
        }
    }

    #[test]
    fn roundtrip_various_payloads() {
        let code = TwoDimParity::new();
        for data in [0u32, u32::MAX, 1, 0x8000_0000, 0xDEAD_BEEF] {
            assert_eq!(code.decode(&code.encode(data)), Decoded::Clean { data });
        }
    }
}
