//! Fixed-capacity bit buffer used to hold ECC codewords.
//!
//! Codewords for a 32-bit data word never exceed 256 bits even for the
//! strongest BCH configuration this crate supports (t = 18 over GF(2^8)
//! needs 32 data bits + at most 144 check bits), so a `[u64; 4]` backing
//! store avoids heap allocation on the simulator's hot path.

/// Maximum number of bits a [`BitBuf`] can hold.
pub const BITBUF_CAPACITY: usize = 256;

/// A fixed-capacity, heap-free bit vector.
///
/// Bit `i` is the coefficient of `x^i` when the buffer holds a polynomial
/// codeword, or simply the `i`-th stored bit for flat layouts.
///
/// # Examples
///
/// ```
/// use chunkpoint_ecc::BitBuf;
///
/// let mut buf = BitBuf::new(40);
/// buf.set(3, true);
/// assert!(buf.get(3));
/// assert_eq!(buf.count_ones(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BitBuf {
    words: [u64; 4],
    len: usize,
}

impl BitBuf {
    /// Creates an all-zero buffer of `len` bits.
    ///
    /// # Panics
    ///
    /// Panics if `len > BITBUF_CAPACITY`.
    #[must_use]
    pub fn new(len: usize) -> Self {
        assert!(
            len <= BITBUF_CAPACITY,
            "BitBuf length {len} exceeds capacity {BITBUF_CAPACITY}"
        );
        Self { words: [0; 4], len }
    }

    /// Creates a buffer of `len` bits whose low 32 bits are `value`.
    ///
    /// # Panics
    ///
    /// Panics if `len < 32` or `len > BITBUF_CAPACITY`.
    #[must_use]
    pub fn from_u32(value: u32, len: usize) -> Self {
        assert!(len >= 32, "BitBuf of {len} bits cannot hold a u32");
        let mut buf = Self::new(len);
        buf.words[0] = u64::from(value);
        buf
    }

    /// Number of bits in the buffer.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer holds zero bits.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[must_use]
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bit index {i} out of range for len {}",
            self.len
        );
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(
            i < self.len,
            "bit index {i} out of range for len {}",
            self.len
        );
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Flips bit `i` and returns its new value.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn flip(&mut self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bit index {i} out of range for len {}",
            self.len
        );
        self.words[i / 64] ^= 1u64 << (i % 64);
        self.get(i)
    }

    /// Total number of set bits.
    #[must_use]
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// XORs `other` into `self` bitwise.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn xor_assign(&mut self, other: &Self) {
        assert_eq!(self.len, other.len, "BitBuf length mismatch in xor");
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a ^= *b;
        }
    }

    /// Extracts bits `[start, start + 32)` as a `u32`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the buffer.
    #[must_use]
    pub fn extract_u32(&self, start: usize) -> u32 {
        assert!(start + 32 <= self.len, "u32 extraction out of range");
        let word = start / 64;
        let bit = start % 64;
        let mut out = self.words[word] >> bit;
        if bit > 32 {
            out |= self.words[word + 1] << (64 - bit);
        }
        out as u32
    }

    /// Writes `value` into bits `[start, start + 32)`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the buffer.
    pub fn insert_u32(&mut self, start: usize, value: u32) {
        assert!(start + 32 <= self.len, "u32 insertion out of range");
        let word = start / 64;
        let bit = start % 64;
        self.words[word] &= !(0xFFFF_FFFFu64 << bit);
        self.words[word] |= u64::from(value) << bit;
        if bit > 32 {
            self.words[word + 1] &= !(0xFFFF_FFFFu64 >> (64 - bit));
            self.words[word + 1] |= u64::from(value) >> (64 - bit);
        }
    }

    /// Iterates over the indices of set bits.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |&i| self.get(i))
    }

    /// Number of bit positions in which `self` and `other` differ.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    #[must_use]
    pub fn hamming_distance(&self, other: &Self) -> u32 {
        assert_eq!(self.len, other.len, "BitBuf length mismatch in distance");
        self.words
            .iter()
            .zip(other.words.iter())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum()
    }

    /// Raw backing words (low bit of `words[0]` is bit 0).
    #[must_use]
    pub fn as_words(&self) -> &[u64; 4] {
        &self.words
    }

    /// Mutable raw backing words, for word-parallel codec kernels.
    ///
    /// Callers must keep bits at and above `len()` zero — every other
    /// method relies on that invariant.
    pub fn as_words_mut(&mut self) -> &mut [u64; 4] {
        &mut self.words
    }

    /// Creates a buffer of `len` bits whose low 64 bits are `value`.
    ///
    /// # Panics
    ///
    /// Panics if `len > BITBUF_CAPACITY` or `value` has bits at or above
    /// `len`.
    #[must_use]
    pub fn from_u64(value: u64, len: usize) -> Self {
        let mut buf = Self::new(len);
        assert!(
            len >= 64 || value >> len == 0,
            "value has bits above BitBuf length {len}"
        );
        buf.words[0] = value;
        buf
    }

    /// ORs `value` into bits `[shift, shift + 32)` word-parallel.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the buffer.
    pub fn or_u32_at(&mut self, value: u32, shift: usize) {
        assert!(shift + 32 <= self.len, "u32 insertion out of range");
        let word = shift / 64;
        let bit = shift % 64;
        self.words[word] |= u64::from(value) << bit;
        if bit > 32 {
            self.words[word + 1] |= u64::from(value) >> (64 - bit);
        }
    }

    /// Iterates the stored bits as bytes, low byte first (bits `[8k, 8k+8)`
    /// form byte `k`); the final partial byte is zero-padded.
    pub fn bytes(&self) -> impl Iterator<Item = u8> + '_ {
        (0..self.len.div_ceil(8)).map(move |k| (self.words[k / 8] >> ((k % 8) * 8)) as u8)
    }
}

impl Default for BitBuf {
    fn default() -> Self {
        Self::new(0)
    }
}

impl std::fmt::Display for BitBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for i in (0..self.len).rev() {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_zeroed() {
        let buf = BitBuf::new(100);
        assert_eq!(buf.len(), 100);
        assert_eq!(buf.count_ones(), 0);
        assert!(!buf.is_empty());
    }

    #[test]
    fn empty_buffer() {
        let buf = BitBuf::new(0);
        assert!(buf.is_empty());
        assert_eq!(buf.count_ones(), 0);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut buf = BitBuf::new(200);
        for i in [0, 1, 63, 64, 127, 128, 199] {
            buf.set(i, true);
            assert!(buf.get(i), "bit {i} should be set");
        }
        assert_eq!(buf.count_ones(), 7);
        buf.set(63, false);
        assert!(!buf.get(63));
        assert_eq!(buf.count_ones(), 6);
    }

    #[test]
    fn flip_toggles() {
        let mut buf = BitBuf::new(10);
        assert!(buf.flip(5));
        assert!(!buf.flip(5));
        assert_eq!(buf.count_ones(), 0);
    }

    #[test]
    fn u32_roundtrip_aligned_and_unaligned() {
        for start in [0usize, 7, 32, 61, 100] {
            let mut buf = BitBuf::new(160);
            buf.insert_u32(start, 0xDEAD_BEEF);
            assert_eq!(buf.extract_u32(start), 0xDEAD_BEEF, "start={start}");
        }
    }

    #[test]
    fn from_u32_places_low_bits() {
        let buf = BitBuf::from_u32(0x8000_0001, 40);
        assert!(buf.get(0));
        assert!(buf.get(31));
        assert!(!buf.get(32));
        assert_eq!(buf.extract_u32(0), 0x8000_0001);
    }

    #[test]
    fn xor_and_distance() {
        let mut a = BitBuf::from_u32(0b1010, 64);
        let b = BitBuf::from_u32(0b0110, 64);
        assert_eq!(a.hamming_distance(&b), 2);
        a.xor_assign(&b);
        assert_eq!(a.extract_u32(0), 0b1100);
    }

    #[test]
    fn iter_ones_yields_indices() {
        let mut buf = BitBuf::new(70);
        buf.set(2, true);
        buf.set(65, true);
        let ones: Vec<usize> = buf.iter_ones().collect();
        assert_eq!(ones, vec![2, 65]);
    }

    #[test]
    fn display_is_msb_first() {
        let mut buf = BitBuf::new(4);
        buf.set(0, true);
        buf.set(2, true);
        assert_eq!(buf.to_string(), "0101");
    }

    #[test]
    fn from_u64_and_or_u32_at() {
        let buf = BitBuf::from_u64(0x8000_0000_0001, 48);
        assert!(buf.get(0));
        assert!(buf.get(47));
        for shift in [0usize, 7, 32, 45, 61, 100] {
            let mut a = BitBuf::new(160);
            a.or_u32_at(0xDEAD_BEEF, shift);
            let mut b = BitBuf::new(160);
            b.insert_u32(shift, 0xDEAD_BEEF);
            assert_eq!(a, b, "shift={shift}");
        }
    }

    #[test]
    #[should_panic(expected = "bits above")]
    fn from_u64_rejects_overflow() {
        let _ = BitBuf::from_u64(0x10, 4);
    }

    #[test]
    fn bytes_iterates_low_first_with_padding() {
        let mut buf = BitBuf::new(70);
        buf.set(0, true);
        buf.set(9, true);
        buf.set(65, true);
        let bytes: Vec<u8> = buf.bytes().collect();
        assert_eq!(bytes.len(), 9);
        assert_eq!(bytes[0], 0b1);
        assert_eq!(bytes[1], 0b10);
        assert_eq!(bytes[8], 0b10);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let buf = BitBuf::new(8);
        let _ = buf.get(8);
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn oversized_len_panics() {
        let _ = BitBuf::new(257);
    }
}
