//! # chunkpoint-ecc
//!
//! Error-correcting codes and hardware-overhead models for protecting the
//! 32-bit words of on-chip SRAMs against single-event single-bit (SSU) and
//! multi-bit (SMU) upsets.
//!
//! This crate provides the "HW half" of the hybrid HW-SW mitigation scheme
//! of Sabry, Atienza and Catthoor (DATE 2012): the cheap per-word detectors
//! used on the vulnerable L1 (parity / SECDED) and the strong multi-bit BCH
//! codes that make the tiny L1′ checkpoint buffer effectively fault-free.
//!
//! ## Code families
//!
//! | Code | Corrects | Detects | Check bits / 32-bit word |
//! |------|----------|---------|--------------------------|
//! | [`NoCode`] | 0 | 0 | 0 |
//! | [`ParityCode`] | 0 | 1 (odd) | 1 |
//! | [`SecdedCode`] (Hamming 39,32) | 1 | 2 | 7 |
//! | [`InterleavedSecded`] ×b | 1 random / b-bit burst | 2 | 12 (×2) / 20 (×4) |
//! | [`BchCode`] t = 1…18 | t | 2t | m·t (m = 6…8) |
//!
//! ## Example
//!
//! ```
//! use chunkpoint_ecc::{build_scheme, EccKind, Decoded};
//!
//! // The protected L1' buffer of the paper: a strong multi-bit code.
//! let l1_prime = build_scheme(EccKind::Bch { t: 8 })?;
//! let mut stored = l1_prime.encode(0x1234_5678);
//!
//! // An 8-bit SMU strike:
//! for bit in 20..28 {
//!     stored.flip(bit);
//! }
//! assert_eq!(
//!     l1_prime.decode(&stored).data(),
//!     Some(0x1234_5678),
//! );
//! # Ok::<(), chunkpoint_ecc::BuildSchemeError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bch;
mod bitbuf;
mod gf2m;
mod interleaved;
mod overhead;
mod parity;
mod scheme;
mod secded;
mod twodim;

pub use bch::{BchCode, MAX_WORD_T};
pub use bitbuf::{BitBuf, BITBUF_CAPACITY};
pub use gf2m::{BuildFieldError, Gf2m};
pub use interleaved::InterleavedSecded;
pub use overhead::CodeOverhead;
pub use parity::{InterleavedParity, NoCode, ParityCode};
pub use scheme::{build_scheme, BuildSchemeError, Decoded, EccKind, EccScheme};
pub use secded::{HammingSecded, SecdedCode};
pub use twodim::TwoDimParity;
