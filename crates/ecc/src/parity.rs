//! Trivial protection levels: none, and single even-parity detection.

use crate::bitbuf::BitBuf;
use crate::scheme::{Decoded, EccScheme};

/// No protection at all: stored bits are returned verbatim, so faults become
/// silent data corruption. This models the paper's *Default* system.
///
/// # Examples
///
/// ```
/// use chunkpoint_ecc::{NoCode, EccScheme, Decoded};
///
/// let code = NoCode::new();
/// let mut stored = code.encode(1);
/// stored.flip(0); // fault flips the LSB ...
/// // ... and the read silently reports the wrong value as "clean".
/// assert_eq!(code.decode(&stored), Decoded::Clean { data: 0 });
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoCode;

impl NoCode {
    /// Creates the no-op code.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl EccScheme for NoCode {
    fn name(&self) -> &str {
        "none"
    }

    fn check_bits(&self) -> usize {
        0
    }

    fn correctable_bits(&self) -> usize {
        0
    }

    fn detectable_bits(&self) -> usize {
        0
    }

    fn encode(&self, data: u32) -> BitBuf {
        BitBuf::from_u32(data, 32)
    }

    fn decode(&self, stored: &BitBuf) -> Decoded {
        assert_eq!(stored.len(), 32, "stored word length mismatch for none");
        Decoded::Clean {
            data: stored.extract_u32(0),
        }
    }
}

/// One even-parity bit per word: detects any odd number of flipped bits,
/// corrects nothing. This is the cheap detector the hybrid scheme pairs with
/// its protected L1' buffer (Fig. 2a: "check parity bit").
///
/// # Examples
///
/// ```
/// use chunkpoint_ecc::{ParityCode, EccScheme, Decoded};
///
/// let code = ParityCode::new();
/// let mut stored = code.encode(42);
/// stored.flip(3);
/// assert_eq!(code.decode(&stored), Decoded::DetectedUncorrectable);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParityCode;

impl ParityCode {
    /// Creates the single-parity-bit code.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl EccScheme for ParityCode {
    fn name(&self) -> &str {
        "parity"
    }

    fn check_bits(&self) -> usize {
        1
    }

    fn correctable_bits(&self) -> usize {
        0
    }

    fn detectable_bits(&self) -> usize {
        1
    }

    fn encode(&self, data: u32) -> BitBuf {
        let mut stored = BitBuf::from_u32(data, 33);
        stored.set(32, data.count_ones() % 2 == 1);
        stored
    }

    fn decode(&self, stored: &BitBuf) -> Decoded {
        assert_eq!(stored.len(), 33, "stored word length mismatch for parity");
        if stored.count_ones().is_multiple_of(2) {
            Decoded::Clean {
                data: stored.extract_u32(0),
            }
        } else {
            Decoded::DetectedUncorrectable
        }
    }
}

/// `ways` interleaved even-parity bits: parity bit `j` covers data bits
/// `i ≡ j (mod ways)`. Detects **any** adjacent burst of up to `ways`
/// bits (each way sees at most one flip), corrects nothing.
///
/// This is the minimal detector that is *sound* against a multi-bit-upset
/// fault model: plain single parity (the paper's Fig. 2a wording) misses
/// every even-width burst, so "check parity bit" must be realised as an
/// interleaved-parity check for the scheme's full-mitigation claim to
/// hold. Costs `ways` check bits and a handful of XOR trees.
///
/// # Examples
///
/// ```
/// use chunkpoint_ecc::{InterleavedParity, EccScheme, Decoded};
///
/// let code = InterleavedParity::new(6)?;
/// let mut stored = code.encode(99);
/// // A 4-bit adjacent SMU burst — invisible to single parity:
/// for i in 8..12 {
///     stored.flip(i);
/// }
/// assert_eq!(code.decode(&stored), Decoded::DetectedUncorrectable);
/// # Ok::<(), chunkpoint_ecc::BuildSchemeError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterleavedParity {
    ways: usize,
    /// `way_masks[j]` = stored positions `p ≡ j (mod ways)` over the full
    /// `32 + ways`-bit codeword (fits one backing word), so each way's
    /// parity is one AND + popcount instead of a walk over positions.
    way_masks: [u64; 8],
}

/// Static names so `name()` never allocates (ways is 1..=8).
const INTERLEAVED_PARITY_NAMES: [&str; 8] = [
    "parity-x1",
    "parity-x2",
    "parity-x3",
    "parity-x4",
    "parity-x5",
    "parity-x6",
    "parity-x7",
    "parity-x8",
];

impl InterleavedParity {
    /// Creates a detector with `ways` interleaved parity bits (1..=8).
    ///
    /// # Errors
    ///
    /// Returns [`crate::BuildSchemeError`] when `ways` is outside `1..=8`.
    pub fn new(ways: usize) -> Result<Self, crate::scheme::BuildSchemeError> {
        if !(1..=8).contains(&ways) {
            return Err(crate::scheme::BuildSchemeError::new(format!(
                "interleaved parity supports 1..=8 ways, got {ways}"
            )));
        }
        let mut way_masks = [0u64; 8];
        for p in 0..(32 + ways) {
            way_masks[p % ways] |= 1u64 << p;
        }
        Ok(Self { ways, way_masks })
    }

    /// Number of interleaved ways (= guaranteed burst detection width).
    #[must_use]
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// XOR of all stored bits per way, where a *stored position* `p`
    /// belongs to way `p % ways`. Using the physical position for both
    /// data and parity bits guarantees that an adjacent burst of up to
    /// `ways` bits touches `ways` distinct ways exactly once each — even
    /// when the burst straddles the data/parity boundary.
    fn parities(&self, stored: &BitBuf) -> u32 {
        let w = stored.as_words()[0];
        let mut acc = 0u32;
        for (j, &mask) in self.way_masks[..self.ways].iter().enumerate() {
            acc |= ((w & mask).count_ones() & 1) << j;
        }
        acc
    }
}

impl EccScheme for InterleavedParity {
    fn name(&self) -> &str {
        INTERLEAVED_PARITY_NAMES[self.ways - 1]
    }

    fn check_bits(&self) -> usize {
        self.ways
    }

    fn correctable_bits(&self) -> usize {
        0
    }

    fn detectable_bits(&self) -> usize {
        // Any single adjacent burst up to `ways` wide.
        self.ways
    }

    fn encode(&self, data: u32) -> BitBuf {
        // Data-bit parity per way, word-parallel over physical positions.
        let mut w = u64::from(data);
        // Parity position 32 + j belongs to way (32 + j) % ways; set it to
        // even out that way (positions 32..32+ways cover each way once).
        for j in 0..self.ways {
            let way = (32 + j) % self.ways;
            let parity = u64::from((w & self.way_masks[way]).count_ones() & 1);
            w |= parity << (32 + j);
        }
        let stored = BitBuf::from_u64(w, 32 + self.ways);
        debug_assert_eq!(self.parities(&stored), 0);
        stored
    }

    fn decode(&self, stored: &BitBuf) -> Decoded {
        assert_eq!(
            stored.len(),
            32 + self.ways,
            "stored word length mismatch for {}",
            self.name()
        );
        if self.parities(stored) == 0 {
            Decoded::Clean {
                data: stored.extract_u32(0),
            }
        } else {
            Decoded::DetectedUncorrectable
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nocode_roundtrip_and_silent_corruption() {
        let code = NoCode::new();
        let stored = code.encode(0xFFFF_0000);
        assert_eq!(code.decode(&stored), Decoded::Clean { data: 0xFFFF_0000 });
        let mut corrupted = stored;
        corrupted.flip(31);
        // Corruption is invisible: decode still claims "clean".
        assert_eq!(
            code.decode(&corrupted),
            Decoded::Clean { data: 0x7FFF_0000 }
        );
    }

    #[test]
    fn parity_detects_odd_flips() {
        let code = ParityCode::new();
        for data in [0u32, 1, u32::MAX, 0xA0A0_0505] {
            let stored = code.encode(data);
            assert_eq!(code.decode(&stored), Decoded::Clean { data });
            for flips in [1usize, 3] {
                let mut bad = stored;
                for i in 0..flips {
                    bad.flip(i * 7 % 33);
                }
                assert!(
                    code.decode(&bad).is_failure(),
                    "data={data:#x} flips={flips}"
                );
            }
        }
    }

    #[test]
    fn parity_misses_even_flips() {
        // A double flip defeats single parity — that is the point of the
        // paper's SMU motivation.
        let code = ParityCode::new();
        let mut stored = code.encode(0);
        stored.flip(0);
        stored.flip(1);
        assert_eq!(code.decode(&stored), Decoded::Clean { data: 0b11 });
    }

    #[test]
    fn parity_bit_itself_can_be_hit() {
        let code = ParityCode::new();
        let mut stored = code.encode(123);
        stored.flip(32);
        assert!(code.decode(&stored).is_failure());
    }

    #[test]
    fn interleaved_parity_detects_every_burst_up_to_ways() {
        for ways in [2usize, 4, 6, 8] {
            let code = InterleavedParity::new(ways).unwrap();
            let clean = code.encode(0x9D2C_5680);
            assert_eq!(code.decode(&clean), Decoded::Clean { data: 0x9D2C_5680 });
            for width in 1..=ways {
                for start in 0..=(clean.len() - width) {
                    let mut bad = clean;
                    for i in start..start + width {
                        bad.flip(i);
                    }
                    assert!(
                        bad == clean || code.decode(&bad).is_failure(),
                        "ways={ways} width={width} start={start} undetected"
                    );
                }
            }
        }
    }

    #[test]
    fn interleaved_parity_misses_some_wider_bursts() {
        // A burst of ways+ways bits flips every way twice: undetected —
        // the documented residual risk of any bounded detector.
        let code = InterleavedParity::new(2).unwrap();
        let clean = code.encode(0);
        let mut bad = clean;
        for i in 4..8 {
            bad.flip(i);
        }
        assert!(matches!(code.decode(&bad), Decoded::Clean { .. }));
    }

    #[test]
    fn interleaved_parity_rejects_bad_ways() {
        assert!(InterleavedParity::new(0).is_err());
        assert!(InterleavedParity::new(9).is_err());
    }
}
