//! Property-based tests of the codec substrates under arbitrary inputs.

use proptest::prelude::*;

use chunkpoint_workloads::{adpcm, g726, jpeg, pack_bytes, pack_i16, unpack_bytes, unpack_i16};

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    #[test]
    fn i16_packing_roundtrip(samples in proptest::collection::vec(any::<i16>(), 0..200)) {
        let words = pack_i16(&samples);
        prop_assert_eq!(unpack_i16(&words, samples.len()), samples);
    }

    #[test]
    fn byte_packing_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let words = pack_bytes(&bytes);
        prop_assert_eq!(unpack_bytes(&words, bytes.len()), bytes);
    }

    /// ADPCM decode of encode never panics and yields the right length,
    /// for arbitrary (even adversarial) PCM.
    #[test]
    fn adpcm_total_on_arbitrary_input(
        samples in proptest::collection::vec(any::<i16>(), 1..600),
    ) {
        let codes = adpcm::encode(&samples);
        prop_assert_eq!(codes.len(), samples.len().div_ceil(2));
        let decoded = adpcm::decode(&codes, samples.len());
        prop_assert_eq!(decoded.len(), samples.len());
    }

    /// IMA ADPCM tracks smooth band-limited signals with bounded error.
    #[test]
    fn adpcm_tracks_smooth_signals(
        freq in 50.0f64..1500.0,
        amplitude in 1000.0f64..20000.0,
        phase in 0.0f64..6.2,
    ) {
        let samples: Vec<i16> = (0..2000)
            .map(|i| {
                (amplitude
                    * (2.0 * std::f64::consts::PI * freq * i as f64 / 8000.0 + phase)
                        .sin()) as i16
            })
            .collect();
        let decoded = adpcm::decode(&adpcm::encode(&samples), samples.len());
        let snr = adpcm::snr_db(&samples, &decoded);
        prop_assert!(snr > 8.0, "SNR {snr:.1} dB at {freq:.0} Hz");
    }

    /// G.726 decode of arbitrary code bytes never panics; encoder and
    /// decoder predictor state stays in lockstep for arbitrary input.
    #[test]
    fn g726_lockstep_on_arbitrary_input(
        samples in proptest::collection::vec(any::<i16>(), 1..400),
    ) {
        let mut enc = g726::G726State::new();
        let mut dec = g726::G726State::new();
        for &s in &samples {
            let code = g726::encode_sample(&mut enc, s);
            let _ = g726::decode_sample(&mut dec, code);
        }
        prop_assert_eq!(enc, dec);
    }

    /// G.726 state survives serialisation through memory words.
    #[test]
    fn g726_state_word_roundtrip(
        samples in proptest::collection::vec(any::<i16>(), 1..200),
    ) {
        let mut state = g726::G726State::new();
        for &s in &samples {
            let _ = g726::encode_sample(&mut state, s);
        }
        prop_assert_eq!(g726::G726State::from_words(&state.to_words()), state);
    }

    /// JPEG encode/decode round-trips arbitrary images with bounded loss
    /// at high quality.
    #[test]
    fn jpeg_roundtrip_quality(seed in any::<u64>(), quality in 70u8..=95) {
        let img = chunkpoint_workloads::test_image(24, 16, seed);
        let bytes = jpeg::encode(&img, 24, 16, quality);
        let decoded = jpeg::decode(&bytes).expect("own encoder output parses");
        prop_assert_eq!(decoded.width, 24);
        prop_assert_eq!(decoded.height, 16);
        let psnr = jpeg::psnr_db(&img, &decoded.pixels);
        prop_assert!(psnr > 24.0, "PSNR {psnr:.1} dB at q{quality}");
    }

    /// The JPEG decoder never panics on arbitrarily mutated streams — the
    /// robustness the Default-baseline simulation depends on.
    #[test]
    fn jpeg_decoder_is_total_under_mutation(
        seed in any::<u64>(),
        mutations in proptest::collection::vec((any::<u16>(), any::<u8>()), 1..8),
    ) {
        let img = chunkpoint_workloads::test_image(16, 16, seed);
        let mut bytes = jpeg::encode(&img, 16, 16, 75);
        for &(pos, xor) in &mutations {
            let idx = pos as usize % bytes.len();
            bytes[idx] ^= xor;
        }
        let _ = jpeg::decode(&bytes); // Ok or Err; never panic.
    }

    /// µ-law companding is idempotent on its code domain for random bytes.
    #[test]
    fn ulaw_code_idempotence(byte: u8) {
        use chunkpoint_workloads::g711::{linear_to_ulaw, ulaw_to_linear};
        let linear = ulaw_to_linear(byte);
        let re = linear_to_ulaw(linear);
        prop_assert_eq!(i32::from(ulaw_to_linear(re)), i32::from(linear));
    }
}
