//! The streaming-task abstraction every benchmark implements.
//!
//! A task processes its input in `total_blocks()` *blocks* (the paper's
//! computation phases `P_i`). Each block:
//!
//! 1. refills its input window into L1 through the bus (modelling the
//!    stream interface / DMA of Fig. 3 — which is why input faults are
//!    always recoverable: the window is rewritten on re-execution);
//! 2. loads the codec state from the task's *state region* in L1;
//! 3. computes, storing produced words into the *output region* (the data
//!    chunk `DCH(i)`);
//! 4. stores the updated codec state.
//!
//! The contract that makes rollback sound: `run_block(i)` must be a pure
//! function of (i, state-region contents, host-side input). All cross-block
//! information lives in the state region, never in Rust fields.

use chunkpoint_sim::{MemoryBus, ReadFault, Region};

/// Errors surfaced while running a task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskError {
    /// A detected-uncorrectable memory read (raises the Read Error
    /// Interrupt in the hybrid scheme).
    Read(ReadFault),
    /// The task's input or in-memory data is structurally invalid — e.g. a
    /// corrupted JPEG bitstream that no longer parses. Under weak
    /// protection this is a *symptom* of silent corruption.
    Malformed(String),
    /// The task was configured inconsistently (block out of range, etc.).
    Config(String),
}

impl From<ReadFault> for TaskError {
    fn from(fault: ReadFault) -> Self {
        TaskError::Read(fault)
    }
}

impl std::fmt::Display for TaskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaskError::Read(fault) => write!(f, "read fault: {fault}"),
            TaskError::Malformed(msg) => write!(f, "malformed data: {msg}"),
            TaskError::Config(msg) => write!(f, "bad configuration: {msg}"),
        }
    }
}

impl std::error::Error for TaskError {}

/// Static footprint of a task, consumed by the chunk-size optimizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskProfile {
    /// Number of blocks (= checkpoints N_CH) the task executes.
    pub total_blocks: usize,
    /// Words produced per block (the data-chunk payload S_CH / 4).
    pub block_words: u32,
    /// Words of codec state carried across blocks.
    pub state_words: u32,
    /// Estimated pure-compute cycles per block (excludes memory waits).
    pub compute_cycles_per_block: u64,
    /// Estimated L1 accesses (loads + stores) per block.
    pub accesses_per_block: u64,
}

impl TaskProfile {
    /// Total words that must fit in the protected buffer per checkpoint:
    /// chunk + state (the paper's "data chunk + status registers").
    #[must_use]
    pub fn protected_words(&self) -> u32 {
        self.block_words + self.state_words
    }

    /// Estimated total cycles of the fault-free task.
    #[must_use]
    pub fn estimated_cycles(&self) -> u64 {
        self.total_blocks as u64 * (self.compute_cycles_per_block + self.accesses_per_block)
    }
}

/// A streaming benchmark running against simulated memory.
///
/// See the module docs for the restartability contract. Implementations
/// are the MediaBench-equivalent kernels behind [`crate::Benchmark`].
pub trait StreamingTask {
    /// Benchmark name (e.g. `"adpcm-encode"`).
    fn name(&self) -> String;

    /// Number of blocks the task will execute.
    fn total_blocks(&self) -> usize;

    /// Static profile for the optimizer.
    fn profile(&self) -> TaskProfile;

    /// The codec-state region in L1 (part of every protected chunk).
    fn state_region(&self) -> Region;

    /// The frame-output region in L1. Block `i` writes its chunk at word
    /// offset [`StreamingTask::output_offset`]`(i)` — outputs accumulate
    /// in L1 across the frame, as they do in a real streaming buffer
    /// (which is exactly the exposure the paper's early chunk commits
    /// eliminate).
    fn output_region(&self) -> Region;

    /// Word offset of block `block`'s chunk within the output region.
    fn output_offset(&self, block: usize) -> u32 {
        block as u32 * self.profile().block_words
    }

    /// Allocates regions and writes initial state. Must be callable again
    /// to restart the task from scratch (the SW-baseline recovery).
    ///
    /// # Errors
    ///
    /// Propagates read faults and configuration errors.
    fn init(&mut self, bus: &mut dyn MemoryBus) -> Result<(), TaskError>;

    /// Executes block `block`, returning the number of output words
    /// produced (≤ `profile().block_words`).
    ///
    /// # Errors
    ///
    /// [`TaskError::Read`] on a detected-uncorrectable load — the caller
    /// decides whether that triggers rollback, restart, or abort.
    fn run_block(&mut self, block: usize, bus: &mut dyn MemoryBus) -> Result<u32, TaskError>;
}

/// Reads `region.words` words through the bus (checked).
///
/// # Errors
///
/// Propagates the first [`ReadFault`].
pub fn read_region(bus: &mut dyn MemoryBus, region: Region) -> Result<Vec<u32>, ReadFault> {
    region.iter().map(|addr| bus.load(addr)).collect()
}

/// Writes `values` into the start of `region`.
///
/// # Panics
///
/// Panics if `values` is longer than the region.
pub fn write_region(bus: &mut dyn MemoryBus, region: Region, values: &[u32]) {
    write_region_at(bus, region, 0, values);
}

/// Writes `values` into `region` starting `offset` words in.
///
/// # Panics
///
/// Panics if `offset + values.len()` exceeds the region.
pub fn write_region_at(bus: &mut dyn MemoryBus, region: Region, offset: u32, values: &[u32]) {
    assert!(
        offset as usize + values.len() <= region.words as usize,
        "{} values at offset {offset} exceed region of {} words",
        values.len(),
        region.words
    );
    for (i, &v) in values.iter().enumerate() {
        bus.store(region.word(offset + i as u32), v);
    }
}

/// Packs `i16` samples two-per-word (little end first).
#[must_use]
pub fn pack_i16(samples: &[i16]) -> Vec<u32> {
    samples
        .chunks(2)
        .map(|pair| {
            let lo = pair[0] as u16 as u32;
            let hi = pair.get(1).map_or(0, |&s| s as u16 as u32);
            lo | (hi << 16)
        })
        .collect()
}

/// Unpacks words into `i16` samples (inverse of [`pack_i16`]), truncated to
/// `count` samples.
#[must_use]
pub fn unpack_i16(words: &[u32], count: usize) -> Vec<i16> {
    let mut out = Vec::with_capacity(count);
    for &w in words {
        out.push((w & 0xFFFF) as u16 as i16);
        if out.len() == count {
            break;
        }
        out.push((w >> 16) as u16 as i16);
        if out.len() == count {
            break;
        }
    }
    out
}

/// Packs bytes four-per-word (little end first).
#[must_use]
pub fn pack_bytes(bytes: &[u8]) -> Vec<u32> {
    bytes
        .chunks(4)
        .map(|quad| {
            quad.iter()
                .enumerate()
                .fold(0u32, |acc, (i, &b)| acc | (u32::from(b) << (8 * i)))
        })
        .collect()
}

/// Unpacks words into bytes (inverse of [`pack_bytes`]), truncated to
/// `count` bytes.
#[must_use]
pub fn unpack_bytes(words: &[u32], count: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(count);
    'outer: for &w in words {
        for i in 0..4 {
            out.push((w >> (8 * i)) as u8);
            if out.len() == count {
                break 'outer;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use chunkpoint_ecc::EccKind;
    use chunkpoint_sim::{Component, FaultProcess, PlainBus, Platform, Sram};

    fn bus() -> PlainBus {
        let sram = Sram::new("l1", 256, EccKind::None, FaultProcess::disabled()).unwrap();
        PlainBus::new(sram, Platform::lh7a400(), Component::L1)
    }

    #[test]
    fn region_read_write_roundtrip() {
        let mut bus = bus();
        let region = Region { base: 8, words: 4 };
        write_region(&mut bus, region, &[1, 2, 3]);
        let back = read_region(&mut bus, region).unwrap();
        assert_eq!(back, vec![1, 2, 3, 0]);
    }

    #[test]
    #[should_panic(expected = "exceed region")]
    fn overfull_write_panics() {
        let mut bus = bus();
        write_region(&mut bus, Region { base: 0, words: 1 }, &[1, 2]);
    }

    #[test]
    fn i16_packing_roundtrip() {
        let samples: Vec<i16> = vec![0, -1, 32767, -32768, 5];
        let words = pack_i16(&samples);
        assert_eq!(words.len(), 3);
        assert_eq!(unpack_i16(&words, 5), samples);
    }

    #[test]
    fn byte_packing_roundtrip() {
        let bytes: Vec<u8> = vec![1, 2, 3, 4, 5, 6, 7];
        let words = pack_bytes(&bytes);
        assert_eq!(words.len(), 2);
        assert_eq!(unpack_bytes(&words, 7), bytes);
    }

    #[test]
    fn empty_packing() {
        assert!(pack_i16(&[]).is_empty());
        assert!(pack_bytes(&[]).is_empty());
        assert!(unpack_i16(&[], 0).is_empty());
        assert!(unpack_bytes(&[], 0).is_empty());
    }

    #[test]
    fn profile_protected_words() {
        let p = TaskProfile {
            total_blocks: 10,
            block_words: 16,
            state_words: 4,
            compute_cycles_per_block: 1000,
            accesses_per_block: 64,
        };
        assert_eq!(p.protected_words(), 20);
        assert_eq!(p.estimated_cycles(), 10640);
    }

    #[test]
    fn task_error_display() {
        let e = TaskError::Malformed("bad marker".into());
        assert!(e.to_string().contains("bad marker"));
        let rf = ReadFault { addr: 3, cycle: 9 };
        assert!(TaskError::from(rf).to_string().contains("read fault"));
    }
}
