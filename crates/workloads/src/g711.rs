//! ITU-T G.711 companding (µ-law and A-law), following the classic Sun
//! Microsystems `g711.c` reference arithmetic (full 16-bit linear domain).
//!
//! G.726/G.721 transcoders normally operate on companded telephone
//! samples; this module provides the standard conversions and is also a
//! small self-contained kernel used in tests.

const SIGN_BIT: u8 = 0x80;
const QUANT_MASK: i32 = 0x0F;
const SEG_SHIFT: u8 = 4;
const SEG_MASK: u8 = 0x70;
const BIAS: i32 = 0x84;
const CLIP: i32 = 8159 * 4 + 3; // 0x7F7B, µ-law clip in the 16-bit domain

/// µ-law segment ends (16-bit domain).
const SEG_UEND: [i32; 8] = [0xFF, 0x1FF, 0x3FF, 0x7FF, 0xFFF, 0x1FFF, 0x3FFF, 0x7FFF];
/// A-law segment ends (13-bit domain, input pre-shifted by 3).
const SEG_AEND: [i32; 8] = [0x1F, 0x3F, 0x7F, 0xFF, 0x1FF, 0x3FF, 0x7FF, 0xFFF];

fn search(val: i32, table: &[i32; 8]) -> usize {
    table.iter().position(|&end| val <= end).unwrap_or(8)
}

/// Encodes a 16-bit linear PCM sample to 8-bit µ-law.
#[must_use]
pub fn linear_to_ulaw(sample: i16) -> u8 {
    let mut pcm = i32::from(sample);
    let mask: u8 = if pcm < 0 {
        pcm = BIAS - pcm;
        0x7F
    } else {
        pcm += BIAS;
        0xFF
    };
    if pcm > CLIP {
        pcm = CLIP;
    }
    let seg = search(pcm, &SEG_UEND);
    if seg >= 8 {
        0x7F ^ mask
    } else {
        let uval = ((seg as u8) << SEG_SHIFT) | (((pcm >> (seg + 3)) & QUANT_MASK) as u8);
        uval ^ mask
    }
}

/// Decodes an 8-bit µ-law byte to 16-bit linear PCM.
#[must_use]
pub fn ulaw_to_linear(byte: u8) -> i16 {
    let u = !byte;
    let mut t = ((i32::from(u) & QUANT_MASK) << 3) + BIAS;
    t <<= (u & SEG_MASK) >> SEG_SHIFT;
    if u & SIGN_BIT != 0 {
        (BIAS - t) as i16
    } else {
        (t - BIAS) as i16
    }
}

/// Encodes a 16-bit linear PCM sample to 8-bit A-law.
#[must_use]
pub fn linear_to_alaw(sample: i16) -> u8 {
    let mut pcm = i32::from(sample) >> 3;
    let mask: u8 = if pcm >= 0 {
        0xD5 // sign (7th) bit = 1, with even-bit inversion
    } else {
        pcm = -pcm - 1;
        0x55
    };
    let seg = search(pcm, &SEG_AEND);
    if seg >= 8 {
        0x7F ^ mask
    } else {
        let mut aval = (seg as u8) << SEG_SHIFT;
        if seg < 2 {
            aval |= ((pcm >> 1) & QUANT_MASK) as u8;
        } else {
            aval |= ((pcm >> seg) & QUANT_MASK) as u8;
        }
        aval ^ mask
    }
}

/// Decodes an 8-bit A-law byte to 16-bit linear PCM.
#[must_use]
pub fn alaw_to_linear(byte: u8) -> i16 {
    let a = byte ^ 0x55;
    let mut t = (i32::from(a) & QUANT_MASK) << 4;
    let seg = (a & SEG_MASK) >> SEG_SHIFT;
    match seg {
        0 => t += 8,
        1 => t += 0x108,
        _ => {
            t += 0x108;
            t <<= seg - 1;
        }
    }
    if a & SIGN_BIT != 0 {
        t as i16
    } else {
        (-t) as i16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adpcm::snr_db;
    use crate::input::speech_pcm;

    #[test]
    fn ulaw_roundtrip_error_is_bounded() {
        for &s in &[-30000i16, -1000, -100, -4, 0, 4, 100, 1000, 30000] {
            let decoded = ulaw_to_linear(linear_to_ulaw(s));
            let err = (i32::from(s) - i32::from(decoded)).abs();
            // Companding error grows with amplitude; bound it relatively.
            let bound = 36 + i32::from(s).abs() / 16;
            assert!(err <= bound, "s={s} decoded={decoded} err={err}");
        }
    }

    #[test]
    fn alaw_roundtrip_error_is_bounded() {
        for &s in &[-30000i16, -1000, -64, 0, 64, 1000, 30000] {
            let decoded = alaw_to_linear(linear_to_alaw(s));
            let err = (i32::from(s) - i32::from(decoded)).abs();
            let bound = 64 + i32::from(s).abs() / 16;
            assert!(err <= bound, "s={s} decoded={decoded} err={err}");
        }
    }

    #[test]
    fn ulaw_speech_snr() {
        let samples = speech_pcm(4000, 13);
        let decoded: Vec<i16> = samples
            .iter()
            .map(|&s| ulaw_to_linear(linear_to_ulaw(s)))
            .collect();
        let snr = snr_db(&samples, &decoded);
        assert!(snr > 25.0, "µ-law SNR only {snr:.1} dB");
    }

    #[test]
    fn alaw_speech_snr() {
        let samples = speech_pcm(4000, 14);
        let decoded: Vec<i16> = samples
            .iter()
            .map(|&s| alaw_to_linear(linear_to_alaw(s)))
            .collect();
        let snr = snr_db(&samples, &decoded);
        assert!(snr > 22.0, "A-law SNR only {snr:.1} dB");
    }

    #[test]
    fn ulaw_codes_are_idempotent() {
        // decode(code) must re-encode to the same code for every byte.
        for byte in 0..=255u8 {
            let linear = ulaw_to_linear(byte);
            let re = linear_to_ulaw(linear);
            // 0x7F and 0xFF both denote zero-ish values; accept exact or
            // zero-magnitude aliasing.
            assert!(
                re == byte || i32::from(ulaw_to_linear(re)) == i32::from(linear),
                "byte={byte:#x} linear={linear} re={re:#x}"
            );
        }
    }

    #[test]
    fn alaw_codes_are_idempotent() {
        for byte in 0..=255u8 {
            let linear = alaw_to_linear(byte);
            let re = linear_to_alaw(linear);
            assert!(
                re == byte || i32::from(alaw_to_linear(re)) == i32::from(linear),
                "byte={byte:#x} linear={linear} re={re:#x}"
            );
        }
    }

    #[test]
    fn sign_symmetry_ulaw() {
        for &s in &[1000i16, 5000, 20000] {
            let pos = i32::from(ulaw_to_linear(linear_to_ulaw(s)));
            let neg = i32::from(ulaw_to_linear(linear_to_ulaw(-s)));
            // µ-law's bias makes the symmetry off-by-one-step at most.
            assert!(
                (pos + neg).abs() <= pos / 16 + 16,
                "s={s} pos={pos} neg={neg}"
            );
        }
    }

    #[test]
    fn monotonicity_on_positive_axis() {
        let mut last = -1i32;
        for s in (0..30000i16).step_by(250) {
            let v = i32::from(ulaw_to_linear(linear_to_ulaw(s)));
            assert!(v >= last, "s={s} v={v} last={last}");
            last = v;
        }
    }
}
