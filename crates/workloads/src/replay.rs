//! Trace-driven replay: capture a benchmark's exact bus access sequence
//! once (through [`chunkpoint_sim::RecordingBus`]), then re-run that
//! sequence as a [`StreamingTask`] of its own.
//!
//! A replayed task touches the same addresses with the same payloads and
//! the same compute gaps as the original run, but carries no codec on the
//! host side — which makes it the reference workload for comparing
//! mitigation stacks: any difference in detected errors, energy or cycles
//! between two schemes replaying the same recording is attributable to the
//! schemes alone, never to data-dependent control flow.

use chunkpoint_sim::{replay_records, AccessRecord, MemoryBus, RecordingBus, Region};

use crate::stream::{StreamingTask, TaskError, TaskProfile};

/// A benchmark run captured segment-by-segment: one access list for
/// `init`, then one per block together with the words it produced.
#[derive(Debug, Clone)]
pub struct TaskRecording {
    name: String,
    profile: TaskProfile,
    state: Region,
    output: Region,
    init: Vec<AccessRecord>,
    blocks: Vec<(Vec<AccessRecord>, u32)>,
}

impl TaskRecording {
    /// Name of the recorded benchmark.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total accesses captured across init and every block.
    #[must_use]
    pub fn total_accesses(&self) -> usize {
        self.init.len() + self.blocks.iter().map(|(r, _)| r.len()).sum::<usize>()
    }
}

/// Runs `task` to completion on `bus`, capturing every access into a
/// [`TaskRecording`]. The bus ends up in the same state a direct run would
/// leave it in — recording is transparent.
///
/// # Errors
///
/// Propagates any [`TaskError`] from the recorded run itself.
pub fn record_task(
    task: &mut dyn StreamingTask,
    bus: &mut dyn MemoryBus,
) -> Result<TaskRecording, TaskError> {
    let mut recorder = RecordingBus::new(bus);
    task.init(&mut recorder)?;
    let init = recorder.take_log();
    let mut blocks = Vec::with_capacity(task.total_blocks());
    for block in 0..task.total_blocks() {
        let produced = task.run_block(block, &mut recorder)?;
        blocks.push((recorder.take_log(), produced));
    }
    Ok(TaskRecording {
        name: task.name(),
        profile: task.profile(),
        state: task.state_region(),
        output: task.output_region(),
        init,
        blocks,
    })
}

/// A [`StreamingTask`] that re-issues a [`TaskRecording`] access-for-access.
///
/// Replayed blocks are trivially restartable: every store payload is part
/// of the recording, so re-running a block after a rollback rewrites the
/// exact same words.
#[derive(Debug, Clone)]
pub struct ReplayTask {
    recording: TaskRecording,
}

impl ReplayTask {
    /// Wraps a recording for replay.
    #[must_use]
    pub fn new(recording: TaskRecording) -> Self {
        Self { recording }
    }
}

impl StreamingTask for ReplayTask {
    fn name(&self) -> String {
        format!("{}-replay", self.recording.name)
    }

    fn total_blocks(&self) -> usize {
        self.recording.blocks.len()
    }

    fn profile(&self) -> TaskProfile {
        self.recording.profile
    }

    fn state_region(&self) -> Region {
        self.recording.state
    }

    fn output_region(&self) -> Region {
        self.recording.output
    }

    fn init(&mut self, bus: &mut dyn MemoryBus) -> Result<(), TaskError> {
        replay_records(&self.recording.init, bus).map_err(TaskError::from)
    }

    fn run_block(&mut self, block: usize, bus: &mut dyn MemoryBus) -> Result<u32, TaskError> {
        let (records, produced) = self
            .recording
            .blocks
            .get(block)
            .ok_or_else(|| TaskError::Config(format!("block {block} out of range")))?;
        replay_records(records, bus)?;
        Ok(*produced)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::read_region;
    use crate::Benchmark;
    use chunkpoint_ecc::EccKind;
    use chunkpoint_sim::{Component, FaultProcess, PlainBus, Platform, Sram};

    fn quiet_bus() -> PlainBus {
        let sram = Sram::new("l1", 16 * 1024, EccKind::None, FaultProcess::disabled()).unwrap();
        PlainBus::new(sram, Platform::lh7a400(), Component::L1)
    }

    #[test]
    fn replay_reproduces_the_original_output_bytes() {
        for benchmark in [Benchmark::AdpcmEncode, Benchmark::G722Decode] {
            let mut original = benchmark.build_task_scaled(8, 0.25);
            let mut source_bus = quiet_bus();
            let recording = record_task(original.as_mut(), &mut source_bus).unwrap();
            assert!(recording.total_accesses() > 0);
            assert_eq!(recording.name(), original.name());

            let mut replay = ReplayTask::new(recording);
            assert_eq!(replay.total_blocks(), original.total_blocks());
            let mut replay_bus = quiet_bus();
            replay.init(&mut replay_bus).unwrap();
            for block in 0..replay.total_blocks() {
                replay.run_block(block, &mut replay_bus).unwrap();
            }
            let original_out = read_region(&mut source_bus, original.output_region()).unwrap();
            let replay_out = read_region(&mut replay_bus, replay.output_region()).unwrap();
            assert_eq!(replay_out, original_out, "{benchmark}");
            assert_eq!(replay_bus.now(), source_bus.now(), "{benchmark}");
        }
    }

    #[test]
    fn replay_of_missing_block_is_config_error() {
        let mut task = Benchmark::AdpcmEncode.build_task_scaled(8, 0.25);
        let mut bus = quiet_bus();
        let recording = record_task(task.as_mut(), &mut bus).unwrap();
        let mut replay = ReplayTask::new(recording);
        let err = replay.run_block(10_000, &mut quiet_bus()).unwrap_err();
        assert!(matches!(err, TaskError::Config(_)));
    }
}
