//! Deterministic synthetic inputs standing in for the MediaBench data
//! files (`clinton.pcm`, `testimg.jpg`, …), which are not redistributable.
//!
//! The generators produce speech-like PCM (a sum of drifting harmonics over
//! pink-ish noise) and a smooth-plus-texture test image — signals with
//! realistic spectral content so the codecs' adaptive predictors and
//! entropy coders are exercised on representative data, not on silence or
//! white noise.

/// Generates `n` 16-bit PCM samples of speech-like audio at a nominal
/// 8 kHz, deterministically from `seed`.
///
/// # Examples
///
/// ```
/// use chunkpoint_workloads::speech_pcm;
///
/// let a = speech_pcm(1024, 1);
/// let b = speech_pcm(1024, 1);
/// assert_eq!(a, b);
/// assert!(a.iter().any(|&s| s != 0));
/// ```
#[must_use]
pub fn speech_pcm(n: usize, seed: u64) -> Vec<i16> {
    let mut rng = SplitMix64::new(seed);
    // Random but fixed formant-ish frequencies.
    let f0 = 80.0 + 60.0 * rng.next_f64(); // pitch, Hz
    let formants = [
        (400.0 + 300.0 * rng.next_f64(), 0.35),
        (1200.0 + 500.0 * rng.next_f64(), 0.22),
        (2400.0 + 600.0 * rng.next_f64(), 0.12),
    ];
    let fs = 8000.0;
    let mut noise_state = 0.0f64;
    (0..n)
        .map(|i| {
            let t = i as f64 / fs;
            // Slow amplitude envelope (syllable rhythm, ~3 Hz).
            let envelope = 0.55 + 0.45 * (2.0 * std::f64::consts::PI * 3.1 * t).sin();
            // Harmonic stack under formant weights.
            let mut x = 0.0;
            for harmonic in 1..=10 {
                let freq = f0 * harmonic as f64;
                let weight: f64 = formants
                    .iter()
                    .map(|&(fc, a)| a / (1.0 + ((freq - fc) / 300.0).powi(2)))
                    .sum();
                x += weight * (2.0 * std::f64::consts::PI * freq * t).sin();
            }
            // Low-passed noise floor (fricative energy).
            noise_state = 0.9 * noise_state + 0.1 * (rng.next_f64() * 2.0 - 1.0);
            x += 0.15 * noise_state;
            let sample = envelope * x * 9000.0;
            sample.clamp(-32768.0, 32767.0) as i16
        })
        .collect()
}

/// Generates a `width`×`height` 8-bit grayscale test image: smooth
/// gradients, a few geometric features, and fine texture — enough spectral
/// spread to exercise JPEG's DCT and entropy coding.
///
/// # Panics
///
/// Panics if either dimension is zero.
#[must_use]
pub fn test_image(width: usize, height: usize, seed: u64) -> Vec<u8> {
    assert!(width > 0 && height > 0, "image must be non-empty");
    let mut rng = SplitMix64::new(seed);
    let cx = width as f64 * (0.3 + 0.4 * rng.next_f64());
    let cy = height as f64 * (0.3 + 0.4 * rng.next_f64());
    let radius = (width.min(height) as f64) * 0.25;
    let mut pixels = Vec::with_capacity(width * height);
    for y in 0..height {
        for x in 0..width {
            let fx = x as f64;
            let fy = y as f64;
            // Diagonal gradient base.
            let mut v = 60.0 + 120.0 * (fx / width as f64 + fy / height as f64) / 2.0;
            // A bright disc.
            let d = ((fx - cx).powi(2) + (fy - cy).powi(2)).sqrt();
            if d < radius {
                v += 70.0 * (1.0 - d / radius);
            }
            // Texture: product of sinusoids plus dither.
            v += 12.0 * (fx * 0.8).sin() * (fy * 0.6).cos();
            v += 6.0 * (rng.next_f64() - 0.5);
            pixels.push(v.clamp(0.0, 255.0) as u8);
        }
    }
    pixels
}

/// Tiny deterministic PRNG (SplitMix64) so inputs do not depend on the
/// `rand` crate's version-to-version stream stability.
#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        Self {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcm_is_deterministic_per_seed() {
        assert_eq!(speech_pcm(512, 7), speech_pcm(512, 7));
        assert_ne!(speech_pcm(512, 7), speech_pcm(512, 8));
    }

    #[test]
    fn pcm_has_reasonable_dynamics() {
        let samples = speech_pcm(8000, 3);
        let max = samples.iter().map(|&s| i32::from(s).abs()).max().unwrap();
        assert!(max > 4000, "signal too quiet: {max}");
        assert!(max <= 32767);
        // Not constant, not clipping-dominated.
        let clipped = samples
            .iter()
            .filter(|&&s| s == i16::MAX || s == i16::MIN)
            .count();
        assert!(clipped < samples.len() / 100);
    }

    #[test]
    fn pcm_zero_crossings_indicate_oscillation() {
        let samples = speech_pcm(8000, 3);
        let crossings = samples
            .windows(2)
            .filter(|w| (w[0] < 0) != (w[1] < 0))
            .count();
        assert!(crossings > 100, "only {crossings} zero crossings");
    }

    #[test]
    fn image_is_deterministic_and_in_range() {
        let a = test_image(32, 24, 1);
        let b = test_image(32, 24, 1);
        assert_eq!(a, b);
        assert_eq!(a.len(), 32 * 24);
        let min = *a.iter().min().unwrap();
        let max = *a.iter().max().unwrap();
        assert!(max > min + 60, "image too flat: {min}..{max}");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_size_image_panics() {
        let _ = test_image(0, 8, 1);
    }
}
