//! # chunkpoint-workloads
//!
//! Streaming media workloads — the MediaBench-equivalent benchmarks the
//! paper evaluates — implemented from scratch and instrumented to run all
//! of their live data through a simulated memory hierarchy
//! ([`chunkpoint_sim::MemoryBus`]).
//!
//! ## Codecs (pure, host-callable)
//!
//! * [`adpcm`] — IMA/DVI ADPCM (MediaBench `adpcm`)
//! * [`g711`] — ITU-T G.711 µ-law / A-law companding
//! * [`g722`] — G.722-style sub-band ADPCM (QMF bank + per-band IMA)
//! * [`g726`] — ITU-T G.726 at 32 kbit/s (≡ G.721, MediaBench `g721`)
//! * [`jpeg`] — baseline grayscale JPEG encoder + robust resumable decoder
//!
//! ## Streaming tasks (simulator-facing)
//!
//! [`Benchmark`] builds each codec as a restartable [`StreamingTask`]: the
//! task processes one data chunk per phase, keeps all cross-phase state in
//! a designated L1 region, and can re-execute any phase after the
//! mitigation layer restores that region — the contract the paper's
//! checkpoint/rollback scheme relies on.
//!
//! ```
//! use chunkpoint_workloads::{Benchmark, StreamingTask};
//! use chunkpoint_sim::{Component, FaultProcess, MemoryBus, PlainBus, Platform, Sram};
//! use chunkpoint_ecc::EccKind;
//!
//! let mut task = Benchmark::AdpcmEncode.build_task_scaled(8, 0.1);
//! let sram = Sram::new("l1", 16 * 1024, EccKind::None, FaultProcess::disabled())?;
//! let mut bus = PlainBus::new(sram, Platform::lh7a400(), Component::L1);
//! task.init(&mut bus)?;
//! let produced = task.run_block(0, &mut bus)?;
//! assert!(produced > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adpcm;
pub mod g711;
pub mod g722;
pub mod g726;
pub mod jpeg;

mod input;
mod replay;
mod stream;
mod tasks;

pub use input::{speech_pcm, test_image};
pub use replay::{record_task, ReplayTask, TaskRecording};
pub use stream::{
    pack_bytes, pack_i16, read_region, unpack_bytes, unpack_i16, write_region, write_region_at,
    StreamingTask, TaskError, TaskProfile,
};
pub use tasks::{
    AdpcmDecodeTask, AdpcmEncodeTask, Benchmark, G721DecodeTask, G721EncodeTask, G722DecodeTask,
    G722EncodeTask, JpegDecodeTask,
};
