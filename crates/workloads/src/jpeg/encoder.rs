//! Baseline grayscale JPEG encoder (used to synthesise benchmark inputs).

use super::dct;
use super::huffman::{default_ac_luma, default_dc_luma, HuffTable};
use super::{scaled_quant, ZIGZAG};

/// Bit writer with JPEG byte stuffing (0xFF → 0xFF 0x00).
#[derive(Debug, Default)]
struct BitWriter {
    out: Vec<u8>,
    acc: u32,
    nbits: u32,
}

impl BitWriter {
    fn put(&mut self, code: u16, length: u8) {
        debug_assert!((1..=16).contains(&length));
        let mask: u32 = if length >= 16 {
            0xFFFF
        } else {
            (1u32 << length) - 1
        };
        self.acc = (self.acc << length) | (u32::from(code) & mask);
        self.nbits += u32::from(length);
        while self.nbits >= 8 {
            let byte = ((self.acc >> (self.nbits - 8)) & 0xFF) as u8;
            self.out.push(byte);
            if byte == 0xFF {
                self.out.push(0x00);
            }
            self.nbits -= 8;
        }
    }

    fn flush(&mut self) {
        if self.nbits > 0 {
            let pad = 8 - self.nbits;
            let byte = (((self.acc << pad) | ((1 << pad) - 1)) & 0xFF) as u8;
            self.out.push(byte);
            if byte == 0xFF {
                self.out.push(0x00);
            }
            self.nbits = 0;
            self.acc = 0;
        }
    }
}

/// Magnitude category (number of bits) of a coefficient value.
fn category(value: i32) -> u8 {
    let mut magnitude = value.unsigned_abs();
    let mut bits = 0u8;
    while magnitude != 0 {
        magnitude >>= 1;
        bits += 1;
    }
    bits
}

/// Amplitude bits: value as-is for positive, ones'-complement for negative.
fn amplitude(value: i32, bits: u8) -> u16 {
    if value >= 0 {
        value as u16
    } else {
        (value - 1 + (1 << bits)) as u16
    }
}

fn push_segment(out: &mut Vec<u8>, marker: u8, payload: &[u8]) {
    out.push(0xFF);
    out.push(marker);
    let len = (payload.len() + 2) as u16;
    out.extend_from_slice(&len.to_be_bytes());
    out.extend_from_slice(payload);
}

/// Encodes a grayscale image as a baseline JFIF bitstream.
///
/// # Panics
///
/// Panics if `pixels.len() != width * height`, if either dimension is zero
/// or not a multiple of 8, or if `quality` is outside `1..=100`.
///
/// # Examples
///
/// ```
/// use chunkpoint_workloads::jpeg;
/// use chunkpoint_workloads::test_image;
///
/// let img = test_image(16, 16, 1);
/// let bytes = jpeg::encode(&img, 16, 16, 75);
/// assert_eq!(&bytes[..2], &[0xFF, 0xD8]); // SOI
/// let decoded = jpeg::decode(&bytes)?;
/// assert_eq!(decoded.width, 16);
/// # Ok::<(), jpeg::JpegError>(())
/// ```
#[must_use]
pub fn encode(pixels: &[u8], width: usize, height: usize, quality: u8) -> Vec<u8> {
    assert_eq!(pixels.len(), width * height, "pixel count mismatch");
    assert!(
        width > 0 && height > 0 && width.is_multiple_of(8) && height.is_multiple_of(8),
        "dimensions must be positive multiples of 8"
    );
    let quant = scaled_quant(quality);
    let dc_table = default_dc_luma();
    let ac_table = default_ac_luma();

    let mut out = vec![0xFF, 0xD8]; // SOI

    // DQT: precision 0, table id 0, zig-zag order.
    let mut dqt = vec![0x00];
    for &k in &ZIGZAG {
        dqt.push(quant[k] as u8);
    }
    push_segment(&mut out, 0xDB, &dqt);

    // SOF0: 8-bit precision, 1 component (id 1, 1x1 sampling, qtable 0).
    let mut sof = vec![8u8];
    sof.extend_from_slice(&(height as u16).to_be_bytes());
    sof.extend_from_slice(&(width as u16).to_be_bytes());
    sof.extend_from_slice(&[1, 1, 0x11, 0]);
    push_segment(&mut out, 0xC0, &sof);

    // DHT: DC class 0 id 0, then AC class 1 id 0.
    let mut dht = Vec::new();
    for (class, table) in [(0u8, &dc_table), (1u8, &ac_table)] {
        let (bits, values) = table.to_spec();
        dht.push(class << 4);
        dht.extend_from_slice(&bits);
        dht.extend_from_slice(&values);
    }
    push_segment(&mut out, 0xC4, &dht);

    // SOS: 1 component, DC table 0 / AC table 0, full spectral range.
    push_segment(&mut out, 0xDA, &[1, 1, 0x00, 0, 63, 0]);

    // Entropy-coded data.
    let mut writer = BitWriter::default();
    let mut dc_pred = 0i32;
    for block_y in 0..height / 8 {
        for block_x in 0..width / 8 {
            let mut spatial = [0f32; 64];
            for y in 0..8 {
                for x in 0..8 {
                    let px = pixels[(block_y * 8 + y) * width + block_x * 8 + x];
                    spatial[y * 8 + x] = f32::from(px) - 128.0;
                }
            }
            let coeffs = dct::forward(&spatial);
            // Quantize in zig-zag order.
            let mut quantized = [0i32; 64];
            for (k, &raster) in ZIGZAG.iter().enumerate() {
                quantized[k] = (coeffs[raster] / f32::from(quant[raster])).round() as i32;
            }
            encode_block(&mut writer, &quantized, &mut dc_pred, &dc_table, &ac_table);
        }
    }
    writer.flush();
    out.extend_from_slice(&writer.out);
    out.extend_from_slice(&[0xFF, 0xD9]); // EOI
    out
}

fn encode_block(
    writer: &mut BitWriter,
    zz: &[i32; 64],
    dc_pred: &mut i32,
    dc_table: &HuffTable,
    ac_table: &HuffTable,
) {
    // DC difference.
    let diff = zz[0] - *dc_pred;
    *dc_pred = zz[0];
    let bits = category(diff);
    let (code, length) = dc_table.encode(bits).expect("DC category in table");
    writer.put(code, length);
    if bits > 0 {
        writer.put(amplitude(diff, bits), bits);
    }
    // AC run-length coding.
    let mut run = 0u8;
    for &value in zz.iter().skip(1) {
        if value == 0 {
            run += 1;
            continue;
        }
        while run >= 16 {
            let (zrl, zl) = ac_table.encode(0xF0).expect("ZRL in table");
            writer.put(zrl, zl);
            run -= 16;
        }
        let bits = category(value);
        debug_assert!(bits <= 10, "AC coefficient too large");
        let (code, length) = ac_table
            .encode((run << 4) | bits)
            .expect("AC symbol in table");
        writer.put(code, length);
        writer.put(amplitude(value, bits), bits);
        run = 0;
    }
    if run > 0 {
        let (eob, el) = ac_table.encode(0x00).expect("EOB in table");
        writer.put(eob, el);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_and_amplitude() {
        assert_eq!(category(0), 0);
        assert_eq!(category(1), 1);
        assert_eq!(category(-1), 1);
        assert_eq!(category(255), 8);
        assert_eq!(category(-512), 10);
        assert_eq!(amplitude(5, 3), 5);
        assert_eq!(amplitude(-5, 3), 2); // ones' complement of 5 in 3 bits
        assert_eq!(amplitude(-1, 1), 0);
    }

    #[test]
    fn bitwriter_stuffs_ff() {
        let mut w = BitWriter::default();
        w.put(0xFF, 8);
        w.flush();
        assert_eq!(w.out, vec![0xFF, 0x00]);
    }

    #[test]
    fn bitwriter_pads_with_ones() {
        let mut w = BitWriter::default();
        w.put(0b101, 3);
        w.flush();
        assert_eq!(w.out, vec![0b1011_1111]);
    }

    #[test]
    fn stream_structure() {
        let img = vec![128u8; 64];
        let bytes = encode(&img, 8, 8, 50);
        assert_eq!(&bytes[..2], &[0xFF, 0xD8]);
        assert_eq!(&bytes[bytes.len() - 2..], &[0xFF, 0xD9]);
        // Contains DQT, SOF0, DHT, SOS markers in order.
        let find = |marker: u8| bytes.windows(2).position(|w| w == [0xFF, marker]);
        let dqt = find(0xDB).expect("DQT");
        let sof = find(0xC0).expect("SOF0");
        let dht = find(0xC4).expect("DHT");
        let sos = find(0xDA).expect("SOS");
        assert!(dqt < sof && sof < dht && dht < sos);
    }

    #[test]
    #[should_panic(expected = "multiples of 8")]
    fn odd_dimensions_panic() {
        let _ = encode(&[0u8; 60], 10, 6, 50);
    }

    #[test]
    #[should_panic(expected = "pixel count")]
    fn wrong_pixel_count_panics() {
        let _ = encode(&[0u8; 63], 8, 8, 50);
    }
}
