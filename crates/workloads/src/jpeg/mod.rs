//! Baseline grayscale JPEG (ITU-T T.81) encoder and decoder — the
//! MediaBench `jpeg` benchmark kernel.
//!
//! The encoder exists to generate valid compressed bitstreams for the
//! decode benchmark and tests; the decoder is the workload the paper
//! evaluates ("JPG decode") and is written to be *resumable* (entropy
//! state can be checkpointed between block rows) and *robust* (corrupted
//! bitstreams produce errors, never panics — essential when simulating
//! silent-corruption baselines).

pub mod dct;
pub mod decoder;
pub mod encoder;
pub mod huffman;

pub use decoder::{decode, DecodedImage, EntropyState, JpegDecoder, JpegError};
pub use encoder::encode;

/// Zig-zag scan order: `ZIGZAG[k]` = raster index of the k-th coefficient.
pub const ZIGZAG: [usize; 64] = [
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5, 12, 19, 26, 33, 40, 48, 41, 34, 27, 20,
    13, 6, 7, 14, 21, 28, 35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51, 58, 59,
    52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
];

/// Annex K luminance quantization table (quality ≈ 50), in raster order.
pub const QUANT_LUMA: [u16; 64] = [
    16, 11, 10, 16, 24, 40, 51, 61, //
    12, 12, 14, 19, 26, 58, 60, 55, //
    14, 13, 16, 24, 40, 57, 69, 56, //
    14, 17, 22, 29, 51, 87, 80, 62, //
    18, 22, 37, 56, 68, 109, 103, 77, //
    24, 35, 55, 64, 81, 104, 113, 92, //
    49, 64, 78, 87, 103, 121, 120, 101, //
    72, 92, 95, 98, 112, 100, 103, 99,
];

/// Scales the base quantization table for a libjpeg-style quality factor
/// in 1..=100 (50 = the table as-is, higher = finer).
///
/// # Panics
///
/// Panics if `quality` is outside `1..=100`.
#[must_use]
pub fn scaled_quant(quality: u8) -> [u16; 64] {
    assert!((1..=100).contains(&quality), "quality must be 1..=100");
    let scale: i32 = if quality < 50 {
        5000 / i32::from(quality)
    } else {
        200 - 2 * i32::from(quality)
    };
    let mut out = [0u16; 64];
    for (o, &q) in out.iter_mut().zip(QUANT_LUMA.iter()) {
        let v = (i32::from(q) * scale + 50) / 100;
        *o = v.clamp(1, 255) as u16;
    }
    out
}

/// Peak signal-to-noise ratio between two 8-bit images, dB.
///
/// # Panics
///
/// Panics if the image lengths differ.
#[must_use]
pub fn psnr_db(reference: &[u8], decoded: &[u8]) -> f64 {
    assert_eq!(reference.len(), decoded.len(), "image size mismatch");
    let mse: f64 = reference
        .iter()
        .zip(decoded.iter())
        .map(|(&a, &b)| {
            let d = f64::from(a) - f64::from(b);
            d * d
        })
        .sum::<f64>()
        / reference.len() as f64;
    if mse == 0.0 {
        return f64::INFINITY;
    }
    10.0 * (255.0f64 * 255.0 / mse).log10()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_is_a_permutation() {
        let mut seen = [false; 64];
        for &i in &ZIGZAG {
            assert!(!seen[i], "duplicate index {i}");
            seen[i] = true;
        }
        assert_eq!(ZIGZAG[0], 0);
        assert_eq!(ZIGZAG[1], 1);
        assert_eq!(ZIGZAG[2], 8);
        assert_eq!(ZIGZAG[63], 63);
    }

    #[test]
    fn quality_scaling_monotone() {
        let q25 = scaled_quant(25);
        let q50 = scaled_quant(50);
        let q90 = scaled_quant(90);
        assert_eq!(q50, QUANT_LUMA);
        for i in 0..64 {
            assert!(q25[i] >= q50[i], "i={i}");
            assert!(q90[i] <= q50[i], "i={i}");
            assert!(q90[i] >= 1);
        }
    }

    #[test]
    fn psnr_identical_is_infinite() {
        let img = vec![7u8; 64];
        assert!(psnr_db(&img, &img).is_infinite());
    }

    #[test]
    #[should_panic(expected = "quality")]
    fn quality_zero_panics() {
        let _ = scaled_quant(0);
    }
}
