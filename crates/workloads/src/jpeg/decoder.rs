//! Baseline grayscale JPEG decoder with resumable entropy decoding.
//!
//! Two layers:
//!
//! * [`JpegDecoder`] parses the headers once and exposes
//!   [`JpegDecoder::decode_blocks`], which entropy-decodes a *run* of 8×8
//!   blocks starting from an explicit [`EntropyState`] — the streaming
//!   task checkpoints that state between blocks, making the kernel
//!   restartable from any checkpoint.
//! * [`decode`] is the convenience whole-image path used in tests and by
//!   host-side golden runs.
//!
//! Every parse path returns [`JpegError`]; corrupted bitstreams (the
//! *Default* baseline's silent corruption) must never panic.

use super::dct;
use super::huffman::{HuffError, HuffTable};
use super::ZIGZAG;

/// Decode-time failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JpegError {
    message: String,
}

impl JpegError {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for JpegError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "jpeg: {}", self.message)
    }
}

impl std::error::Error for JpegError {}

impl From<HuffError> for JpegError {
    fn from(e: HuffError) -> Self {
        JpegError::new(e.to_string())
    }
}

/// Resumable position within the entropy-coded segment.
///
/// Serialises to 4 words — part of the protected data chunk when the JPEG
/// task runs under the hybrid mitigation scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EntropyState {
    /// Byte offset inside the entropy segment (stuffed bytes included).
    pub byte_pos: u32,
    /// Bits of `data[byte_pos]` already consumed (0..8).
    pub bit_pos: u8,
    /// DC predictor.
    pub dc_pred: i32,
    /// Blocks decoded so far.
    pub blocks_done: u32,
}

impl EntropyState {
    /// Serialises to memory words.
    #[must_use]
    pub fn to_words(self) -> [u32; 4] {
        [
            self.byte_pos,
            u32::from(self.bit_pos),
            self.dc_pred as u32,
            self.blocks_done,
        ]
    }

    /// Restores from memory words, clamping the bit position to its legal
    /// range.
    #[must_use]
    pub fn from_words(words: [u32; 4]) -> Self {
        Self {
            byte_pos: words[0],
            bit_pos: (words[1] as u8).min(7),
            dc_pred: words[2] as i32,
            blocks_done: words[3],
        }
    }
}

/// A decoded grayscale image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedImage {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// Row-major pixels.
    pub pixels: Vec<u8>,
}

/// Bit reader over the entropy segment with stuffing removal.
struct BitReader<'a> {
    data: &'a [u8],
    state: EntropyState,
    exhausted: bool,
}

impl<'a> BitReader<'a> {
    fn new(data: &'a [u8], state: EntropyState) -> Self {
        Self {
            data,
            state,
            exhausted: false,
        }
    }

    fn next_bit(&mut self) -> Option<u8> {
        if self.exhausted {
            return None;
        }
        let byte = *self.data.get(self.state.byte_pos as usize)?;
        if byte == 0xFF {
            // Only stuffed FF 00 is data; anything else is a marker = end.
            match self.data.get(self.state.byte_pos as usize + 1) {
                Some(0x00) => {}
                _ => {
                    self.exhausted = true;
                    return None;
                }
            }
        }
        let bit = (byte >> (7 - self.state.bit_pos)) & 1;
        self.state.bit_pos += 1;
        if self.state.bit_pos == 8 {
            self.state.bit_pos = 0;
            self.state.byte_pos += if byte == 0xFF { 2 } else { 1 };
        }
        Some(bit)
    }

    /// Reads `n` magnitude bits MSB-first.
    fn receive(&mut self, n: u8) -> Option<i32> {
        let mut v = 0i32;
        for _ in 0..n {
            v = (v << 1) | i32::from(self.next_bit()?);
        }
        Some(v)
    }
}

/// Sign-extends a magnitude per T.81 `EXTEND`.
fn extend(value: i32, size: u8) -> i32 {
    if size == 0 {
        0
    } else if value < (1 << (size - 1)) {
        value - (1 << size) + 1
    } else {
        value
    }
}

/// Parsed headers plus the entropy segment, ready for block decoding.
#[derive(Debug, Clone)]
pub struct JpegDecoder {
    width: usize,
    height: usize,
    quant: [u16; 64],
    dc_table: HuffTable,
    ac_table: HuffTable,
    /// Offset of the entropy-coded data within the original byte stream.
    entropy_start: usize,
}

impl JpegDecoder {
    /// Parses markers up to (and including) SOS.
    ///
    /// # Errors
    ///
    /// Returns [`JpegError`] on any structural problem: missing SOI,
    /// truncated segments, unsupported encodings (progressive, colour),
    /// invalid tables.
    pub fn parse(bytes: &[u8]) -> Result<Self, JpegError> {
        let need = |cond: bool, msg: &str| {
            if cond {
                Ok(())
            } else {
                Err(JpegError::new(msg))
            }
        };
        need(bytes.len() >= 4, "stream too short")?;
        need(bytes[0] == 0xFF && bytes[1] == 0xD8, "missing SOI")?;
        let mut pos = 2usize;
        let mut quant: Option<[u16; 64]> = None;
        let mut dc_table: Option<HuffTable> = None;
        let mut ac_table: Option<HuffTable> = None;
        let mut frame: Option<(usize, usize)> = None;
        loop {
            need(pos + 4 <= bytes.len(), "truncated marker")?;
            need(bytes[pos] == 0xFF, "expected marker")?;
            let marker = bytes[pos + 1];
            let seg_len = usize::from(u16::from_be_bytes([bytes[pos + 2], bytes[pos + 3]]));
            need(seg_len >= 2, "bad segment length")?;
            let body_start = pos + 4;
            let body_end = pos + 2 + seg_len;
            need(body_end <= bytes.len(), "segment overruns stream")?;
            let body = &bytes[body_start..body_end];
            match marker {
                0xDB => {
                    // DQT (possibly several tables per segment).
                    let mut b = 0usize;
                    while b < body.len() {
                        let pq_tq = body[b];
                        need(pq_tq >> 4 == 0, "16-bit quant tables unsupported")?;
                        need(b + 65 <= body.len(), "truncated DQT")?;
                        if pq_tq & 0x0F == 0 {
                            let mut q = [0u16; 64];
                            for (k, &raster) in ZIGZAG.iter().enumerate() {
                                let value = u16::from(body[b + 1 + k]);
                                need(value > 0, "zero quantizer value")?;
                                q[raster] = value;
                            }
                            quant = Some(q);
                        }
                        b += 65;
                    }
                }
                0xC0 => {
                    need(body.len() >= 9, "truncated SOF0")?;
                    need(body[0] == 8, "only 8-bit precision supported")?;
                    let height = usize::from(u16::from_be_bytes([body[1], body[2]]));
                    let width = usize::from(u16::from_be_bytes([body[3], body[4]]));
                    need(body[5] == 1, "only grayscale (1 component) supported")?;
                    need(width > 0 && height > 0, "empty frame")?;
                    frame = Some((width, height));
                }
                0xC1..=0xCB if marker != 0xC4 && marker != 0xC8 => {
                    return Err(JpegError::new("only baseline sequential supported"));
                }
                0xC4 => {
                    let mut b = 0usize;
                    while b + 17 <= body.len() {
                        let class_id = body[b];
                        let mut bits = [0u8; 16];
                        bits.copy_from_slice(&body[b + 1..b + 17]);
                        let count: usize = bits.iter().map(|&x| x as usize).sum();
                        need(b + 17 + count <= body.len(), "truncated DHT")?;
                        let values = &body[b + 17..b + 17 + count];
                        let table = HuffTable::from_spec(&bits, values)?;
                        match class_id {
                            0x00 => dc_table = Some(table),
                            0x10 => ac_table = Some(table),
                            _ => {} // other ids unused by grayscale scan
                        }
                        b += 17 + count;
                    }
                }
                0xDA => {
                    need(body.len() >= 6, "truncated SOS")?;
                    need(body[0] == 1, "only single-component scans supported")?;
                    let (width, height) = frame.ok_or_else(|| JpegError::new("SOS before SOF0"))?;
                    return Ok(Self {
                        width,
                        height,
                        quant: quant.ok_or_else(|| JpegError::new("missing DQT"))?,
                        dc_table: dc_table.ok_or_else(|| JpegError::new("missing DC DHT"))?,
                        ac_table: ac_table.ok_or_else(|| JpegError::new("missing AC DHT"))?,
                        entropy_start: body_end,
                    });
                }
                0xD9 => return Err(JpegError::new("EOI before SOS")),
                _ => {} // skip APPn/COM/etc.
            }
            pos = body_end;
        }
    }

    /// Image width in pixels.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Blocks per row (ceil(width / 8)).
    #[must_use]
    pub fn blocks_wide(&self) -> usize {
        self.width.div_ceil(8)
    }

    /// Total 8×8 blocks in the scan.
    #[must_use]
    pub fn total_blocks(&self) -> usize {
        self.blocks_wide() * self.height.div_ceil(8)
    }

    /// Offset of the entropy segment within the original stream.
    #[must_use]
    pub fn entropy_start(&self) -> usize {
        self.entropy_start
    }

    /// Entropy-decodes `count` blocks starting at `state`, appending each
    /// block's 64 pixels to `out` and advancing `state`.
    ///
    /// `entropy` must be the entropy segment (the original stream sliced
    /// from [`JpegDecoder::entropy_start`]) — the caller may pass a
    /// *window* of it as long as the window covers the blocks requested.
    ///
    /// # Errors
    ///
    /// Returns [`JpegError`] on invalid codes, coefficient overruns or
    /// premature stream end.
    pub fn decode_blocks(
        &self,
        entropy: &[u8],
        state: &mut EntropyState,
        count: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), JpegError> {
        let mut reader = BitReader::new(entropy, *state);
        for _ in 0..count {
            let block = self.decode_one_block(&mut reader)?;
            out.extend_from_slice(&block);
            reader.state.blocks_done += 1;
        }
        *state = reader.state;
        Ok(())
    }

    fn decode_one_block(&self, reader: &mut BitReader<'_>) -> Result<[u8; 64], JpegError> {
        let mut zz = [0i32; 64];
        // DC coefficient.
        let dc_size = {
            let mut f = || reader.next_bit();
            self.dc_table.decode(&mut f)?
        };
        if dc_size > 11 {
            return Err(JpegError::new("DC category out of range"));
        }
        let dc_bits = reader
            .receive(dc_size)
            .ok_or_else(|| JpegError::new("stream ended in DC magnitude"))?;
        reader.state.dc_pred += extend(dc_bits, dc_size);
        zz[0] = reader.state.dc_pred;
        // AC coefficients.
        let mut k = 1usize;
        while k < 64 {
            let symbol = {
                let mut f = || reader.next_bit();
                self.ac_table.decode(&mut f)?
            };
            if symbol == 0x00 {
                break; // EOB
            }
            let run = usize::from(symbol >> 4);
            let size = symbol & 0x0F;
            if symbol == 0xF0 {
                k += 16;
                continue;
            }
            if size == 0 || size > 10 {
                return Err(JpegError::new("invalid AC size"));
            }
            k += run;
            if k >= 64 {
                return Err(JpegError::new("AC run past block end"));
            }
            let bits = reader
                .receive(size)
                .ok_or_else(|| JpegError::new("stream ended in AC magnitude"))?;
            zz[k] = extend(bits, size);
            k += 1;
        }
        // Dequantize + de-zigzag + IDCT.
        let mut coeffs = [0f32; 64];
        for (k, &raster) in ZIGZAG.iter().enumerate() {
            coeffs[raster] = zz[k] as f32 * f32::from(self.quant[raster]);
        }
        let spatial = dct::inverse(&coeffs);
        let mut pixels = [0u8; 64];
        for (p, &s) in pixels.iter_mut().zip(spatial.iter()) {
            *p = (s + 128.0).round().clamp(0.0, 255.0) as u8;
        }
        Ok(pixels)
    }

    /// Decodes the whole image (convenience path).
    ///
    /// # Errors
    ///
    /// Propagates entropy-decode failures.
    pub fn decode_all(&self, bytes: &[u8]) -> Result<DecodedImage, JpegError> {
        if self.entropy_start > bytes.len() {
            return Err(JpegError::new("entropy segment out of range"));
        }
        let entropy = &bytes[self.entropy_start..];
        let mut state = EntropyState::default();
        let mut block_pixels = Vec::with_capacity(self.total_blocks() * 64);
        self.decode_blocks(entropy, &mut state, self.total_blocks(), &mut block_pixels)?;
        // Re-tile blocks into the raster image (cropping any padding).
        let bw = self.blocks_wide();
        let mut pixels = vec![0u8; self.width * self.height];
        for (b, block) in block_pixels.chunks_exact(64).enumerate() {
            let bx = (b % bw) * 8;
            let by = (b / bw) * 8;
            for y in 0..8 {
                for x in 0..8 {
                    let px = bx + x;
                    let py = by + y;
                    if px < self.width && py < self.height {
                        pixels[py * self.width + px] = block[y * 8 + x];
                    }
                }
            }
        }
        Ok(DecodedImage {
            width: self.width,
            height: self.height,
            pixels,
        })
    }
}

/// Parses and fully decodes a baseline grayscale JPEG stream.
///
/// # Errors
///
/// Returns [`JpegError`] on malformed streams.
pub fn decode(bytes: &[u8]) -> Result<DecodedImage, JpegError> {
    JpegDecoder::parse(bytes)?.decode_all(bytes)
}

#[cfg(test)]
mod tests {
    use super::super::{encode, psnr_db};
    use super::*;
    use crate::input::test_image;

    #[test]
    fn roundtrip_flat_image() {
        let img = vec![100u8; 64];
        let decoded = decode(&encode(&img, 8, 8, 50)).unwrap();
        assert_eq!(decoded.width, 8);
        for &p in &decoded.pixels {
            assert!((i32::from(p) - 100).abs() <= 2, "pixel {p}");
        }
    }

    #[test]
    fn roundtrip_textured_image_psnr() {
        let img = test_image(64, 48, 77);
        let decoded = decode(&encode(&img, 64, 48, 85)).unwrap();
        let psnr = psnr_db(&img, &decoded.pixels);
        assert!(psnr > 30.0, "PSNR only {psnr:.1} dB");
    }

    #[test]
    fn lower_quality_is_smaller_and_worse() {
        let img = test_image(64, 64, 5);
        let hi = encode(&img, 64, 64, 90);
        let lo = encode(&img, 64, 64, 20);
        assert!(lo.len() < hi.len());
        let psnr_hi = psnr_db(&img, &decode(&hi).unwrap().pixels);
        let psnr_lo = psnr_db(&img, &decode(&lo).unwrap().pixels);
        assert!(psnr_hi > psnr_lo);
    }

    #[test]
    fn resumable_decode_matches_batch() {
        let img = test_image(64, 32, 9);
        let bytes = encode(&img, 64, 32, 70);
        let dec = JpegDecoder::parse(&bytes).unwrap();
        let entropy = &bytes[dec.entropy_start()..];
        // Batch.
        let mut all = Vec::new();
        let mut s = EntropyState::default();
        dec.decode_blocks(entropy, &mut s, dec.total_blocks(), &mut all)
            .unwrap();
        // Chunked: 3 blocks at a time with state checkpointing.
        let mut chunked = Vec::new();
        let mut s2 = EntropyState::default();
        let mut left = dec.total_blocks();
        while left > 0 {
            let n = left.min(3);
            dec.decode_blocks(entropy, &mut s2, n, &mut chunked)
                .unwrap();
            left -= n;
        }
        assert_eq!(all, chunked);
        assert_eq!(s.dc_pred, s2.dc_pred);
    }

    #[test]
    fn state_roundtrips_through_words() {
        let s = EntropyState {
            byte_pos: 123,
            bit_pos: 5,
            dc_pred: -44,
            blocks_done: 9,
        };
        assert_eq!(EntropyState::from_words(s.to_words()), s);
    }

    #[test]
    fn rejects_garbage_input() {
        assert!(decode(&[]).is_err());
        assert!(decode(&[0xFF, 0xD8]).is_err());
        assert!(decode(&[0x00; 64]).is_err());
        // SOI then EOI with nothing in between.
        assert!(decode(&[0xFF, 0xD8, 0xFF, 0xD9]).is_err());
    }

    #[test]
    fn corrupted_entropy_errors_not_panics() {
        let img = test_image(32, 32, 2);
        let bytes = encode(&img, 32, 32, 60);
        let dec = JpegDecoder::parse(&bytes).unwrap();
        // Flip bits throughout the entropy segment; decode must either
        // succeed (benign flip) or error — never panic.
        for i in (dec.entropy_start()..bytes.len() - 2).step_by(7) {
            let mut bad = bytes.clone();
            bad[i] ^= 0x41;
            let _ = decode(&bad);
        }
    }

    #[test]
    fn corrupted_headers_error() {
        let img = test_image(16, 16, 3);
        let bytes = encode(&img, 16, 16, 60);
        for i in 2..40 {
            let mut bad = bytes.clone();
            bad[i] ^= 0xFF;
            let _ = decode(&bad); // must not panic
        }
    }

    #[test]
    fn truncated_entropy_errors() {
        let img = test_image(16, 16, 4);
        let bytes = encode(&img, 16, 16, 60);
        let dec = JpegDecoder::parse(&bytes).unwrap();
        let cut = dec.entropy_start() + 3;
        assert!(dec.decode_all(&bytes[..cut]).is_err());
    }

    #[test]
    fn non_multiple_of_eight_is_cropped() {
        // The decoder supports any frame size; our encoder only emits
        // multiples of 8, so synthesise by decoding a 16x16 and checking
        // the tiling maths stays in range via decode_all on a parsed
        // header with adjusted dims — covered implicitly: parse errors on
        // zero dims.
        let img = test_image(16, 16, 5);
        let decoded = decode(&encode(&img, 16, 16, 60)).unwrap();
        assert_eq!(decoded.pixels.len(), 256);
    }
}
