//! 8×8 forward and inverse DCT-II used by the JPEG kernels.
//!
//! Straightforward separable float implementation; the simulator charges
//! cycles per block from the task profile, so raw Rust speed is not the
//! modelling target — correctness and orthogonality are.

use std::f32::consts::PI;

/// Block edge length.
pub const N: usize = 8;

/// Precomputed cos((2x+1)uπ/16) basis, indexed `[u][x]`.
fn basis() -> [[f32; N]; N] {
    let mut c = [[0.0f32; N]; N];
    for (u, row) in c.iter_mut().enumerate() {
        for (x, v) in row.iter_mut().enumerate() {
            *v = (((2 * x + 1) as f32) * (u as f32) * PI / 16.0).cos();
        }
    }
    c
}

fn alpha(u: usize) -> f32 {
    if u == 0 {
        1.0 / (2.0f32).sqrt()
    } else {
        1.0
    }
}

/// Forward 8×8 DCT of spatial samples (level-shifted by the caller).
#[must_use]
pub fn forward(block: &[f32; 64]) -> [f32; 64] {
    let c = basis();
    let mut out = [0.0f32; 64];
    for u in 0..N {
        for v in 0..N {
            let mut acc = 0.0f32;
            for x in 0..N {
                for y in 0..N {
                    acc += block[x * N + y] * c[u][x] * c[v][y];
                }
            }
            out[u * N + v] = 0.25 * alpha(u) * alpha(v) * acc;
        }
    }
    out
}

/// Inverse 8×8 DCT back to spatial samples.
#[must_use]
pub fn inverse(coeffs: &[f32; 64]) -> [f32; 64] {
    let c = basis();
    let mut out = [0.0f32; 64];
    for x in 0..N {
        for y in 0..N {
            let mut acc = 0.0f32;
            for u in 0..N {
                for v in 0..N {
                    acc += alpha(u) * alpha(v) * coeffs[u * N + v] * c[u][x] * c[v][y];
                }
            }
            out[x * N + y] = 0.25 * acc;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> [f32; 64] {
        let mut b = [0.0f32; 64];
        for (i, v) in b.iter_mut().enumerate() {
            *v = (i as f32) - 32.0;
        }
        b
    }

    #[test]
    fn roundtrip_is_identity() {
        let block = ramp();
        let back = inverse(&forward(&block));
        for i in 0..64 {
            assert!((block[i] - back[i]).abs() < 1e-3, "i={i}");
        }
    }

    #[test]
    fn dc_of_constant_block() {
        let block = [100.0f32; 64];
        let coeffs = forward(&block);
        // DC = 8 * mean = 800.
        assert!((coeffs[0] - 800.0).abs() < 1e-2);
        for (i, &c) in coeffs.iter().enumerate().skip(1) {
            assert!(c.abs() < 1e-3, "AC coeff {i} = {c}");
        }
    }

    #[test]
    fn energy_preservation_parseval() {
        let block = ramp();
        let coeffs = forward(&block);
        let spatial: f32 = block.iter().map(|v| v * v).sum();
        let spectral: f32 = coeffs.iter().map(|v| v * v).sum();
        assert!((spatial - spectral).abs() / spatial < 1e-4);
    }

    #[test]
    fn single_basis_function_is_sparse() {
        // A pure horizontal cosine should put all energy in one coeff.
        let mut block = [0.0f32; 64];
        for x in 0..8 {
            for y in 0..8 {
                block[x * 8 + y] = (((2 * y + 1) as f32) * 3.0 * PI / 16.0).cos();
            }
        }
        let coeffs = forward(&block);
        let (max_i, _) = coeffs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
            .unwrap();
        assert_eq!(max_i, 3, "energy should land in (0,3)");
    }
}
