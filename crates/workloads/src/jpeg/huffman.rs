//! JPEG canonical Huffman coding (ITU-T T.81 Annex C / K).
//!
//! Tables are built from the standard `(bits, huffval)` representation:
//! `bits[l]` = number of codes of length `l+1`, followed by the symbol
//! values in code order. Both the Annex K default tables (used by our
//! encoder) and tables parsed from a DHT segment (decoder) share this
//! path.

/// A canonical Huffman table, usable for encoding and decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HuffTable {
    /// `codes[symbol] = (code, length)` for encoding.
    codes: Vec<Option<(u16, u8)>>,
    /// Decoder arrays per ITU T.81 F.2.2.3: min/max code per length.
    min_code: [i32; 17],
    max_code: [i32; 17],
    /// Index of first value of each code length.
    val_ptr: [usize; 17],
    values: Vec<u8>,
}

/// Error raised while building or using a table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HuffError {
    message: String,
}

impl HuffError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for HuffError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "huffman: {}", self.message)
    }
}

impl std::error::Error for HuffError {}

impl HuffTable {
    /// Builds a table from the DHT representation.
    ///
    /// # Errors
    ///
    /// Returns [`HuffError`] when the code counts are inconsistent (over-
    /// subscribed code space or value-count mismatch) — which is exactly
    /// what a corrupted DHT segment looks like.
    pub fn from_spec(bits: &[u8; 16], values: &[u8]) -> Result<Self, HuffError> {
        let total: usize = bits.iter().map(|&b| b as usize).sum();
        if total != values.len() {
            return Err(HuffError::new(format!(
                "bits promise {total} symbols, got {}",
                values.len()
            )));
        }
        if total == 0 || total > 256 {
            return Err(HuffError::new(format!("invalid symbol count {total}")));
        }
        let mut codes = vec![None; 256];
        let mut min_code = [0i32; 17];
        let mut max_code = [-1i32; 17];
        let mut val_ptr = [0usize; 17];
        let mut code = 0u32;
        let mut k = 0usize;
        for length in 1..=16usize {
            let count = bits[length - 1] as usize;
            if count > 0 {
                if code + count as u32 > (1 << length) {
                    return Err(HuffError::new(format!(
                        "code space oversubscribed at length {length}"
                    )));
                }
                val_ptr[length] = k;
                min_code[length] = code as i32;
                for _ in 0..count {
                    codes[values[k] as usize] = Some((code as u16, length as u8));
                    code += 1;
                    k += 1;
                }
                max_code[length] = code as i32 - 1;
            }
            code <<= 1;
        }
        Ok(Self {
            codes,
            min_code,
            max_code,
            val_ptr,
            values: values.to_vec(),
        })
    }

    /// The `(code, length)` pair for `symbol`.
    ///
    /// # Errors
    ///
    /// Returns [`HuffError`] when the symbol is not in the table.
    pub fn encode(&self, symbol: u8) -> Result<(u16, u8), HuffError> {
        self.codes[symbol as usize]
            .ok_or_else(|| HuffError::new(format!("symbol {symbol:#x} not in table")))
    }

    /// Decodes one symbol from `reader` (bit-by-bit canonical decode).
    ///
    /// # Errors
    ///
    /// Returns [`HuffError`] on an invalid code or bit-stream exhaustion.
    pub fn decode(&self, reader: &mut impl FnMut() -> Option<u8>) -> Result<u8, HuffError> {
        let mut code = 0i32;
        for length in 1..=16usize {
            let bit = reader().ok_or_else(|| HuffError::new("bit stream exhausted"))?;
            code = (code << 1) | i32::from(bit & 1);
            if self.max_code[length] >= 0
                && code <= self.max_code[length]
                && code >= self.min_code[length]
            {
                let idx = self.val_ptr[length] + (code - self.min_code[length]) as usize;
                return self
                    .values
                    .get(idx)
                    .copied()
                    .ok_or_else(|| HuffError::new("value index out of range"));
            }
        }
        Err(HuffError::new("code longer than 16 bits"))
    }

    /// The DHT `(bits, values)` serialisation of this table.
    #[must_use]
    pub fn to_spec(&self) -> ([u8; 16], Vec<u8>) {
        let mut bits = [0u8; 16];
        for symbol_entry in self.codes.iter().flatten() {
            bits[symbol_entry.1 as usize - 1] += 1;
        }
        (bits, self.values.clone())
    }
}

/// Annex K default luminance DC table.
#[must_use]
pub fn default_dc_luma() -> HuffTable {
    let bits: [u8; 16] = [0, 1, 5, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0];
    let values: Vec<u8> = (0..=11).collect();
    HuffTable::from_spec(&bits, &values).expect("standard table is valid")
}

/// Annex K default luminance AC table.
#[must_use]
pub fn default_ac_luma() -> HuffTable {
    let bits: [u8; 16] = [0, 2, 1, 3, 3, 2, 4, 3, 5, 5, 4, 4, 0, 0, 1, 0x7D];
    let values: Vec<u8> = vec![
        0x01, 0x02, 0x03, 0x00, 0x04, 0x11, 0x05, 0x12, 0x21, 0x31, 0x41, 0x06, 0x13, 0x51, 0x61,
        0x07, 0x22, 0x71, 0x14, 0x32, 0x81, 0x91, 0xA1, 0x08, 0x23, 0x42, 0xB1, 0xC1, 0x15, 0x52,
        0xD1, 0xF0, 0x24, 0x33, 0x62, 0x72, 0x82, 0x09, 0x0A, 0x16, 0x17, 0x18, 0x19, 0x1A, 0x25,
        0x26, 0x27, 0x28, 0x29, 0x2A, 0x34, 0x35, 0x36, 0x37, 0x38, 0x39, 0x3A, 0x43, 0x44, 0x45,
        0x46, 0x47, 0x48, 0x49, 0x4A, 0x53, 0x54, 0x55, 0x56, 0x57, 0x58, 0x59, 0x5A, 0x63, 0x64,
        0x65, 0x66, 0x67, 0x68, 0x69, 0x6A, 0x73, 0x74, 0x75, 0x76, 0x77, 0x78, 0x79, 0x7A, 0x83,
        0x84, 0x85, 0x86, 0x87, 0x88, 0x89, 0x8A, 0x92, 0x93, 0x94, 0x95, 0x96, 0x97, 0x98, 0x99,
        0x9A, 0xA2, 0xA3, 0xA4, 0xA5, 0xA6, 0xA7, 0xA8, 0xA9, 0xAA, 0xB2, 0xB3, 0xB4, 0xB5, 0xB6,
        0xB7, 0xB8, 0xB9, 0xBA, 0xC2, 0xC3, 0xC4, 0xC5, 0xC6, 0xC7, 0xC8, 0xC9, 0xCA, 0xD2, 0xD3,
        0xD4, 0xD5, 0xD6, 0xD7, 0xD8, 0xD9, 0xDA, 0xE1, 0xE2, 0xE3, 0xE4, 0xE5, 0xE6, 0xE7, 0xE8,
        0xE9, 0xEA, 0xF1, 0xF2, 0xF3, 0xF4, 0xF5, 0xF6, 0xF7, 0xF8, 0xF9, 0xFA,
    ];
    HuffTable::from_spec(&bits, &values).expect("standard table is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_symbol(table: &HuffTable, symbol: u8) {
        let (code, length) = table.encode(symbol).unwrap();
        let mut bits: Vec<u8> = (0..length).rev().map(|i| ((code >> i) & 1) as u8).collect();
        bits.reverse(); // we pop from the back below
        let mut reader = move || bits.pop();
        assert_eq!(table.decode(&mut reader).unwrap(), symbol);
    }

    #[test]
    fn standard_tables_build() {
        let dc = default_dc_luma();
        let ac = default_ac_luma();
        assert!(dc.encode(0).is_ok());
        assert!(ac.encode(0xF0).is_ok()); // ZRL
        assert!(ac.encode(0x00).is_ok()); // EOB
    }

    #[test]
    fn dc_symbols_roundtrip() {
        let dc = default_dc_luma();
        for symbol in 0..=11u8 {
            roundtrip_symbol(&dc, symbol);
        }
    }

    #[test]
    fn ac_symbols_roundtrip() {
        let ac = default_ac_luma();
        for run in 0..=15u8 {
            for size in 1..=10u8 {
                roundtrip_symbol(&ac, (run << 4) | size);
            }
        }
        roundtrip_symbol(&ac, 0x00);
        roundtrip_symbol(&ac, 0xF0);
    }

    #[test]
    fn spec_roundtrip() {
        let ac = default_ac_luma();
        let (bits, values) = ac.to_spec();
        let rebuilt = HuffTable::from_spec(&bits, &values).unwrap();
        assert_eq!(rebuilt, ac);
    }

    #[test]
    fn rejects_inconsistent_spec() {
        let bits: [u8; 16] = [0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0];
        assert!(HuffTable::from_spec(&bits, &[1, 2]).is_err()); // count mismatch
        let over: [u8; 16] = [3, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0];
        assert!(HuffTable::from_spec(&over, &[1, 2, 3]).is_err()); // 3 codes of length 1
        let empty: [u8; 16] = [0; 16];
        assert!(HuffTable::from_spec(&empty, &[]).is_err());
    }

    #[test]
    fn unknown_symbol_fails_encode() {
        let dc = default_dc_luma();
        assert!(dc.encode(0xEE).is_err());
    }

    #[test]
    fn truncated_stream_fails_decode() {
        let dc = default_dc_luma();
        let mut empty = || None;
        assert!(dc.decode(&mut empty).is_err());
    }

    #[test]
    fn garbage_bits_fail_or_decode_to_valid_symbol() {
        let dc = default_dc_luma();
        // All-ones is not a valid DC code (max length codes exhausted).
        let mut ones = std::iter::repeat(1u8);
        let mut reader = move || ones.next();
        assert!(dc.decode(&mut reader).is_err());
    }
}
