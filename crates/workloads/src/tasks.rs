//! [`StreamingTask`] implementations wrapping each codec — the five
//! MediaBench-equivalent benchmarks of the paper's Table I / Fig. 5, plus
//! the wideband G.722 sub-band pair used by timeline scenarios.
//!
//! Every task follows the same restartable pattern (see [`crate::stream`]):
//! per block it DMAs its input window into L1, loads state + input through
//! checked bus reads, computes, and stores the output chunk + new state.
//! ROM-resident constants (codec tables, parsed JPEG headers) stay on the
//! Rust side: instruction/constant memory is not the vulnerable SRAM the
//! paper protects.

use chunkpoint_sim::{MemoryBus, Region};

use crate::adpcm::{self, AdpcmState};
use crate::g722::{self, G722State};
use crate::g726::{self, G726State};
use crate::input::{speech_pcm, test_image};
use crate::jpeg::{self, EntropyState, JpegDecoder};
use crate::stream::{
    pack_bytes, pack_i16, read_region, unpack_bytes, unpack_i16, write_region, write_region_at,
    StreamingTask, TaskError, TaskProfile,
};

/// Per-sample cycle estimate for IMA ADPCM (table lookups + few ALU ops).
const ADPCM_CYCLES_PER_SAMPLE: u64 = 45;
/// Per-sample cycle estimate for G.726 (predictor + quantizer + update).
const G726_CYCLES_PER_SAMPLE: u64 = 180;
/// Per-sample cycle estimate for G.722 (12 QMF MACs + one band update).
const G722_CYCLES_PER_SAMPLE: u64 = 110;
/// Per-8×8-block cycle estimate for JPEG decode (Huffman + IDCT).
const JPEG_CYCLES_PER_BLOCK: u64 = 2816;
/// Worst-case entropy bytes per 8×8 block used to size refill windows.
const JPEG_WINDOW_BYTES_PER_BLOCK: usize = 256;

fn layout(state_words: u32, input_words: u32, output_words: u32) -> (Region, Region, Region) {
    let state = Region {
        base: 0,
        words: state_words,
    };
    let input = Region {
        base: state.end(),
        words: input_words,
    };
    let output = Region {
        base: input.end(),
        words: output_words,
    };
    (state, input, output)
}

fn read_words(bus: &mut dyn MemoryBus, region: Region, n: usize) -> Result<Vec<u32>, TaskError> {
    debug_assert!(n <= region.words as usize);
    (0..n as u32)
        .map(|i| bus.load(region.word(i)).map_err(TaskError::from))
        .collect()
}

// ---------------------------------------------------------------------------
// IMA ADPCM encode / decode
// ---------------------------------------------------------------------------

/// MediaBench `rawcaudio`: IMA ADPCM encoder over PCM input.
#[derive(Debug, Clone)]
pub struct AdpcmEncodeTask {
    samples: Vec<i16>,
    chunk_words: u32,
    regions: (Region, Region, Region),
}

impl AdpcmEncodeTask {
    /// Creates the task over `samples`, producing `chunk_words` words of
    /// codes per block.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_words == 0` or `samples` is empty.
    #[must_use]
    pub fn new(samples: Vec<i16>, chunk_words: u32) -> Self {
        assert!(chunk_words > 0, "chunk must be at least one word");
        assert!(!samples.is_empty(), "empty input");
        // One output word = 8 samples (4-bit codes).
        let spb = chunk_words * 8;
        let input_words = spb.div_ceil(2);
        let blocks = samples.len().div_ceil(spb as usize) as u32;
        Self {
            samples,
            chunk_words,
            regions: layout(2, input_words, chunk_words * blocks),
        }
    }

    fn samples_per_block(&self) -> usize {
        self.chunk_words as usize * 8
    }
}

impl StreamingTask for AdpcmEncodeTask {
    fn name(&self) -> String {
        "adpcm-encode".to_owned()
    }

    fn total_blocks(&self) -> usize {
        self.samples.len().div_ceil(self.samples_per_block())
    }

    fn profile(&self) -> TaskProfile {
        let spb = self.samples_per_block() as u64;
        TaskProfile {
            total_blocks: self.total_blocks(),
            block_words: self.chunk_words,
            state_words: 2,
            compute_cycles_per_block: ADPCM_CYCLES_PER_SAMPLE * spb,
            accesses_per_block: u64::from(self.regions.1.words) * 2
                + u64::from(self.chunk_words)
                + 4,
        }
    }

    fn state_region(&self) -> Region {
        self.regions.0
    }

    fn output_region(&self) -> Region {
        self.regions.2
    }

    fn init(&mut self, bus: &mut dyn MemoryBus) -> Result<(), TaskError> {
        write_region(bus, self.regions.0, &AdpcmState::new().to_words());
        Ok(())
    }

    fn run_block(&mut self, block: usize, bus: &mut dyn MemoryBus) -> Result<u32, TaskError> {
        let spb = self.samples_per_block();
        let start = block * spb;
        if start >= self.samples.len() {
            return Err(TaskError::Config(format!("block {block} out of range")));
        }
        let slice = &self.samples[start..(start + spb).min(self.samples.len())];
        // DMA the input window in, then read it back through checked loads.
        let in_words = pack_i16(slice);
        write_region(bus, self.regions.1, &in_words);
        let state_words = read_region(bus, self.regions.0)?;
        let mut state = AdpcmState::from_words([state_words[0], state_words[1]]);
        let raw = read_words(bus, self.regions.1, in_words.len())?;
        let samples = unpack_i16(&raw, slice.len());
        bus.tick(ADPCM_CYCLES_PER_SAMPLE * samples.len() as u64);
        let mut bytes = Vec::with_capacity(samples.len().div_ceil(2));
        for pair in samples.chunks(2) {
            let lo = adpcm::encode_sample(&mut state, pair[0]);
            let hi = pair
                .get(1)
                .map_or(0, |&s| adpcm::encode_sample(&mut state, s));
            bytes.push(lo | (hi << 4));
        }
        let out_words = pack_bytes(&bytes);
        write_region_at(
            bus,
            self.regions.2,
            block as u32 * self.chunk_words,
            &out_words,
        );
        write_region(bus, self.regions.0, &state.to_words());
        Ok(out_words.len() as u32)
    }
}

/// MediaBench `rawdaudio`: IMA ADPCM decoder over a code stream.
#[derive(Debug, Clone)]
pub struct AdpcmDecodeTask {
    codes: Vec<u8>,
    total_samples: usize,
    chunk_words: u32,
    regions: (Region, Region, Region),
}

impl AdpcmDecodeTask {
    /// Creates the task over packed `codes` decoding `total_samples`
    /// samples, producing `chunk_words` words of PCM per block.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_words == 0` or the code stream is too short.
    #[must_use]
    pub fn new(codes: Vec<u8>, total_samples: usize, chunk_words: u32) -> Self {
        assert!(chunk_words > 0, "chunk must be at least one word");
        assert!(
            codes.len() * 2 >= total_samples,
            "code stream shorter than sample count"
        );
        // One output word = 2 samples; block input = spb codes = spb/2 bytes.
        let spb = chunk_words * 2;
        let input_words = (spb / 2).div_ceil(4).max(1);
        let blocks = total_samples.div_ceil(spb as usize) as u32;
        Self {
            codes,
            total_samples,
            chunk_words,
            regions: layout(2, input_words, chunk_words * blocks),
        }
    }

    fn samples_per_block(&self) -> usize {
        self.chunk_words as usize * 2
    }
}

impl StreamingTask for AdpcmDecodeTask {
    fn name(&self) -> String {
        "adpcm-decode".to_owned()
    }

    fn total_blocks(&self) -> usize {
        self.total_samples.div_ceil(self.samples_per_block())
    }

    fn profile(&self) -> TaskProfile {
        let spb = self.samples_per_block() as u64;
        TaskProfile {
            total_blocks: self.total_blocks(),
            block_words: self.chunk_words,
            state_words: 2,
            compute_cycles_per_block: ADPCM_CYCLES_PER_SAMPLE * spb,
            accesses_per_block: u64::from(self.regions.1.words) * 2
                + u64::from(self.chunk_words)
                + 4,
        }
    }

    fn state_region(&self) -> Region {
        self.regions.0
    }

    fn output_region(&self) -> Region {
        self.regions.2
    }

    fn init(&mut self, bus: &mut dyn MemoryBus) -> Result<(), TaskError> {
        write_region(bus, self.regions.0, &AdpcmState::new().to_words());
        Ok(())
    }

    fn run_block(&mut self, block: usize, bus: &mut dyn MemoryBus) -> Result<u32, TaskError> {
        let spb = self.samples_per_block();
        let start_sample = block * spb;
        if start_sample >= self.total_samples {
            return Err(TaskError::Config(format!("block {block} out of range")));
        }
        let n_samples = spb.min(self.total_samples - start_sample);
        let start_byte = start_sample / 2;
        let n_bytes = n_samples.div_ceil(2);
        let window = &self.codes[start_byte..(start_byte + n_bytes).min(self.codes.len())];
        let in_words = pack_bytes(window);
        write_region(bus, self.regions.1, &in_words);
        let state_words = read_region(bus, self.regions.0)?;
        let mut state = AdpcmState::from_words([state_words[0], state_words[1]]);
        let raw = read_words(bus, self.regions.1, in_words.len())?;
        let bytes = unpack_bytes(&raw, window.len());
        bus.tick(ADPCM_CYCLES_PER_SAMPLE * n_samples as u64);
        let mut samples = Vec::with_capacity(n_samples);
        'outer: for &byte in &bytes {
            for nibble in [byte & 0x0F, byte >> 4] {
                samples.push(adpcm::decode_sample(&mut state, nibble));
                if samples.len() == n_samples {
                    break 'outer;
                }
            }
        }
        let out_words = pack_i16(&samples);
        write_region_at(
            bus,
            self.regions.2,
            block as u32 * self.chunk_words,
            &out_words,
        );
        write_region(bus, self.regions.0, &state.to_words());
        Ok(out_words.len() as u32)
    }
}

// ---------------------------------------------------------------------------
// G.721 (G.726-32) encode / decode
// ---------------------------------------------------------------------------

/// MediaBench `g721 encode`: G.726-32 encoder over PCM input.
#[derive(Debug, Clone)]
pub struct G721EncodeTask {
    samples: Vec<i16>,
    chunk_words: u32,
    regions: (Region, Region, Region),
}

impl G721EncodeTask {
    /// Creates the task; one output word = 8 samples of 4-bit codes.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_words == 0` or `samples` is empty.
    #[must_use]
    pub fn new(samples: Vec<i16>, chunk_words: u32) -> Self {
        assert!(chunk_words > 0, "chunk must be at least one word");
        assert!(!samples.is_empty(), "empty input");
        let spb = chunk_words * 8;
        let input_words = spb.div_ceil(2);
        let blocks = samples.len().div_ceil(spb as usize) as u32;
        Self {
            samples,
            chunk_words,
            regions: layout(G726State::WORDS as u32, input_words, chunk_words * blocks),
        }
    }

    fn samples_per_block(&self) -> usize {
        self.chunk_words as usize * 8
    }
}

impl StreamingTask for G721EncodeTask {
    fn name(&self) -> String {
        "g721-encode".to_owned()
    }

    fn total_blocks(&self) -> usize {
        self.samples.len().div_ceil(self.samples_per_block())
    }

    fn profile(&self) -> TaskProfile {
        let spb = self.samples_per_block() as u64;
        TaskProfile {
            total_blocks: self.total_blocks(),
            block_words: self.chunk_words,
            state_words: G726State::WORDS as u32,
            compute_cycles_per_block: G726_CYCLES_PER_SAMPLE * spb,
            accesses_per_block: u64::from(self.regions.1.words) * 2
                + u64::from(self.chunk_words)
                + 2 * G726State::WORDS as u64,
        }
    }

    fn state_region(&self) -> Region {
        self.regions.0
    }

    fn output_region(&self) -> Region {
        self.regions.2
    }

    fn init(&mut self, bus: &mut dyn MemoryBus) -> Result<(), TaskError> {
        write_region(bus, self.regions.0, &G726State::new().to_words());
        Ok(())
    }

    fn run_block(&mut self, block: usize, bus: &mut dyn MemoryBus) -> Result<u32, TaskError> {
        let spb = self.samples_per_block();
        let start = block * spb;
        if start >= self.samples.len() {
            return Err(TaskError::Config(format!("block {block} out of range")));
        }
        let slice = &self.samples[start..(start + spb).min(self.samples.len())];
        let in_words = pack_i16(slice);
        write_region(bus, self.regions.1, &in_words);
        let state_words = read_region(bus, self.regions.0)?;
        let mut array = [0u32; G726State::WORDS];
        array.copy_from_slice(&state_words);
        let mut state = G726State::from_words(&array);
        let raw = read_words(bus, self.regions.1, in_words.len())?;
        let samples = unpack_i16(&raw, slice.len());
        bus.tick(G726_CYCLES_PER_SAMPLE * samples.len() as u64);
        let mut bytes = Vec::with_capacity(samples.len().div_ceil(2));
        for pair in samples.chunks(2) {
            let lo = g726::encode_sample(&mut state, pair[0]);
            let hi = pair
                .get(1)
                .map_or(0, |&s| g726::encode_sample(&mut state, s));
            bytes.push(lo | (hi << 4));
        }
        let out_words = pack_bytes(&bytes);
        write_region_at(
            bus,
            self.regions.2,
            block as u32 * self.chunk_words,
            &out_words,
        );
        write_region(bus, self.regions.0, &state.to_words());
        Ok(out_words.len() as u32)
    }
}

/// MediaBench `g721 decode`: G.726-32 decoder over a code stream.
#[derive(Debug, Clone)]
pub struct G721DecodeTask {
    codes: Vec<u8>,
    total_samples: usize,
    chunk_words: u32,
    regions: (Region, Region, Region),
}

impl G721DecodeTask {
    /// Creates the task; one output word = 2 decoded PCM samples.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_words == 0` or the code stream is too short.
    #[must_use]
    pub fn new(codes: Vec<u8>, total_samples: usize, chunk_words: u32) -> Self {
        assert!(chunk_words > 0, "chunk must be at least one word");
        assert!(
            codes.len() * 2 >= total_samples,
            "code stream shorter than sample count"
        );
        let spb = chunk_words * 2;
        let input_words = (spb / 2).div_ceil(4).max(1);
        let blocks = total_samples.div_ceil(spb as usize) as u32;
        Self {
            codes,
            total_samples,
            chunk_words,
            regions: layout(G726State::WORDS as u32, input_words, chunk_words * blocks),
        }
    }

    fn samples_per_block(&self) -> usize {
        self.chunk_words as usize * 2
    }
}

impl StreamingTask for G721DecodeTask {
    fn name(&self) -> String {
        "g721-decode".to_owned()
    }

    fn total_blocks(&self) -> usize {
        self.total_samples.div_ceil(self.samples_per_block())
    }

    fn profile(&self) -> TaskProfile {
        let spb = self.samples_per_block() as u64;
        TaskProfile {
            total_blocks: self.total_blocks(),
            block_words: self.chunk_words,
            state_words: G726State::WORDS as u32,
            compute_cycles_per_block: G726_CYCLES_PER_SAMPLE * spb,
            accesses_per_block: u64::from(self.regions.1.words) * 2
                + u64::from(self.chunk_words)
                + 2 * G726State::WORDS as u64,
        }
    }

    fn state_region(&self) -> Region {
        self.regions.0
    }

    fn output_region(&self) -> Region {
        self.regions.2
    }

    fn init(&mut self, bus: &mut dyn MemoryBus) -> Result<(), TaskError> {
        write_region(bus, self.regions.0, &G726State::new().to_words());
        Ok(())
    }

    fn run_block(&mut self, block: usize, bus: &mut dyn MemoryBus) -> Result<u32, TaskError> {
        let spb = self.samples_per_block();
        let start_sample = block * spb;
        if start_sample >= self.total_samples {
            return Err(TaskError::Config(format!("block {block} out of range")));
        }
        let n_samples = spb.min(self.total_samples - start_sample);
        let start_byte = start_sample / 2;
        let n_bytes = n_samples.div_ceil(2);
        let window = &self.codes[start_byte..(start_byte + n_bytes).min(self.codes.len())];
        let in_words = pack_bytes(window);
        write_region(bus, self.regions.1, &in_words);
        let state_words = read_region(bus, self.regions.0)?;
        let mut array = [0u32; G726State::WORDS];
        array.copy_from_slice(&state_words);
        let mut state = G726State::from_words(&array);
        let raw = read_words(bus, self.regions.1, in_words.len())?;
        let bytes = unpack_bytes(&raw, window.len());
        bus.tick(G726_CYCLES_PER_SAMPLE * n_samples as u64);
        let mut samples = Vec::with_capacity(n_samples);
        'outer: for &byte in &bytes {
            for nibble in [byte & 0x0F, byte >> 4] {
                samples.push(g726::decode_sample(&mut state, nibble));
                if samples.len() == n_samples {
                    break 'outer;
                }
            }
        }
        let out_words = pack_i16(&samples);
        write_region_at(
            bus,
            self.regions.2,
            block as u32 * self.chunk_words,
            &out_words,
        );
        write_region(bus, self.regions.0, &state.to_words());
        Ok(out_words.len() as u32)
    }
}

// ---------------------------------------------------------------------------
// G.722 sub-band encode / decode
// ---------------------------------------------------------------------------

/// Wideband G.722-style sub-band encoder over PCM input.
#[derive(Debug, Clone)]
pub struct G722EncodeTask {
    samples: Vec<i16>,
    chunk_words: u32,
    regions: (Region, Region, Region),
}

impl G722EncodeTask {
    /// Creates the task; one output word = 8 samples (4 code bytes, one
    /// per sample pair).
    ///
    /// # Panics
    ///
    /// Panics if `chunk_words == 0` or `samples` is empty.
    #[must_use]
    pub fn new(samples: Vec<i16>, chunk_words: u32) -> Self {
        assert!(chunk_words > 0, "chunk must be at least one word");
        assert!(!samples.is_empty(), "empty input");
        let spb = chunk_words * 8;
        let input_words = spb.div_ceil(2);
        let blocks = samples.len().div_ceil(spb as usize) as u32;
        Self {
            samples,
            chunk_words,
            regions: layout(G722State::WORDS as u32, input_words, chunk_words * blocks),
        }
    }

    fn samples_per_block(&self) -> usize {
        self.chunk_words as usize * 8
    }
}

impl StreamingTask for G722EncodeTask {
    fn name(&self) -> String {
        "g722-encode".to_owned()
    }

    fn total_blocks(&self) -> usize {
        self.samples.len().div_ceil(self.samples_per_block())
    }

    fn profile(&self) -> TaskProfile {
        let spb = self.samples_per_block() as u64;
        TaskProfile {
            total_blocks: self.total_blocks(),
            block_words: self.chunk_words,
            state_words: G722State::WORDS as u32,
            compute_cycles_per_block: G722_CYCLES_PER_SAMPLE * spb,
            accesses_per_block: u64::from(self.regions.1.words) * 2
                + u64::from(self.chunk_words)
                + 2 * G722State::WORDS as u64,
        }
    }

    fn state_region(&self) -> Region {
        self.regions.0
    }

    fn output_region(&self) -> Region {
        self.regions.2
    }

    fn init(&mut self, bus: &mut dyn MemoryBus) -> Result<(), TaskError> {
        write_region(bus, self.regions.0, &G722State::new().to_words());
        Ok(())
    }

    fn run_block(&mut self, block: usize, bus: &mut dyn MemoryBus) -> Result<u32, TaskError> {
        let spb = self.samples_per_block();
        let start = block * spb;
        if start >= self.samples.len() {
            return Err(TaskError::Config(format!("block {block} out of range")));
        }
        let slice = &self.samples[start..(start + spb).min(self.samples.len())];
        let in_words = pack_i16(slice);
        write_region(bus, self.regions.1, &in_words);
        let state_words = read_region(bus, self.regions.0)?;
        let mut array = [0u32; G722State::WORDS];
        array.copy_from_slice(&state_words);
        let mut state = G722State::from_words(&array);
        let raw = read_words(bus, self.regions.1, in_words.len())?;
        let samples = unpack_i16(&raw, slice.len());
        bus.tick(G722_CYCLES_PER_SAMPLE * samples.len() as u64);
        let mut bytes = Vec::with_capacity(samples.len().div_ceil(2));
        for pair in samples.chunks(2) {
            let x1 = pair.get(1).copied().unwrap_or(0);
            bytes.push(g722::encode_pair(&mut state, pair[0], x1));
        }
        let out_words = pack_bytes(&bytes);
        write_region_at(
            bus,
            self.regions.2,
            block as u32 * self.chunk_words,
            &out_words,
        );
        write_region(bus, self.regions.0, &state.to_words());
        Ok(out_words.len() as u32)
    }
}

/// Wideband G.722-style sub-band decoder over a code stream.
#[derive(Debug, Clone)]
pub struct G722DecodeTask {
    codes: Vec<u8>,
    total_samples: usize,
    chunk_words: u32,
    regions: (Region, Region, Region),
}

impl G722DecodeTask {
    /// Creates the task; one output word = 2 decoded PCM samples (one
    /// code byte).
    ///
    /// # Panics
    ///
    /// Panics if `chunk_words == 0` or the code stream is too short.
    #[must_use]
    pub fn new(codes: Vec<u8>, total_samples: usize, chunk_words: u32) -> Self {
        assert!(chunk_words > 0, "chunk must be at least one word");
        assert!(
            codes.len() * 2 >= total_samples,
            "code stream shorter than sample count"
        );
        let spb = chunk_words * 2;
        let input_words = (spb / 2).div_ceil(4).max(1);
        let blocks = total_samples.div_ceil(spb as usize) as u32;
        Self {
            codes,
            total_samples,
            chunk_words,
            regions: layout(G722State::WORDS as u32, input_words, chunk_words * blocks),
        }
    }

    fn samples_per_block(&self) -> usize {
        self.chunk_words as usize * 2
    }
}

impl StreamingTask for G722DecodeTask {
    fn name(&self) -> String {
        "g722-decode".to_owned()
    }

    fn total_blocks(&self) -> usize {
        self.total_samples.div_ceil(self.samples_per_block())
    }

    fn profile(&self) -> TaskProfile {
        let spb = self.samples_per_block() as u64;
        TaskProfile {
            total_blocks: self.total_blocks(),
            block_words: self.chunk_words,
            state_words: G722State::WORDS as u32,
            compute_cycles_per_block: G722_CYCLES_PER_SAMPLE * spb,
            accesses_per_block: u64::from(self.regions.1.words) * 2
                + u64::from(self.chunk_words)
                + 2 * G722State::WORDS as u64,
        }
    }

    fn state_region(&self) -> Region {
        self.regions.0
    }

    fn output_region(&self) -> Region {
        self.regions.2
    }

    fn init(&mut self, bus: &mut dyn MemoryBus) -> Result<(), TaskError> {
        write_region(bus, self.regions.0, &G722State::new().to_words());
        Ok(())
    }

    fn run_block(&mut self, block: usize, bus: &mut dyn MemoryBus) -> Result<u32, TaskError> {
        let spb = self.samples_per_block();
        let start_sample = block * spb;
        if start_sample >= self.total_samples {
            return Err(TaskError::Config(format!("block {block} out of range")));
        }
        let n_samples = spb.min(self.total_samples - start_sample);
        let start_byte = start_sample / 2;
        let n_bytes = n_samples.div_ceil(2);
        let window = &self.codes[start_byte..(start_byte + n_bytes).min(self.codes.len())];
        let in_words = pack_bytes(window);
        write_region(bus, self.regions.1, &in_words);
        let state_words = read_region(bus, self.regions.0)?;
        let mut array = [0u32; G722State::WORDS];
        array.copy_from_slice(&state_words);
        let mut state = G722State::from_words(&array);
        let raw = read_words(bus, self.regions.1, in_words.len())?;
        let bytes = unpack_bytes(&raw, window.len());
        bus.tick(G722_CYCLES_PER_SAMPLE * n_samples as u64);
        let mut samples = Vec::with_capacity(n_samples);
        'outer: for &byte in &bytes {
            let (x0, x1) = g722::decode_pair(&mut state, byte);
            for sample in [x0, x1] {
                samples.push(sample);
                if samples.len() == n_samples {
                    break 'outer;
                }
            }
        }
        let out_words = pack_i16(&samples);
        write_region_at(
            bus,
            self.regions.2,
            block as u32 * self.chunk_words,
            &out_words,
        );
        write_region(bus, self.regions.0, &state.to_words());
        Ok(out_words.len() as u32)
    }
}

// ---------------------------------------------------------------------------
// JPEG decode
// ---------------------------------------------------------------------------

/// MediaBench `djpeg`: baseline JPEG decoder over a compressed stream.
///
/// The parsed header (quant + Huffman tables) lives on the host side,
/// modelling tables resident in ROM/flash; the entropy-coded data streams
/// through the vulnerable L1.
#[derive(Debug, Clone)]
pub struct JpegDecodeTask {
    bytes: Vec<u8>,
    decoder: JpegDecoder,
    chunk_words: u32,
    regions: (Region, Region, Region),
}

impl JpegDecodeTask {
    /// Creates the task over an encoded stream; `chunk_words` must hold at
    /// least one 8×8 block (16 words).
    ///
    /// # Errors
    ///
    /// Returns [`TaskError::Malformed`] when the stream does not parse.
    pub fn new(bytes: Vec<u8>, chunk_words: u32) -> Result<Self, TaskError> {
        let decoder =
            JpegDecoder::parse(&bytes).map_err(|e| TaskError::Malformed(e.to_string()))?;
        let blocks_per_phase = (chunk_words / 16).max(1);
        let chunk_words = blocks_per_phase * 16;
        let window_bytes = blocks_per_phase as usize * JPEG_WINDOW_BYTES_PER_BLOCK + 64;
        let input_words = (window_bytes as u32).div_ceil(4);
        let phases = decoder.total_blocks().div_ceil(blocks_per_phase as usize) as u32;
        Ok(Self {
            bytes,
            decoder,
            chunk_words,
            regions: layout(4, input_words, chunk_words * phases),
        })
    }

    fn blocks_per_phase(&self) -> usize {
        (self.chunk_words / 16) as usize
    }
}

impl StreamingTask for JpegDecodeTask {
    fn name(&self) -> String {
        "jpg-decode".to_owned()
    }

    fn total_blocks(&self) -> usize {
        self.decoder
            .total_blocks()
            .div_ceil(self.blocks_per_phase())
    }

    fn profile(&self) -> TaskProfile {
        TaskProfile {
            total_blocks: self.total_blocks(),
            block_words: self.chunk_words,
            state_words: 4,
            compute_cycles_per_block: JPEG_CYCLES_PER_BLOCK * self.blocks_per_phase() as u64,
            accesses_per_block: u64::from(self.regions.1.words) * 2
                + u64::from(self.chunk_words)
                + 8,
        }
    }

    fn state_region(&self) -> Region {
        self.regions.0
    }

    fn output_region(&self) -> Region {
        self.regions.2
    }

    fn init(&mut self, bus: &mut dyn MemoryBus) -> Result<(), TaskError> {
        write_region(bus, self.regions.0, &EntropyState::default().to_words());
        Ok(())
    }

    fn run_block(&mut self, block: usize, bus: &mut dyn MemoryBus) -> Result<u32, TaskError> {
        if block >= self.total_blocks() {
            return Err(TaskError::Config(format!("block {block} out of range")));
        }
        let state_words = read_region(bus, self.regions.0)?;
        let mut array = [0u32; 4];
        array.copy_from_slice(&state_words);
        let abs_state = EntropyState::from_words(array);
        let done = abs_state.blocks_done as usize;
        let n = self
            .blocks_per_phase()
            .min(self.decoder.total_blocks().saturating_sub(done));
        if n == 0 {
            return Ok(0);
        }
        // DMA the entropy window for this run of blocks into L1.
        let entropy = &self.bytes[self.decoder.entropy_start()..];
        let window_start = abs_state.byte_pos as usize;
        if window_start > entropy.len() {
            // The stream position came from the (detector-checked) state
            // region, so landing outside the stream means a corruption
            // slipped past the detector: structure broke, like any other
            // malformed-stream condition.
            return Err(TaskError::Malformed(format!(
                "corrupt decoder state: byte position {window_start} beyond stream"
            )));
        }
        let window_len = (self.regions.1.words as usize * 4).min(entropy.len() - window_start);
        let window = &entropy[window_start..window_start + window_len];
        let in_words = pack_bytes(window);
        write_region(bus, self.regions.1, &in_words);
        let raw = read_words(bus, self.regions.1, in_words.len())?;
        let bytes = unpack_bytes(&raw, window.len());
        bus.tick(JPEG_CYCLES_PER_BLOCK * n as u64);
        // Decode relative to the window.
        let mut rel_state = abs_state;
        rel_state.byte_pos = 0;
        let mut pixels = Vec::with_capacity(n * 64);
        self.decoder
            .decode_blocks(&bytes, &mut rel_state, n, &mut pixels)
            .map_err(|e| TaskError::Malformed(e.to_string()))?;
        let mut new_state = rel_state;
        new_state.byte_pos += abs_state.byte_pos;
        let out_words = pack_bytes(&pixels);
        write_region_at(
            bus,
            self.regions.2,
            block as u32 * self.chunk_words,
            &out_words,
        );
        write_region(bus, self.regions.0, &new_state.to_words());
        Ok(out_words.len() as u32)
    }
}

// ---------------------------------------------------------------------------
// Benchmark registry
// ---------------------------------------------------------------------------

/// The five benchmarks of the paper's evaluation, plus the wideband
/// G.722 pair added for timeline scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// IMA ADPCM encoder (`rawcaudio`).
    AdpcmEncode,
    /// IMA ADPCM decoder (`rawdaudio`).
    AdpcmDecode,
    /// G.721 encoder.
    G721Encode,
    /// G.721 decoder.
    G721Decode,
    /// Baseline JPEG decoder (`djpeg`).
    JpegDecode,
    /// G.722 sub-band encoder (wideband extension).
    G722Encode,
    /// G.722 sub-band decoder (wideband extension).
    G722Decode,
}

impl Benchmark {
    /// All benchmarks: the paper's Table I order, then the G.722 pair.
    pub const ALL: [Benchmark; 7] = [
        Benchmark::AdpcmEncode,
        Benchmark::AdpcmDecode,
        Benchmark::G721Encode,
        Benchmark::G721Decode,
        Benchmark::JpegDecode,
        Benchmark::G722Encode,
        Benchmark::G722Decode,
    ];

    /// Paper-style display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::AdpcmEncode => "ADPCM encode",
            Benchmark::AdpcmDecode => "ADPCM decode",
            Benchmark::G721Encode => "G721 encode",
            Benchmark::G721Decode => "G721 decode",
            Benchmark::JpegDecode => "JPG decode",
            Benchmark::G722Encode => "G722 encode",
            Benchmark::G722Decode => "G722 decode",
        }
    }

    /// Builds a fresh task instance with a `chunk_words`-word data chunk,
    /// over the benchmark's standard synthetic input.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_words == 0` (and, for JPEG, if the internally
    /// generated stream fails to parse — impossible by construction).
    #[must_use]
    pub fn build_task(self, chunk_words: u32) -> Box<dyn StreamingTask> {
        self.build_task_scaled(chunk_words, 1.0)
    }

    /// Number of PCM samples the benchmark's standard input has at `scale`.
    ///
    /// The paper's tasks are *periodic stream frames* with deadlines, not
    /// whole files: one IMA-ADPCM frame (~1024 samples, 128 ms at 8 kHz)
    /// and one G.726 RTP-style packet window (192 samples, 24 ms). Frame
    /// lengths are sized so one frame sees O(1) expected strikes at the
    /// paper's worst-case rate of 1e-6 word/cycle.
    fn audio_samples(self, scale: f64) -> usize {
        let base = match self {
            // Encoder frames are longer than decoder frames because the
            // decoder's 16-bit PCM output occupies 4x the L1 footprint of
            // the encoder's 4-bit codes: frames are sized so the live
            // frame buffer sees O(1) expected strikes at 1e-6 word/cycle.
            Benchmark::AdpcmEncode => 512.0,
            Benchmark::AdpcmDecode => 256.0,
            // G.726 costs ~4x more cycles/sample; one RTP packet window.
            Benchmark::G721Encode => 192.0,
            Benchmark::G721Decode => 96.0,
            // G.722 runs at 16 kHz, so a same-duration frame holds twice
            // the samples of its narrowband sibling — but the 16-word
            // state makes checkpoints dearer, so frames stay moderate.
            Benchmark::G722Encode => 384.0,
            Benchmark::G722Decode => 128.0,
            Benchmark::JpegDecode => 0.0, // unused
        };
        ((base * scale) as usize).max(48)
    }

    /// JPEG frame edge length at `scale` (one thumbnail/preview tile).
    fn jpeg_side(scale: f64) -> usize {
        if scale >= 2.0 {
            32
        } else {
            16
        }
    }

    /// Like [`Benchmark::build_task`] with an input-length scale factor
    /// (0.1 = ten times shorter runs, for fast tests).
    ///
    /// # Panics
    ///
    /// Panics if `chunk_words == 0` or `scale` is not in `(0, 4]`.
    #[must_use]
    pub fn build_task_scaled(self, chunk_words: u32, scale: f64) -> Box<dyn StreamingTask> {
        assert!(scale > 0.0 && scale <= 4.0, "scale out of range");
        let n_audio = self.audio_samples(scale);
        match self {
            Benchmark::AdpcmEncode => {
                Box::new(AdpcmEncodeTask::new(speech_pcm(n_audio, 0xA1), chunk_words))
            }
            Benchmark::AdpcmDecode => {
                let pcm = speech_pcm(n_audio, 0xA2);
                let codes = adpcm::encode(&pcm);
                Box::new(AdpcmDecodeTask::new(codes, n_audio, chunk_words))
            }
            Benchmark::G721Encode => {
                Box::new(G721EncodeTask::new(speech_pcm(n_audio, 0xB1), chunk_words))
            }
            Benchmark::G721Decode => {
                let pcm = speech_pcm(n_audio, 0xB2);
                let codes = g726::encode(&pcm);
                Box::new(G721DecodeTask::new(codes, n_audio, chunk_words))
            }
            Benchmark::JpegDecode => {
                let side = Self::jpeg_side(scale);
                let img = test_image(side, side, 0xC1);
                let bytes = jpeg::encode(&img, side, side, 80);
                Box::new(
                    JpegDecodeTask::new(bytes, chunk_words)
                        .expect("internally generated stream parses"),
                )
            }
            Benchmark::G722Encode => {
                Box::new(G722EncodeTask::new(speech_pcm(n_audio, 0xD1), chunk_words))
            }
            Benchmark::G722Decode => {
                let pcm = speech_pcm(n_audio, 0xD2);
                let codes = g722::encode(&pcm);
                Box::new(G722DecodeTask::new(codes, n_audio, chunk_words))
            }
        }
    }

    /// Analytic [`TaskProfile`] for a given chunk size *without* building
    /// the task (no input synthesis) — what the chunk-size optimizer
    /// sweeps over hundreds of candidate sizes.
    ///
    /// Matches `self.build_task_scaled(chunk_words, scale).profile()`
    /// exactly (asserted in tests).
    ///
    /// # Panics
    ///
    /// Panics if `chunk_words == 0` or `scale` is out of range.
    #[must_use]
    pub fn profile_for_chunk(self, chunk_words: u32, scale: f64) -> TaskProfile {
        assert!(chunk_words > 0, "chunk must be at least one word");
        assert!(scale > 0.0 && scale <= 4.0, "scale out of range");
        match self {
            Benchmark::AdpcmEncode | Benchmark::G721Encode | Benchmark::G722Encode => {
                let n = self.audio_samples(scale);
                let spb = chunk_words as usize * 8;
                let input_words = (chunk_words * 8).div_ceil(2);
                let (state, cycles) = match self {
                    Benchmark::AdpcmEncode => (2u32, ADPCM_CYCLES_PER_SAMPLE),
                    Benchmark::G721Encode => (G726State::WORDS as u32, G726_CYCLES_PER_SAMPLE),
                    _ => (G722State::WORDS as u32, G722_CYCLES_PER_SAMPLE),
                };
                let state_accesses = if state == 2 { 4 } else { 2 * u64::from(state) };
                TaskProfile {
                    total_blocks: n.div_ceil(spb),
                    block_words: chunk_words,
                    state_words: state,
                    compute_cycles_per_block: cycles * spb as u64,
                    accesses_per_block: u64::from(input_words) * 2
                        + u64::from(chunk_words)
                        + state_accesses,
                }
            }
            Benchmark::AdpcmDecode | Benchmark::G721Decode | Benchmark::G722Decode => {
                let n = self.audio_samples(scale);
                let spb = chunk_words as usize * 2;
                let input_words = (chunk_words * 2 / 2).div_ceil(4).max(1);
                let (state, cycles) = match self {
                    Benchmark::AdpcmDecode => (2u32, ADPCM_CYCLES_PER_SAMPLE),
                    Benchmark::G721Decode => (G726State::WORDS as u32, G726_CYCLES_PER_SAMPLE),
                    _ => (G722State::WORDS as u32, G722_CYCLES_PER_SAMPLE),
                };
                let state_accesses = if state == 2 { 4 } else { 2 * u64::from(state) };
                TaskProfile {
                    total_blocks: n.div_ceil(spb),
                    block_words: chunk_words,
                    state_words: state,
                    compute_cycles_per_block: cycles * spb as u64,
                    accesses_per_block: u64::from(input_words) * 2
                        + u64::from(chunk_words)
                        + state_accesses,
                }
            }
            Benchmark::JpegDecode => {
                let side = Self::jpeg_side(scale);
                let blocks_per_phase = (chunk_words / 16).max(1);
                let chunk_words = blocks_per_phase * 16;
                let total_jpeg_blocks = side.div_ceil(8) * side.div_ceil(8);
                let window_bytes = blocks_per_phase as usize * JPEG_WINDOW_BYTES_PER_BLOCK + 64;
                let input_words = (window_bytes as u32).div_ceil(4);
                TaskProfile {
                    total_blocks: total_jpeg_blocks.div_ceil(blocks_per_phase as usize),
                    block_words: chunk_words,
                    state_words: 4,
                    compute_cycles_per_block: JPEG_CYCLES_PER_BLOCK * u64::from(blocks_per_phase),
                    accesses_per_block: u64::from(input_words) * 2 + u64::from(chunk_words) + 8,
                }
            }
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chunkpoint_ecc::EccKind;
    use chunkpoint_sim::{Component, FaultProcess, PlainBus, Platform, Sram};

    fn quiet_bus() -> PlainBus {
        let sram = Sram::new("l1", 16 * 1024, EccKind::None, FaultProcess::disabled()).unwrap();
        PlainBus::new(sram, Platform::lh7a400(), Component::L1)
    }

    /// Runs a task straight through on a fault-free bus, draining the
    /// accumulated frame output at the end.
    fn run_to_completion(task: &mut dyn StreamingTask, bus: &mut PlainBus) -> Vec<u32> {
        task.init(bus).unwrap();
        let mut produced_per_block = Vec::new();
        for block in 0..task.total_blocks() {
            produced_per_block.push(task.run_block(block, bus).unwrap());
        }
        let mut drained = Vec::new();
        for (block, &produced) in produced_per_block.iter().enumerate() {
            let offset = task.output_offset(block);
            for i in 0..produced {
                drained.push(bus.load(task.output_region().word(offset + i)).unwrap());
            }
        }
        drained
    }

    #[test]
    fn adpcm_encode_task_matches_pure_codec() {
        let pcm = speech_pcm(2000, 0xA1);
        let mut task = AdpcmEncodeTask::new(pcm.clone(), 8);
        let mut bus = quiet_bus();
        let drained = run_to_completion(&mut task, &mut bus);
        let expected = pack_bytes(&adpcm::encode(&pcm));
        assert_eq!(drained, expected);
    }

    #[test]
    fn adpcm_decode_task_matches_pure_codec() {
        let pcm = speech_pcm(2000, 7);
        let codes = adpcm::encode(&pcm);
        let mut task = AdpcmDecodeTask::new(codes.clone(), 2000, 8);
        let mut bus = quiet_bus();
        let drained = run_to_completion(&mut task, &mut bus);
        let expected = pack_i16(&adpcm::decode(&codes, 2000));
        assert_eq!(drained, expected);
    }

    #[test]
    fn g721_encode_task_matches_pure_codec() {
        let pcm = speech_pcm(1500, 0xB1);
        let mut task = G721EncodeTask::new(pcm.clone(), 4);
        let mut bus = quiet_bus();
        let drained = run_to_completion(&mut task, &mut bus);
        let expected = pack_bytes(&g726::encode(&pcm));
        assert_eq!(drained, expected);
    }

    #[test]
    fn g721_decode_task_matches_pure_codec() {
        let pcm = speech_pcm(1500, 0xB2);
        let codes = g726::encode(&pcm);
        let mut task = G721DecodeTask::new(codes.clone(), 1500, 4);
        let mut bus = quiet_bus();
        let drained = run_to_completion(&mut task, &mut bus);
        let expected = pack_i16(&g726::decode(&codes, 1500));
        assert_eq!(drained, expected);
    }

    #[test]
    fn g722_encode_task_matches_pure_codec() {
        let pcm = speech_pcm(1500, 0xD1);
        let mut task = G722EncodeTask::new(pcm.clone(), 4);
        let mut bus = quiet_bus();
        let drained = run_to_completion(&mut task, &mut bus);
        let expected = pack_bytes(&g722::encode(&pcm));
        assert_eq!(drained, expected);
    }

    #[test]
    fn g722_decode_task_matches_pure_codec() {
        let pcm = speech_pcm(1500, 0xD2);
        let codes = g722::encode(&pcm);
        let mut task = G722DecodeTask::new(codes.clone(), 1500, 4);
        let mut bus = quiet_bus();
        let drained = run_to_completion(&mut task, &mut bus);
        let expected = pack_i16(&g722::decode(&codes, 1500));
        assert_eq!(drained, expected);
    }

    #[test]
    fn jpeg_decode_task_matches_pure_decoder() {
        let img = test_image(32, 32, 0xC1);
        let bytes = jpeg::encode(&img, 32, 32, 80);
        let mut task = JpegDecodeTask::new(bytes.clone(), 32).unwrap();
        let mut bus = quiet_bus();
        let drained = run_to_completion(&mut task, &mut bus);
        // Pure path: decode all blocks, compare pixel streams.
        let dec = JpegDecoder::parse(&bytes).unwrap();
        let mut state = EntropyState::default();
        let mut pixels = Vec::new();
        dec.decode_blocks(
            &bytes[dec.entropy_start()..],
            &mut state,
            dec.total_blocks(),
            &mut pixels,
        )
        .unwrap();
        assert_eq!(drained, pack_bytes(&pixels));
    }

    #[test]
    fn rerunning_a_block_is_idempotent() {
        // The restartability contract: run block 3, then run it again;
        // the second run must produce identical output and state.
        let pcm = speech_pcm(4000, 3);
        let mut task = G721EncodeTask::new(pcm, 4);
        let mut bus = quiet_bus();
        task.init(&mut bus).unwrap();
        for b in 0..3 {
            task.run_block(b, &mut bus).unwrap();
        }
        // Snapshot state before block 3.
        let state_before = read_region(&mut bus, task.state_region()).unwrap();
        let n1 = task.run_block(3, &mut bus).unwrap();
        let out1 = read_region(&mut bus, task.output_region()).unwrap();
        // Restore state (what the ISR does from L1') and re-run.
        write_region(&mut bus, task.state_region(), &state_before);
        let n2 = task.run_block(3, &mut bus).unwrap();
        let out2 = read_region(&mut bus, task.output_region()).unwrap();
        assert_eq!(n1, n2);
        assert_eq!(out1, out2);
    }

    #[test]
    fn task_profiles_are_consistent() {
        for benchmark in Benchmark::ALL {
            let task = benchmark.build_task_scaled(16, 0.1);
            let profile = task.profile();
            assert_eq!(profile.total_blocks, task.total_blocks(), "{benchmark}");
            assert!(profile.block_words > 0, "{benchmark}");
            assert!(profile.compute_cycles_per_block > 0, "{benchmark}");
            assert_eq!(
                profile.block_words * profile.total_blocks as u32,
                task.output_region().words,
                "{benchmark}: frame output region holds one chunk per block"
            );
            assert_eq!(
                profile.state_words,
                task.state_region().words,
                "{benchmark}"
            );
        }
    }

    #[test]
    fn all_benchmarks_complete_on_clean_bus() {
        for benchmark in Benchmark::ALL {
            let mut task = benchmark.build_task_scaled(16, 0.1);
            let mut bus = quiet_bus();
            let drained = run_to_completion(task.as_mut(), &mut bus);
            assert!(!drained.is_empty(), "{benchmark}");
        }
    }

    #[test]
    fn out_of_range_block_is_config_error() {
        let mut task = Benchmark::AdpcmEncode.build_task_scaled(8, 0.1);
        let mut bus = quiet_bus();
        task.init(&mut bus).unwrap();
        let err = task.run_block(10_000, &mut bus).unwrap_err();
        assert!(matches!(err, TaskError::Config(_)));
    }

    #[test]
    fn jpeg_chunk_rounds_to_block_multiple() {
        let img = test_image(16, 16, 1);
        let bytes = jpeg::encode(&img, 16, 16, 70);
        let task = JpegDecodeTask::new(bytes, 20).unwrap();
        assert_eq!(task.profile().block_words, 16);
    }

    #[test]
    fn benchmark_display_names() {
        assert_eq!(Benchmark::JpegDecode.to_string(), "JPG decode");
        assert_eq!(Benchmark::G722Encode.to_string(), "G722 encode");
        assert_eq!(Benchmark::ALL.len(), 7);
    }

    #[test]
    fn jpeg_window_survives_worst_case_entropy() {
        // A noisy image at maximum quality produces the densest entropy
        // stream; the per-block refill window must still cover every run
        // of blocks or decoding would starve mid-phase.
        let mut noisy = test_image(32, 32, 0xBAD);
        for (i, px) in noisy.iter_mut().enumerate() {
            // Salt-and-pepper on top of texture: worst case for RLE.
            if i % 3 == 0 {
                *px = if i % 6 == 0 { 255 } else { 0 };
            }
        }
        let bytes = jpeg::encode(&noisy, 32, 32, 100);
        for chunk_words in [16u32, 48] {
            let mut task = JpegDecodeTask::new(bytes.clone(), chunk_words).unwrap();
            let mut bus = quiet_bus();
            task.init(&mut bus).unwrap();
            for block in 0..task.total_blocks() {
                task.run_block(block, &mut bus)
                    .unwrap_or_else(|e| panic!("chunk={chunk_words} block={block}: {e}"));
            }
        }
    }

    #[test]
    fn analytic_profile_matches_built_task() {
        for benchmark in Benchmark::ALL {
            for chunk_words in [1u32, 4, 11, 16, 32, 44, 64, 128] {
                for scale in [0.25, 1.0] {
                    let built = benchmark.build_task_scaled(chunk_words, scale).profile();
                    let analytic = benchmark.profile_for_chunk(chunk_words, scale);
                    assert_eq!(
                        built, analytic,
                        "{benchmark} chunk={chunk_words} scale={scale}"
                    );
                }
            }
        }
    }
}
