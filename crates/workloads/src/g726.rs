//! ITU-T G.726 ADPCM at 32 kbit/s — the G.721 codec of the MediaBench
//! `g721` benchmark.
//!
//! A faithful fixed-point implementation following the classic public-
//! domain g72x structure: an adaptive 4-bit quantizer driven by a
//! locked/unlocked scale factor, and a 2-pole/6-zero adaptive predictor
//! operating on a compact floating-point representation of past
//! difference/reconstructed signals. All state lives in [`G726State`]
//! (24 words once serialised), which is the "flow control registers +
//! intermediate data" the paper's protected chunk carries for this
//! benchmark.

/// Powers of two used by the log-domain conversions.
const POWER2: [i32; 15] = [
    1, 2, 4, 8, 0x10, 0x20, 0x40, 0x80, 0x100, 0x200, 0x400, 0x800, 0x1000, 0x2000, 0x4000,
];

/// G.721 quantizer decision levels (log domain).
const QTAB_721: [i32; 7] = [-124, 80, 178, 246, 300, 349, 400];

/// Log-domain reconstruction levels per 4-bit code.
const DQLNTAB: [i32; 16] = [
    -2048, 4, 135, 213, 273, 323, 373, 425, 425, 373, 323, 273, 213, 135, 4, -2048,
];

/// Scale-factor multipliers per code.
const WITAB: [i32; 16] = [
    -12, 18, 41, 64, 112, 198, 355, 1122, 1122, 355, 198, 112, 64, 41, 18, -12,
];

/// Adaptation-speed weights per code.
const FITAB: [i32; 16] = [
    0, 0, 0, 0x200, 0x200, 0x200, 0x600, 0xE00, 0xE00, 0x600, 0x200, 0x200, 0x200, 0, 0, 0,
];

/// Full codec state (identical for encoder and decoder).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct G726State {
    /// Locked (slow) scale factor, Q? as in the reference (yl).
    pub yl: i32,
    /// Unlocked (fast) scale factor (yu).
    pub yu: i32,
    /// Short-term adaptation-speed average (dms).
    pub dms: i32,
    /// Long-term adaptation-speed average (dml).
    pub dml: i32,
    /// Speed-control parameter (ap).
    pub ap: i32,
    /// Pole predictor coefficients a1, a2.
    pub a: [i32; 2],
    /// Zero predictor coefficients b1..b6.
    pub b: [i32; 6],
    /// Signs of past dq + sez.
    pub pk: [i32; 2],
    /// Past quantized difference signals, float format.
    pub dq: [i32; 6],
    /// Past reconstructed signals, float format.
    pub sr: [i32; 2],
    /// Tone-detect flag.
    pub td: i32,
}

impl G726State {
    /// Reset state as specified by the standard.
    #[must_use]
    pub fn new() -> Self {
        Self {
            yl: 34816,
            yu: 544,
            dms: 0,
            dml: 0,
            ap: 0,
            a: [0; 2],
            b: [0; 6],
            pk: [0; 2],
            dq: [32; 6],
            sr: [32; 2],
            td: 0,
        }
    }

    /// Number of 32-bit words [`G726State::to_words`] produces.
    pub const WORDS: usize = 24;

    /// Serialises the state into memory words.
    #[must_use]
    pub fn to_words(&self) -> [u32; Self::WORDS] {
        let mut w = [0u32; Self::WORDS];
        w[0] = self.yl as u32;
        w[1] = self.yu as u32;
        w[2] = self.dms as u32;
        w[3] = self.dml as u32;
        w[4] = self.ap as u32;
        for i in 0..2 {
            w[5 + i] = self.a[i] as u32;
        }
        for i in 0..6 {
            w[7 + i] = self.b[i] as u32;
        }
        for i in 0..2 {
            w[13 + i] = self.pk[i] as u32;
        }
        for i in 0..6 {
            w[15 + i] = self.dq[i] as u32;
        }
        for i in 0..2 {
            w[21 + i] = self.sr[i] as u32;
        }
        w[23] = self.td as u32;
        w
    }

    /// Restores state from memory words, clamping every field into its
    /// legal range so corrupted state degrades the signal instead of
    /// breaking the arithmetic.
    #[must_use]
    pub fn from_words(w: &[u32; Self::WORDS]) -> Self {
        let clamp = |v: u32, lo: i32, hi: i32| (v as i32).clamp(lo, hi);
        let mut s = Self::new();
        s.yl = clamp(w[0], 0, 0x7FFFF);
        s.yu = clamp(w[1], 544, 5120);
        s.dms = clamp(w[2], 0, 0x7FFF);
        s.dml = clamp(w[3], 0, 0x7FFF);
        s.ap = clamp(w[4], 0, 1024);
        for i in 0..2 {
            s.a[i] = clamp(w[5 + i], -0x8000, 0x7FFF);
        }
        for i in 0..6 {
            s.b[i] = clamp(w[7 + i], -0x8000, 0x7FFF);
        }
        for i in 0..2 {
            s.pk[i] = clamp(w[13 + i], 0, 1);
        }
        for i in 0..6 {
            s.dq[i] = clamp(w[15 + i], -0x8000, 0x7FFF);
        }
        for i in 0..2 {
            s.sr[i] = clamp(w[21 + i], -0x8000, 0x7FFF);
        }
        s.td = clamp(w[23], 0, 1);
        s
    }
}

impl Default for G726State {
    fn default() -> Self {
        Self::new()
    }
}

/// Index of the first table entry greater than `val` (log₂ search helper).
fn quan(val: i32, table: &[i32]) -> i32 {
    for (i, &entry) in table.iter().enumerate() {
        if val < entry {
            return i as i32;
        }
    }
    table.len() as i32
}

/// Multiplies a predictor coefficient by a float-format signal value.
fn fmult(an: i32, srn: i32) -> i32 {
    let anmag = if an > 0 { an } else { (-an) & 0x1FFF };
    let anexp = quan(anmag, &POWER2) - 6;
    let anmant = if anmag == 0 {
        32
    } else if anexp >= 0 {
        anmag >> anexp
    } else {
        anmag << -anexp
    };
    let wanexp = anexp + ((srn >> 6) & 0xF) - 13;
    let wanmant = (anmant * (srn & 0x3F) + 0x30) >> 4;
    let retval = if wanexp >= 0 {
        (wanmant << wanexp.min(30)) & 0x7FFF
    } else {
        wanmant >> (-wanexp).min(30)
    };
    if (an ^ srn) < 0 {
        -retval
    } else {
        retval
    }
}

/// Zero-predictor partial estimate (sezi).
fn predictor_zero(state: &G726State) -> i32 {
    (0..6).map(|i| fmult(state.b[i] >> 2, state.dq[i])).sum()
}

/// Pole-predictor partial estimate.
fn predictor_pole(state: &G726State) -> i32 {
    fmult(state.a[1] >> 2, state.sr[1]) + fmult(state.a[0] >> 2, state.sr[0])
}

/// Current quantizer step size (y).
fn step_size(state: &G726State) -> i32 {
    if state.ap >= 256 {
        return state.yu;
    }
    let y = state.yl >> 6;
    let dif = state.yu - y;
    let al = state.ap >> 2;
    if dif > 0 {
        y + ((dif * al) >> 6)
    } else if dif < 0 {
        y + ((dif * al + 0x3F) >> 6)
    } else {
        y
    }
}

/// Quantizes the prediction difference `d` under scale `y` to a 4-bit code.
fn quantize(d: i32, y: i32) -> i32 {
    let dqm = d.abs();
    let exp = quan(dqm >> 1, &POWER2);
    let mant = ((dqm << 7) >> exp.min(30)) & 0x7F;
    let dl = (exp << 7) + mant;
    let dln = dl - (y >> 2);
    let i = quan(dln, &QTAB_721);
    // Codes 1..7 are positive magnitudes, 8..14 the mirrored negatives,
    // 15 the "zero / tiny" code (hence the symmetric DQLNTAB/WITAB).
    if d < 0 {
        15 - i
    } else if i == 0 {
        15
    } else {
        i
    }
}

/// Reconstructs the quantized difference signal from a code.
fn reconstruct(sign: bool, dqln: i32, y: i32) -> i32 {
    let dql = dqln + (y >> 2);
    if dql < 0 {
        return if sign { -0x8000 } else { 0 };
    }
    let dex = (dql >> 7) & 15;
    let dqt = 128 + (dql & 127);
    let dq = (dqt << 7) >> (14 - dex);
    if sign {
        dq - 0x8000
    } else {
        dq
    }
}

/// Converts a magnitude to the 11-bit float format used for dq/sr history.
fn to_float(value: i32, negative: bool) -> i32 {
    let mag = value & 0x7FFF;
    if mag == 0 {
        return if negative { 0x20 - 0x400 } else { 0x20 };
    }
    let exp = quan(mag, &POWER2);
    let f = (exp << 6) + ((mag << 6) >> exp.min(30));
    if negative {
        f - 0x400
    } else {
        f
    }
}

/// State update common to encoder and decoder (the big `update()` of the
/// reference, specialised to the 4-bit / 32 kbit/s rate).
#[allow(clippy::too_many_arguments)]
fn update(state: &mut G726State, y: i32, wi: i32, fi: i32, dq: i32, sr: i32, dqsez: i32) {
    let pk0 = i32::from(dqsez < 0);
    let mag = dq & 0x7FFF;

    // Tone / transition detection.
    let ylint = state.yl >> 15;
    let ylfrac = (state.yl >> 10) & 0x1F;
    let thr1 = (32 + ylfrac) << ylint.min(20);
    let thr2 = if ylint > 9 { 31 << 10 } else { thr1 };
    let tr = i32::from(state.td == 1 && mag > ((thr2 >> 1) + (thr2 >> 3)));

    // Scale-factor adaptation.
    state.yu = (y + ((wi - y) >> 5)).clamp(544, 5120);
    state.yl += state.yu + ((-state.yl) >> 6);

    if tr == 1 {
        state.a = [0; 2];
        state.b = [0; 6];
    } else {
        // Pole predictor adaptation.
        let pks1 = pk0 ^ state.pk[0];
        let mut a2p = state.a[1] - (state.a[1] >> 7);
        if dqsez != 0 {
            let fa1 = if pks1 != 0 { state.a[0] } else { -state.a[0] };
            if fa1 < -8191 {
                a2p -= 0x100;
            } else if fa1 > 8191 {
                a2p += 0xFF;
            } else {
                a2p += fa1 >> 5;
            }
            if (pk0 ^ state.pk[1]) != 0 {
                if a2p <= -12160 {
                    a2p = -12288;
                } else if a2p >= 12416 {
                    a2p = 12288;
                } else {
                    a2p -= 0x80;
                }
            } else if a2p <= -12416 {
                a2p = -12288;
            } else if a2p >= 12160 {
                a2p = 12288;
            } else {
                a2p += 0x80;
            }
        }
        state.a[1] = a2p;
        state.a[0] -= state.a[0] >> 8;
        if dqsez != 0 {
            if pks1 == 0 {
                state.a[0] += 192;
            } else {
                state.a[0] -= 192;
            }
        }
        let a1ul = 15360 - a2p;
        state.a[0] = state.a[0].clamp(-a1ul, a1ul);

        // Zero predictor adaptation.
        for i in 0..6 {
            state.b[i] -= state.b[i] >> 8;
            if mag != 0 {
                if (dq ^ state.dq[i]) >= 0 {
                    state.b[i] += 128;
                } else {
                    state.b[i] -= 128;
                }
            }
        }
    }

    // Shift difference-signal history (float format).
    for i in (1..6).rev() {
        state.dq[i] = state.dq[i - 1];
    }
    state.dq[0] = to_float(mag, dq < 0);

    // Reconstructed-signal history (float format).
    state.sr[1] = state.sr[0];
    state.sr[0] = if sr == 0 {
        0x20
    } else if sr > 0 {
        to_float(sr, false)
    } else if sr > -32768 {
        to_float(-sr, true)
    } else {
        0x20 - 0x400
    };

    state.pk[1] = state.pk[0];
    state.pk[0] = pk0;

    state.td = if tr == 1 {
        0
    } else {
        i32::from(state.a[1] < -11776)
    };

    // Adaptation-speed control. The branches mirror the reference's
    // separate conditions even where the action coincides.
    state.dms += (fi - state.dms) >> 5;
    state.dml += ((fi << 2) - state.dml) >> 7;
    #[allow(clippy::if_same_then_else)]
    if tr == 1 {
        state.ap = 256;
    } else if y < 1536 || state.td == 1 {
        state.ap += (0x200 - state.ap) >> 4;
    } else if ((state.dms << 2) - state.dml).abs() >= (state.dml >> 3) {
        state.ap += (0x200 - state.ap) >> 4;
    } else {
        state.ap += (-state.ap) >> 4;
    }
}

/// Encodes one 16-bit linear PCM sample into a 4-bit G.721 code.
#[must_use]
pub fn encode_sample(state: &mut G726State, sample: i16) -> u8 {
    let sl = i32::from(sample) >> 2; // 14-bit dynamic range
    let sezi = predictor_zero(state);
    let sez = sezi >> 1;
    let se = (sezi + predictor_pole(state)) >> 1;
    let d = sl - se;
    let y = step_size(state);
    let code = quantize(d, y);
    let dq = reconstruct(code & 8 != 0, DQLNTAB[code as usize], y);
    let sr = if dq < 0 { se - (dq & 0x3FFF) } else { se + dq };
    let dqsez = sr + sez - se;
    update(
        state,
        y,
        WITAB[code as usize] << 5,
        FITAB[code as usize],
        dq,
        sr,
        dqsez,
    );
    code as u8
}

/// Decodes one 4-bit G.721 code into a 16-bit linear PCM sample.
#[must_use]
pub fn decode_sample(state: &mut G726State, code: u8) -> i16 {
    let code = i32::from(code & 0x0F);
    let sezi = predictor_zero(state);
    let sez = sezi >> 1;
    let se = (sezi + predictor_pole(state)) >> 1;
    let y = step_size(state);
    let dq = reconstruct(code & 8 != 0, DQLNTAB[code as usize], y);
    let sr = if dq < 0 { se - (dq & 0x3FFF) } else { se + dq };
    let dqsez = sr - se + sez;
    update(
        state,
        y,
        WITAB[code as usize] << 5,
        FITAB[code as usize],
        dq,
        sr,
        dqsez,
    );
    (sr << 2).clamp(-32768, 32767) as i16
}

/// Encodes a PCM buffer to packed codes (two 4-bit codes per byte, low
/// nibble first).
#[must_use]
pub fn encode(samples: &[i16]) -> Vec<u8> {
    let mut state = G726State::new();
    samples
        .chunks(2)
        .map(|pair| {
            let lo = encode_sample(&mut state, pair[0]);
            let hi = pair.get(1).map_or(0, |&s| encode_sample(&mut state, s));
            lo | (hi << 4)
        })
        .collect()
}

/// Decodes packed codes back to `count` PCM samples.
#[must_use]
pub fn decode(codes: &[u8], count: usize) -> Vec<i16> {
    let mut state = G726State::new();
    let mut out = Vec::with_capacity(count);
    'outer: for &byte in codes {
        for nibble in [byte & 0x0F, byte >> 4] {
            out.push(decode_sample(&mut state, nibble));
            if out.len() == count {
                break 'outer;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adpcm::snr_db;
    use crate::input::speech_pcm;

    #[test]
    fn silence_stays_quiet() {
        let decoded = decode(&encode(&vec![0i16; 256]), 256);
        assert!(decoded.iter().all(|&s| s.abs() < 64), "{decoded:?}");
    }

    #[test]
    fn speech_roundtrip_snr() {
        let samples = speech_pcm(8000, 21);
        let decoded = decode(&encode(&samples), samples.len());
        let snr = snr_db(&samples, &decoded);
        // G.726-32 achieves well above 15 dB SNR on speech material.
        assert!(snr > 12.0, "SNR only {snr:.1} dB");
    }

    #[test]
    fn sine_roundtrip_snr() {
        let samples: Vec<i16> = (0..4000)
            .map(|i| {
                (8000.0 * (2.0 * std::f64::consts::PI * 440.0 * i as f64 / 8000.0).sin()) as i16
            })
            .collect();
        let decoded = decode(&encode(&samples), samples.len());
        let snr = snr_db(&samples, &decoded);
        assert!(snr > 10.0, "SNR only {snr:.1} dB");
    }

    #[test]
    fn encoder_decoder_predictors_stay_in_lockstep() {
        // Feeding the encoder's codes to a fresh decoder must reproduce the
        // encoder's internal reconstruction (sr), i.e. end with identical
        // state — the defining property of backward-adaptive ADPCM.
        let samples = speech_pcm(2000, 33);
        let mut enc = G726State::new();
        let mut dec = G726State::new();
        for &s in &samples {
            let code = encode_sample(&mut enc, s);
            let _ = decode_sample(&mut dec, code);
        }
        assert_eq!(enc, dec);
    }

    #[test]
    fn state_word_roundtrip() {
        let mut state = G726State::new();
        for &s in &speech_pcm(100, 3) {
            let _ = encode_sample(&mut state, s);
        }
        let restored = G726State::from_words(&state.to_words());
        assert_eq!(restored, state);
    }

    #[test]
    fn corrupted_state_words_are_clamped_sane() {
        let garbage = [0xDEAD_BEEFu32; G726State::WORDS];
        let state = G726State::from_words(&garbage);
        assert!((544..=5120).contains(&state.yu));
        assert!((0..=1).contains(&state.td));
        assert!((0..=1).contains(&state.pk[0]));
        // And the codec keeps working on it.
        let mut s = state;
        for &x in &speech_pcm(200, 4) {
            let _ = encode_sample(&mut s, x);
        }
    }

    #[test]
    fn extreme_inputs_do_not_panic() {
        let samples: Vec<i16> = (0..512)
            .map(|i| if i % 3 == 0 { i16::MAX } else { i16::MIN })
            .collect();
        let decoded = decode(&encode(&samples), samples.len());
        assert_eq!(decoded.len(), samples.len());
    }

    #[test]
    fn all_codes_decode_without_panic() {
        let mut state = G726State::new();
        for code in 0..=255u8 {
            let _ = decode_sample(&mut state, code); // masks to 4 bits
        }
    }

    #[test]
    fn decoder_recovers_after_desync() {
        // Start the decoder with wrong (default) state mid-stream: the
        // backward-adaptive predictor must converge again — the property
        // the paper's rollback scheme relies on for bounded error impact.
        let samples = speech_pcm(6000, 55);
        let codes = encode(&samples);
        let full = decode(&codes, samples.len());
        // Decode only the second half with fresh state.
        let mut late = G726State::new();
        let mut tail = Vec::new();
        for &byte in &codes[1500..] {
            tail.push(decode_sample(&mut late, byte & 0x0F));
            tail.push(decode_sample(&mut late, byte >> 4));
        }
        // Compare the last quarter where both should have converged.
        let n = 1000;
        let a = &full[samples.len() - n..];
        let b = &tail[tail.len() - n..];
        let err: f64 = a
            .iter()
            .zip(b.iter())
            .map(|(&x, &y)| (f64::from(x) - f64::from(y)).abs())
            .sum::<f64>()
            / n as f64;
        assert!(err < 2000.0, "decoder failed to reconverge: avg err {err}");
    }
}
