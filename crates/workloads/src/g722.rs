//! G.722-style sub-band ADPCM codec — the wideband sibling of the
//! MediaBench audio kernels.
//!
//! A 24-tap QMF analysis bank (the ITU-T G.722 prototype filter) splits
//! each pair of input samples into a low-band and a high-band sample;
//! each band is then coded with the IMA ADPCM quantizer from [`crate::adpcm`]
//! (4 bits per band, one byte per input pair). The decoder reverses the
//! path through the synthesis bank. The interesting property for the
//! paper's chunking study is the *state*: two codec states plus a 24-tap
//! filter delay line — an order of magnitude more flow-control state than
//! plain ADPCM, which pushes the optimal checkpoint chunk in the other
//! direction.

use crate::adpcm::{self, AdpcmState};

/// ITU-T G.722 QMF prototype filter (24 taps, Q14 gain).
const QMF_COEFFS: [i64; 24] = [
    3, -11, -11, 53, 12, -156, 32, 362, -210, -805, 951, 3876, 3876, 951, -805, -210, 362, 32,
    -156, 12, 53, -11, -11, 3,
];

/// Number of taps in the QMF delay line.
pub const QMF_TAPS: usize = 24;

/// Codec state carried between sample pairs: one IMA quantizer per band
/// plus the QMF delay line (analysis history for the encoder, band-sum /
/// band-difference history for the decoder).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct G722State {
    /// Low-band (0–4 kHz) quantizer state.
    pub low: AdpcmState,
    /// High-band (4–8 kHz) quantizer state.
    pub high: AdpcmState,
    /// QMF delay line, newest sample first.
    pub delay: [i16; QMF_TAPS],
}

impl G722State {
    /// Memory words the serialised state occupies (2 per band quantizer +
    /// the delay line at two taps per word).
    pub const WORDS: usize = 4 + QMF_TAPS / 2;

    /// Fresh encoder/decoder state.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Serialises the state to memory words.
    #[must_use]
    pub fn to_words(self) -> [u32; Self::WORDS] {
        let mut words = [0u32; Self::WORDS];
        let low = self.low.to_words();
        let high = self.high.to_words();
        words[0] = low[0];
        words[1] = low[1];
        words[2] = high[0];
        words[3] = high[1];
        for i in 0..QMF_TAPS / 2 {
            let lo = self.delay[2 * i] as u16;
            let hi = self.delay[2 * i + 1] as u16;
            words[4 + i] = u32::from(lo) | (u32::from(hi) << 16);
        }
        words
    }

    /// Restores state from memory words (inverse of
    /// [`G722State::to_words`]). Band quantizers are clamped into their
    /// legal ranges so corrupted state degrades output instead of
    /// panicking; delay taps are plain samples and accept any bit pattern.
    #[must_use]
    pub fn from_words(words: &[u32; Self::WORDS]) -> Self {
        let mut delay = [0i16; QMF_TAPS];
        for i in 0..QMF_TAPS / 2 {
            delay[2 * i] = (words[4 + i] & 0xFFFF) as u16 as i16;
            delay[2 * i + 1] = (words[4 + i] >> 16) as u16 as i16;
        }
        Self {
            low: AdpcmState::from_words([words[0], words[1]]),
            high: AdpcmState::from_words([words[2], words[3]]),
            delay,
        }
    }
}

impl Default for G722State {
    fn default() -> Self {
        Self {
            low: AdpcmState::new(),
            high: AdpcmState::new(),
            delay: [0; QMF_TAPS],
        }
    }
}

/// QMF analysis: pushes one input pair (`x0` older, `x1` newer) into the
/// delay line and returns the decimated `(low, high)` band samples.
fn qmf_analysis(delay: &mut [i16; QMF_TAPS], x0: i16, x1: i16) -> (i16, i16) {
    for i in (2..QMF_TAPS).rev() {
        delay[i] = delay[i - 2];
    }
    delay[1] = x0;
    delay[0] = x1;
    let mut sum_even = 0i64;
    let mut sum_odd = 0i64;
    for i in 0..QMF_TAPS / 2 {
        sum_even += i64::from(delay[2 * i]) * QMF_COEFFS[2 * i];
        sum_odd += i64::from(delay[2 * i + 1]) * QMF_COEFFS[2 * i + 1];
    }
    let low = ((sum_even + sum_odd) >> 14).clamp(-32768, 32767) as i16;
    let high = ((sum_even - sum_odd) >> 14).clamp(-32768, 32767) as i16;
    (low, high)
}

/// QMF synthesis: pushes the reconstructed band pair into the sum /
/// difference history and interpolates the two output samples.
fn qmf_synthesis(delay: &mut [i16; QMF_TAPS], low: i16, high: i16) -> (i16, i16) {
    // delay[2i] holds band sums, delay[2i+1] band differences, newest first.
    for i in (2..QMF_TAPS).rev() {
        delay[i] = delay[i - 2];
    }
    delay[0] = (i32::from(low) + i32::from(high)).clamp(-32768, 32767) as i16;
    delay[1] = (i32::from(low) - i32::from(high)).clamp(-32768, 32767) as i16;
    let mut acc0 = 0i64;
    let mut acc1 = 0i64;
    for i in 0..QMF_TAPS / 2 {
        acc0 += i64::from(delay[2 * i + 1]) * QMF_COEFFS[2 * i];
        acc1 += i64::from(delay[2 * i]) * QMF_COEFFS[2 * i + 1];
    }
    let x0 = (acc0 >> 11).clamp(-32768, 32767) as i16;
    let x1 = (acc1 >> 11).clamp(-32768, 32767) as i16;
    (x0, x1)
}

/// Encodes one input pair to one code byte (low-band code in the low
/// nibble), advancing `state`.
#[must_use]
pub fn encode_pair(state: &mut G722State, x0: i16, x1: i16) -> u8 {
    let (low, high) = qmf_analysis(&mut state.delay, x0, x1);
    let cl = adpcm::encode_sample(&mut state.low, low);
    let ch = adpcm::encode_sample(&mut state.high, high);
    cl | (ch << 4)
}

/// Decodes one code byte to two output samples, advancing `state`.
#[must_use]
pub fn decode_pair(state: &mut G722State, code: u8) -> (i16, i16) {
    let low = adpcm::decode_sample(&mut state.low, code & 0x0F);
    let high = adpcm::decode_sample(&mut state.high, code >> 4);
    qmf_synthesis(&mut state.delay, low, high)
}

/// Encodes a PCM buffer to one byte per sample pair (an odd trailing
/// sample is paired with silence).
#[must_use]
pub fn encode(samples: &[i16]) -> Vec<u8> {
    let mut state = G722State::new();
    let mut out = Vec::with_capacity(samples.len().div_ceil(2));
    for pair in samples.chunks(2) {
        let x1 = pair.get(1).copied().unwrap_or(0);
        out.push(encode_pair(&mut state, pair[0], x1));
    }
    out
}

/// Decodes a code stream to `total_samples` PCM samples.
///
/// # Panics
///
/// Panics if the code stream is shorter than `total_samples / 2` bytes.
#[must_use]
pub fn decode(codes: &[u8], total_samples: usize) -> Vec<i16> {
    assert!(
        codes.len() * 2 >= total_samples,
        "code stream shorter than sample count"
    );
    let mut state = G722State::new();
    let mut out = Vec::with_capacity(total_samples);
    'outer: for &code in codes {
        let (x0, x1) = decode_pair(&mut state, code);
        for sample in [x0, x1] {
            out.push(sample);
            if out.len() == total_samples {
                break 'outer;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::speech_pcm;

    #[test]
    fn state_words_round_trip() {
        let mut state = G722State::new();
        for (i, tap) in state.delay.iter_mut().enumerate() {
            *tap = (i as i16 - 12) * 999;
        }
        state.low.predicted = -123;
        state.low.step_index = 42;
        state.high.predicted = 456;
        state.high.step_index = 7;
        let restored = G722State::from_words(&state.to_words());
        assert_eq!(restored, state);
    }

    #[test]
    fn corrupted_state_words_clamp_instead_of_panicking() {
        let words = [i32::MAX as u32; G722State::WORDS];
        let state = G722State::from_words(&words);
        assert_eq!(state.low.step_index, 88);
        assert_eq!(state.high.step_index, 88);
        assert_eq!(state.low.predicted, 32767);
    }

    #[test]
    fn encode_produces_one_byte_per_pair() {
        let pcm = speech_pcm(101, 0xD1);
        let codes = encode(&pcm);
        assert_eq!(codes.len(), 51);
        // Deterministic: same input, same stream.
        assert_eq!(encode(&pcm), codes);
    }

    #[test]
    fn decode_yields_requested_sample_count() {
        let pcm = speech_pcm(200, 0xD2);
        let codes = encode(&pcm);
        let out = decode(&codes, 200);
        assert_eq!(out.len(), 200);
        let out_odd = decode(&codes, 199);
        assert_eq!(out_odd.len(), 199);
        assert_eq!(out[..199], out_odd[..]);
    }

    #[test]
    fn round_trip_tracks_the_input_signal() {
        // The codec is lossy but after the adaptive quantizers converge it
        // must follow a smooth signal: compare energy of the error to the
        // energy of the signal over the steady-state tail.
        let pcm = speech_pcm(512, 0xD3);
        let out = decode(&encode(&pcm), 512);
        // QMF analysis+synthesis costs taps-1 samples of group delay;
        // allow a tap of slack around it and take the best alignment.
        let mut best = f64::INFINITY;
        let mut sig = 0f64;
        for lag in (QMF_TAPS - 3)..=(QMF_TAPS + 1) {
            let mut err = 0f64;
            let mut energy = 0f64;
            for i in 128..(512 - lag) {
                let d = f64::from(out[i + lag]) - f64::from(pcm[i]);
                err += d * d;
                energy += f64::from(pcm[i]) * f64::from(pcm[i]);
            }
            if err < best {
                best = err;
                sig = energy;
            }
        }
        assert!(sig > 0.0);
        assert!(
            best < sig * 0.5,
            "reconstruction error {best:.0} vs signal energy {sig:.0}"
        );
    }

    #[test]
    fn stateful_stream_equals_chunked_stream() {
        // Encoding in one call or in arbitrary even-length chunks through
        // a carried state must produce the same stream — the property the
        // streaming task relies on.
        let pcm = speech_pcm(300, 0xD4);
        let whole = encode(&pcm);
        let mut state = G722State::new();
        let mut chunked = Vec::new();
        for chunk in pcm.chunks(64) {
            for pair in chunk.chunks(2) {
                let x1 = pair.get(1).copied().unwrap_or(0);
                chunked.push(encode_pair(&mut state, pair[0], x1));
            }
        }
        assert_eq!(chunked, whole);
    }
}
