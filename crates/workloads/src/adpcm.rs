//! IMA ADPCM codec — the MediaBench `adpcm` (rawcaudio / rawdaudio)
//! benchmark kernel.
//!
//! Standard IMA/DVI ADPCM: 16-bit PCM ↔ 4-bit codes with an adaptive step
//! size driven by the classic 89-entry table. The codec state visible
//! across samples is exactly two values (`predicted`, `step_index`), which
//! is what makes this benchmark's optimal data chunk so small in Table I.

/// IMA step-size table (89 entries).
const STEP_TABLE: [i32; 89] = [
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37, 41, 45, 50, 55, 60, 66,
    73, 80, 88, 97, 107, 118, 130, 143, 157, 173, 190, 209, 230, 253, 279, 307, 337, 371, 408, 449,
    494, 544, 598, 658, 724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066, 2272,
    2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894, 6484, 7132, 7845, 8630, 9493,
    10442, 11487, 12635, 13899, 15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
];

/// Index adjustment per 4-bit code.
const INDEX_TABLE: [i32; 16] = [-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8];

/// Codec state carried between samples (and, in the simulator, stored in
/// the task's state region — the "flow control registers" of the paper).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdpcmState {
    /// Last predicted/reconstructed sample.
    pub predicted: i32,
    /// Index into the step-size table.
    pub step_index: i32,
}

impl AdpcmState {
    /// Fresh decoder/encoder state.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Serialises the state to memory words.
    #[must_use]
    pub fn to_words(self) -> [u32; 2] {
        [self.predicted as u32, self.step_index as u32]
    }

    /// Restores state from memory words (inverse of
    /// [`AdpcmState::to_words`]). Values are clamped into their legal
    /// ranges so corrupted state degrades output instead of panicking.
    #[must_use]
    pub fn from_words(words: [u32; 2]) -> Self {
        Self {
            predicted: (words[0] as i32).clamp(-32768, 32767),
            step_index: (words[1] as i32).clamp(0, 88),
        }
    }
}

/// Encodes one sample, returning the 4-bit code and advancing `state`.
#[must_use]
pub fn encode_sample(state: &mut AdpcmState, sample: i16) -> u8 {
    let step = STEP_TABLE[state.step_index as usize];
    let mut diff = i32::from(sample) - state.predicted;
    let mut code = 0u8;
    if diff < 0 {
        code |= 8;
        diff = -diff;
    }
    // Successive approximation of diff / step in 3 bits.
    let mut temp_step = step;
    if diff >= temp_step {
        code |= 4;
        diff -= temp_step;
    }
    temp_step >>= 1;
    if diff >= temp_step {
        code |= 2;
        diff -= temp_step;
    }
    temp_step >>= 1;
    if diff >= temp_step {
        code |= 1;
    }
    decode_advance(state, code);
    code
}

/// Decodes one 4-bit code, returning the reconstructed sample and
/// advancing `state`.
#[must_use]
pub fn decode_sample(state: &mut AdpcmState, code: u8) -> i16 {
    decode_advance(state, code & 0x0F) as i16
}

/// Shared reconstruction path (the encoder embeds the decoder so both stay
/// in lock-step).
fn decode_advance(state: &mut AdpcmState, code: u8) -> i32 {
    let step = STEP_TABLE[state.step_index as usize];
    // delta = (code+0.5) * step / 4, computed in integer form.
    let mut delta = step >> 3;
    if code & 4 != 0 {
        delta += step;
    }
    if code & 2 != 0 {
        delta += step >> 1;
    }
    if code & 1 != 0 {
        delta += step >> 2;
    }
    if code & 8 != 0 {
        state.predicted -= delta;
    } else {
        state.predicted += delta;
    }
    state.predicted = state.predicted.clamp(-32768, 32767);
    state.step_index = (state.step_index + INDEX_TABLE[code as usize]).clamp(0, 88);
    state.predicted
}

/// Encodes a PCM buffer to packed 4-bit codes (two per byte, low nibble
/// first).
#[must_use]
pub fn encode(samples: &[i16]) -> Vec<u8> {
    let mut state = AdpcmState::new();
    let mut out = Vec::with_capacity(samples.len().div_ceil(2));
    for pair in samples.chunks(2) {
        let lo = encode_sample(&mut state, pair[0]);
        let hi = pair.get(1).map_or(0, |&s| encode_sample(&mut state, s));
        out.push(lo | (hi << 4));
    }
    out
}

/// Decodes packed 4-bit codes back to PCM (`count` samples).
#[must_use]
pub fn decode(codes: &[u8], count: usize) -> Vec<i16> {
    let mut state = AdpcmState::new();
    let mut out = Vec::with_capacity(count);
    'outer: for &byte in codes {
        for nibble in [byte & 0x0F, byte >> 4] {
            out.push(decode_sample(&mut state, nibble));
            if out.len() == count {
                break 'outer;
            }
        }
    }
    out
}

/// Signal-to-noise ratio of `decoded` against `reference`, in dB.
///
/// # Panics
///
/// Panics if lengths differ or the reference is all-zero.
#[must_use]
pub fn snr_db(reference: &[i16], decoded: &[i16]) -> f64 {
    assert_eq!(reference.len(), decoded.len(), "length mismatch in SNR");
    let signal: f64 = reference.iter().map(|&s| f64::from(s) * f64::from(s)).sum();
    assert!(signal > 0.0, "all-zero reference in SNR");
    let noise: f64 = reference
        .iter()
        .zip(decoded.iter())
        .map(|(&a, &b)| {
            let d = f64::from(a) - f64::from(b);
            d * d
        })
        .sum();
    if noise == 0.0 {
        return f64::INFINITY;
    }
    10.0 * (signal / noise).log10()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::speech_pcm;

    #[test]
    fn silence_encodes_quietly() {
        let samples = vec![0i16; 64];
        let decoded = decode(&encode(&samples), 64);
        assert!(decoded.iter().all(|&s| s.abs() < 24), "{decoded:?}");
    }

    #[test]
    fn speech_roundtrip_snr() {
        let samples = speech_pcm(8000, 42);
        let decoded = decode(&encode(&samples), samples.len());
        let snr = snr_db(&samples, &decoded);
        // IMA ADPCM typically achieves > 20 dB on speech-like material.
        assert!(snr > 15.0, "SNR only {snr:.1} dB");
    }

    #[test]
    fn step_response_tracks_quickly() {
        let mut samples = vec![0i16; 32];
        samples.extend(std::iter::repeat_n(12000i16, 96));
        let decoded = decode(&encode(&samples), samples.len());
        // Within ~40 samples the decoder must have climbed near the step.
        assert!(decoded[70] > 9000, "decoded[70] = {}", decoded[70]);
    }

    #[test]
    fn odd_sample_count() {
        let samples = speech_pcm(333, 5);
        let codes = encode(&samples);
        assert_eq!(codes.len(), 167);
        let decoded = decode(&codes, 333);
        assert_eq!(decoded.len(), 333);
    }

    #[test]
    fn state_word_roundtrip() {
        let state = AdpcmState {
            predicted: -1234,
            step_index: 42,
        };
        assert_eq!(AdpcmState::from_words(state.to_words()), state);
    }

    #[test]
    fn corrupted_state_is_clamped() {
        let state = AdpcmState::from_words([0xFFFF_0000, 0xFFFF_FFFF]);
        assert!((0..=88).contains(&state.step_index));
        assert!((-32768..=32767).contains(&state.predicted));
    }

    #[test]
    fn sample_level_streaming_matches_batch() {
        let samples = speech_pcm(500, 9);
        let batch = encode(&samples);
        let mut state = AdpcmState::new();
        let streamed: Vec<u8> = samples
            .chunks(2)
            .map(|pair| {
                let lo = encode_sample(&mut state, pair[0]);
                let hi = pair.get(1).map_or(0, |&s| encode_sample(&mut state, s));
                lo | (hi << 4)
            })
            .collect();
        assert_eq!(batch, streamed);
    }

    #[test]
    fn extreme_amplitudes_do_not_overflow() {
        let samples: Vec<i16> = (0..256)
            .map(|i| if i % 2 == 0 { i16::MAX } else { i16::MIN })
            .collect();
        let decoded = decode(&encode(&samples), samples.len());
        assert_eq!(decoded.len(), samples.len());
    }

    #[test]
    fn snr_of_identical_signals_is_infinite() {
        let samples = speech_pcm(100, 1);
        assert!(snr_db(&samples, &samples).is_infinite());
    }
}
