//! The sequential-sampling policy and its pure round planner.
//!
//! Everything in this module is a pure function of `(policy, per-cell
//! sealed statistics, round number)` — no clocks, no sockets, no
//! executor state. That purity *is* the determinism contract: the
//! controller replays byte-identically because every stop and every
//! reallocation decision comes out of [`plan_round`], and
//! [`plan_round`] cannot observe anything timing-dependent.

use chunkpoint_campaign::{JsonValue, ScenarioResult, Summary};

/// Which scenario metric the stopping rule watches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopMetric {
    /// Energy per scenario, in picojoules (the paper's headline axis).
    EnergyPj,
    /// Execution cycles per scenario.
    Cycles,
}

impl StopMetric {
    /// Canonical lowercase name (report schema vocabulary).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            StopMetric::EnergyPj => "energy_pj",
            StopMetric::Cycles => "cycles",
        }
    }

    /// Extracts the watched metric from one sealed scenario row.
    #[must_use]
    pub fn of(self, result: &ScenarioResult) -> f64 {
        match self {
            StopMetric::EnergyPj => result.energy_pj,
            StopMetric::Cycles => result.cycles as f64,
        }
    }
}

/// The adaptive controller's knobs. All of them feed the pure
/// [`plan_round`]; none of them can change what any individual scenario
/// computes — only *which* scenarios run.
#[derive(Debug, Clone)]
pub struct AdaptivePolicy {
    /// Floor below which a cell is never stopped, however tight its CI
    /// looks. Effective floor is `max(min_replicates, 2)` — a CI95
    /// half-width needs two samples to exist at all.
    pub min_replicates: u64,
    /// Base replicates granted to every open cell per control round
    /// (clamped to at least 1 by [`plan_round`]).
    pub round_replicates: u64,
    /// Relative stop threshold: a cell stops once its CI95 half-width
    /// is `<= rel_ci × |mean|`. `None` disables the relative rule.
    pub rel_ci: Option<f64>,
    /// Absolute stop threshold: a cell stops once its CI95 half-width
    /// is `<= abs_ci` in metric units. `None` disables the absolute
    /// rule. With both thresholds `None` no cell ever stops early —
    /// the controller degenerates to the fixed grid.
    pub abs_ci: Option<f64>,
    /// The scenario metric the CI is computed over.
    pub metric: StopMetric,
    /// Hard cutoff: after this many control rounds every open cell is
    /// stopped unconverged. `0` means unbounded (the per-cell replicate
    /// budget still terminates every run).
    pub max_rounds: u32,
}

impl Default for AdaptivePolicy {
    fn default() -> Self {
        Self {
            min_replicates: 3,
            round_replicates: 2,
            rel_ci: None,
            abs_ci: None,
            metric: StopMetric::EnergyPj,
            max_rounds: 0,
        }
    }
}

impl AdaptivePolicy {
    /// The default policy: 3-replicate floor, 2 replicates per round,
    /// no CI thresholds (fixed-grid behavior until one is set).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the never-stop-below floor.
    #[must_use]
    pub fn min_replicates(mut self, floor: u64) -> Self {
        self.min_replicates = floor;
        self
    }

    /// Sets the base per-round replicate grant.
    #[must_use]
    pub fn round_replicates(mut self, per_round: u64) -> Self {
        self.round_replicates = per_round;
        self
    }

    /// Enables the relative stop rule (CI95 half-width ≤ `rel × |mean|`).
    ///
    /// # Panics
    ///
    /// Panics on a non-finite or non-positive threshold.
    #[must_use]
    pub fn rel_ci(mut self, rel: f64) -> Self {
        assert!(
            rel.is_finite() && rel > 0.0,
            "rel_ci must be finite and > 0"
        );
        self.rel_ci = Some(rel);
        self
    }

    /// Enables the absolute stop rule (CI95 half-width ≤ `abs`).
    ///
    /// # Panics
    ///
    /// Panics on a non-finite or non-positive threshold.
    #[must_use]
    pub fn abs_ci(mut self, abs: f64) -> Self {
        assert!(
            abs.is_finite() && abs > 0.0,
            "abs_ci must be finite and > 0"
        );
        self.abs_ci = Some(abs);
        self
    }

    /// Sets the watched metric.
    #[must_use]
    pub fn metric(mut self, metric: StopMetric) -> Self {
        self.metric = metric;
        self
    }

    /// Sets the hard round cutoff (`0` = unbounded).
    #[must_use]
    pub fn max_rounds(mut self, rounds: u32) -> Self {
        self.max_rounds = rounds;
        self
    }

    /// The effective stop floor: a CI needs two samples to exist.
    #[must_use]
    pub fn floor(&self) -> u64 {
        self.min_replicates.max(2)
    }

    /// The canonical JSON rendering of the policy — part of the
    /// adaptive report section, so equal policies render equal bytes.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let ci = |threshold: Option<f64>| match threshold {
            Some(value) => JsonValue::Float(value),
            None => JsonValue::Null,
        };
        JsonValue::object()
            .field("min_replicates", self.min_replicates)
            .field("round_replicates", self.round_replicates.max(1))
            .field("rel_ci", ci(self.rel_ci))
            .field("abs_ci", ci(self.abs_ci))
            .field("metric", self.metric.name())
            .field("max_rounds", u64::from(self.max_rounds))
    }

    /// The stopping rule for one cell: converged once it has at least
    /// [`AdaptivePolicy::floor`] sealed replicates *and* its CI95
    /// half-width meets the absolute or the relative threshold. With
    /// both thresholds unset, never.
    #[must_use]
    pub fn converged(&self, summary: &Summary) -> bool {
        if summary.count() < self.floor() {
            return false;
        }
        let hw = summary.ci95_half_width();
        let abs_ok = self.abs_ci.is_some_and(|t| hw <= t);
        let rel_ok = self.rel_ci.is_some_and(|t| hw <= t * summary.mean().abs());
        abs_ok || rel_ok
    }
}

/// The live state of one grid cell between control rounds.
#[derive(Debug, Clone, Default)]
pub struct CellProgress {
    /// Replicates executed and sealed so far (`== summary.count()`).
    pub spent: u64,
    /// Welford aggregate of the watched metric over the sealed
    /// replicates, pushed in global scenario-index order.
    pub summary: Summary,
    /// The stop decision, once one is taken.
    pub stopped: Option<CellStop>,
}

/// One cell's stop decision — the record the adaptive report section
/// carries per cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellStop {
    /// Control round the decision was taken at (1-based).
    pub round: u32,
    /// Replicates the cell had executed when it stopped.
    pub replicates: u64,
    /// CI95 half-width of the watched metric at the stop.
    pub ci95: f64,
    /// Mean of the watched metric at the stop.
    pub mean: f64,
    /// `true`: the CI threshold was met (an *early* stop, when
    /// replicates < budget). `false`: the cell exhausted its replicate
    /// budget or hit the round cutoff without converging.
    pub converged: bool,
}

/// One contiguous block of replicates [`plan_round`] schedules for a
/// cell this round, as 0-based replicate indices `[from, to)` within
/// the cell (the controller offsets them into global scenario indices).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellAllocation {
    /// Dense cell index in grid-enumeration order.
    pub cell: usize,
    /// First replicate to execute (always the cell's `spent`).
    pub from: u64,
    /// One past the last replicate to execute.
    pub to: u64,
}

/// What one control round decided: which cells stop, who gets freed
/// budget, and exactly which replicate blocks to execute.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RoundPlan {
    /// Cells stopped this round, in cell-index order.
    pub stops: Vec<(usize, CellStop)>,
    /// Pool grants beyond the base allocation, `(cell, extra)`, in
    /// grant order (variance-descending).
    pub grants: Vec<(usize, u64)>,
    /// Replicate blocks to execute, in cell-index order. Empty means
    /// the campaign is over.
    pub allocations: Vec<CellAllocation>,
    /// Freed replicate budget carried into the next round.
    pub pool: u64,
}

/// Plans one control round: a **pure function** of `(policy,
/// budget_per_cell, round, cells, pool)`.
///
/// Stops first: every open cell that converged under the policy's CI
/// rule, exhausted its `budget_per_cell` replicates, or ran past
/// `max_rounds` is stopped, freeing its unexecuted replicates into the
/// pool. Then allocation: every still-open cell gets a base grant of
/// `max(round_replicates, what it still needs to reach the floor)`
/// (clamped to its remaining budget), and the pool is granted to open
/// cells in descending variance order (ties broken by ascending cell
/// index), at most `round_replicates` extra per cell per round.
///
/// Every open cell always receives at least one replicate, so the
/// controller terminates within `budget_per_cell` rounds however the
/// thresholds are set.
#[must_use]
pub fn plan_round(
    policy: &AdaptivePolicy,
    budget_per_cell: u64,
    round: u32,
    cells: &[CellProgress],
    pool: u64,
) -> RoundPlan {
    let mut plan = RoundPlan {
        pool,
        ..RoundPlan::default()
    };
    let cutoff = policy.max_rounds != 0 && round > policy.max_rounds;
    let mut open: Vec<usize> = Vec::new();
    for (index, cell) in cells.iter().enumerate() {
        if cell.stopped.is_some() {
            continue;
        }
        let converged = policy.converged(&cell.summary);
        let exhausted = cell.spent >= budget_per_cell;
        if converged || exhausted || cutoff {
            plan.pool += budget_per_cell.saturating_sub(cell.spent);
            plan.stops.push((
                index,
                CellStop {
                    round,
                    replicates: cell.spent,
                    ci95: cell.summary.ci95_half_width(),
                    mean: cell.summary.mean(),
                    converged,
                },
            ));
        } else {
            open.push(index);
        }
    }
    // Base allocation: enough to reach the floor in one round, else the
    // per-round trickle — never past the cell's own replicate block.
    let per_round = policy.round_replicates.max(1);
    let mut granted = vec![0u64; cells.len()];
    for &index in &open {
        let remaining = budget_per_cell - cells[index].spent;
        let need_floor = policy.floor().saturating_sub(cells[index].spent);
        granted[index] = per_round.max(need_floor).min(remaining);
    }
    // Pool grants: highest variance first (the cells whose CI shrinks
    // slowest), ties by ascending index — a total order, so the grant
    // sequence is deterministic.
    let mut by_variance = open.clone();
    by_variance.sort_by(|&a, &b| {
        let va = cells[a].summary.stddev().powi(2);
        let vb = cells[b].summary.stddev().powi(2);
        vb.total_cmp(&va).then(a.cmp(&b))
    });
    for index in by_variance {
        if plan.pool == 0 {
            break;
        }
        let remaining = budget_per_cell - cells[index].spent - granted[index];
        let extra = plan.pool.min(per_round).min(remaining);
        if extra == 0 {
            continue;
        }
        plan.pool -= extra;
        granted[index] += extra;
        plan.grants.push((index, extra));
    }
    for &index in &open {
        plan.allocations.push(CellAllocation {
            cell: index,
            from: cells[index].spent,
            to: cells[index].spent + granted[index],
        });
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(values: &[f64]) -> CellProgress {
        let mut progress = CellProgress::default();
        for &v in values {
            progress.summary.push(v);
            progress.spent += 1;
        }
        progress
    }

    #[test]
    fn first_round_allocates_the_floor_everywhere() {
        let policy = AdaptivePolicy::new().rel_ci(0.05);
        let cells = vec![CellProgress::default(); 4];
        let plan = plan_round(&policy, 8, 1, &cells, 0);
        assert!(plan.stops.is_empty());
        assert_eq!(plan.allocations.len(), 4);
        for (k, alloc) in plan.allocations.iter().enumerate() {
            assert_eq!(alloc.cell, k);
            assert_eq!((alloc.from, alloc.to), (0, 3), "floor of 3 up front");
        }
        assert_eq!(plan.pool, 0);
    }

    #[test]
    fn tight_cells_stop_and_free_budget_to_noisy_ones() {
        let policy = AdaptivePolicy::new().rel_ci(0.05);
        // Cell 0: dead tight (zero variance). Cell 1: noisy.
        let cells = vec![
            cell(&[100.0, 100.0, 100.0]),
            cell(&[50.0, 150.0, 250.0]),
            CellProgress::default(),
        ];
        let plan = plan_round(&policy, 8, 2, &cells, 0);
        assert_eq!(plan.stops.len(), 1);
        let (stopped, stop) = &plan.stops[0];
        assert_eq!(*stopped, 0);
        assert!(stop.converged);
        assert_eq!(stop.replicates, 3);
        // 8 - 3 = 5 freed; grants go to cell 1 (noisy) first, capped at
        // round_replicates = 2 per cell per round.
        let granted: u64 = plan.grants.iter().map(|&(_, extra)| extra).sum();
        assert_eq!(plan.grants.first(), Some(&(1, 2)));
        // Conservation: freed = granted + carried pool.
        assert_eq!(5, granted + plan.pool);
    }

    #[test]
    fn never_stops_below_the_floor() {
        let policy = AdaptivePolicy::new().min_replicates(4).abs_ci(1e9);
        // Absurdly loose threshold, but only 3 replicates: stays open.
        let cells = vec![cell(&[1.0, 1.0, 1.0])];
        let plan = plan_round(&policy, 8, 2, &cells, 0);
        assert!(plan.stops.is_empty());
        assert_eq!(plan.allocations.len(), 1);
        // One more replicate reaches the floor of 4: now it stops.
        let cells = vec![cell(&[1.0, 1.0, 1.0, 1.0])];
        let plan = plan_round(&policy, 8, 3, &cells, 0);
        assert_eq!(plan.stops.len(), 1);
        assert!(plan.stops[0].1.converged);
    }

    #[test]
    fn no_thresholds_means_fixed_grid() {
        let policy = AdaptivePolicy::new();
        let mut cells = vec![CellProgress::default(); 2];
        let budget = 5u64;
        let mut pool = 0;
        let mut rounds = 0;
        loop {
            rounds += 1;
            let plan = plan_round(&policy, budget, rounds, &cells, pool);
            for (index, stop) in &plan.stops {
                assert!(!stop.converged);
                assert_eq!(stop.replicates, budget, "only exhaustion stops");
                cells[*index].stopped = Some(stop.clone());
            }
            if plan.allocations.is_empty() {
                break;
            }
            for alloc in &plan.allocations {
                for _ in alloc.from..alloc.to {
                    cells[alloc.cell].summary.push(1.0);
                    cells[alloc.cell].spent += 1;
                }
            }
            pool = plan.pool;
            assert!(rounds <= budget as u32 + 1, "must terminate");
        }
        assert_eq!(cells.iter().map(|c| c.spent).sum::<u64>(), 2 * budget);
    }

    #[test]
    fn round_cutoff_stops_everything_unconverged() {
        let policy = AdaptivePolicy::new().rel_ci(0.001).max_rounds(2);
        let cells = vec![cell(&[50.0, 150.0, 250.0]); 3];
        let plan = plan_round(&policy, 100, 3, &cells, 0);
        assert_eq!(plan.stops.len(), 3);
        assert!(plan.stops.iter().all(|(_, stop)| !stop.converged));
        assert!(plan.allocations.is_empty());
    }
}
