//! The controller's metric handles on the process-global registry.

use std::sync::Arc;

use chunkpoint_telemetry::{Counter, Gauge};

/// Handles to every adaptive-controller series, resolved once per run.
pub(crate) struct ControllerTelemetry {
    /// `adaptive_cells_stopped_early_total` — cells whose CI rule fired
    /// before their replicate budget was spent.
    pub cells_stopped_early: Arc<Counter>,
    /// `adaptive_replicates_reallocated_total` — replicates granted
    /// from freed budget beyond the base per-round allocation.
    pub replicates_reallocated: Arc<Counter>,
    /// `adaptive_speculative_dispatches_total` — straggler ranges
    /// double-dispatched by the shard layer under this controller.
    pub speculative_dispatches: Arc<Counter>,
    /// `adaptive_speculative_wins_total` — speculative copies that
    /// sealed first.
    pub speculative_wins: Arc<Counter>,
    /// `adaptive_open_cells` — cells still sampling as of the last
    /// control round.
    pub open_cells: Arc<Gauge>,
}

impl ControllerTelemetry {
    pub(crate) fn resolve() -> Self {
        let registry = chunkpoint_telemetry::global();
        Self {
            cells_stopped_early: registry.counter(
                "adaptive_cells_stopped_early_total",
                "Grid cells stopped by the CI rule before exhausting their replicate budget",
            ),
            replicates_reallocated: registry.counter(
                "adaptive_replicates_reallocated_total",
                "Replicates granted to open cells out of freed budget",
            ),
            speculative_dispatches: registry.counter(
                "adaptive_speculative_dispatches_total",
                "Straggler shard ranges speculatively double-dispatched under the controller",
            ),
            speculative_wins: registry.counter(
                "adaptive_speculative_wins_total",
                "Speculative shard copies that sealed before the primary",
            ),
            open_cells: registry.gauge(
                "adaptive_open_cells",
                "Grid cells still sampling as of the last control round",
            ),
        }
    }
}
