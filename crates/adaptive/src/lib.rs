//! # chunkpoint-adaptive
//!
//! **Sequential-sampling campaign control** on the executor event
//! plane: an [`AdaptiveController`] wraps any
//! [`CampaignExecutor`] and drives a campaign as deterministic control
//! rounds instead of one fixed grid —
//!
//! * cells whose live CI95 half-width (per-cell Welford over the
//!   watched metric) falls below the [`AdaptivePolicy`] threshold stop
//!   early, never below the replicate floor;
//! * the freed replicate budget flows to the highest-variance open
//!   cells as ranged follow-up sub-specs through
//!   [`chunkpoint_campaign::CampaignSpec::scenario_range`];
//! * [`AutoWeightedSharded`] feeds the shard partitioner from each
//!   backend's live `/healthz` job counts, and the coordinator's
//!   speculative double-dispatch (see
//!   [`chunkpoint_shard::ShardConfig::speculate`]) covers stragglers —
//!   first-sealed journal rows win, the loser is cancelled.
//!
//! ## Determinism contract
//!
//! Stop and reallocation decisions are pure functions of `(spec,
//! policy, sealed scenario results at a round boundary)` — rows are
//! sorted into global scenario-index order before any statistic sees
//! them ([`plan_round`] is the pure planner, property-tested in
//! `tests/stopping_prop.rs`). The final [`AdaptiveRun::report`] is the
//! existing canonical report over exactly the executed scenarios plus a
//! canonical `adaptive` section, so the same `(spec, policy)` replays
//! byte-identically at any thread count, over any executor, and under
//! chaos faults (`tests/adaptive_parity.rs`).
//!
//! ## Example
//!
//! ```
//! use chunkpoint_adaptive::{AdaptiveController, AdaptivePolicy};
//! use chunkpoint_campaign::{CampaignSpec, SchemeSpec};
//! use chunkpoint_core::{MitigationScheme, SystemConfig};
//! use chunkpoint_exec::LocalExecutor;
//! use chunkpoint_workloads::Benchmark;
//!
//! let mut config = SystemConfig::paper(0);
//! config.scale = 0.25; // short run for the doctest
//! let spec = CampaignSpec::new(config, 0xADA9)
//!     .benchmarks(&[Benchmark::AdpcmEncode])
//!     .scheme("Default", SchemeSpec::Fixed(MitigationScheme::Default))
//!     .replicates(6);
//!
//! // Stop each cell once its CI95 half-width is within 40% of its
//! // mean (but never below 2 replicates).
//! let policy = AdaptivePolicy::new().min_replicates(2).rel_ci(0.4);
//! let run = AdaptiveController::new(LocalExecutor::new(2), policy)
//!     .run(&spec)
//!     .expect("adaptive campaign");
//! assert!(run.executed <= run.budget);
//! assert!(run.report.contains("\"adaptive\""));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod controller;
mod metrics;
mod policy;
mod weights;

pub use controller::{AdaptiveController, AdaptiveRun, CellOutcome};
pub use policy::{
    plan_round, AdaptivePolicy, CellAllocation, CellProgress, CellStop, RoundPlan, StopMetric,
};
pub use weights::AutoWeightedSharded;

// The wrapped executor API is part of this crate's surface.
pub use chunkpoint_exec::CampaignExecutor;
