//! The adaptive controller: deterministic sequential-sampling control
//! rounds driven over any [`CampaignExecutor`].

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use chunkpoint_campaign::{
    canonical_report_json, CampaignSpec, CancelToken, JsonValue, Scenario, ScenarioResult,
};
use chunkpoint_exec::{CampaignEvent, CampaignExecutor, ExecError};
use chunkpoint_serve::REPORT_AXES;
use chunkpoint_telemetry::Tracer;

use crate::metrics::ControllerTelemetry;
use crate::policy::{plan_round, AdaptivePolicy, CellProgress, CellStop};

/// One grid cell's final outcome under the controller.
#[derive(Debug, Clone, PartialEq)]
pub struct CellOutcome {
    /// Dense cell index in grid-enumeration order.
    pub cell: usize,
    /// Human-readable cell key (`benchmark · scheme · error_rate ·
    /// chunk`), from [`Scenario::cell_key`].
    pub key: String,
    /// The stop decision: round, replicates spent, CI at stop.
    pub stop: CellStop,
}

/// A finished adaptive campaign.
#[derive(Debug, Clone)]
pub struct AdaptiveRun {
    /// The canonical report over exactly the executed scenarios, with
    /// the canonical `adaptive` section appended — the byte-identity
    /// surface: same `(spec, policy)`, same bytes, any executor.
    pub report: String,
    /// Executed rows in global scenario-index order (per-cell prefixes
    /// of the full grid).
    pub results: Vec<ScenarioResult>,
    /// Per-cell stop records, in cell-index order.
    pub cells: Vec<CellOutcome>,
    /// Control rounds planned (the final, allocation-free round
    /// included).
    pub rounds: u32,
    /// Scenario budget of the fixed grid (`cells × replicates`).
    pub budget: usize,
    /// Scenarios actually executed; `budget - executed` is what the
    /// stopping rule saved.
    pub executed: usize,
    /// Wall-clock time of the whole campaign.
    pub elapsed: Duration,
    /// Backend job submissions summed over every sub-campaign (0 under
    /// the local executor).
    pub dispatches: usize,
}

/// Drives a campaign as deterministic control rounds over any
/// [`CampaignExecutor`]: per round it stops every cell whose live CI95
/// half-width meets the policy's threshold (never below the replicate
/// floor), reallocates the freed budget to the highest-variance open
/// cells, and executes the planned replicate blocks as ranged follow-up
/// sub-specs through [`CampaignSpec::scenario_range`].
///
/// Determinism contract: every stop and reallocation decision is a pure
/// function of `(spec, policy, sealed scenario results at the round
/// boundary)` — rows are sealed in global scenario-index order before
/// any statistic sees them, so arrival order, thread count, executor
/// choice, backend faults, and speculative double-dispatch all cancel
/// out. Same `(spec, policy)` ⇒ byte-identical
/// [`AdaptiveRun::report`].
pub struct AdaptiveController<E: CampaignExecutor> {
    executor: E,
    policy: AdaptivePolicy,
    tracer: Tracer,
}

impl<E: CampaignExecutor> fmt::Debug for AdaptiveController<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AdaptiveController")
            .field("policy", &self.policy)
            .finish_non_exhaustive()
    }
}

impl<E: CampaignExecutor> AdaptiveController<E> {
    /// A controller driving `executor` under `policy`.
    #[must_use]
    pub fn new(executor: E, policy: AdaptivePolicy) -> Self {
        Self {
            executor,
            policy,
            tracer: Tracer::disabled(),
        }
    }

    /// Traces every control decision (round plans, stops, grants) as
    /// structured span events through `tracer`.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Runs the adaptive campaign to completion, discarding events.
    ///
    /// # Errors
    ///
    /// See [`AdaptiveController::run_ctl`].
    pub fn run(&self, spec: &CampaignSpec) -> Result<AdaptiveRun, ExecError> {
        self.run_ctl(spec, &CancelToken::new(), |_| {})
    }

    /// Runs the adaptive campaign with cooperative cancellation and an
    /// event observer.
    ///
    /// `on_event` sees the controller's own decisions
    /// ([`CampaignEvent::CellStopped`], [`CampaignEvent::Reallocated`])
    /// interleaved with the forwarded execution plane
    /// ([`CampaignEvent::ScenarioDone`], the `Shard*` family,
    /// [`CampaignEvent::SpeculativeDispatch`] /
    /// [`CampaignEvent::SpeculativeWin`]), one
    /// [`CampaignEvent::Progress`] per round, and a final
    /// [`CampaignEvent::Complete`]. Progress `done` need not reach
    /// `total` — stopping short of the fixed grid is the point.
    ///
    /// # Errors
    ///
    /// [`ExecError::Rejected`] for a spec that already carries a
    /// `scenario_range` (the controller owns range construction) or
    /// enumerates no feasible grid; [`ExecError::Cancelled`] once
    /// `cancel` trips (outstanding sub-campaigns are cancelled);
    /// otherwise whatever typed error the wrapped executor failed a
    /// sub-campaign with.
    pub fn run_ctl(
        &self,
        spec: &CampaignSpec,
        cancel: &CancelToken,
        mut on_event: impl FnMut(&CampaignEvent),
    ) -> Result<AdaptiveRun, ExecError> {
        if spec.range().is_some() {
            return Err(ExecError::Rejected {
                backend: None,
                status: None,
                detail: "adaptive controller drives the whole grid; \
                         spec already carries a scenario_range"
                    .to_owned(),
            });
        }
        let started = Instant::now();
        let grid = enumerate_grid(spec)?;
        let replicates = spec.replicate_count();
        let stride = replicates as usize;
        let budget = grid.len();
        let cell_count = budget / stride;
        let telemetry = ControllerTelemetry::resolve();
        let span = self.tracer.root("adaptive_campaign");
        if span.is_traced() {
            span.event(
                "policy",
                self.policy
                    .to_json()
                    .field("cells", cell_count)
                    .field("budget", budget),
            );
        }

        let mut cells: Vec<CellProgress> = vec![CellProgress::default(); cell_count];
        let mut results: Vec<ScenarioResult> = Vec::new();
        let mut pool = 0u64;
        let mut dispatches = 0usize;
        let mut round: u32 = 0;
        loop {
            round += 1;
            let plan = plan_round(&self.policy, replicates, round, &cells, pool);
            for (cell, stop) in &plan.stops {
                cells[*cell].stopped = Some(stop.clone());
                if stop.converged && stop.replicates < replicates {
                    telemetry.cells_stopped_early.inc();
                }
                span.event(
                    "cell_stopped",
                    JsonValue::object()
                        .field("cell", *cell)
                        .field("round", u64::from(stop.round))
                        .field("replicates", stop.replicates)
                        .field("ci95", stop.ci95)
                        .field("converged", stop.converged),
                );
                on_event(&CampaignEvent::CellStopped {
                    cell: *cell,
                    round: stop.round,
                    replicates: stop.replicates,
                    ci95: stop.ci95,
                    converged: stop.converged,
                });
            }
            let open = cells.iter().filter(|cell| cell.stopped.is_none()).count();
            telemetry.open_cells.set(open as i64);
            for (cell, extra) in &plan.grants {
                telemetry.replicates_reallocated.add(*extra);
                span.event(
                    "reallocated",
                    JsonValue::object()
                        .field("cell", *cell)
                        .field("round", u64::from(round))
                        .field("extra", *extra),
                );
                on_event(&CampaignEvent::Reallocated {
                    cell: *cell,
                    round,
                    extra: *extra,
                });
            }
            span.event(
                "round_plan",
                JsonValue::object()
                    .field("round", u64::from(round))
                    .field("stops", plan.stops.len())
                    .field("grants", plan.grants.len())
                    .field("open", open)
                    .field("pool", plan.pool),
            );
            if plan.allocations.is_empty() {
                break;
            }

            // Dispatch every planned block up front — ranged sub-specs
            // execute concurrently on the wrapped executor's own
            // workers — then seal them in cell-index order.
            let handles: Vec<_> = plan
                .allocations
                .iter()
                .map(|alloc| {
                    let start = alloc.cell * stride + alloc.from as usize;
                    let end = alloc.cell * stride + alloc.to as usize;
                    self.executor
                        .submit(&spec.clone().scenario_range(start, end))
                })
                .collect();
            let mut round_rows: Vec<ScenarioResult> = Vec::new();
            let mut failed: Option<ExecError> = None;
            for handle in handles {
                if failed.is_some() || cancel.is_cancelled() {
                    handle.cancel();
                    let _ = handle.wait();
                    continue;
                }
                for event in handle.events() {
                    match &event {
                        CampaignEvent::SpeculativeDispatch { .. } => {
                            telemetry.speculative_dispatches.inc();
                            on_event(&event);
                        }
                        CampaignEvent::SpeculativeWin { .. } => {
                            telemetry.speculative_wins.inc();
                            on_event(&event);
                        }
                        CampaignEvent::ScenarioDone(_)
                        | CampaignEvent::ShardDispatched { .. }
                        | CampaignEvent::ShardRedispatched { .. }
                        | CampaignEvent::ShardFailed { .. } => on_event(&event),
                        // Per-sub-campaign progress and completion are
                        // meaningless at the campaign scale; the
                        // controller emits its own.
                        _ => {}
                    }
                }
                match handle.wait() {
                    Ok(run) => {
                        dispatches += run.dispatches;
                        round_rows.extend(run.results);
                    }
                    Err(err) => failed = Some(err),
                }
            }
            if let Some(err) = failed {
                return Err(err);
            }
            if cancel.is_cancelled() {
                return Err(ExecError::Cancelled);
            }

            // Seal the round: rows enter the per-cell statistics in
            // global scenario-index order, never arrival order — this
            // sort is what makes every downstream decision a pure
            // function of the sealed set.
            round_rows.sort_by_key(|row| row.scenario.index);
            for row in &round_rows {
                let cell = row.scenario.index / stride;
                if cell >= cell_count {
                    return Err(ExecError::BadMerge {
                        detail: format!(
                            "scenario {} outside the {cell_count}-cell grid",
                            row.scenario.index
                        ),
                    });
                }
                cells[cell].summary.push(self.policy.metric.of(row));
                cells[cell].spent += 1;
            }
            results.extend(round_rows);
            on_event(&CampaignEvent::Progress {
                done: results.len(),
                total: budget,
            });
            pool = plan.pool;
        }

        // Coverage: the executed set must be exactly the per-cell
        // prefixes the plans scheduled, each scenario once.
        results.sort_by_key(|row| row.scenario.index);
        let mut cursor = 0usize;
        for (cell, progress) in cells.iter().enumerate() {
            for offset in 0..progress.spent as usize {
                let expected = cell * stride + offset;
                match results.get(cursor) {
                    Some(row) if row.scenario.index == expected => cursor += 1,
                    _ => {
                        return Err(ExecError::BadMerge {
                            detail: format!("scenario {expected} missing or duplicated"),
                        })
                    }
                }
            }
        }
        if cursor != results.len() {
            return Err(ExecError::BadMerge {
                detail: format!(
                    "{} rows beyond the planned prefixes",
                    results.len() - cursor
                ),
            });
        }

        let mut outcomes = Vec::with_capacity(cell_count);
        let mut cell_rows = Vec::with_capacity(cell_count);
        for (cell, progress) in cells.iter().enumerate() {
            let stop = progress
                .stopped
                .clone()
                .ok_or_else(|| ExecError::BadMerge {
                    detail: format!("cell {cell} never reached a stop decision"),
                })?;
            let key = grid[cell * stride].cell_key();
            cell_rows.push(
                JsonValue::object()
                    .field("cell", cell)
                    .field("key", key.as_str())
                    .field("replicates", stop.replicates)
                    .field("stop_round", u64::from(stop.round))
                    .field("converged", stop.converged)
                    .field("mean", stop.mean)
                    .field("ci95", stop.ci95),
            );
            outcomes.push(CellOutcome { cell, key, stop });
        }
        let executed = results.len();
        let section = JsonValue::object()
            .field("policy", self.policy.to_json())
            .field("rounds", u64::from(round))
            .field("budget", budget)
            .field("executed", executed)
            .field("saved", budget - executed)
            .field("cells", cell_rows);
        let report = canonical_report_json(spec.campaign_seed, &results, &REPORT_AXES)
            .field("adaptive", section)
            .render();
        on_event(&CampaignEvent::Complete);
        Ok(AdaptiveRun {
            report,
            results,
            cells: outcomes,
            rounds: round,
            budget,
            executed,
            elapsed: started.elapsed(),
            dispatches,
        })
    }
}

/// Enumerates the spec's grid, turning the optimizer's "no feasible
/// design point" panic into the typed rejection every backend would
/// answer with (mirrors the executors' own enumeration guard).
fn enumerate_grid(spec: &CampaignSpec) -> Result<Vec<Scenario>, ExecError> {
    catch_unwind(AssertUnwindSafe(|| spec.scenarios())).map_err(|_| ExecError::Rejected {
        backend: None,
        status: None,
        detail: "spec enumerates no feasible grid (optimizer found no design point)".to_owned(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use chunkpoint_campaign::SchemeSpec;
    use chunkpoint_core::{MitigationScheme, SystemConfig};
    use chunkpoint_exec::LocalExecutor;
    use chunkpoint_workloads::Benchmark;

    fn small_spec() -> CampaignSpec {
        let mut config = SystemConfig::paper(0);
        config.scale = 0.25;
        CampaignSpec::new(config, 7)
            .benchmarks(&[Benchmark::AdpcmEncode])
            .scheme("Default", SchemeSpec::Fixed(MitigationScheme::Default))
            .error_rates(&[1e-6, 1e-3])
            .replicates(4)
    }

    #[test]
    fn ranged_specs_are_rejected() {
        let controller = AdaptiveController::new(LocalExecutor::new(1), AdaptivePolicy::new());
        let spec = small_spec().scenario_range(0, 2);
        match controller.run(&spec) {
            Err(ExecError::Rejected { detail, .. }) => {
                assert!(detail.contains("scenario_range"), "{detail}");
            }
            other => panic!("expected Rejected, got {other:?}"),
        }
    }

    #[test]
    fn no_thresholds_executes_the_full_grid() {
        let controller = AdaptiveController::new(LocalExecutor::new(2), AdaptivePolicy::new());
        let run = controller.run(&small_spec()).expect("run");
        assert_eq!(run.budget, 8);
        assert_eq!(run.executed, 8, "no CI rule: fixed-grid behavior");
        assert_eq!(run.results.len(), 8);
        assert!(run.cells.iter().all(|cell| !cell.stop.converged));
        assert!(run.report.contains("\"adaptive\""));
    }

    #[test]
    fn loose_threshold_stops_early_and_replays_identically() {
        let policy = AdaptivePolicy::new().rel_ci(0.5);
        let controller = AdaptiveController::new(LocalExecutor::new(2), policy.clone());
        let first = controller.run(&small_spec()).expect("first run");
        assert!(
            first.executed < first.budget,
            "a 50% relative CI must stop 4-replicate cells early \
             (executed {} of {})",
            first.executed,
            first.budget
        );
        // Same (spec, policy), different thread count: same bytes.
        let again = AdaptiveController::new(LocalExecutor::new(1), policy)
            .run(&small_spec())
            .expect("replay");
        assert_eq!(first.report, again.report);
    }
}
