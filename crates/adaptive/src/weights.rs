//! Health-driven sharding: `partition_weighted` fed automatically from
//! each backend's live `/healthz` job counts.

use std::time::Duration;

use chunkpoint_campaign::{CampaignSpec, JsonValue};
use chunkpoint_exec::{CampaignExecutor, CampaignHandle, ShardedExecutor};
use chunkpoint_shard::{healthz, ShardConfig};

/// A [`ShardedExecutor`] factory that polls every backend's `/healthz`
/// at submit time and partitions the grid inversely to observed load
/// (`queued + running` jobs): an idle backend weighs `1.0`, a loaded
/// one `1 / (1 + load)`, an unreachable one `0.0` (it gets an empty
/// range and is skipped at dispatch — re-dispatch still reaches it
/// later if it comes back and another backend's shard fails).
///
/// When every backend is unreachable the partition falls back to even
/// weights rather than failing the submit — the coordinator's own
/// breakers and re-dispatch are the authority on who is actually dead.
///
/// Weights change *partitioning only*: the merged report bytes are
/// identical whatever the weights say (the existing weighted-parity
/// invariant), so this is a pure latency optimization and is safe to
/// combine with the adaptive controller's determinism contract.
#[derive(Debug, Clone)]
pub struct AutoWeightedSharded {
    backends: Vec<String>,
    config: ShardConfig,
    health_timeout: Duration,
}

impl AutoWeightedSharded {
    /// An auto-weighted executor over `backends` (each a `HOST:PORT` of
    /// a running `serve`), with default [`ShardConfig`] and a 2-second
    /// health-probe timeout.
    #[must_use]
    pub fn new(backends: Vec<String>) -> Self {
        Self {
            backends,
            config: ShardConfig::default(),
            health_timeout: Duration::from_secs(2),
        }
    }

    /// Overrides the coordinator's poll/timeout/strike knobs (and its
    /// trace sink, which also receives the weigh-in decision).
    #[must_use]
    pub fn with_config(mut self, config: ShardConfig) -> Self {
        self.config = config;
        self
    }

    /// Overrides the per-backend `/healthz` probe timeout.
    #[must_use]
    pub fn with_health_timeout(mut self, timeout: Duration) -> Self {
        self.health_timeout = timeout;
        self
    }

    /// One weigh-in: probes every backend's `/healthz` and returns the
    /// capacity weights the next submit would partition with.
    ///
    /// Backends whose first probe fails get a **second chance** before
    /// the round commits to weight `0.0`: under a multi-round
    /// controller, a backend that was down (or just slow to answer one
    /// probe) during an earlier round would otherwise sit at zero
    /// weight — an empty range, no dispatches, no chance to prove it
    /// recovered — for every remaining round. The re-probe is what
    /// lets a restarted backend rejoin the rotation the moment it
    /// serves `/healthz` again. Re-probe attempts and recoveries are
    /// counted (`adaptive_reprobe_attempts_total`,
    /// `adaptive_reprobe_recoveries_total`).
    #[must_use]
    pub fn weigh(&self) -> Vec<f64> {
        let mut weights: Vec<f64> = self
            .backends
            .iter()
            .map(|addr| match healthz(addr, self.health_timeout) {
                Ok(health) => 1.0 / (1.0 + health.load() as f64),
                Err(_) => 0.0,
            })
            .collect();
        let registry = chunkpoint_telemetry::global();
        let attempts = registry.counter(
            "adaptive_reprobe_attempts_total",
            "Second-chance health probes of backends whose first probe failed",
        );
        let recoveries = registry.counter(
            "adaptive_reprobe_recoveries_total",
            "Second-chance health probes that found the backend reachable again",
        );
        for (addr, weight) in self.backends.iter().zip(weights.iter_mut()) {
            if *weight == 0.0 {
                attempts.inc();
                if let Ok(health) = healthz(addr, self.health_timeout) {
                    *weight = 1.0 / (1.0 + health.load() as f64);
                    recoveries.inc();
                }
            }
        }
        if weights.iter().all(|&w| w == 0.0) {
            // Nobody answered: even split beats a rejected submit.
            return vec![1.0; self.backends.len()];
        }
        weights
    }
}

impl CampaignExecutor for AutoWeightedSharded {
    fn submit(&self, spec: &CampaignSpec) -> CampaignHandle {
        let weights = self.weigh();
        let span = self.config.tracer.root("auto_weigh");
        if span.is_traced() {
            let fields = self
                .backends
                .iter()
                .zip(&weights)
                .fold(JsonValue::object(), |fields, (addr, &weight)| {
                    fields.field(addr, weight)
                });
            span.event("weights", fields);
        }
        ShardedExecutor::new(self.backends.clone())
            .with_weights(weights)
            .with_config(self.config.clone())
            .submit(spec)
    }
}
