//! The weigh-in recovery satellite: a backend that dies gets weight
//! `0.0` at the next weigh-in, and a backend that comes back — same
//! address, restarted between controller rounds — rejoins the rotation
//! the moment it answers `/healthz` again, with the subsequent sharded
//! run still byte-identical and the recovered backend actually
//! receiving work.

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use chunkpoint_adaptive::AutoWeightedSharded;
use chunkpoint_campaign::{CampaignSpec, SchemeSpec};
use chunkpoint_core::{MitigationScheme, SystemConfig};
use chunkpoint_exec::{CampaignExecutor, LocalExecutor};
use chunkpoint_workloads::Benchmark;

const HEALTH_TIMEOUT: Duration = Duration::from_millis(500);

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("chunkpoint_reprobe_{}_{tag}", std::process::id()))
}

fn serve_bin() -> PathBuf {
    let mut path = std::env::current_exe().expect("test binary path");
    path.pop(); // <profile>/deps/
    if path.ends_with("deps") {
        path.pop(); // <profile>/
    }
    let bin = path.join(format!("serve{}", std::env::consts::EXE_SUFFIX));
    assert!(
        bin.is_file(),
        "serve binary not found at {} — build the workspace first (`cargo build`)",
        bin.display()
    );
    bin
}

/// Spawns `serve` bound to `addr` (`127.0.0.1:0` for ephemeral) and
/// waits until it answers `/healthz`; `Err` if this process instance
/// never becomes healthy within `deadline`.
fn spawn_serve(
    addr: &str,
    data_dir: &PathBuf,
    port_file: &PathBuf,
    deadline: Instant,
) -> Result<(Child, String), String> {
    let _ = std::fs::remove_file(port_file);
    let mut child = Command::new(serve_bin())
        .args([
            "--addr",
            addr,
            "--data-dir",
            data_dir.to_str().expect("utf8 dir"),
            "--port-file",
            port_file.to_str().expect("utf8 path"),
            "--jobs",
            "1",
            "--threads",
            "1",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| format!("spawn serve: {e}"))?;
    loop {
        if let Ok(Some(status)) = child.try_wait() {
            return Err(format!("serve exited early: {status}"));
        }
        if let Ok(raw) = std::fs::read_to_string(port_file) {
            if let Ok(port) = raw.trim().parse::<u16>() {
                let bound = format!("127.0.0.1:{port}");
                if chunkpoint_shard::healthz(&bound, HEALTH_TIMEOUT).is_ok() {
                    return Ok((child, bound));
                }
            }
        }
        if Instant::now() >= deadline {
            let _ = child.kill();
            let _ = child.wait();
            return Err("serve never became healthy".to_owned());
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Restarts a killed backend on its **old address**, retrying the spawn
/// until the port is bindable again (the kernel may hold it briefly
/// after the kill).
fn restart_at(addr: &str, data_dir: &PathBuf, port_file: &PathBuf) -> Child {
    let overall = Instant::now() + Duration::from_secs(60);
    loop {
        let attempt_deadline = (Instant::now() + Duration::from_secs(10)).min(overall);
        match spawn_serve(addr, data_dir, port_file, attempt_deadline) {
            Ok((child, bound)) => {
                assert_eq!(bound, addr, "restart bound a different address");
                return child;
            }
            Err(why) => {
                assert!(
                    Instant::now() < overall,
                    "backend never restarted at {addr}: {why}"
                );
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

fn sigkill(child: &mut Child) {
    let _ = Command::new("kill")
        .args(["-9", &child.id().to_string()])
        .status();
    let _ = child.wait();
}

fn spec() -> CampaignSpec {
    let mut config = SystemConfig::paper(0);
    config.scale = 0.25;
    CampaignSpec::new(config, 0x4EBB)
        .benchmarks(&[Benchmark::AdpcmEncode, Benchmark::AdpcmDecode])
        .scheme("Default", SchemeSpec::Fixed(MitigationScheme::Default))
        .error_rates(&[1e-6, 1e-5])
        .replicates(3)
}

#[test]
fn killed_backend_rejoins_after_restart_between_rounds() {
    let dirs: Vec<(PathBuf, PathBuf)> = ["a", "b"]
        .iter()
        .map(|k| {
            (
                temp_dir(&format!("{k}_data")),
                temp_dir(&format!("{k}_port")),
            )
        })
        .collect();
    for (data, _) in &dirs {
        let _ = std::fs::remove_dir_all(data);
    }
    let deadline = Instant::now() + Duration::from_secs(60);
    let (mut child_a, addr_a) =
        spawn_serve("127.0.0.1:0", &dirs[0].0, &dirs[0].1, deadline).expect("backend A");
    let (mut child_b, addr_b) =
        spawn_serve("127.0.0.1:0", &dirs[1].0, &dirs[1].1, deadline).expect("backend B");

    let executor = AutoWeightedSharded::new(vec![addr_a.clone(), addr_b.clone()])
        .with_health_timeout(HEALTH_TIMEOUT);

    // Round 1: both healthy, both weighted in.
    let weights = executor.weigh();
    assert!(weights[0] > 0.0 && weights[1] > 0.0, "{weights:?}");

    // Kill B between rounds: its weight must drop to zero — even after
    // the second-chance re-probe, because it really is down — and the
    // re-probe attempt must be counted.
    let attempts = chunkpoint_telemetry::global().counter(
        "adaptive_reprobe_attempts_total",
        "Second-chance health probes of backends whose first probe failed",
    );
    let before = attempts.get();
    sigkill(&mut child_b);
    let weights = executor.weigh();
    assert!(weights[0] > 0.0, "{weights:?}");
    assert_eq!(weights[1], 0.0, "a dead backend must weigh zero");
    assert!(
        attempts.get() > before,
        "the zero-weight backend was never re-probed"
    );

    // Restart B on the same address: the next weigh-in must see it —
    // this is the regression (a recovered backend staying at zero for
    // the rest of the run because nobody asked again).
    child_b = restart_at(&addr_b, &dirs[1].0, &dirs[1].1);
    let weights = executor.weigh();
    assert!(
        weights[0] > 0.0 && weights[1] > 0.0,
        "a restarted backend must rejoin the rotation: {weights:?}"
    );

    // And the recovered pair still produces byte-identical reports,
    // with B actually receiving a share of the grid.
    let oracle = LocalExecutor::new(1)
        .submit(&spec())
        .wait()
        .expect("local oracle");
    let run = executor
        .submit(&spec())
        .wait()
        .expect("auto-weighted run over the recovered pair");
    assert_eq!(run.report, oracle.report, "recovery changed the bytes");
    let health_b =
        chunkpoint_shard::healthz(&addr_b, HEALTH_TIMEOUT).expect("B healthy after the run");
    assert!(
        health_b.done >= 1,
        "the recovered backend never received a dispatch: {health_b:?}"
    );

    for addr in [&addr_a, &addr_b] {
        let _ = chunkpoint_shard::exchange(addr, "POST", "/shutdown", None, Duration::from_secs(5));
    }
    sigkill(&mut child_a);
    sigkill(&mut child_b);
    for (data, port) in &dirs {
        let _ = std::fs::remove_dir_all(data);
        let _ = std::fs::remove_file(port);
    }
}
