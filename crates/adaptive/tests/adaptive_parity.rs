//! The acceptance test of the adaptive tentpole: the controller's
//! stop/reallocate decisions are pure functions of the sealed results,
//! so the same `(spec, policy)` must produce **byte-identical** adaptive
//! reports over every executor — in-process at any thread count, one
//! real remote `serve`, two-backend sharded — and keep producing them
//! after a backend is SIGKILLed mid-run, behind the deterministic chaos
//! proxy, and with speculative straggler double-dispatch winning a
//! forced race.

use std::cell::Cell;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use chunkpoint_adaptive::{AdaptiveController, AdaptivePolicy, AdaptiveRun};
use chunkpoint_campaign::{CampaignSpec, SchemeSpec};
use chunkpoint_chaos::{ChaosProxy, FaultPlan};
use chunkpoint_core::{MitigationScheme, SystemConfig};
use chunkpoint_exec::{
    CampaignEvent, LocalExecutor, RemoteConfig, RemoteExecutor, ShardConfig, ShardedExecutor,
};
use chunkpoint_workloads::Benchmark;

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("chunkpoint_adaptive_{}_{tag}", std::process::id()))
}

/// The `serve` binary lives next to this test binary's parent directory
/// (`target/<profile>/serve`); it belongs to `chunkpoint_serve`, so
/// Cargo does not export a `CARGO_BIN_EXE_serve` for this crate — but a
/// workspace `cargo test`/`cargo build` always compiles it.
fn serve_bin() -> PathBuf {
    let mut path = std::env::current_exe().expect("test binary path");
    path.pop(); // <profile>/deps/
    if path.ends_with("deps") {
        path.pop(); // <profile>/
    }
    let bin = path.join(format!("serve{}", std::env::consts::EXE_SUFFIX));
    assert!(
        bin.is_file(),
        "serve binary not found at {} — build the workspace first (`cargo build`)",
        bin.display()
    );
    bin
}

struct ServeProcess {
    child: Child,
    addr: String,
    data_dir: PathBuf,
    port_file: PathBuf,
}

impl ServeProcess {
    /// Starts a real `serve` on an ephemeral port and waits until it
    /// answers `/healthz`.
    fn start(tag: &str) -> Self {
        let data_dir = temp_dir(&format!("{tag}_data"));
        let port_file = temp_dir(&format!("{tag}_port"));
        let _ = std::fs::remove_dir_all(&data_dir);
        let _ = std::fs::remove_file(&port_file);
        let child = Command::new(serve_bin())
            .args([
                "--addr",
                "127.0.0.1:0",
                "--data-dir",
                data_dir.to_str().expect("utf8 dir"),
                "--port-file",
                port_file.to_str().expect("utf8 path"),
                "--jobs",
                "1",
                "--threads",
                "1",
            ])
            .stdout(Stdio::null())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn serve");
        let deadline = Instant::now() + Duration::from_secs(60);
        let port: u16 = loop {
            if let Ok(raw) = std::fs::read_to_string(&port_file) {
                if let Ok(port) = raw.trim().parse() {
                    break port;
                }
            }
            assert!(Instant::now() < deadline, "serve never wrote its port");
            std::thread::sleep(Duration::from_millis(10));
        };
        let addr = format!("127.0.0.1:{port}");
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            if let Ok((200, _)) =
                chunkpoint_shard::exchange(&addr, "GET", "/healthz", None, Duration::from_secs(5))
            {
                break;
            }
            assert!(Instant::now() < deadline, "serve never became healthy");
            std::thread::sleep(Duration::from_millis(10));
        }
        Self {
            child,
            addr,
            data_dir,
            port_file,
        }
    }

    fn shutdown(&self) {
        let _ = chunkpoint_shard::exchange(
            &self.addr,
            "POST",
            "/shutdown",
            None,
            Duration::from_secs(5),
        );
    }

    /// Sends `signal` (e.g. `"-9"`) to the serve process.
    fn signal(&self, signal: &str) {
        let _ = Command::new("kill")
            .args([signal, &self.child.id().to_string()])
            .status();
    }
}

impl Drop for ServeProcess {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        let _ = std::fs::remove_dir_all(&self.data_dir);
        let _ = std::fs::remove_file(&self.port_file);
    }
}

fn adaptive_spec(campaign_seed: u64) -> CampaignSpec {
    let mut config = SystemConfig::paper(0);
    config.scale = 0.25;
    CampaignSpec::new(config, campaign_seed)
        .benchmarks(&[Benchmark::AdpcmEncode, Benchmark::AdpcmDecode])
        .scheme("Default", SchemeSpec::Fixed(MitigationScheme::Default))
        .error_rates(&[1e-6, 1e-5])
        .replicates(6)
}

/// A very loose relative threshold: cells stop at the n = 2 floor, so
/// early stopping is (practically) guaranteed and saves most of the
/// grid — the interesting regime for parity.
fn early_stop_policy() -> AdaptivePolicy {
    AdaptivePolicy::new()
        .min_replicates(2)
        .round_replicates(2)
        .rel_ci(0.9)
}

/// The oracle every path must match byte for byte: the same controller
/// over the single-threaded in-process executor.
fn expected_adaptive(spec: &CampaignSpec, policy: &AdaptivePolicy) -> AdaptiveRun {
    AdaptiveController::new(LocalExecutor::new(1), policy.clone())
        .run(spec)
        .expect("local adaptive oracle")
}

/// The headline: the same `(spec, policy)` through in-process (two
/// thread counts), remote, and sharded execution produces byte-identical
/// adaptive reports — with early stopping actually observed.
#[test]
fn three_executors_one_adaptive_report() {
    let spec = adaptive_spec(0xADA_901);
    let policy = early_stop_policy();
    let budget = spec.scenarios().len();
    let oracle = expected_adaptive(&spec, &policy);
    assert!(
        oracle.executed < oracle.budget,
        "loose threshold must stop early: executed {} of {}",
        oracle.executed,
        oracle.budget
    );
    assert_eq!(oracle.budget, budget);
    assert!(oracle.report.contains("\"adaptive\""));

    // In-process, more worker threads: arrival order changes, bytes
    // don't — and every cell reports exactly one stop decision.
    let stops = Cell::new(0usize);
    let threaded = AdaptiveController::new(LocalExecutor::new(4), policy.clone())
        .run_ctl(&spec, &chunkpoint_campaign::CancelToken::new(), |event| {
            if matches!(event, CampaignEvent::CellStopped { .. }) {
                stops.set(stops.get() + 1);
            }
        })
        .expect("threaded adaptive run");
    assert_eq!(threaded.report, oracle.report, "thread count leaked");
    assert_eq!(stops.get(), oracle.cells.len(), "one stop per cell");

    // Remote, against one real serve process.
    let backend = ServeProcess::start("remote");
    let remote_exec = RemoteExecutor::new(backend.addr.clone()).with_config(RemoteConfig {
        poll_interval: Duration::from_millis(10),
        ..RemoteConfig::default()
    });
    let remote = AdaptiveController::new(remote_exec, policy.clone())
        .run(&spec)
        .expect("remote adaptive run");
    assert_eq!(remote.report, oracle.report, "remote bytes diverged");
    assert!(remote.dispatches >= 1);
    backend.shutdown();

    // Sharded, across two real serve processes.
    let shard_a = ServeProcess::start("shard_a");
    let shard_b = ServeProcess::start("shard_b");
    let sharded_exec = ShardedExecutor::new(vec![shard_a.addr.clone(), shard_b.addr.clone()])
        .with_config(ShardConfig {
            poll_interval: Duration::from_millis(10),
            ..ShardConfig::default()
        });
    let sharded = AdaptiveController::new(sharded_exec, policy)
        .run(&spec)
        .expect("sharded adaptive run");
    assert_eq!(sharded.report, oracle.report, "sharded bytes diverged");
    assert_eq!(sharded.results, oracle.results);
    shard_a.shutdown();
    shard_b.shutdown();
}

/// SIGKILL one of two backends mid-run: the coordinator's strikes and
/// re-dispatch absorb the loss inside each sub-campaign, the controller
/// never notices, and the adaptive report bytes are unchanged.
#[test]
fn backend_sigkill_mid_run_keeps_the_bytes() {
    let spec = adaptive_spec(0xADA_902);
    // No thresholds: fixed-grid replicate count, several rounds — the
    // kill lands mid-campaign with work still outstanding.
    let policy = AdaptivePolicy::new().round_replicates(2);
    let oracle = expected_adaptive(&spec, &policy);
    assert_eq!(oracle.executed, oracle.budget, "threshold-free = full grid");

    let shard_a = ServeProcess::start("kill_a");
    let shard_b = ServeProcess::start("kill_b");
    let executor = ShardedExecutor::new(vec![shard_a.addr.clone(), shard_b.addr.clone()])
        .with_config(ShardConfig {
            poll_interval: Duration::from_millis(10),
            request_timeout: Duration::from_secs(2),
            ..ShardConfig::default()
        });
    let killed = Cell::new(false);
    let seen = Cell::new(0usize);
    let run = AdaptiveController::new(executor, policy)
        .run_ctl(&spec, &chunkpoint_campaign::CancelToken::new(), |event| {
            if matches!(event, CampaignEvent::ScenarioDone(_)) {
                seen.set(seen.get() + 1);
                if seen.get() == 3 && !killed.get() {
                    killed.set(true);
                    shard_b.signal("-9");
                }
            }
        })
        .expect("adaptive run through a SIGKILL");
    assert!(killed.get(), "the kill never happened");
    assert_eq!(run.report, oracle.report, "a dead backend changed bytes");
    assert_eq!(run.results, oracle.results);
    shard_a.shutdown();
}

/// The controller behind the deterministic chaos proxy: injected
/// connection faults are retried inside the executor plane; the
/// decisions — fed only by sealed rows — replay byte-identically.
#[test]
fn chaos_faults_leave_adaptive_bytes_identical() {
    let spec = adaptive_spec(0xADA_903);
    let policy = early_stop_policy();
    let oracle = expected_adaptive(&spec, &policy);

    let backend = ServeProcess::start("chaos");
    let plan = FaultPlan::new(0xC4A0, 0.35);
    #[allow(clippy::cast_possible_truncation)]
    let strikes = plan.max_fault_run(512) as u32 + 2;
    let config = RemoteConfig {
        poll_interval: Duration::from_millis(10),
        request_timeout: Duration::from_secs(10),
        strikes,
        submit_attempts: strikes.max(5),
        poll_max: Duration::from_millis(200),
        backoff_seed: plan.seed,
    };
    let mut proxy = ChaosProxy::start(&backend.addr, plan).expect("start proxy");
    let run = AdaptiveController::new(
        RemoteExecutor::new(proxy.addr()).with_config(config),
        policy,
    )
    .run(&spec)
    .expect("adaptive run through chaos");
    assert_eq!(run.report, oracle.report, "chaos changed the bytes");
    assert!(proxy.faults() > 0, "the proxy never actually faulted");
    proxy.shutdown();
    backend.shutdown();
}

/// Forces the speculative race deterministically: backend B's single
/// job slot is occupied by a long decoy campaign submitted directly, so
/// the adaptive sub-campaign's big shard sits queued on B while the
/// healthy backend A seals its sliver. The straggler bar trips, the
/// shard's remaining range is speculatively duplicated onto A, and the
/// spare is the *only* copy that can seal — proving first-sealed-wins,
/// the controller surfacing the decision, and the bytes matching the
/// in-process oracle exactly.
#[test]
fn speculative_win_is_first_sealed_and_byte_identical() {
    let mut config = SystemConfig::paper(0);
    config.scale = 0.25;
    let spec = CampaignSpec::new(config, 0xADA_904)
        .benchmarks(&[Benchmark::AdpcmEncode])
        .scheme("Default", SchemeSpec::Fixed(MitigationScheme::Default))
        .replicates(10);
    // One cell, one round, one allocation: the controller's single
    // sub-campaign is the whole race course.
    let policy = AdaptivePolicy::new().round_replicates(10);
    let oracle = expected_adaptive(&spec, &policy);

    let shard_a = ServeProcess::start("spec_a");
    let shard_b = ServeProcess::start("spec_b");
    // The decoy: a long full-scale campaign holding B's only job slot
    // for the duration of the race. Distinct seed, so it can never be
    // conflated with the real sub-campaign in B's job store.
    let mut decoy_config = SystemConfig::paper(0);
    decoy_config.scale = 1.0;
    let decoy = CampaignSpec::new(decoy_config, 0xDEC0)
        .benchmarks(&[Benchmark::AdpcmEncode, Benchmark::AdpcmDecode])
        .scheme("Default", SchemeSpec::Fixed(MitigationScheme::Default))
        .replicates(64);
    let (status, _) = chunkpoint_shard::exchange(
        &shard_b.addr,
        "POST",
        "/campaigns",
        Some(&decoy.to_json().render()),
        Duration::from_secs(5),
    )
    .expect("submit decoy");
    assert!((200..300).contains(&status), "decoy refused: {status}");

    let executor = ShardedExecutor::new(vec![shard_a.addr.clone(), shard_b.addr.clone()])
        // 1:4 — the healthy backend seals its sliver fast while the
        // blocked backend holds the bulk of the cell.
        .with_weights(vec![1.0, 4.0])
        .with_config(ShardConfig {
            poll_interval: Duration::from_millis(10),
            speculate: true,
            speculate_after: Duration::from_millis(10),
            speculate_factor: 1,
            ..ShardConfig::default()
        });
    let speculated = Cell::new(0usize);
    let won = Cell::new(0usize);
    let run = AdaptiveController::new(executor, policy)
        .run_ctl(
            &spec,
            &chunkpoint_campaign::CancelToken::new(),
            |event| match event {
                CampaignEvent::SpeculativeDispatch { backend, range, .. } => {
                    assert_eq!(
                        backend, &shard_a.addr,
                        "spare must go to the healthy backend"
                    );
                    assert!(range.0 < range.1, "empty speculative range");
                    speculated.set(speculated.get() + 1);
                }
                CampaignEvent::SpeculativeWin { backend, .. } => {
                    assert_eq!(backend, &shard_a.addr, "the spare sealed first");
                    won.set(won.get() + 1);
                }
                _ => {}
            },
        )
        .expect("adaptive run through a blocked straggler");
    assert!(speculated.get() >= 1, "no speculative dispatch happened");
    assert_eq!(won.get(), 1, "the spare did not win the race");
    assert_eq!(run.report, oracle.report, "speculation changed the bytes");
    assert_eq!(run.results, oracle.results);
    shard_a.shutdown();
    // shard_b still grinds the decoy; Drop's kill reaps it.
}
