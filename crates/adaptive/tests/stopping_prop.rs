//! Property coverage for the sequential-sampling stopping rule: the
//! round planner must be invariant to result arrival order, must never
//! stop a cell early below the replicate floor, must conserve the
//! replicate budget through reallocation, and the CI it watches must
//! shrink monotonically on fixed-variance streams. Also pins down the
//! n < 2 dispersion semantics the whole rule leans on.

use chunkpoint_adaptive::{plan_round, AdaptivePolicy, CellProgress, StopMetric};
use chunkpoint_campaign::{Axis, CampaignSpec, SchemeSpec, Summary};
use chunkpoint_core::{MitigationScheme, SystemConfig};
use chunkpoint_exec::{CampaignExecutor, LiveAggregates, LocalExecutor};
use chunkpoint_workloads::Benchmark;
use proptest::prelude::*;

/// Builds per-cell progress from value lists, pushing in list order.
fn cells_from(values: &[Vec<f64>]) -> Vec<CellProgress> {
    values
        .iter()
        .map(|cell| {
            let mut progress = CellProgress::default();
            for &v in cell {
                progress.summary.push(v);
                progress.spent += 1;
            }
            progress
        })
        .collect()
}

/// Deterministic Fisher-Yates over an LCG — enough entropy to permute
/// arrival order without needing a shuffle strategy.
fn shuffled<T>(mut items: Vec<T>, mut seed: u64) -> Vec<T> {
    for i in (1..items.len()).rev() {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        items.swap(i, (seed >> 33) as usize % (i + 1));
    }
    items
}

/// Builds a policy from raw drawn knobs (the vendored proptest has no
/// mapping combinators, so the tests draw tuples and assemble here).
/// `(rel_on, rel)` / `(abs_on, abs)` encode optional thresholds.
fn policy_from(knobs: (u64, u64, (bool, f64), (bool, f64), u32)) -> AdaptivePolicy {
    let (floor, per_round, rel, abs, max_rounds) = knobs;
    let mut policy = AdaptivePolicy::new()
        .min_replicates(floor)
        .round_replicates(per_round.max(1))
        .metric(StopMetric::EnergyPj)
        .max_rounds(max_rounds);
    if rel.0 {
        policy = policy.rel_ci(rel.1);
    }
    if abs.0 {
        policy = policy.abs_ci(abs.1);
    }
    policy
}

/// Strategy tuple feeding [`policy_from`].
fn policy_knobs() -> (
    std::ops::Range<u64>,
    std::ops::Range<u64>,
    (proptest::arbitrary::Any<bool>, std::ops::Range<f64>),
    (proptest::arbitrary::Any<bool>, std::ops::Range<f64>),
    std::ops::Range<u32>,
) {
    (
        0u64..6,
        0u64..4,
        (any::<bool>(), 0.01f64..0.8),
        (any::<bool>(), 1.0f64..1e5),
        0u32..4,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Arrival-order invariance: the controller seals rows in global
    /// scenario-index order before any statistic sees them, so two
    /// arbitrary arrival permutations of the same sealed set must
    /// produce bitwise-identical summaries and the identical plan.
    #[test]
    fn decisions_ignore_arrival_order(
        rows in proptest::collection::vec(0.0f64..1e6, 1..40),
        knobs in policy_knobs(),
        budget in 1u64..16,
        round in 1u32..6,
        pool in 0u64..20,
        seed in any::<u64>(),
    ) {
        let policy = policy_from(knobs);
        let budget_usize = budget as usize;
        // rows carry their global index; cell = index / budget.
        let indexed: Vec<(usize, f64)> = rows.iter().copied().enumerate().collect();
        let cell_count = indexed.len().div_ceil(budget_usize);
        let seal = |arrival: Vec<(usize, f64)>| {
            let mut arrival = arrival;
            arrival.sort_by_key(|&(index, _)| index);
            let mut cells = vec![CellProgress::default(); cell_count];
            for (index, value) in arrival {
                let cell = index / budget_usize;
                cells[cell].summary.push(value);
                cells[cell].spent += 1;
            }
            cells
        };
        let in_order = seal(indexed.clone());
        let permuted = seal(shuffled(indexed, seed));
        let plan_a = plan_round(&policy, budget, round, &in_order, pool);
        let plan_b = plan_round(&policy, budget, round, &permuted, pool);
        prop_assert_eq!(plan_a, plan_b);
    }

    /// A converged (early) stop never fires below the effective floor
    /// `max(min_replicates, 2)` — only budget exhaustion or the round
    /// cutoff may close a cell with fewer replicates, and those are
    /// reported unconverged.
    #[test]
    fn never_stops_early_below_the_floor(
        values in proptest::collection::vec(proptest::collection::vec(0.0f64..1e6, 0..12), 1..8),
        knobs in policy_knobs(),
        budget in 1u64..16,
        round in 1u32..6,
    ) {
        let policy = policy_from(knobs);
        let cells = cells_from(&values);
        let plan = plan_round(&policy, budget, round, &cells, 0);
        for (cell, stop) in &plan.stops {
            prop_assert_eq!(stop.replicates, cells[*cell].spent);
            if stop.converged {
                prop_assert!(
                    stop.replicates >= policy.min_replicates.max(2),
                    "cell {} converged at {} replicates under floor {}",
                    cell, stop.replicates, policy.min_replicates
                );
            }
        }
    }

    /// Reallocation conserves the replicate budget exactly: carried
    /// pool out = pool in + budget freed by stops - extras granted, and
    /// no allocation ever reaches past its own cell's replicate block.
    #[test]
    fn reallocation_conserves_the_budget(
        values in proptest::collection::vec(proptest::collection::vec(0.0f64..1e6, 0..12), 1..8),
        knobs in policy_knobs(),
        budget in 1u64..16,
        round in 1u32..6,
        pool in 0u64..24,
    ) {
        let policy = policy_from(knobs);
        let cells: Vec<CellProgress> = cells_from(&values)
            .into_iter()
            .map(|mut cell| {
                cell.spent = cell.spent.min(budget);
                cell
            })
            .collect();
        let plan = plan_round(&policy, budget, round, &cells, pool);
        let freed: u64 = plan
            .stops
            .iter()
            .map(|(cell, _)| budget - cells[*cell].spent.min(budget))
            .sum();
        let granted: u64 = plan.grants.iter().map(|&(_, extra)| extra).sum();
        prop_assert_eq!(plan.pool + granted, pool + freed, "budget leaked");
        for alloc in &plan.allocations {
            prop_assert_eq!(alloc.from, cells[alloc.cell].spent);
            prop_assert!(alloc.to > alloc.from, "open cell granted nothing");
            prop_assert!(
                alloc.to <= budget,
                "cell {} allocated past its block: {} > {}",
                alloc.cell, alloc.to, budget
            );
        }
        // Stopped and allocated cells are disjoint; each appears once.
        for (cell, _) in &plan.stops {
            prop_assert!(plan.allocations.iter().all(|a| a.cell != *cell));
        }
    }

    /// On a fixed-variance synthetic stream (symmetric ±d pairs around
    /// a mean) the CI95 half-width is monotone non-increasing in the
    /// sample count — more replicates can only tighten the interval the
    /// stopping rule watches.
    #[test]
    fn ci95_shrinks_on_fixed_variance_streams(
        mean in 1.0f64..1e6,
        spread in 0.1f64..100.0,
        pairs in 2usize..50,
    ) {
        let mut summary = Summary::new();
        let mut previous = f64::INFINITY;
        for _ in 0..pairs {
            summary.push(mean - spread);
            summary.push(mean + spread);
            let width = summary.ci95_half_width();
            prop_assert!(
                width <= previous * (1.0 + 1e-12) + 1e-12,
                "half-width grew: {} -> {} at n = {}",
                previous, width, summary.count()
            );
            previous = width;
        }
    }
}

/// The n < 2 semantics the stopping rule leans on, pinned both at the
/// [`Summary`] layer and through the executor event plane
/// ([`LiveAggregates`]): zero or one sample has *no* dispersion — the
/// CI95 half-width and stddev are exactly 0, which is why the effective
/// stop floor is `max(min_replicates, 2)`.
#[test]
fn dispersion_is_zero_below_two_samples() {
    let mut summary = Summary::new();
    assert_eq!(summary.count(), 0);
    assert_eq!(summary.stddev(), 0.0);
    assert_eq!(summary.ci95_half_width(), 0.0);
    summary.push(42.0);
    assert_eq!(summary.count(), 1);
    assert_eq!(summary.mean(), 42.0);
    assert_eq!(summary.stddev(), 0.0);
    assert_eq!(summary.ci95_half_width(), 0.0);

    // And a one-row event stream: the live aggregates report the row's
    // value with zero half-width, not NaN.
    let mut config = SystemConfig::paper(0);
    config.scale = 0.25;
    let spec = CampaignSpec::new(config, 11)
        .benchmarks(&[Benchmark::AdpcmEncode])
        .scheme("Default", SchemeSpec::Fixed(MitigationScheme::Default))
        .replicates(1);
    let handle = LocalExecutor::new(1).submit(&spec);
    let mut live = LiveAggregates::new(&[Axis::Benchmark]);
    assert_eq!(live.done(), 0);
    for event in handle.events() {
        live.observe(&event);
    }
    handle.wait().expect("one-scenario campaign");
    assert_eq!(live.done(), 1);
    let (_, stats) = live.groups().groups().next().expect("one group");
    assert_eq!(stats.n, 1);
    assert_eq!(stats.energy_pj.ci95_half_width(), 0.0);
    assert_eq!(stats.energy_pj.stddev(), 0.0);
}

/// A sanity anchor tying the planner to the policy's public floor
/// semantics: with both thresholds unset nothing ever converges, for
/// any progress state.
#[test]
fn threshold_free_policy_never_converges() {
    let policy = AdaptivePolicy::new().min_replicates(0);
    let mut cells = vec![CellProgress::default()];
    for replicate in 0..50 {
        cells[0].summary.push(replicate as f64);
        cells[0].spent += 1;
        let plan = plan_round(&policy, 100, replicate as u32 + 1, &cells, 0);
        assert!(plan.stops.is_empty(), "converged without a threshold");
    }
}
