//! The acceptance test of the timeline-scenario axis: a spec carrying
//! named scenarios — fault bursts, error-rate shifts, and `expect`
//! blocks — through all three execution paths (in-process, one real
//! remote `serve` process, two-backend sharded) must produce
//! **byte-identical** canonical reports, with expect verdicts riding
//! the journal rows as typed outcomes, never panics. A second sharded
//! run against a warm [`RangeCache`] must splice every row from disk
//! instead of re-executing.

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use chunkpoint_campaign::{
    canonical_report_json, run_campaign, CampaignSpec, CancelToken, SchemeSpec,
};
use chunkpoint_core::{MitigationScheme, SystemConfig};
use chunkpoint_exec::{
    CampaignEvent, CampaignExecutor, CampaignRun, LocalExecutor, RemoteConfig, RemoteExecutor,
    ShardConfig, ShardedExecutor,
};
use chunkpoint_scenario::{
    ExpectField, ExpectOp, ExpectValue, Expectation, ScenarioDef, TimelineEvent,
};
use chunkpoint_serve::REPORT_AXES;
use chunkpoint_shard::run_sharded_ctl;
use chunkpoint_workloads::Benchmark;

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("chunkpoint_scn_{}_{tag}", std::process::id()))
}

/// See `parity.rs`: the workspace build drops the `serve` binary next
/// to this test binary's profile directory.
fn serve_bin() -> PathBuf {
    let mut path = std::env::current_exe().expect("test binary path");
    path.pop(); // <profile>/deps/
    if path.ends_with("deps") {
        path.pop(); // <profile>/
    }
    let bin = path.join(format!("serve{}", std::env::consts::EXE_SUFFIX));
    assert!(
        bin.is_file(),
        "serve binary not found at {} — build the workspace first (`cargo build`)",
        bin.display()
    );
    bin
}

struct ServeProcess {
    child: Child,
    addr: String,
    data_dir: PathBuf,
    port_file: PathBuf,
}

impl ServeProcess {
    fn start(tag: &str) -> Self {
        let data_dir = temp_dir(&format!("{tag}_data"));
        let port_file = temp_dir(&format!("{tag}_port"));
        let _ = std::fs::remove_dir_all(&data_dir);
        let _ = std::fs::remove_file(&port_file);
        let child = Command::new(serve_bin())
            .args([
                "--addr",
                "127.0.0.1:0",
                "--data-dir",
                data_dir.to_str().expect("utf8 dir"),
                "--port-file",
                port_file.to_str().expect("utf8 path"),
                "--jobs",
                "1",
                "--threads",
                "1",
            ])
            .stdout(Stdio::null())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn serve");
        let deadline = Instant::now() + Duration::from_secs(60);
        let port: u16 = loop {
            if let Ok(raw) = std::fs::read_to_string(&port_file) {
                if let Ok(port) = raw.trim().parse() {
                    break port;
                }
            }
            assert!(Instant::now() < deadline, "serve never wrote its port");
            std::thread::sleep(Duration::from_millis(10));
        };
        let addr = format!("127.0.0.1:{port}");
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            if let Ok((200, _)) =
                chunkpoint_shard::exchange(&addr, "GET", "/healthz", None, Duration::from_secs(5))
            {
                break;
            }
            assert!(Instant::now() < deadline, "serve never became healthy");
            std::thread::sleep(Duration::from_millis(10));
        }
        Self {
            child,
            addr,
            data_dir,
            port_file,
        }
    }

    fn shutdown(&self) {
        let _ = chunkpoint_shard::exchange(
            &self.addr,
            "POST",
            "/shutdown",
            None,
            Duration::from_secs(5),
        );
    }
}

impl Drop for ServeProcess {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        let _ = std::fs::remove_dir_all(&self.data_dir);
        let _ = std::fs::remove_file(&self.port_file);
    }
}

/// Three scenarios chosen for deterministic, path-independent verdicts:
///
/// * `storm` — a saturating fault burst at cycle 2000, which falls in
///   the AdpcmDecode block-0-output → end-of-frame-drain exposure
///   window (strikes materialise lazily at read time, so a burst
///   outside every write→read window would be invisible);
/// * `calm` — the error process shifted to zero from cycle 0, with an
///   expect block every row satisfies;
/// * `doomed` — no timeline at all, but an unsatisfiable expect
///   (`cycles <= 0`), so every row carries a typed failure.
fn scenario_axis() -> Vec<ScenarioDef> {
    let mut storm = ScenarioDef::named("storm");
    storm.tags = vec!["burst".to_owned()];
    storm.timeline = vec![TimelineEvent::FaultBurst {
        cycle: 2_000,
        words: 64,
        rate: 1.0,
    }];
    let mut calm = ScenarioDef::named("calm");
    calm.timeline = vec![TimelineEvent::ErrorRateShift {
        cycle: 0,
        rate: 0.0,
    }];
    calm.expect = vec![
        Expectation {
            field: ExpectField::Completed,
            op: ExpectOp::Eq,
            value: ExpectValue::Bool(true),
        },
        Expectation {
            field: ExpectField::DetectedErrors,
            op: ExpectOp::Eq,
            value: ExpectValue::Uint(0),
        },
    ];
    let mut doomed = ScenarioDef::named("doomed");
    doomed.expect = vec![Expectation {
        field: ExpectField::Cycles,
        op: ExpectOp::Le,
        value: ExpectValue::Uint(0),
    }];
    vec![storm, calm, doomed]
}

fn scenario_spec() -> CampaignSpec {
    let mut config = SystemConfig::paper(0);
    config.scale = 0.25;
    CampaignSpec::new(config, 0x5CE0_A41)
        .benchmarks(&[Benchmark::AdpcmDecode])
        .scheme("Default", SchemeSpec::Fixed(MitigationScheme::Default))
        .scheme("SW-based", SchemeSpec::Fixed(MitigationScheme::SwRestart))
        .error_rates(&[1e-6])
        .replicates(2)
        .timeline_scenarios(&scenario_axis())
}

fn run_and_wait(handle: chunkpoint_exec::CampaignHandle, path: &str) -> CampaignRun {
    let events: Vec<CampaignEvent> = handle.events().collect();
    let run = handle.wait().unwrap_or_else(|e| panic!("{path}: {e}"));
    assert!(
        matches!(events.last(), Some(CampaignEvent::Complete)),
        "{path}: stream did not end with Complete"
    );
    run
}

/// The headline: timeline scenarios and expect verdicts survive every
/// execution path byte-for-byte.
#[test]
fn scenario_axis_is_byte_identical_across_paths() {
    let _ = chunkpoint_telemetry::install_campaign_metrics();
    let spec = scenario_spec();
    let grid = spec.scenarios();
    let total = grid.len();
    assert_eq!(
        total, 12,
        "1 bench × 2 schemes × 1 rate × 3 scenarios × 2 reps"
    );

    // The oracle: a plain single-threaded engine run.
    let reference = run_campaign(&spec, 1);
    let expected =
        canonical_report_json(spec.campaign_seed, &reference.results, &REPORT_AXES).render();

    // Expect verdicts are typed outcomes on exactly the rows whose
    // scenario carries an expect block — and nothing panicked to get
    // here.
    for row in &reference.results {
        match row.scenario.scenario.as_deref() {
            Some("calm") => {
                assert_eq!(row.expect_passed, Some(true), "calm row failed its expect");
                assert!(row.expect_failures.is_empty());
            }
            Some("doomed") => {
                assert_eq!(row.expect_passed, Some(false), "doomed row passed");
                assert!(
                    row.expect_failures.iter().any(|f| f.contains("cycles")),
                    "failure should name the field: {:?}",
                    row.expect_failures
                );
            }
            _ => assert_eq!(row.expect_passed, None, "storm has no expect block"),
        }
    }
    // The storm actually perturbed the run: its rows differ from calm's
    // on at least one scheme (same benchmark, same seeds otherwise).
    assert!(
        reference
            .results
            .iter()
            .filter(|r| r.scenario.scenario.as_deref() == Some("storm"))
            .any(|r| r.errors_detected > 0 || r.restarts > 0 || r.correct == Some(false)),
        "the burst went unnoticed on every storm row"
    );

    // Local, two threads.
    let local = run_and_wait(LocalExecutor::new(2).submit(&spec), "local");
    assert_eq!(local.report, expected, "local bytes diverged");
    assert_eq!(local.results, reference.results, "local rows diverged");

    // Remote: the scenario axis crosses the wire as spec JSON, the
    // verdicts come back as journal rows.
    let backend = ServeProcess::start("scn_remote");
    let remote_exec = RemoteExecutor::new(backend.addr.clone()).with_config(RemoteConfig {
        poll_interval: Duration::from_millis(10),
        ..RemoteConfig::default()
    });
    let remote = run_and_wait(remote_exec.submit(&spec), "remote");
    assert_eq!(remote.report, expected, "remote bytes diverged");
    assert_eq!(remote.results, reference.results, "remote rows diverged");
    backend.shutdown();

    // Sharded across two real backends.
    let shard_a = ServeProcess::start("scn_shard_a");
    let shard_b = ServeProcess::start("scn_shard_b");
    let sharded_exec = ShardedExecutor::new(vec![shard_a.addr.clone(), shard_b.addr.clone()])
        .with_config(ShardConfig {
            poll_interval: Duration::from_millis(10),
            ..ShardConfig::default()
        });
    let sharded = run_and_wait(sharded_exec.submit(&spec), "sharded");
    assert_eq!(sharded.report, expected, "sharded bytes diverged");
    assert_eq!(sharded.results, reference.results, "sharded rows diverged");
    shard_a.shutdown();
    shard_b.shutdown();
}

/// A warm range cache answers a scenario-axis campaign without
/// dispatching anything: every row splices from disk and the report
/// bytes still match the engine oracle.
#[test]
fn warm_cache_splices_scenario_rows_instead_of_re_executing() {
    let spec = scenario_spec();
    let total = spec.scenarios().len();
    let reference = run_campaign(&spec, 1);
    let expected =
        canonical_report_json(spec.campaign_seed, &reference.results, &REPORT_AXES).render();

    let cache_dir = temp_dir("scn_cache");
    let _ = std::fs::remove_dir_all(&cache_dir);
    let shard_a = ServeProcess::start("scn_warm_a");
    let shard_b = ServeProcess::start("scn_warm_b");
    let backends = vec![shard_a.addr.clone(), shard_b.addr.clone()];
    let config = ShardConfig {
        poll_interval: Duration::from_millis(10),
        cache_dir: Some(cache_dir.clone()),
        ..ShardConfig::default()
    };

    // Cold: everything executes remotely, rows seal into the cache.
    let cold = run_sharded_ctl(&spec, &backends, None, &config, &CancelToken::new(), |_| {})
        .expect("cold sharded run");
    assert_eq!(cold.report, expected, "cold bytes diverged");
    assert_eq!(cold.spliced, 0, "an empty cache spliced rows");
    assert!(cold.dispatches >= 2);

    // Warm: the whole grid splices, nothing is dispatched — the
    // backends could be gone entirely.
    shard_a.shutdown();
    shard_b.shutdown();
    let warm = run_sharded_ctl(&spec, &backends, None, &config, &CancelToken::new(), |_| {})
        .expect("warm sharded run");
    assert_eq!(warm.report, expected, "warm bytes diverged");
    assert_eq!(
        warm.spliced, total,
        "warm run re-executed instead of splicing"
    );
    assert_eq!(warm.dispatches, 0, "warm run dispatched to a backend");
    assert_eq!(warm.results, reference.results, "spliced rows diverged");
    let _ = std::fs::remove_dir_all(&cache_dir);
}
