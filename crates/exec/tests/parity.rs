//! The acceptance test of the unified executor API: one spec, three
//! execution paths — in-process, one real remote `serve` process, and
//! two-backend sharded — and the three [`CampaignRun`] reports must be
//! **byte-identical**, each path having emitted a complete, well-formed
//! event stream.

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use chunkpoint_campaign::{canonical_report_json, run_campaign, CampaignSpec, SchemeSpec};
use chunkpoint_core::{MitigationScheme, SystemConfig};
use chunkpoint_exec::{
    CampaignEvent, CampaignExecutor, CampaignRun, LocalExecutor, RemoteConfig, RemoteExecutor,
    ShardConfig, ShardedExecutor,
};
use chunkpoint_serve::REPORT_AXES;
use chunkpoint_workloads::Benchmark;

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("chunkpoint_exec_{}_{tag}", std::process::id()))
}

/// The `serve` binary lives next to this test binary's parent directory
/// (`target/<profile>/serve`); it belongs to `chunkpoint_serve`, so
/// Cargo does not export a `CARGO_BIN_EXE_serve` for this crate — but a
/// workspace `cargo test`/`cargo build` always compiles it.
fn serve_bin() -> PathBuf {
    let mut path = std::env::current_exe().expect("test binary path");
    path.pop(); // <profile>/deps/
    if path.ends_with("deps") {
        path.pop(); // <profile>/
    }
    let bin = path.join(format!("serve{}", std::env::consts::EXE_SUFFIX));
    assert!(
        bin.is_file(),
        "serve binary not found at {} — build the workspace first (`cargo build`)",
        bin.display()
    );
    bin
}

struct ServeProcess {
    child: Child,
    addr: String,
    data_dir: PathBuf,
    port_file: PathBuf,
}

impl ServeProcess {
    /// Starts a real `serve` on an ephemeral port and waits until it
    /// answers `/healthz`.
    fn start(tag: &str) -> Self {
        let data_dir = temp_dir(&format!("{tag}_data"));
        let port_file = temp_dir(&format!("{tag}_port"));
        let _ = std::fs::remove_dir_all(&data_dir);
        let _ = std::fs::remove_file(&port_file);
        let child = Command::new(serve_bin())
            .args([
                "--addr",
                "127.0.0.1:0",
                "--data-dir",
                data_dir.to_str().expect("utf8 dir"),
                "--port-file",
                port_file.to_str().expect("utf8 path"),
                "--jobs",
                "1",
                "--threads",
                "1",
            ])
            .stdout(Stdio::null())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn serve");
        let deadline = Instant::now() + Duration::from_secs(60);
        let port: u16 = loop {
            if let Ok(raw) = std::fs::read_to_string(&port_file) {
                if let Ok(port) = raw.trim().parse() {
                    break port;
                }
            }
            assert!(Instant::now() < deadline, "serve never wrote its port");
            std::thread::sleep(Duration::from_millis(10));
        };
        let addr = format!("127.0.0.1:{port}");
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            if let Ok((200, _)) =
                chunkpoint_shard::exchange(&addr, "GET", "/healthz", None, Duration::from_secs(5))
            {
                break;
            }
            assert!(Instant::now() < deadline, "serve never became healthy");
            std::thread::sleep(Duration::from_millis(10));
        }
        Self {
            child,
            addr,
            data_dir,
            port_file,
        }
    }

    fn shutdown(&self) {
        let _ = chunkpoint_shard::exchange(
            &self.addr,
            "POST",
            "/shutdown",
            None,
            Duration::from_secs(5),
        );
    }
}

impl Drop for ServeProcess {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        let _ = std::fs::remove_dir_all(&self.data_dir);
        let _ = std::fs::remove_file(&self.port_file);
    }
}

fn parity_spec() -> CampaignSpec {
    let mut config = SystemConfig::paper(0);
    config.scale = 0.25;
    CampaignSpec::new(config, 0x0E4EC_9A41)
        .benchmarks(&[Benchmark::AdpcmEncode, Benchmark::AdpcmDecode])
        .scheme("Default", SchemeSpec::Fixed(MitigationScheme::Default))
        .scheme("SW-based", SchemeSpec::Fixed(MitigationScheme::SwRestart))
        .error_rates(&[1e-6, 1e-5])
        .replicates(2)
}

/// Drains a handle's event stream and waits, then checks the stream's
/// shape: one final `Complete`, `ScenarioDone` for every scenario, and
/// progress that reached `done == total`.
fn run_and_audit(handle: chunkpoint_exec::CampaignHandle, total: usize, path: &str) -> CampaignRun {
    let events: Vec<CampaignEvent> = handle.events().collect();
    let run = handle.wait().unwrap_or_else(|e| panic!("{path}: {e}"));
    assert!(
        matches!(events.last(), Some(CampaignEvent::Complete)),
        "{path}: stream did not end with Complete"
    );
    let completes = events
        .iter()
        .filter(|e| matches!(e, CampaignEvent::Complete))
        .count();
    assert_eq!(completes, 1, "{path}: {completes} Complete events");
    let scenarios_seen = events
        .iter()
        .filter(|e| matches!(e, CampaignEvent::ScenarioDone(_)))
        .count();
    assert_eq!(
        scenarios_seen, total,
        "{path}: ScenarioDone events do not cover the grid"
    );
    assert!(
        events.iter().any(
            |e| matches!(e, CampaignEvent::Progress { done, total: t } if done == t && *t == total)
        ),
        "{path}: no done == total progress event"
    );
    // Progress is monotone.
    let mut last_done = 0usize;
    for event in &events {
        if let CampaignEvent::Progress { done, .. } = event {
            assert!(*done >= last_done, "{path}: progress went backwards");
            last_done = *done;
        }
    }
    assert_eq!(run.scenarios, total, "{path}: wrong scenario count");
    assert_eq!(run.results.len(), total, "{path}: wrong row count");
    run
}

/// The headline: the same spec through all three executors produces
/// byte-identical canonical reports — and each path's event stream is
/// complete and well-formed.
#[test]
fn three_executors_one_report() {
    // Telemetry live for the whole run: the campaign engine's sink
    // records scenario wall times and queue depths into the global
    // registry while every byte-identity assert below still holds —
    // the observability layer is provably out-of-band.
    let _ = chunkpoint_telemetry::install_campaign_metrics();
    let spec = parity_spec();
    let total = spec.scenarios().len();

    // The oracle: a plain single-threaded engine run.
    let reference = run_campaign(&spec, 1);
    let expected =
        canonical_report_json(spec.campaign_seed, &reference.results, &REPORT_AXES).render();

    // Local, on two worker threads (determinism makes thread count
    // invisible).
    let local = run_and_audit(LocalExecutor::new(2).submit(&spec), total, "local");
    assert_eq!(local.report, expected, "local bytes diverged");

    // Remote, against one real serve process.
    let remote_backend = ServeProcess::start("remote");
    let remote_exec = RemoteExecutor::new(remote_backend.addr.clone()).with_config(RemoteConfig {
        poll_interval: Duration::from_millis(10),
        ..RemoteConfig::default()
    });
    let remote = run_and_audit(remote_exec.submit(&spec), total, "remote");
    assert_eq!(remote.report, expected, "remote bytes diverged");
    assert!(remote.dispatches >= 1);

    // The backend's content-addressed cache answers the resubmission
    // without re-simulating — same bytes, same API.
    let resubmit_started = Instant::now();
    let cached = run_and_audit(remote_exec.submit(&spec), total, "remote-cached");
    assert_eq!(cached.report, expected, "cached bytes diverged");
    assert!(
        resubmit_started.elapsed() < Duration::from_secs(5),
        "cache hit should answer fast"
    );
    remote_backend.shutdown();

    // Sharded, across two real serve processes — with a live trace
    // sink: dispatch decisions become structured span events and the
    // bytes still match.
    let trace_out = temp_dir("parity_trace");
    let _ = std::fs::remove_file(&trace_out);
    let shard_a = ServeProcess::start("shard_a");
    let shard_b = ServeProcess::start("shard_b");
    let sharded_exec = ShardedExecutor::new(vec![shard_a.addr.clone(), shard_b.addr.clone()])
        .with_config(ShardConfig {
            poll_interval: Duration::from_millis(10),
            tracer: chunkpoint_telemetry::Tracer::to_file(&trace_out).expect("trace sink"),
            ..ShardConfig::default()
        });
    let sharded = run_and_audit(sharded_exec.submit(&spec), total, "sharded");
    assert_eq!(sharded.report, expected, "sharded bytes diverged");
    assert!(
        sharded.dispatches >= 2,
        "two shards need at least two dispatches"
    );

    // And the three runs agree with each other, row for row.
    assert_eq!(local.report, remote.report);
    assert_eq!(remote.report, sharded.report);
    assert_eq!(local.results, sharded.results);
    shard_a.shutdown();
    shard_b.shutdown();

    // The registry really was live: the engine's sink metered the
    // local path's scenarios, and every executor path counted its
    // events — telemetry recorded *and* the bytes above matched.
    let scrape = chunkpoint_telemetry::Scrape::parse(&chunkpoint_telemetry::render_text(
        chunkpoint_telemetry::global(),
    ))
    .expect("scrape parses");
    assert!(
        scrape
            .value("campaign_scenario_wall_seconds_count", &[])
            .unwrap_or(0.0)
            >= total as f64,
        "engine sink never observed the local run's scenarios"
    );
    for executor in ["local", "remote", "sharded"] {
        assert!(
            scrape
                .value("exec_events_total", &[("executor", executor)])
                .unwrap_or(0.0)
                > 0.0,
            "{executor} path emitted no counted events"
        );
    }
    // And the dispatch trace holds well-formed records for both shards.
    let trace = std::fs::read_to_string(&trace_out).expect("trace file");
    let dispatched = trace
        .lines()
        .map(|line| chunkpoint_campaign::JsonValue::parse(line).expect("trace line is JSON"))
        .filter(|r| {
            r.get("name")
                .and_then(chunkpoint_campaign::JsonValue::as_str)
                == Some("dispatched")
        })
        .count();
    assert_eq!(dispatched, 2, "one dispatched event per shard");
    let _ = std::fs::remove_file(&trace_out);
}

/// A spec carrying its own `scenario_range` executes only its slice on
/// **every** path — the sharded executor must not silently widen it
/// back to the full grid.
#[test]
fn ranged_specs_stay_byte_identical_across_paths() {
    let full = parity_spec();
    let grid_len = full.scenarios().len();
    let (start, end) = (2usize, grid_len - 3);
    let spec = full.scenario_range(start, end);
    let total = end - start;

    // Oracle: the engine's own ranged run, canonically rendered.
    let reference = run_campaign(&spec, 1);
    assert_eq!(reference.results.len(), total);
    let expected =
        canonical_report_json(spec.campaign_seed, &reference.results, &REPORT_AXES).render();

    let local = run_and_audit(LocalExecutor::new(2).submit(&spec), total, "ranged-local");
    assert_eq!(local.report, expected, "ranged local bytes diverged");

    let backend = ServeProcess::start("ranged_remote");
    let remote = run_and_audit(
        RemoteExecutor::new(backend.addr.clone()).submit(&spec),
        total,
        "ranged-remote",
    );
    assert_eq!(remote.report, expected, "ranged remote bytes diverged");
    backend.shutdown();

    let shard_a = ServeProcess::start("ranged_a");
    let shard_b = ServeProcess::start("ranged_b");
    let sharded = run_and_audit(
        ShardedExecutor::new(vec![shard_a.addr.clone(), shard_b.addr.clone()]).submit(&spec),
        total,
        "ranged-sharded",
    );
    assert_eq!(sharded.report, expected, "ranged sharded bytes diverged");
    assert!(sharded
        .results
        .iter()
        .all(|r| r.scenario.index >= start && r.scenario.index < end));
    shard_a.shutdown();
    shard_b.shutdown();
}

/// Weighted sharding is still byte-identical — weights move scenarios
/// between backends, never change them.
#[test]
fn weighted_sharding_matches_even_sharding_bytes() {
    let spec = parity_spec();
    let total = spec.scenarios().len();
    let reference = run_campaign(&spec, 1);
    let expected =
        canonical_report_json(spec.campaign_seed, &reference.results, &REPORT_AXES).render();

    let shard_a = ServeProcess::start("weighted_a");
    let shard_b = ServeProcess::start("weighted_b");
    let executor = ShardedExecutor::new(vec![shard_a.addr.clone(), shard_b.addr.clone()])
        .with_weights(vec![3.0, 1.0])
        .with_config(ShardConfig {
            poll_interval: Duration::from_millis(10),
            ..ShardConfig::default()
        });
    let handle = executor.submit(&spec);
    let mut dispatched_ranges = Vec::new();
    for event in handle.events() {
        if let CampaignEvent::ShardDispatched { range, .. } = event {
            dispatched_ranges.push(range);
        }
    }
    let run = handle.wait().expect("weighted sharded run");
    assert_eq!(run.report, expected, "weighted bytes diverged");
    // The 3:1 weights actually skewed the partition.
    assert_eq!(dispatched_ranges.len(), 2);
    let sizes: Vec<usize> = dispatched_ranges.iter().map(|(s, e)| e - s).collect();
    assert!(
        sizes[0] >= 3 * sizes[1],
        "weights were ignored: {sizes:?} for a 3:1 split of {total}"
    );
    shard_a.shutdown();
    shard_b.shutdown();
}
