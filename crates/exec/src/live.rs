//! Streaming partial aggregates: a thin consumer of the campaign event
//! stream that keeps Welford summaries live while scenarios arrive —
//! watch a campaign's mean ± 95 % CI tighten instead of waiting for
//! the final report.

use chunkpoint_campaign::{Aggregator, Axis, Summary};

use crate::event::CampaignEvent;

/// Live partial aggregates over a campaign's event stream.
///
/// Feed every event from
/// [`CampaignHandle::events`](crate::CampaignHandle::events) to
/// [`LiveAggregates::observe`]; it folds each
/// [`CampaignEvent::ScenarioDone`] into an overall Welford summary
/// (energy, and energy ratio when the campaign normalizes) plus a
/// grouped [`Aggregator`], and answers with a printable progress line
/// whenever the numbers moved. Because every executor's `ScenarioDone`
/// rows are the canonical report's rows, the final aggregates equal
/// the report's — partial results simply become exact.
///
/// ```no_run
/// use chunkpoint_campaign::Axis;
/// use chunkpoint_exec::{CampaignExecutor, LiveAggregates, LocalExecutor};
/// # let spec: chunkpoint_campaign::CampaignSpec = unimplemented!();
/// let handle = LocalExecutor::new(0).submit(&spec);
/// let mut live = LiveAggregates::new(&[Axis::Scheme]);
/// for event in handle.events() {
///     if let Some(line) = live.observe(&event) {
///         println!("{line}");
///     }
/// }
/// let run = handle.wait().expect("campaign");
/// ```
#[derive(Debug)]
pub struct LiveAggregates {
    aggregator: Aggregator,
    energy_pj: Summary,
    energy_ratio: Summary,
    /// `ScenarioDone` events folded in.
    seen: usize,
    /// Latest `Progress.done` — on the remote path progress runs ahead
    /// of the row burst, so completion is the max of the two.
    progress: usize,
    total: usize,
}

impl LiveAggregates {
    /// A fresh consumer grouping scenario results by `axes`.
    #[must_use]
    pub fn new(axes: &[Axis]) -> Self {
        Self {
            aggregator: Aggregator::new(axes),
            energy_pj: Summary::new(),
            energy_ratio: Summary::new(),
            seen: 0,
            progress: 0,
            total: 0,
        }
    }

    /// Folds one event in; answers a printable line when it changed the
    /// live numbers (scenario completions and shard dispatch decisions
    /// — plain progress ticks return `None`).
    pub fn observe(&mut self, event: &CampaignEvent) -> Option<String> {
        match event {
            CampaignEvent::ScenarioDone(result) => {
                self.aggregator.push(result);
                self.energy_pj.push(result.energy_pj);
                if let Some(ratio) = result.energy_ratio {
                    self.energy_ratio.push(ratio);
                }
                self.seen += 1;
                Some(self.line())
            }
            CampaignEvent::Progress { done, total } => {
                self.total = *total;
                self.progress = (*done).max(self.progress);
                None
            }
            CampaignEvent::Complete => Some(format!("complete · {}", self.line())),
            shard_event => Some(shard_event.to_string()),
        }
    }

    /// The current partial-aggregate line: progress plus live
    /// mean ± CI95.
    #[must_use]
    pub fn line(&self) -> String {
        let done = self.done();
        let mut line = format!(
            "{}/{} scenarios · energy {:.1} ± {:.1} pJ",
            done,
            self.total.max(done),
            self.energy_pj.mean(),
            self.energy_pj.ci95_half_width()
        );
        if self.energy_ratio.count() > 0 {
            line.push_str(&format!(
                " · energy ratio {:.3} ± {:.3}",
                self.energy_ratio.mean(),
                self.energy_ratio.ci95_half_width()
            ));
        }
        line
    }

    /// The grouped aggregates accumulated so far (the final report's
    /// groups once the run completes).
    #[must_use]
    pub fn groups(&self) -> &Aggregator {
        &self.aggregator
    }

    /// Scenarios known complete so far (the max of rows folded in and
    /// reported progress).
    #[must_use]
    pub fn done(&self) -> usize {
        self.seen.max(self.progress)
    }

    /// The run's scenario total (0 until the first progress event).
    #[must_use]
    pub fn total(&self) -> usize {
        self.total
    }
}
