//! # chunkpoint-exec
//!
//! **One campaign executor API** over every way this workspace can run
//! an evaluation grid: typed submit / observe / cancel, with three
//! interchangeable backends proven byte-identical on the same spec.
//!
//! * [`LocalExecutor`] — in-process on the engine's work-stealing pool
//!   ([`chunkpoint_campaign::run_campaign_streaming`]);
//! * [`RemoteExecutor`] — one remote `serve` instance, through the
//!   typed [`chunkpoint_shard::client`] (content-addressed result
//!   cache included);
//! * [`ShardedExecutor`] — many `serve` backends via the shard
//!   coordinator, with failure re-dispatch and optional per-backend
//!   capacity weights.
//!
//! Submitting a [`CampaignSpec`] answers a [`CampaignHandle`]: a blocking iterator of typed
//! [`CampaignEvent`]s ([`CampaignHandle::events`]), cooperative
//! [`CampaignHandle::cancel`], and [`CampaignHandle::wait`] returning
//! a [`CampaignRun`] or the one [`ExecError`] enum — no stringly
//! errors, no per-path calling conventions.
//!
//! ## Why the three paths agree byte for byte
//!
//! Every scenario's fault seed derives from `(campaign_seed,
//! scenario_index)`, and every path renders the same timing-free
//! [`chunkpoint_campaign::canonical_report_json`] over the same
//! index-ordered rows. Where a campaign runs — one thread, one server,
//! a crashing fleet — is therefore invisible in
//! [`CampaignRun::report`], which `crates/exec/tests/parity.rs`
//! proves against real `serve` processes.
//!
//! ## Event model
//!
//! Executors differ in *when* events arrive, never in what a
//! successful stream contains: every path emits
//! [`CampaignEvent::ScenarioDone`] for each scenario (live locally,
//! per completed shard when sharded, after the final journal fetch
//! remotely), monotone [`CampaignEvent::Progress`] ending at `done ==
//! total`, and one final [`CampaignEvent::Complete`]. The sharded path
//! additionally narrates dispatch decisions
//! ([`CampaignEvent::ShardDispatched`] /
//! [`CampaignEvent::ShardFailed`] /
//! [`CampaignEvent::ShardRedispatched`]). [`LiveAggregates`] folds any
//! of these streams into live Welford mean ± CI95 partial aggregates.
//!
//! ## Example
//!
//! ```
//! use chunkpoint_campaign::{CampaignSpec, SchemeSpec};
//! use chunkpoint_core::{MitigationScheme, SystemConfig};
//! use chunkpoint_exec::{CampaignEvent, CampaignExecutor, LocalExecutor};
//! use chunkpoint_workloads::Benchmark;
//!
//! let mut config = SystemConfig::paper(0);
//! config.scale = 0.25; // short run for the doctest
//! let spec = CampaignSpec::new(config, 0xE4EC)
//!     .benchmarks(&[Benchmark::AdpcmEncode])
//!     .scheme("Default", SchemeSpec::Fixed(MitigationScheme::Default))
//!     .replicates(2);
//!
//! let handle = LocalExecutor::new(2).submit(&spec);
//! let events: Vec<CampaignEvent> = handle.events().collect();
//! let run = handle.wait().expect("campaign");
//! assert!(matches!(events.last(), Some(CampaignEvent::Complete)));
//! assert_eq!(run.results.len(), run.scenarios);
//! // Swapping in RemoteExecutor::new("10.0.0.7:8077") or
//! // ShardedExecutor::new(backends) changes nothing below the submit.
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod event;
mod handle;
mod live;
mod local;
mod remote;
mod sharded;
mod util;

pub use event::{CampaignEvent, CampaignRun, ExecError};
pub use handle::CampaignHandle;
pub use live::LiveAggregates;
pub use local::LocalExecutor;
pub use remote::{RemoteConfig, RemoteExecutor};
pub use sharded::ShardedExecutor;

// The sharded path's knobs are part of this crate's API surface.
pub use chunkpoint_shard::ShardConfig;

use chunkpoint_campaign::CampaignSpec;

/// The one way to run a campaign, wherever it executes.
///
/// `submit` never blocks on the campaign: it validates lazily and runs
/// on a background worker, so a bad spec or unreachable backend
/// surfaces as a typed [`ExecError`] from [`CampaignHandle::wait`],
/// identically on every path. Executors are `Send + Sync` values;
/// submitting the same spec twice is always safe (the remote paths
/// answer the second run from the backend's content-addressed cache).
pub trait CampaignExecutor {
    /// Starts `spec` executing and hands back its observation handle.
    fn submit(&self, spec: &CampaignSpec) -> CampaignHandle;
}
