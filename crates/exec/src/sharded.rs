//! Multi-backend execution: the shard coordinator's dispatch loop
//! surfaced through the one executor API.

use std::time::Instant;

use chunkpoint_campaign::CampaignSpec;
use chunkpoint_shard::{run_sharded_ctl, ShardConfig, ShardEvent};

use crate::event::{CampaignEvent, CampaignRun};
use crate::handle::{spawn_worker, CampaignHandle};
use crate::util::enumerate_grid;
use crate::CampaignExecutor;

/// Runs campaigns sharded across several `serve` backends through
/// [`run_sharded_ctl`]: contiguous (optionally weighted) grid
/// partitioning, re-dispatch of failed or unreachable shards to
/// survivors, and a journal merge byte-identical to a single-machine
/// run.
///
/// The coordinator's dispatch decisions surface as
/// [`CampaignEvent::ShardDispatched`] /
/// [`CampaignEvent::ShardFailed`] /
/// [`CampaignEvent::ShardRedispatched`];
/// each completed shard bursts its validated rows as
/// [`CampaignEvent::ScenarioDone`] events followed by a
/// [`CampaignEvent::Progress`] update. Cancellation `DELETE`s every
/// outstanding shard job (best effort) and surfaces
/// [`ExecError::Cancelled`](crate::ExecError::Cancelled).
#[derive(Debug, Clone)]
pub struct ShardedExecutor {
    backends: Vec<String>,
    weights: Option<Vec<f64>>,
    config: ShardConfig,
}

impl ShardedExecutor {
    /// An executor across `backends` (each a `HOST:PORT` of a running
    /// `serve` instance), evenly partitioned, with default
    /// [`ShardConfig`].
    #[must_use]
    pub fn new(backends: Vec<String>) -> Self {
        Self {
            backends,
            weights: None,
            config: ShardConfig::default(),
        }
    }

    /// Partitions the grid proportionally to per-backend capacity
    /// weights (one per backend) instead of evenly — see
    /// [`chunkpoint_shard::partition_weighted`]. Invalid weights
    /// surface as [`ExecError::Rejected`](crate::ExecError::Rejected)
    /// at wait time.
    #[must_use]
    pub fn with_weights(mut self, weights: Vec<f64>) -> Self {
        self.weights = Some(weights);
        self
    }

    /// Overrides the coordinator's poll/timeout/strike knobs.
    #[must_use]
    pub fn with_config(mut self, config: ShardConfig) -> Self {
        self.config = config;
        self
    }

    /// Points the coordinator at a range-granular result cache
    /// ([`chunkpoint_shard::RangeCache`]): sealed ranges on disk are
    /// spliced instead of dispatched ([`CampaignEvent::CacheHit`]), and
    /// every completed shard writes its rows back. Shorthand for
    /// setting [`ShardConfig::cache_dir`] through
    /// [`ShardedExecutor::with_config`].
    #[must_use]
    pub fn with_cache_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.config.cache_dir = Some(dir.into());
        self
    }
}

impl CampaignExecutor for ShardedExecutor {
    fn submit(&self, spec: &CampaignSpec) -> CampaignHandle {
        let spec = spec.clone();
        let backends = self.backends.clone();
        let weights = self.weights.clone();
        let config = self.config.clone();
        spawn_worker("sharded", move |sink, cancel| {
            let started = Instant::now();
            // Grid enumeration runs again inside the coordinator; this
            // up-front pass buys the typed infeasible-spec rejection and
            // the progress total, and is startup-only (bench_exec puts
            // the whole abstraction's overhead at ~0).
            let grid = enumerate_grid(&spec)?;
            let total = spec.active_range(grid.len()).len();
            drop(grid);
            sink.emit(CampaignEvent::Progress { done: 0, total });
            let mut done = 0usize;
            let run = run_sharded_ctl(
                &spec,
                &backends,
                weights.as_deref(),
                &config,
                cancel,
                |event| match event {
                    ShardEvent::Dispatched {
                        shard,
                        range,
                        backend,
                    } => sink.emit(CampaignEvent::ShardDispatched {
                        shard: *shard,
                        range: *range,
                        backend: backend.clone(),
                    }),
                    ShardEvent::Redispatched {
                        shard,
                        range,
                        backend,
                    } => sink.emit(CampaignEvent::ShardRedispatched {
                        shard: *shard,
                        range: *range,
                        backend: backend.clone(),
                    }),
                    ShardEvent::BackendDead { backend, why } => {
                        sink.emit(CampaignEvent::ShardFailed {
                            shard: None,
                            backend: backend.clone(),
                            why: why.clone(),
                        });
                    }
                    ShardEvent::ShardFailed {
                        shard,
                        backend,
                        why,
                    } => sink.emit(CampaignEvent::ShardFailed {
                        shard: Some(*shard),
                        backend: backend.clone(),
                        why: why.clone(),
                    }),
                    ShardEvent::Speculated {
                        shard,
                        range,
                        backend,
                    } => sink.emit(CampaignEvent::SpeculativeDispatch {
                        shard: *shard,
                        range: *range,
                        backend: backend.clone(),
                    }),
                    ShardEvent::SpeculationWon { shard, backend } => {
                        sink.emit(CampaignEvent::SpeculativeWin {
                            shard: *shard,
                            backend: backend.clone(),
                        });
                    }
                    ShardEvent::CacheHit { shard, range, rows } => {
                        sink.emit(CampaignEvent::CacheHit {
                            shard: *shard,
                            range: *range,
                            rows: rows.len(),
                        });
                        for row in rows {
                            sink.emit(CampaignEvent::ScenarioDone(row.clone()));
                        }
                        done += rows.len();
                        sink.emit(CampaignEvent::Progress { done, total });
                    }
                    ShardEvent::ShardDone { rows, .. } => {
                        for row in rows {
                            sink.emit(CampaignEvent::ScenarioDone(row.clone()));
                        }
                        done += rows.len();
                        sink.emit(CampaignEvent::Progress { done, total });
                    }
                },
            )?;
            Ok(CampaignRun {
                report: run.report,
                results: run.results,
                scenarios: total,
                elapsed: started.elapsed(),
                dispatches: run.dispatches,
                failures: run.failures,
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ExecError;
    use chunkpoint_campaign::SchemeSpec;
    use chunkpoint_core::{MitigationScheme, SystemConfig};
    use chunkpoint_workloads::Benchmark;

    #[test]
    fn no_backends_is_the_typed_error() {
        let mut config = SystemConfig::paper(0);
        config.scale = 0.25;
        let spec = CampaignSpec::new(config, 3)
            .benchmarks(&[Benchmark::AdpcmEncode])
            .scheme("Default", SchemeSpec::Fixed(MitigationScheme::Default));
        let handle = ShardedExecutor::new(Vec::new()).submit(&spec);
        match handle.wait() {
            Err(ExecError::NoBackends) => {}
            other => panic!("expected NoBackends, got {other:?}"),
        }
    }

    #[test]
    fn invalid_weight_values_are_rejected_not_panicked() {
        let mut config = SystemConfig::paper(0);
        config.scale = 0.25;
        let spec = CampaignSpec::new(config, 3)
            .benchmarks(&[Benchmark::AdpcmEncode])
            .scheme("Default", SchemeSpec::Fixed(MitigationScheme::Default));
        for bad in [vec![0.0, 0.0], vec![1.0, -1.0], vec![f64::NAN, 1.0]] {
            let handle = ShardedExecutor::new(vec!["127.0.0.1:1".to_owned(), "x:2".to_owned()])
                .with_weights(bad.clone())
                .submit(&spec);
            match handle.wait() {
                Err(ExecError::Rejected { detail, .. }) => {
                    assert!(detail.contains("weights"), "{bad:?}: {detail}");
                }
                other => panic!("{bad:?}: expected Rejected, got {other:?}"),
            }
        }
    }

    #[test]
    fn mismatched_weights_are_rejected() {
        let mut config = SystemConfig::paper(0);
        config.scale = 0.25;
        let spec = CampaignSpec::new(config, 3)
            .benchmarks(&[Benchmark::AdpcmEncode])
            .scheme("Default", SchemeSpec::Fixed(MitigationScheme::Default));
        let handle = ShardedExecutor::new(vec!["127.0.0.1:1".to_owned()])
            .with_weights(vec![1.0, 2.0])
            .submit(&spec);
        match handle.wait() {
            Err(ExecError::Rejected { detail, .. }) => {
                assert!(detail.contains("weights"), "{detail}");
            }
            other => panic!("expected Rejected, got {other:?}"),
        }
    }
}
