//! In-process execution: the engine's streaming seam behind the
//! executor API.

use std::collections::HashSet;
use std::time::Instant;

use chunkpoint_campaign::{run_campaign_streaming, CampaignSpec};

use crate::event::{CampaignEvent, CampaignRun, ExecError};
use crate::handle::{spawn_worker, CampaignHandle};
use crate::util::{check_coverage, enumerate_grid, render_report};
use crate::CampaignExecutor;

/// Runs campaigns in-process on the engine's work-stealing pool
/// (wrapping [`run_campaign_streaming`] with the handle's
/// [`CancelToken`](chunkpoint_campaign::CancelToken)).
///
/// Events are fully live: every scenario emits
/// [`CampaignEvent::ScenarioDone`] and a [`CampaignEvent::Progress`]
/// the moment it completes. The report is byte-identical to the remote
/// and sharded paths at **any** thread count — per-scenario seeds are
/// pre-derived, so threads change wall-clock time only.
#[derive(Debug, Clone)]
pub struct LocalExecutor {
    threads: usize,
}

impl LocalExecutor {
    /// An executor running campaigns on `threads` workers (`0` = all
    /// available cores).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Self { threads }
    }
}

impl CampaignExecutor for LocalExecutor {
    fn submit(&self, spec: &CampaignSpec) -> CampaignHandle {
        let spec = spec.clone();
        let threads = self.threads;
        spawn_worker("local", move |sink, cancel| {
            let started = Instant::now();
            // The engine re-enumerates internally; this up-front pass
            // buys the typed infeasible-spec rejection and the progress
            // total, and is startup-only (bench_exec puts the whole
            // abstraction's overhead at ~0).
            let grid = enumerate_grid(&spec)?;
            let active = spec.active_range(grid.len());
            let total = active.len();
            drop(grid);
            sink.emit(CampaignEvent::Progress { done: 0, total });
            let mut done = 0usize;
            let results =
                run_campaign_streaming(&spec, threads, cancel, &HashSet::new(), |result| {
                    done += 1;
                    sink.emit(CampaignEvent::ScenarioDone(result.clone()));
                    sink.emit(CampaignEvent::Progress { done, total });
                });
            if cancel.is_cancelled() {
                return Err(ExecError::Cancelled);
            }
            check_coverage(&results, &active)?;
            Ok(CampaignRun {
                report: render_report(spec.campaign_seed, &results),
                results,
                scenarios: total,
                elapsed: started.elapsed(),
                dispatches: 0,
                failures: 0,
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chunkpoint_campaign::{run_campaign, SchemeSpec};
    use chunkpoint_core::{MitigationScheme, SystemConfig};
    use chunkpoint_workloads::Benchmark;

    fn small_spec(replicates: u64) -> CampaignSpec {
        let mut config = SystemConfig::paper(0);
        config.scale = 0.25;
        CampaignSpec::new(config, 0xE4EC)
            .benchmarks(&[Benchmark::AdpcmEncode])
            .scheme("Default", SchemeSpec::Fixed(MitigationScheme::Default))
            .scheme("SW-based", SchemeSpec::Fixed(MitigationScheme::SwRestart))
            .replicates(replicates)
    }

    #[test]
    fn local_run_matches_direct_engine_bytes_at_any_thread_count() {
        let spec = small_spec(2);
        let direct = run_campaign(&spec, 1);
        let expected = render_report(spec.campaign_seed, &direct.results);
        for threads in [1, 2] {
            let handle = LocalExecutor::new(threads).submit(&spec);
            let events: Vec<CampaignEvent> = handle.events().collect();
            let run = handle.wait().expect("local run");
            assert_eq!(run.report, expected, "threads {threads}");
            assert_eq!(run.scenarios, direct.results.len());
            assert!(matches!(events.last(), Some(CampaignEvent::Complete)));
            let scenario_events = events
                .iter()
                .filter(|e| matches!(e, CampaignEvent::ScenarioDone(_)))
                .count();
            assert_eq!(scenario_events, run.scenarios);
            assert!(events
                .iter()
                .any(|e| matches!(e, CampaignEvent::Progress { done, total } if done == total)));
        }
    }

    #[test]
    fn cancel_surfaces_as_the_typed_error() {
        let spec = small_spec(24);
        let handle = LocalExecutor::new(1).submit(&spec);
        let mut seen = 0;
        for event in handle.events() {
            if matches!(event, CampaignEvent::ScenarioDone(_)) {
                seen += 1;
                if seen == 2 {
                    handle.cancel();
                }
            }
        }
        match handle.wait() {
            Err(ExecError::Cancelled) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn infeasible_specs_are_rejected_not_panicked() {
        // An optimizer-backed scheme over an impossible area budget
        // panics inside `scenarios()`; the executor must type it.
        let mut config = SystemConfig::paper(0);
        config.scale = 0.25;
        config.constraints.area_overhead = 0.0;
        let spec = CampaignSpec::new(config, 1)
            .benchmarks(&[Benchmark::AdpcmEncode])
            .scheme("Optimal", SchemeSpec::Optimal);
        let handle = LocalExecutor::new(1).submit(&spec);
        match handle.wait() {
            Err(ExecError::Rejected { detail, .. }) => {
                assert!(detail.contains("feasible"), "{detail}");
            }
            other => panic!("expected Rejected, got {other:?}"),
        }
    }
}
