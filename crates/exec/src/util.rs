//! Shared plumbing of the three execution paths: grid enumeration with
//! panic containment, coverage validation, and canonical rendering.

use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};

use chunkpoint_campaign::{canonical_report_json, CampaignSpec, Scenario, ScenarioResult};
use chunkpoint_serve::REPORT_AXES;

use crate::event::ExecError;

/// Enumerates the spec's grid, turning the optimizer's "no feasible
/// design point" panic into the typed rejection every backend would
/// answer with.
pub(crate) fn enumerate_grid(spec: &CampaignSpec) -> Result<Vec<Scenario>, ExecError> {
    catch_unwind(AssertUnwindSafe(|| spec.scenarios())).map_err(|_| ExecError::Rejected {
        backend: None,
        status: None,
        detail: "spec enumerates no feasible grid (optimizer found no design point)".to_owned(),
    })
}

/// Checks that `rows` (scenario-index sorted) cover exactly the
/// scenarios in `active`, once each.
pub(crate) fn check_coverage(
    rows: &[ScenarioResult],
    active: &Range<usize>,
) -> Result<(), ExecError> {
    if rows.len() != active.len() {
        return Err(ExecError::BadMerge {
            detail: format!(
                "collected {} rows for {} scenarios [{}, {})",
                rows.len(),
                active.len(),
                active.start,
                active.end
            ),
        });
    }
    for (expected, row) in active.clone().zip(rows) {
        if row.scenario.index != expected {
            return Err(ExecError::BadMerge {
                detail: format!(
                    "scenario {expected} missing or duplicated (found index {})",
                    row.scenario.index
                ),
            });
        }
    }
    Ok(())
}

/// Renders the canonical timing-free report over `rows` — the exact
/// bytes `serve` caches as `result.json` and the shard coordinator
/// merges to, which is what makes cross-executor byte-identity
/// checkable at all.
pub(crate) fn render_report(campaign_seed: u64, rows: &[ScenarioResult]) -> String {
    canonical_report_json(campaign_seed, rows, &REPORT_AXES).render()
}
