//! The handle a submission returns: observe, cancel, wait.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

use chunkpoint_campaign::CancelToken;
use chunkpoint_telemetry::Counter;

use crate::event::{CampaignEvent, CampaignRun, ExecError};

/// A submitted campaign in flight.
///
/// The handle is the *only* connection to the run: events stream out of
/// [`CampaignHandle::events`], [`CampaignHandle::cancel`] requests a
/// cooperative stop, and [`CampaignHandle::wait`] joins the execution
/// and returns the [`CampaignRun`] (or the typed [`ExecError`]).
///
/// Dropping the handle without waiting detaches the run — it keeps
/// executing to completion in the background (events go nowhere); it
/// does **not** cancel. Cancel explicitly if the work should stop.
#[derive(Debug)]
pub struct CampaignHandle {
    receiver: Receiver<CampaignEvent>,
    cancel: CancelToken,
    worker: JoinHandle<Result<CampaignRun, ExecError>>,
}

impl CampaignHandle {
    /// The campaign's event stream, in emission order.
    ///
    /// The iterator **blocks** on the next event and ends when the run
    /// finishes (successfully or not) — on success the final event is
    /// [`CampaignEvent::Complete`]. Events buffer unboundedly, so a
    /// caller that never drains them loses nothing but memory, and a
    /// caller that only calls [`CampaignHandle::wait`] never deadlocks.
    pub fn events(&self) -> impl Iterator<Item = CampaignEvent> + '_ {
        self.receiver.iter()
    }

    /// Requests cooperative cancellation: the run stops at its next
    /// check point (between scenarios locally, between poll sweeps
    /// remotely — where outstanding backend jobs also receive a
    /// best-effort `DELETE`), and [`CampaignHandle::wait`] returns
    /// [`ExecError::Cancelled`]. Idempotent; safe from any thread.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// Blocks until the campaign finishes and returns its run report.
    ///
    /// # Errors
    ///
    /// The typed [`ExecError`] the execution path failed with —
    /// including [`ExecError::Cancelled`] after a
    /// [`CampaignHandle::cancel`].
    pub fn wait(self) -> Result<CampaignRun, ExecError> {
        self.worker.join().map_err(|_| ExecError::JobFailed {
            backend: None,
            detail: "executor worker panicked".to_owned(),
        })?
    }
}

/// The executor side of a handle's event channel. Send failures are
/// ignored by design: a dropped handle detaches the run, it does not
/// poison it.
pub(crate) struct EventSink {
    sender: Sender<CampaignEvent>,
    /// `exec_events_total{executor=...}` — every event emitted through
    /// this sink, counted whether or not the handle still listens.
    events: Arc<Counter>,
}

impl EventSink {
    /// Emits one event to the handle (no-op once the handle is gone).
    pub(crate) fn emit(&self, event: CampaignEvent) {
        self.events.inc();
        let _ = self.sender.send(event);
    }
}

/// Spawns the worker thread every executor runs its campaign on and
/// wires up the handle: event channel, shared cancel token, and the
/// join handle `wait` consumes. On success the sink emits the final
/// [`CampaignEvent::Complete`] itself, so no executor can forget it;
/// panics inside `run` are caught and surface as
/// [`ExecError::JobFailed`] rather than poisoning `wait`.
///
/// `executor` labels the sink's `exec_events_total` series — the
/// execution path's name (`local` / `remote` / `sharded`), so one
/// scrape shows which paths a process exercised.
pub(crate) fn spawn_worker<F>(executor: &'static str, run: F) -> CampaignHandle
where
    F: FnOnce(&EventSink, &CancelToken) -> Result<CampaignRun, ExecError> + Send + 'static,
{
    let (sender, receiver) = channel();
    let cancel = CancelToken::new();
    let worker_cancel = cancel.clone();
    let events = chunkpoint_telemetry::global().counter_with(
        "exec_events_total",
        &[("executor", executor)],
        "Campaign events emitted per executor path",
    );
    let worker = std::thread::spawn(move || {
        let sink = EventSink { sender, events };
        let outcome = match catch_unwind(AssertUnwindSafe(|| run(&sink, &worker_cancel))) {
            Ok(outcome) => outcome,
            Err(panic) => {
                let detail = panic
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_owned())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "campaign panicked".to_owned());
                Err(ExecError::JobFailed {
                    backend: None,
                    detail: format!("campaign panicked: {detail}"),
                })
            }
        };
        if outcome.is_ok() {
            sink.emit(CampaignEvent::Complete);
        }
        // The sink (and with it the channel sender) drops here, which
        // is what ends the handle's event iterator.
        outcome
    });
    CampaignHandle {
        receiver,
        cancel,
        worker,
    }
}
