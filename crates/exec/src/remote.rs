//! Single-backend remote execution over the typed shard client —
//! submit, poll, fetch, validate, all without a hand-rolled HTTP loop
//! in sight.

use std::time::{Duration, Instant};

use chunkpoint_campaign::seed::GOLDEN_GAMMA;
use chunkpoint_campaign::{CampaignSpec, CancelToken, JsonValue, Scenario};
use chunkpoint_shard::{
    classify_submit, exchange, fetch_journal_rows, Backoff, CircuitBreaker, SubmitOutcome,
};

use std::sync::Arc;

use chunkpoint_telemetry::Counter;

use crate::event::{CampaignEvent, CampaignRun, ExecError};
use crate::handle::{spawn_worker, CampaignHandle, EventSink};
use crate::util::{enumerate_grid, render_report};
use crate::CampaignExecutor;

/// `exec_poll_waits_total{executor="remote"}` — idle status-poll
/// sleeps of the drive loop (the backoff ladder stretches them, so the
/// rate falls as a job stays quiet).
fn poll_waits() -> Arc<Counter> {
    chunkpoint_telemetry::global().counter_with(
        "exec_poll_waits_total",
        &[("executor", "remote")],
        "Idle status-poll sleeps of the remote drive loop",
    )
}

/// `exec_backoff_waits_total{executor="remote"}` — failure-paced
/// sleeps: submit retries, breaker cooldowns, journal-fetch retries.
fn backoff_waits() -> Arc<Counter> {
    chunkpoint_telemetry::global().counter_with(
        "exec_backoff_waits_total",
        &[("executor", "remote")],
        "Failure-paced sleeps of the remote path: submit retries, breaker cooldowns, journal-fetch retries",
    )
}

/// Knobs of the remote path. Defaults suit a LAN `serve` instance.
#[derive(Debug, Clone)]
pub struct RemoteConfig {
    /// Base pause between status polls. The actual sleep follows the
    /// deterministic [`Backoff`] schedule: `poll_interval` while the
    /// backend reports progress, doubling (with seeded jitter) toward
    /// [`RemoteConfig::poll_max`] across idle polls; after a failed
    /// exchange, the backend's circuit breaker paces the retries on
    /// the same ladder.
    pub poll_interval: Duration,
    /// Connect/read/write timeout of every HTTP exchange.
    pub request_timeout: Duration,
    /// Consecutive failed exchanges tolerated before the run gives up
    /// with [`ExecError::Transport`] — a single backend has nowhere to
    /// re-dispatch to.
    pub strikes: u32,
    /// Total job submissions the run may burn (the first dispatch
    /// included) before it gives up with [`ExecError::Exhausted`] —
    /// the terminator for a backend that keeps forgetting (crash loop
    /// over a fresh data dir) or cancelling the job.
    pub submit_attempts: u32,
    /// Cap of the poll/retry backoff ladder.
    pub poll_max: Duration,
    /// Seed of the deterministic backoff jitter — same seed, same poll
    /// cadence and retry schedule, every run.
    pub backoff_seed: u64,
}

impl Default for RemoteConfig {
    fn default() -> Self {
        Self {
            poll_interval: Duration::from_millis(25),
            request_timeout: Duration::from_secs(10),
            strikes: 3,
            submit_attempts: 5,
            poll_max: Duration::from_millis(400),
            backoff_seed: 0,
        }
    }
}

/// Runs campaigns on one remote `serve` backend through the typed
/// [`chunkpoint_shard::client`]: submit the spec, poll the job,
/// fetch and row-validate the journal, and render the canonical
/// report locally.
///
/// [`CampaignEvent::Progress`] streams live as the backend's
/// `completed` count advances; [`CampaignEvent::ScenarioDone`] events
/// arrive in one index-ordered burst after the final journal fetch
/// (the service journals rows, it does not push them). Submitting a
/// spec the backend has cached answers from the content-addressed
/// result store without re-simulating — the same `CampaignRun` comes
/// back, just faster.
///
/// Cancellation `DELETE`s the job on the backend (stopping its
/// campaign between scenarios) and surfaces [`ExecError::Cancelled`].
#[derive(Debug, Clone)]
pub struct RemoteExecutor {
    addr: String,
    config: RemoteConfig,
}

impl RemoteExecutor {
    /// An executor against the `serve` instance at `addr`
    /// (`HOST:PORT`), with default [`RemoteConfig`].
    #[must_use]
    pub fn new(addr: impl Into<String>) -> Self {
        Self {
            addr: addr.into(),
            config: RemoteConfig::default(),
        }
    }

    /// Overrides the poll/timeout/strike knobs.
    #[must_use]
    pub fn with_config(mut self, config: RemoteConfig) -> Self {
        self.config = config;
        self
    }
}

/// One submission (with strike-bounded transport retries): `POST
/// /campaigns`, answering the job id. Response triage is the shared
/// [`classify_submit`] the shard coordinator uses.
fn submit_spec(
    addr: &str,
    body: &str,
    config: &RemoteConfig,
    failures: &mut usize,
) -> Result<String, ExecError> {
    let retry = Backoff::new(
        config.poll_interval,
        config.poll_max,
        config.backoff_seed ^ GOLDEN_GAMMA,
    );
    let mut strikes = 0u32;
    loop {
        match exchange(
            addr,
            "POST",
            "/campaigns",
            Some(body),
            config.request_timeout,
        ) {
            Ok((status, response)) => match classify_submit(status, response) {
                SubmitOutcome::Accepted(id) => return Ok(id),
                SubmitOutcome::Rejected { status, body } => {
                    return Err(ExecError::Rejected {
                        backend: Some(addr.to_owned()),
                        status: Some(status),
                        detail: body,
                    });
                }
                SubmitOutcome::Retryable { detail, .. } => {
                    *failures += 1;
                    strikes += 1;
                    if strikes >= config.strikes {
                        return Err(ExecError::Transport {
                            backend: addr.to_owned(),
                            detail,
                        });
                    }
                }
            },
            Err(e) => {
                *failures += 1;
                strikes += 1;
                if strikes >= config.strikes {
                    return Err(ExecError::transport(addr, &e));
                }
            }
        }
        // Deterministic retry pacing: the first retry waits the base
        // interval, each further strike doubles it (seeded jitter).
        backoff_waits().inc();
        std::thread::sleep(retry.delay(strikes.saturating_sub(1)));
    }
}

/// The remote drive loop, separated from `submit` so the worker
/// closure stays readable.
#[allow(clippy::too_many_lines)]
fn drive_remote(
    spec: &CampaignSpec,
    addr: &str,
    config: &RemoteConfig,
    sink: &EventSink,
    cancel: &CancelToken,
) -> Result<CampaignRun, ExecError> {
    let started = Instant::now();
    let grid: Vec<Scenario> = enumerate_grid(spec)?;
    let active = spec.active_range(grid.len());
    let total = active.len();
    let body = spec.to_json().render();
    let mut failures = 0usize;
    let mut dispatches = 1usize;
    let mut id = submit_spec(addr, &body, config, &mut failures)?;
    sink.emit(CampaignEvent::Progress { done: 0, total });

    // Poll pacing: the backoff stretches the sleep across idle polls;
    // the breaker (threshold 1 — a single backend has no one to fail
    // over to, so any failure starts a cooldown) paces retries after
    // failed exchanges on the same deterministic ladder.
    let epoch = Instant::now();
    let poll = Backoff::new(config.poll_interval, config.poll_max, config.backoff_seed);
    let mut breaker = CircuitBreaker::new(
        1,
        Backoff::new(
            config.poll_interval,
            config.poll_max,
            config.backoff_seed.wrapping_add(GOLDEN_GAMMA),
        ),
    );
    let poll_sleeps = poll_waits();
    let backoff_sleeps = backoff_waits();
    let mut idle_polls = 0u32;
    let mut strikes = 0u32;
    let mut reported = 0usize;
    loop {
        if cancel.is_cancelled() {
            let _ = exchange(
                addr,
                "DELETE",
                &format!("/campaigns/{id}"),
                None,
                config.request_timeout,
            );
            return Err(ExecError::Cancelled);
        }
        // Cooling down after a failure: wait out the breaker window
        // (bounded, so cancellation stays responsive) instead of
        // hammering a backend that just failed.
        if !breaker.ready(epoch.elapsed()) {
            let wait = breaker
                .retry_at()
                .map(|at| at.saturating_sub(epoch.elapsed()))
                .unwrap_or(config.poll_interval)
                .min(config.poll_max)
                .max(Duration::from_millis(1));
            backoff_sleeps.inc();
            std::thread::sleep(wait);
            continue;
        }
        match exchange(
            addr,
            "GET",
            &format!("/campaigns/{id}"),
            None,
            config.request_timeout,
        ) {
            Ok((200, status_body)) => {
                breaker.record_success();
                let doc = JsonValue::parse(&status_body).ok();
                let state = doc
                    .as_ref()
                    .and_then(|d| d.get("status"))
                    .and_then(JsonValue::as_str)
                    .unwrap_or("?")
                    .to_owned();
                let completed = doc
                    .as_ref()
                    .and_then(|d| d.get("completed"))
                    .and_then(JsonValue::as_u64)
                    .unwrap_or(0) as usize;
                if completed > reported && completed <= total {
                    reported = completed;
                    idle_polls = 0; // progress resets the poll backoff
                    sink.emit(CampaignEvent::Progress {
                        done: completed,
                        total,
                    });
                }
                match state.as_str() {
                    "done" => break,
                    "failed" => {
                        return Err(ExecError::JobFailed {
                            backend: Some(addr.to_owned()),
                            detail: status_body,
                        });
                    }
                    // Someone else cancelled the job out from under us:
                    // resubmitting the same spec re-enqueues it and
                    // resumes from its journal (attempt-bounded, or a
                    // backend stuck cancelling would hang us forever).
                    "cancelled" => {
                        if dispatches >= config.submit_attempts as usize {
                            return Err(ExecError::Exhausted {
                                detail: format!(
                                    "job kept getting cancelled on {addr}: burned all {} \
                                     submit attempts",
                                    config.submit_attempts
                                ),
                                partial: None,
                            });
                        }
                        strikes = 0;
                        idle_polls = 0;
                        dispatches += 1;
                        id = submit_spec(addr, &body, config, &mut failures)?;
                    }
                    "queued" | "running" => strikes = 0,
                    // A 200 whose body is not a recognizable status
                    // document is a misbehaving peer — strike it like
                    // any other bad answer, or this loop never ends.
                    _ => {
                        failures += 1;
                        strikes += 1;
                        if strikes >= config.strikes {
                            return Err(ExecError::Transport {
                                backend: addr.to_owned(),
                                detail: format!(
                                    "status poll answered 200 with an unrecognizable \
                                     body: {status_body}"
                                ),
                            });
                        }
                        breaker.record_failure(epoch.elapsed());
                        continue; // the breaker cooldown paces the retry
                    }
                }
            }
            // The backend restarted over a fresh data dir and forgot
            // the job: submit it again (determinism makes the re-run
            // produce identical rows). Attempt-bounded — a backend in
            // a crash loop must surface as a typed error, not a hang.
            Ok((404, _)) => {
                if dispatches >= config.submit_attempts as usize {
                    return Err(ExecError::Exhausted {
                        detail: format!(
                            "{addr} kept forgetting the job: burned all {} submit attempts",
                            config.submit_attempts
                        ),
                        partial: None,
                    });
                }
                idle_polls = 0;
                dispatches += 1;
                id = submit_spec(addr, &body, config, &mut failures)?;
            }
            Ok((status, response)) => {
                failures += 1;
                strikes += 1;
                if strikes >= config.strikes {
                    return Err(ExecError::Transport {
                        backend: addr.to_owned(),
                        detail: format!("status poll answered {status}: {response}"),
                    });
                }
                breaker.record_failure(epoch.elapsed());
                continue;
            }
            Err(e) => {
                failures += 1;
                strikes += 1;
                if strikes >= config.strikes {
                    return Err(ExecError::transport(addr, &e));
                }
                breaker.record_failure(epoch.elapsed());
                continue;
            }
        }
        idle_polls = idle_polls.saturating_add(1);
        poll_sleeps.inc();
        std::thread::sleep(poll.delay(idle_polls.saturating_sub(1)));
    }

    // Fetch + row-validate the journal through the same trust boundary
    // the shard coordinator uses.
    let mut rows = None;
    let mut last_error = String::new();
    for attempt in 0..config.strikes.max(1) {
        match fetch_journal_rows(
            addr,
            &id,
            &grid,
            (active.start, active.end),
            config.request_timeout,
        ) {
            Ok(fetched) => {
                rows = Some(fetched);
                break;
            }
            Err(why) => {
                failures += 1;
                last_error = why;
                backoff_sleeps.inc();
                std::thread::sleep(poll.delay(attempt));
            }
        }
    }
    let rows = rows.ok_or_else(|| ExecError::JobFailed {
        backend: Some(addr.to_owned()),
        detail: format!("done job's journal did not check out: {last_error}"),
    })?;
    for row in &rows {
        sink.emit(CampaignEvent::ScenarioDone(row.clone()));
    }
    sink.emit(CampaignEvent::Progress { done: total, total });
    // No coverage check needed: fetch_journal_rows already guarantees
    // the rows cover exactly [active.start, active.end) in index order.
    Ok(CampaignRun {
        report: render_report(spec.campaign_seed, &rows),
        results: rows,
        scenarios: total,
        elapsed: started.elapsed(),
        dispatches,
        failures,
    })
}

impl CampaignExecutor for RemoteExecutor {
    fn submit(&self, spec: &CampaignSpec) -> CampaignHandle {
        let spec = spec.clone();
        let addr = self.addr.clone();
        let config = self.config.clone();
        spawn_worker("remote", move |sink, cancel| {
            drive_remote(&spec, &addr, &config, sink, cancel)
        })
    }
}
