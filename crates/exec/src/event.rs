//! The typed observation surface of a running campaign: the event
//! stream every executor emits and the one error enum every executor
//! fails with.

use std::time::Duration;

use chunkpoint_campaign::ScenarioResult;
use chunkpoint_shard::{ClientError, PartialCampaign, ShardError};

/// One observable step of a submitted campaign, delivered through
/// [`CampaignHandle::events`](crate::CampaignHandle::events) in the
/// order it happened.
///
/// Every execution path emits [`CampaignEvent::ScenarioDone`] for each
/// scenario, monotone [`CampaignEvent::Progress`] updates ending at
/// `done == total`, and exactly one final [`CampaignEvent::Complete`]
/// on success (never on error or cancellation). The `Shard*` events
/// only occur on the sharded path; *when* `ScenarioDone` events arrive
/// differs by path (live for local, per completed shard for sharded,
/// after the final journal fetch for remote) — their contents do not.
#[derive(Debug, Clone)]
pub enum CampaignEvent {
    /// One scenario finished; the result is exactly the row the
    /// canonical report will carry.
    ScenarioDone(ScenarioResult),
    /// Scenario completion progress. `done` never decreases and ends at
    /// `total` on every successful run.
    Progress {
        /// Scenarios completed so far.
        done: usize,
        /// Scenarios this run executes.
        total: usize,
    },
    /// A shard was assigned to a backend (sharded path, first
    /// dispatch).
    ShardDispatched {
        /// Shard index.
        shard: usize,
        /// The shard's scenario range `[start, end)`.
        range: (usize, usize),
        /// Backend address.
        backend: String,
    },
    /// A shard's job failed on a backend, or — with `shard: None` — the
    /// backend itself struck out (sharded path).
    ShardFailed {
        /// The failed shard, or `None` when the whole backend died.
        shard: Option<usize>,
        /// Backend address.
        backend: String,
        /// What the coordinator observed.
        why: String,
    },
    /// A shard moved to a surviving backend after a failure (sharded
    /// path).
    ShardRedispatched {
        /// Shard index.
        shard: usize,
        /// The shard's scenario range `[start, end)`.
        range: (usize, usize),
        /// Backend address the shard now lives on.
        backend: String,
    },
    /// A straggling shard's range was speculatively double-dispatched
    /// to a second backend (sharded path with speculation enabled;
    /// first sealed rows win).
    SpeculativeDispatch {
        /// Shard index.
        shard: usize,
        /// The shard's scenario range `[start, end)`.
        range: (usize, usize),
        /// Backend the speculative duplicate was submitted to.
        backend: String,
    },
    /// A speculative duplicate sealed its rows before the straggling
    /// primary, whose job was cancelled (sharded path).
    SpeculativeWin {
        /// Shard index.
        shard: usize,
        /// The backend whose duplicate won.
        backend: String,
    },
    /// A shard's range was served whole from the coordinator's result
    /// cache instead of being dispatched (sharded path with a cache
    /// configured). The spliced rows still arrive as
    /// [`CampaignEvent::ScenarioDone`] events right after this one, so
    /// downstream consumers cannot tell cached rows from executed ones
    /// — by design, since the bytes are identical.
    CacheHit {
        /// Shard index.
        shard: usize,
        /// The shard's scenario range `[start, end)`.
        range: (usize, usize),
        /// How many sealed rows the splice supplied.
        rows: usize,
    },
    /// The adaptive controller stopped a grid cell: no further
    /// replicates will be scheduled for it (adaptive path only).
    CellStopped {
        /// Dense cell index in grid-enumeration order.
        cell: usize,
        /// Control round the decision was taken at (1-based).
        round: u32,
        /// Replicates the cell had executed when it stopped.
        replicates: u64,
        /// The cell's CI95 half-width at the stop decision.
        ci95: f64,
        /// `true` when the CI threshold was met; `false` when the cell
        /// simply exhausted its budget or the round limit.
        converged: bool,
    },
    /// The adaptive controller granted freed replicate budget to a
    /// high-variance open cell (adaptive path only).
    Reallocated {
        /// Dense cell index in grid-enumeration order.
        cell: usize,
        /// Control round the grant was made in (1-based).
        round: u32,
        /// Extra replicates granted beyond the cell's base allocation.
        extra: u64,
    },
    /// The campaign finished; [`CampaignHandle::wait`](crate::CampaignHandle::wait)
    /// will return `Ok`. Always the final event of a successful run.
    Complete,
}

impl std::fmt::Display for CampaignEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignEvent::ScenarioDone(result) => {
                write!(
                    f,
                    "scenario {} done ({} · {} · λ={:e})",
                    result.scenario.index,
                    result.scenario.benchmark.name(),
                    result.scenario.scheme_label,
                    result.scenario.error_rate
                )
            }
            CampaignEvent::Progress { done, total } => write!(f, "{done}/{total} scenarios"),
            CampaignEvent::ShardDispatched {
                shard,
                range: (start, end),
                backend,
            } => write!(f, "shard {shard} [{start}, {end}) → {backend}"),
            CampaignEvent::ShardFailed {
                shard: Some(shard),
                backend,
                why,
            } => write!(f, "shard {shard} failed on {backend}: {why}"),
            CampaignEvent::ShardFailed {
                shard: None,
                backend,
                why,
            } => write!(f, "backend {backend} struck out: {why}"),
            CampaignEvent::ShardRedispatched {
                shard,
                range: (start, end),
                backend,
            } => write!(
                f,
                "shard {shard} [{start}, {end}) re-dispatched → {backend}"
            ),
            CampaignEvent::SpeculativeDispatch {
                shard,
                range: (start, end),
                backend,
            } => write!(
                f,
                "shard {shard} [{start}, {end}) speculatively duplicated → {backend}"
            ),
            CampaignEvent::SpeculativeWin { shard, backend } => {
                write!(f, "shard {shard} speculation won on {backend}")
            }
            CampaignEvent::CacheHit {
                shard,
                range: (start, end),
                rows,
            } => write!(
                f,
                "shard {shard} [{start}, {end}) spliced {rows} rows from cache"
            ),
            CampaignEvent::CellStopped {
                cell,
                round,
                replicates,
                ci95,
                converged,
            } => write!(
                f,
                "cell {cell} {} at round {round} ({replicates} replicates, ci95 {ci95:.3e})",
                if *converged {
                    "converged"
                } else {
                    "stopped unconverged"
                }
            ),
            CampaignEvent::Reallocated { cell, round, extra } => {
                write!(
                    f,
                    "cell {cell} granted {extra} extra replicates (round {round})"
                )
            }
            CampaignEvent::Complete => write!(f, "complete"),
        }
    }
}

/// Why a submitted campaign did not produce a [`CampaignRun`] — one
/// enum over every execution path, subsuming the shard coordinator's
/// [`ShardError`], the typed transport [`ClientError`], and the job
/// manager's stringly submit errors.
#[derive(Debug)]
pub enum ExecError {
    /// The executor has no backends to run on.
    NoBackends,
    /// The spec itself was refused — an unenumerable grid, invalid
    /// weights, or a backend 4xx. Retrying cannot help; every backend
    /// would say the same.
    Rejected {
        /// The refusing backend, if one was involved.
        backend: Option<String>,
        /// The HTTP status, if the refusal came over the wire.
        status: Option<u16>,
        /// What was wrong.
        detail: String,
    },
    /// Talking to a backend failed at the transport level and the
    /// executor's retry budget ran out.
    Transport {
        /// The unreachable backend.
        backend: String,
        /// The last transport failure observed.
        detail: String,
    },
    /// Every backend or dispatch attempt was exhausted with work still
    /// outstanding. On the sharded path the completed shards ride along
    /// as a [`PartialCampaign`] — graceful degradation instead of an
    /// opaque error; the remote path has nothing partial to salvage
    /// (its one backend journals server-side) and carries `None`.
    Exhausted {
        /// What the executor saw last.
        detail: String,
        /// Completed ranges, validated rows, and a canonical report
        /// over them (sharded path only).
        partial: Option<Box<PartialCampaign>>,
    },
    /// The campaign ran and failed — a backend reported the job failed,
    /// or a worker panicked.
    JobFailed {
        /// The reporting backend, if any.
        backend: Option<String>,
        /// The failure report.
        detail: String,
    },
    /// The collected rows do not cover the scenarios this run was to
    /// execute exactly once each.
    BadMerge {
        /// What did not line up.
        detail: String,
    },
    /// The run was cancelled through
    /// [`CampaignHandle::cancel`](crate::CampaignHandle::cancel).
    Cancelled,
}

impl ExecError {
    /// Wraps a typed transport failure with the backend it happened
    /// against.
    #[must_use]
    pub fn transport(backend: impl Into<String>, error: &ClientError) -> Self {
        ExecError::Transport {
            backend: backend.into(),
            detail: error.to_string(),
        }
    }
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::NoBackends => write!(f, "no backends to execute on"),
            ExecError::Rejected {
                backend,
                status,
                detail,
            } => {
                write!(f, "spec rejected")?;
                if let Some(backend) = backend {
                    write!(f, " by {backend}")?;
                }
                if let Some(status) = status {
                    write!(f, " ({status})")?;
                }
                write!(f, ": {detail}")
            }
            ExecError::Transport { backend, detail } => {
                write!(f, "transport failure against {backend}: {detail}")
            }
            ExecError::Exhausted { detail, partial } => {
                write!(f, "backends exhausted: {detail}")?;
                if let Some(partial) = partial {
                    write!(
                        f,
                        " ({} scenarios salvaged across {} completed ranges)",
                        partial.scenarios(),
                        partial.completed_ranges.len()
                    )?;
                }
                Ok(())
            }
            ExecError::JobFailed { backend, detail } => {
                write!(f, "campaign failed")?;
                if let Some(backend) = backend {
                    write!(f, " on {backend}")?;
                }
                write!(f, ": {detail}")
            }
            ExecError::BadMerge { detail } => write!(f, "result merge failed: {detail}"),
            ExecError::Cancelled => write!(f, "campaign cancelled"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<ShardError> for ExecError {
    fn from(error: ShardError) -> Self {
        match error {
            ShardError::NoBackends => ExecError::NoBackends,
            ShardError::BadWeights(detail) => ExecError::Rejected {
                backend: None,
                status: None,
                detail: format!("bad backend weights: {detail}"),
            },
            ShardError::Rejected {
                backend,
                status,
                body,
            } => ExecError::Rejected {
                backend: Some(backend),
                status: Some(status),
                detail: body,
            },
            ShardError::Exhausted { detail, partial } => ExecError::Exhausted {
                detail,
                partial: Some(partial),
            },
            ShardError::BadMerge(detail) => ExecError::BadMerge { detail },
            ShardError::Cancelled => ExecError::Cancelled,
        }
    }
}

/// A completed campaign, identical in content across every execution
/// path: the acceptance invariant is that the same spec yields
/// **byte-identical** `report` strings through the local, remote, and
/// sharded executors.
#[derive(Debug, Clone)]
pub struct CampaignRun {
    /// The canonical timing-free report
    /// ([`chunkpoint_campaign::canonical_report_json`] rendered) — a
    /// pure function of the spec, so identical across executors,
    /// thread counts, backend failures, and resumes.
    pub report: String,
    /// Per-scenario rows in scenario-index order.
    pub results: Vec<ScenarioResult>,
    /// Scenarios this run executed.
    pub scenarios: usize,
    /// Wall-clock time from submit to completion.
    pub elapsed: Duration,
    /// Job submissions performed (0 for local; `> shards` on the
    /// sharded path means at least one shard was re-dispatched).
    pub dispatches: usize,
    /// Failed exchanges and failed jobs observed along the way.
    pub failures: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_errors_map_to_typed_exec_errors() {
        assert!(matches!(
            ExecError::from(ShardError::NoBackends),
            ExecError::NoBackends
        ));
        assert!(matches!(
            ExecError::from(ShardError::Cancelled),
            ExecError::Cancelled
        ));
        let rejected = ExecError::from(ShardError::Rejected {
            backend: "127.0.0.1:1".to_owned(),
            status: 400,
            body: "bad spec".to_owned(),
        });
        match rejected {
            ExecError::Rejected {
                backend: Some(backend),
                status: Some(400),
                detail,
            } => {
                assert_eq!(backend, "127.0.0.1:1");
                assert_eq!(detail, "bad spec");
            }
            other => panic!("wrong mapping: {other:?}"),
        }
        let exhausted = ExecError::from(ShardError::Exhausted {
            detail: "all dead".to_owned(),
            partial: Box::new(PartialCampaign {
                completed_ranges: vec![(0, 3)],
                results: Vec::new(),
                report_so_far: String::new(),
            }),
        });
        assert!(exhausted.to_string().contains("all dead"));
        match exhausted {
            ExecError::Exhausted {
                partial: Some(partial),
                ..
            } => assert_eq!(partial.completed_ranges, vec![(0, 3)]),
            other => panic!("partial payload lost: {other:?}"),
        }
    }
}
