//! The acceptance test of the chaos tentpole: real `serve` processes
//! behind the deterministic fault proxy, driven through the unified
//! executor API across a grid of fault plans. Every run must end in one
//! of exactly two states — a report **byte-identical** to the
//! fault-free baseline, or a **typed** error (with salvaged partial
//! results on the sharded path). Never corrupt bytes, never a hang.

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use chunkpoint_campaign::{canonical_report_json, run_campaign, CampaignSpec, SchemeSpec};
use chunkpoint_chaos::{ChaosProxy, FaultKind, FaultPlan};
use chunkpoint_core::{MitigationScheme, SystemConfig};
use chunkpoint_exec::{
    CampaignEvent, CampaignExecutor, ExecError, RemoteConfig, RemoteExecutor, ShardConfig,
    ShardedExecutor,
};
use chunkpoint_serve::REPORT_AXES;
use chunkpoint_workloads::Benchmark;

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("chunkpoint_chaos_{}_{tag}", std::process::id()))
}

/// The `serve` binary lives next to this test binary's parent directory
/// (`target/<profile>/serve`); it belongs to `chunkpoint_serve`, so
/// Cargo does not export a `CARGO_BIN_EXE_serve` for this crate — but a
/// workspace `cargo test`/`cargo build` always compiles it.
fn serve_bin() -> PathBuf {
    let mut path = std::env::current_exe().expect("test binary path");
    path.pop(); // <profile>/deps/
    if path.ends_with("deps") {
        path.pop(); // <profile>/
    }
    let bin = path.join(format!("serve{}", std::env::consts::EXE_SUFFIX));
    assert!(
        bin.is_file(),
        "serve binary not found at {} — build the workspace first (`cargo build`)",
        bin.display()
    );
    bin
}

struct ServeProcess {
    child: Child,
    addr: String,
    data_dir: PathBuf,
    port_file: PathBuf,
}

impl ServeProcess {
    /// Starts a real `serve` on an ephemeral port and waits until it
    /// answers `/healthz`.
    fn start(tag: &str) -> Self {
        let data_dir = temp_dir(&format!("{tag}_data"));
        let port_file = temp_dir(&format!("{tag}_port"));
        let _ = std::fs::remove_dir_all(&data_dir);
        let _ = std::fs::remove_file(&port_file);
        let child = Command::new(serve_bin())
            .args([
                "--addr",
                "127.0.0.1:0",
                "--data-dir",
                data_dir.to_str().expect("utf8 dir"),
                "--port-file",
                port_file.to_str().expect("utf8 path"),
                "--jobs",
                "1",
                "--threads",
                "1",
            ])
            .stdout(Stdio::null())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn serve");
        let deadline = Instant::now() + Duration::from_secs(60);
        let port: u16 = loop {
            if let Ok(raw) = std::fs::read_to_string(&port_file) {
                if let Ok(port) = raw.trim().parse() {
                    break port;
                }
            }
            assert!(Instant::now() < deadline, "serve never wrote its port");
            std::thread::sleep(Duration::from_millis(10));
        };
        let addr = format!("127.0.0.1:{port}");
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            if let Ok((200, _)) =
                chunkpoint_shard::exchange(&addr, "GET", "/healthz", None, Duration::from_secs(5))
            {
                break;
            }
            assert!(Instant::now() < deadline, "serve never became healthy");
            std::thread::sleep(Duration::from_millis(10));
        }
        Self {
            child,
            addr,
            data_dir,
            port_file,
        }
    }

    fn shutdown(&self) {
        let _ = chunkpoint_shard::exchange(
            &self.addr,
            "POST",
            "/shutdown",
            None,
            Duration::from_secs(5),
        );
    }
}

impl Drop for ServeProcess {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        let _ = std::fs::remove_dir_all(&self.data_dir);
        let _ = std::fs::remove_file(&self.port_file);
    }
}

/// A small, fast campaign with a per-run seed: fresh seeds keep each
/// chaos run a real simulation instead of a backend cache hit.
fn chaos_spec(campaign_seed: u64) -> CampaignSpec {
    let mut config = SystemConfig::paper(0);
    config.scale = 0.25;
    CampaignSpec::new(config, campaign_seed)
        .benchmarks(&[Benchmark::AdpcmEncode, Benchmark::AdpcmDecode])
        .scheme("Default", SchemeSpec::Fixed(MitigationScheme::Default))
        .scheme("SW-based", SchemeSpec::Fixed(MitigationScheme::SwRestart))
        .error_rates(&[1e-6, 1e-5])
        .replicates(2)
}

fn expected_report(spec: &CampaignSpec) -> String {
    let reference = run_campaign(spec, 1);
    canonical_report_json(spec.campaign_seed, &reference.results, &REPORT_AXES).render()
}

/// A remote config tuned for chaos: fast polls, and a strike budget
/// sized from the plan itself — `max_fault_run` bounds the longest
/// streak of consecutive faulted connections, so any budget above it
/// deterministically outlasts every streak the plan can produce.
fn surviving_config(plan: &FaultPlan) -> RemoteConfig {
    #[allow(clippy::cast_possible_truncation)]
    let strikes = plan.max_fault_run(512) as u32 + 2;
    RemoteConfig {
        poll_interval: Duration::from_millis(10),
        request_timeout: Duration::from_secs(10),
        strikes,
        submit_attempts: strikes.max(5),
        poll_max: Duration::from_millis(200),
        backoff_seed: plan.seed,
    }
}

/// The headline: a grid of fault plans between the executor and a real
/// `serve`. Mid-rate plans (with a strike budget sized from the plan)
/// must end **byte-identical** to the fault-free baseline; the
/// fault-free plan must too, through the proxy's faithful relay.
#[test]
fn faulted_runs_end_byte_identical_or_not_at_all() {
    // Telemetry live during the chaos grid: the engine sink meters
    // every in-process baseline run while the byte-identity asserts
    // hold — fault handling and metrics are both out-of-band.
    let _ = chunkpoint_telemetry::install_campaign_metrics();
    let backend = ServeProcess::start("grid");
    let plans = [
        FaultPlan::new(0xA1, 0.0),
        FaultPlan::new(0xB2, 0.2),
        FaultPlan::new(0xC3, 0.35),
        FaultPlan::new(0xD4, 0.35),
    ];
    for (index, plan) in plans.into_iter().enumerate() {
        let spec = chaos_spec(0xC0DE + index as u64);
        let expected = expected_report(&spec);
        let config = surviving_config(&plan);
        let seed = plan.seed;
        let rate = plan.rate;
        let mut proxy = ChaosProxy::start(&backend.addr, plan.clone()).expect("start proxy");
        let started = Instant::now();
        let run = RemoteExecutor::new(proxy.addr())
            .with_config(config)
            .submit(&spec)
            .wait()
            .unwrap_or_else(|e| panic!("plan seed {seed:#x} rate {rate}: {e}"));
        assert_eq!(
            run.report, expected,
            "plan seed {seed:#x} rate {rate} changed the report bytes"
        );
        assert!(
            started.elapsed() < Duration::from_secs(120),
            "plan seed {seed:#x} rate {rate} was not wall-clock bounded"
        );
        if rate > 0.0 {
            assert!(
                proxy.faults() > 0,
                "plan seed {seed:#x} rate {rate} never actually faulted"
            );
            // Delay faults (stall, slow-loris) are survived invisibly;
            // every *failure-shaped* fault drawn must have been observed
            // and retried by the executor — never silently consumed.
            let damaging = (0..proxy.connections())
                .filter_map(|i| plan.fault_for(i))
                .filter(|f| !matches!(f.kind, FaultKind::Stall | FaultKind::SlowLoris))
                .count();
            assert!(
                run.failures >= damaging,
                "plan seed {seed:#x}: {damaging} damaging faults but only {} observed failures",
                run.failures
            );
        } else {
            assert_eq!(proxy.faults(), 0, "rate 0.0 must be a faithful relay");
            assert_eq!(run.failures, 0);
        }
        proxy.shutdown();
    }
    backend.shutdown();
}

/// Every connection refused, strike budget too small to outlast it: the
/// run must fail **typed** — and identically on a replay of the same
/// plan seed. This is the reproducibility contract: a chaos failure in
/// CI replays exactly from its seed.
#[test]
fn total_refusal_fails_typed_and_replays_identically() {
    let backend = ServeProcess::start("refuse");
    let spec = chaos_spec(0xDEAD);
    let config = RemoteConfig {
        poll_interval: Duration::from_millis(5),
        request_timeout: Duration::from_secs(2),
        strikes: 3,
        submit_attempts: 2,
        poll_max: Duration::from_millis(50),
        backoff_seed: 7,
    };
    let mut outcomes = Vec::new();
    for _replay in 0..2 {
        let plan = FaultPlan::new(0x5EED, 1.0).kinds(&[FaultKind::Refuse]);
        let proxy = ChaosProxy::start(&backend.addr, plan).expect("start proxy");
        let started = Instant::now();
        let err = RemoteExecutor::new(proxy.addr())
            .with_config(config.clone())
            .submit(&spec)
            .wait()
            .expect_err("total refusal cannot succeed");
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "refusal must strike out fast, not hang"
        );
        assert!(
            matches!(err, ExecError::Transport { .. }),
            "wrong error shape: {err}"
        );
        outcomes.push(std::mem::discriminant(&err));
    }
    assert_eq!(outcomes[0], outcomes[1], "same seed, different outcome");
    backend.shutdown();
}

/// Every response corrupted: the flipped body byte makes the payload
/// invalid UTF-8, so the typed client rejects every exchange — silent
/// corruption is structurally impossible, and the run fails typed.
#[test]
fn corruption_is_always_detected_never_consumed() {
    let backend = ServeProcess::start("corrupt");
    let spec = chaos_spec(0xBADB);
    let plan = FaultPlan::new(0xFACE, 1.0).kinds(&[FaultKind::CorruptByte]);
    let proxy = ChaosProxy::start(&backend.addr, plan).expect("start proxy");
    let err = RemoteExecutor::new(proxy.addr())
        .with_config(RemoteConfig {
            poll_interval: Duration::from_millis(5),
            request_timeout: Duration::from_secs(2),
            strikes: 2,
            submit_attempts: 2,
            poll_max: Duration::from_millis(50),
            backoff_seed: 0,
        })
        .submit(&spec)
        .wait()
        .expect_err("all-corrupted traffic must fail typed");
    let rendered = err.to_string();
    assert!(
        matches!(err, ExecError::Transport { .. }),
        "wrong error shape: {rendered}"
    );
    assert!(proxy.faults() > 0, "the proxy never corrupted anything");
    backend.shutdown();
}

/// Sharded across two backends, each behind its own mid-rate fault
/// proxy: with breaker strike budgets sized from the plans, the
/// coordinator survives every streak and the merged report stays
/// byte-identical to the fault-free baseline.
#[test]
fn sharded_run_survives_faulted_backends_byte_identical() {
    let _ = chunkpoint_telemetry::install_campaign_metrics();
    let backend_a = ServeProcess::start("shard_a");
    let backend_b = ServeProcess::start("shard_b");
    let plan_a = FaultPlan::new(0x11, 0.25);
    let plan_b = FaultPlan::new(0x22, 0.25);
    #[allow(clippy::cast_possible_truncation)]
    let strikes = plan_a.max_fault_run(512).max(plan_b.max_fault_run(512)) as u32 + 2;
    let proxy_a = ChaosProxy::start(&backend_a.addr, plan_a).expect("proxy a");
    let proxy_b = ChaosProxy::start(&backend_b.addr, plan_b).expect("proxy b");
    let spec = chaos_spec(0x54A2D);
    let expected = expected_report(&spec);
    let run = ShardedExecutor::new(vec![proxy_a.addr(), proxy_b.addr()])
        .with_config(ShardConfig {
            poll_interval: Duration::from_millis(10),
            request_timeout: Duration::from_secs(10),
            backend_strikes: strikes,
            shard_attempts: 5,
            poll_max: Duration::from_millis(200),
            breaker_cooldown: Duration::from_millis(25),
            breaker_max: Duration::from_millis(200),
            backoff_seed: 0x33,
            ..ShardConfig::default()
        })
        .submit(&spec)
        .wait()
        .expect("sized strike budget must outlast every fault streak");
    assert_eq!(run.report, expected, "sharded chaos changed the bytes");
    assert!(
        proxy_a.faults() + proxy_b.faults() > 0,
        "neither proxy ever faulted"
    );
    backend_a.shutdown();
    backend_b.shutdown();
}

/// Graceful degradation: shard 0 completes, then every backend dies
/// while shard 1 is still running. The run must fail with the typed
/// `Exhausted` carrying a `PartialCampaign` — shard 0's range, its
/// validated rows, and a canonical report over exactly those rows.
#[test]
fn exhaustion_salvages_completed_shards_as_partial_campaign() {
    let backend_a = ServeProcess::start("partial_a");
    let backend_b = ServeProcess::start("partial_b");
    // Shard 0 tiny (on A, finishes fast); shard 1 huge (on B, still
    // running when the backends die).
    let mut config = SystemConfig::paper(0);
    config.scale = 0.25;
    let spec = CampaignSpec::new(config, 0x9A57)
        .benchmarks(&[Benchmark::AdpcmEncode])
        .scheme("Default", SchemeSpec::Fixed(MitigationScheme::Default))
        .replicates(4000)
        .normalize(false)
        .golden_check(false);
    let handle = ShardedExecutor::new(vec![backend_a.addr.clone(), backend_b.addr.clone()])
        .with_weights(vec![1.0, 63.0])
        .with_config(ShardConfig {
            poll_interval: Duration::from_millis(10),
            request_timeout: Duration::from_secs(2),
            backend_strikes: 2,
            shard_attempts: 2,
            poll_max: Duration::from_millis(100),
            breaker_cooldown: Duration::from_millis(25),
            breaker_max: Duration::from_millis(200),
            backoff_seed: 0,
            ..ShardConfig::default()
        })
        .submit(&spec);
    // Shard 0's rows arrive in one burst the moment its journal is
    // fetched; the first ScenarioDone means shard 0 is complete.
    let mut shard0_range = None;
    let mut events = handle.events();
    for event in events.by_ref() {
        match event {
            CampaignEvent::ShardDispatched {
                shard: 0, range, ..
            } => shard0_range = Some(range),
            CampaignEvent::ScenarioDone(_) => break,
            _ => {}
        }
    }
    let (start, end) = shard0_range.expect("shard 0 was dispatched");
    assert_eq!(start, 0, "weighted partition starts at the grid's front");
    // Pull the rug: both backends gone, shard 1 outstanding.
    backend_a.shutdown();
    backend_b.shutdown();
    drop(events);
    let waited = Instant::now();
    let err = handle.wait().expect_err("no backends left: must fail");
    assert!(
        waited.elapsed() < Duration::from_secs(60),
        "exhaustion must be wall-clock bounded"
    );
    let ExecError::Exhausted {
        partial: Some(partial),
        ..
    } = err
    else {
        panic!("expected Exhausted with a partial campaign, got: {err}");
    };
    assert_eq!(
        partial.completed_ranges,
        vec![(start, end)],
        "exactly shard 0's range must be salvaged"
    );
    assert_eq!(partial.results.len(), end - start);
    assert!(partial
        .results
        .windows(2)
        .all(|w| w[0].scenario.index < w[1].scenario.index));
    // The salvaged report is the canonical report over exactly those
    // rows — byte-deterministic, verifiable against a local run of the
    // same sub-range.
    let reference = run_campaign(&spec.clone().scenario_range(start, end), 1);
    let expected_partial =
        canonical_report_json(spec.campaign_seed, &reference.results, &REPORT_AXES).render();
    assert_eq!(
        partial.report_so_far, expected_partial,
        "salvaged report bytes diverged from a local run of the salvaged range"
    );
}
