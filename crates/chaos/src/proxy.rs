//! The fault-injecting TCP proxy: a store-and-forward relay in front of
//! one upstream (normally a `chunkpoint serve` instance) that misbehaves
//! on exactly the connections its [`FaultPlan`] says to — and relays
//! faithfully on the rest.
//!
//! Store-and-forward (read the whole request, exchange it with the
//! upstream, then replay the response toward the client) is what makes
//! byte-precise faults possible: truncation cuts at a deterministic
//! offset of a fully-known response, corruption flips a deterministic
//! byte, and the faithful path is byte-identical to a direct connection.
//! The stack's `Connection: close` + `Content-Length` discipline means
//! one request/response pair per connection, so "connection" and
//! "exchange" coincide and the plan's connection index is the only
//! coordinate needed.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::plan::{ConnFault, FaultKind, FaultPlan};

/// Cap on a relayed request or response (16 MiB) — the proxy buffers
/// whole messages, so a runaway peer must not balloon it.
const MAX_MESSAGE_BYTES: usize = 16 * 1024 * 1024;

/// Socket timeout for proxy-side reads and writes; a dead peer costs at
/// most this per connection.
const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// A running chaos proxy. Listens on an ephemeral local port, numbers
/// accepted connections `0, 1, 2, …`, and applies
/// [`FaultPlan::fault_for`] of that index to each.
#[derive(Debug)]
pub struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    connections: Arc<AtomicU64>,
    faults: Arc<AtomicU64>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Binds an ephemeral port and starts proxying to `upstream`.
    ///
    /// # Errors
    ///
    /// Propagates bind failures; a bad `upstream` address surfaces
    /// per-connection (as faults the client must survive), not here.
    pub fn start(upstream: &str, plan: FaultPlan) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let connections = Arc::new(AtomicU64::new(0));
        let faults = Arc::new(AtomicU64::new(0));
        let accept_thread = {
            let upstream = upstream.to_owned();
            let stop = Arc::clone(&stop);
            let connections = Arc::clone(&connections);
            let faults = Arc::clone(&faults);
            std::thread::spawn(move || {
                accept_loop(&listener, &upstream, &plan, &stop, &connections, &faults);
            })
        };
        Ok(Self {
            addr,
            stop,
            connections,
            faults,
            accept_thread: Some(accept_thread),
        })
    }

    /// The proxy's listen address — point clients here instead of at the
    /// upstream.
    #[must_use]
    pub fn addr(&self) -> String {
        self.addr.to_string()
    }

    /// Connections accepted so far (the next connection's plan index).
    #[must_use]
    pub fn connections(&self) -> u64 {
        self.connections.load(Ordering::Acquire)
    }

    /// Connections that drew a fault so far.
    #[must_use]
    pub fn faults(&self) -> u64 {
        self.faults.load(Ordering::Acquire)
    }

    /// Stops accepting and joins the accept thread. In-flight faulted
    /// connections notice the stop flag at their next sleep boundary.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Knock to unblock the (blocking) accept.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    upstream: &str,
    plan: &FaultPlan,
    stop: &Arc<AtomicBool>,
    connections: &Arc<AtomicU64>,
    faults: &Arc<AtomicU64>,
) {
    loop {
        let Ok((stream, _peer)) = listener.accept() else {
            if stop.load(Ordering::Acquire) {
                return;
            }
            std::thread::sleep(Duration::from_millis(10));
            continue;
        };
        if stop.load(Ordering::Acquire) {
            return; // the shutdown knock
        }
        let index = connections.fetch_add(1, Ordering::AcqRel);
        let fault = plan.fault_for(index);
        if fault.is_some() {
            faults.fetch_add(1, Ordering::AcqRel);
        }
        let upstream = upstream.to_owned();
        let stop = Arc::clone(stop);
        let dribble_pause = plan.dribble_pause;
        let stall = plan.stall;
        std::thread::spawn(move || {
            handle(stream, &upstream, fault, stall, dribble_pause, &stop);
        });
    }
}

/// Drives one proxied connection through its assigned fault (or a
/// faithful relay). All errors are swallowed: a broken pipe mid-fault is
/// indistinguishable from the fault itself, which is the point.
fn handle(
    mut client: TcpStream,
    upstream: &str,
    fault: Option<ConnFault>,
    stall: Duration,
    dribble_pause: Duration,
    stop: &AtomicBool,
) {
    let _ = client.set_read_timeout(Some(IO_TIMEOUT));
    let _ = client.set_write_timeout(Some(IO_TIMEOUT));

    // Connection-level faults act before any relaying.
    match fault.map(|f| f.kind) {
        Some(FaultKind::Refuse) => {
            // Close without reading: the client sees a reset or an EOF
            // before the status line.
            let _ = client.shutdown(Shutdown::Both);
            return;
        }
        Some(FaultKind::AcceptThenClose) => {
            let _ = read_http_message(&mut client);
            let _ = client.shutdown(Shutdown::Both);
            return;
        }
        Some(FaultKind::Inject500) => {
            let _ = read_http_message(&mut client);
            let body = r#"{"error":"injected fault"}"#;
            let _ = write!(
                client,
                "HTTP/1.1 500 Internal Server Error\r\nContent-Type: application/json\r\n\
                 Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len()
            );
            return;
        }
        _ => {}
    }

    // Store-and-forward: whole request in, whole response back.
    let Some(request) = read_http_message(&mut client) else {
        return;
    };
    let Ok(mut server) = TcpStream::connect(upstream) else {
        // Upstream genuinely down: behave like Refuse.
        let _ = client.shutdown(Shutdown::Both);
        return;
    };
    let _ = server.set_read_timeout(Some(IO_TIMEOUT));
    let _ = server.set_write_timeout(Some(IO_TIMEOUT));
    if server.write_all(&request).is_err() {
        return;
    }
    let _ = server.shutdown(Shutdown::Write);
    let mut response = Vec::new();
    let _ = server
        .take(MAX_MESSAGE_BYTES as u64)
        .read_to_end(&mut response);
    if response.is_empty() {
        return;
    }

    match fault {
        None
        | Some(ConnFault {
            kind: FaultKind::Refuse | FaultKind::AcceptThenClose | FaultKind::Inject500,
            ..
        }) => {
            let _ = client.write_all(&response);
        }
        Some(ConnFault {
            kind: FaultKind::Stall,
            ..
        }) => {
            sleep_unless_stopped(stall, stop);
            let _ = client.write_all(&response);
        }
        Some(ConnFault {
            kind: FaultKind::TruncateHead,
            entropy,
        }) => {
            // Cut strictly inside the head: past the first byte, before
            // the head terminator — the client can never parse a
            // complete head.
            let head_len = head_end(&response).unwrap_or(response.len());
            let cut = 1 + (entropy as usize) % head_len.max(2).saturating_sub(1);
            let _ = client.write_all(&response[..cut]);
        }
        Some(ConnFault {
            kind: FaultKind::TruncateBody,
            ..
        }) => {
            // Full head, half body: a tear the client's Content-Length
            // check must catch.
            let body_start = head_end(&response).unwrap_or(response.len());
            let body_len = response.len() - body_start;
            let _ = client.write_all(&response[..body_start + body_len / 2]);
        }
        Some(ConnFault {
            kind: FaultKind::CorruptByte,
            entropy,
        }) => {
            let mut damaged = response;
            let body_start = head_end(&damaged).unwrap_or(damaged.len());
            // Flip the high bit of one byte. Every chunkpoint payload is
            // ASCII JSON, so a body flip is guaranteed invalid UTF-8 —
            // detected, never silently consumed. Bodiless responses get
            // a head flip instead (a torn head, equally typed).
            let target = if body_start < damaged.len() {
                body_start + (entropy as usize) % (damaged.len() - body_start)
            } else {
                (entropy as usize) % damaged.len()
            };
            damaged[target] ^= 0x80;
            let _ = client.write_all(&damaged);
        }
        Some(ConnFault {
            kind: FaultKind::SlowLoris,
            ..
        }) => {
            for chunk in response.chunks(1) {
                if stop.load(Ordering::Acquire) {
                    return;
                }
                if client.write_all(chunk).is_err() {
                    return;
                }
                std::thread::sleep(dribble_pause);
            }
        }
    }
    let _ = client.shutdown(Shutdown::Both);
}

/// Sleeps `total` in small slices, bailing early on shutdown.
fn sleep_unless_stopped(total: Duration, stop: &AtomicBool) {
    let slice = Duration::from_millis(10);
    let mut remaining = total;
    while !remaining.is_zero() {
        if stop.load(Ordering::Acquire) {
            return;
        }
        let step = remaining.min(slice);
        std::thread::sleep(step);
        remaining -= step;
    }
}

/// Index just past the `\r\n\r\n` head terminator, if present.
fn head_end(message: &[u8]) -> Option<usize> {
    message
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|at| at + 4)
}

/// Reads one `Content-Length`-framed HTTP message (request or response)
/// from `stream`: head through `\r\n\r\n`, then exactly the declared
/// body. Returns `None` on any tear, timeout, or cap overflow — the
/// caller drops the connection, which for a proxy is the right answer
/// to every malformed input.
fn read_http_message(stream: &mut TcpStream) -> Option<Vec<u8>> {
    let mut message = Vec::new();
    let mut chunk = [0u8; 4096];
    let body_start = loop {
        if let Some(end) = head_end(&message) {
            break end;
        }
        if message.len() > MAX_MESSAGE_BYTES {
            return None;
        }
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return None,
            Ok(n) => message.extend_from_slice(&chunk[..n]),
        }
    };
    let head = String::from_utf8_lossy(&message[..body_start]);
    let content_length = head
        .lines()
        .find_map(|line| {
            let (name, value) = line.split_once(':')?;
            name.eq_ignore_ascii_case("content-length")
                .then(|| value.trim().parse::<usize>())
        })
        .transpose()
        .ok()?
        .unwrap_or(0);
    if content_length > MAX_MESSAGE_BYTES {
        return None;
    }
    let total = body_start + content_length;
    while message.len() < total {
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return None,
            Ok(n) => message.extend_from_slice(&chunk[..n]),
        }
    }
    message.truncate(total);
    Some(message)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_end_finds_the_terminator() {
        assert_eq!(head_end(b"HTTP/1.1 200 OK\r\n\r\nbody"), Some(19));
        assert_eq!(head_end(b"HTTP/1.1 200 OK\r\n"), None);
        assert_eq!(head_end(b""), None);
    }

    /// A tiny upstream echoing a fixed JSON body, plus a faithful proxy:
    /// the relayed bytes must match a direct exchange exactly.
    #[test]
    fn faithful_relay_is_byte_identical() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind upstream");
        let upstream_addr = listener.local_addr().expect("addr").to_string();
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(mut stream) = stream else { break };
                std::thread::spawn(move || {
                    if read_http_message(&mut stream).is_some() {
                        let body = r#"{"status":"ok"}"#;
                        let _ = write!(
                            stream,
                            "HTTP/1.1 200 OK\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                            body.len()
                        );
                    }
                });
            }
        });
        let exchange = |addr: &str| -> Vec<u8> {
            let mut stream = TcpStream::connect(addr).expect("connect");
            write!(stream, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").expect("send");
            let mut response = Vec::new();
            stream.read_to_end(&mut response).expect("read");
            response
        };
        let direct = exchange(&upstream_addr);
        let proxy = ChaosProxy::start(&upstream_addr, FaultPlan::new(0, 0.0)).expect("proxy");
        let relayed = exchange(&proxy.addr());
        assert_eq!(direct, relayed);
        assert_eq!(proxy.connections(), 1);
        assert_eq!(proxy.faults(), 0);
    }
}
