//! # chunkpoint_chaos — deterministic fault injection for the service stack
//!
//! The campaign stack's load-bearing invariant is that every execution
//! path — local, remote, sharded, resumed, and now *faulted* — ends in
//! one of exactly two states: a **byte-identical canonical report**, or
//! a **typed error** (possibly carrying a `PartialCampaign` of the
//! completed ranges, on the sharded path). Never
//! corrupt bytes, never a hang. This crate supplies the adversary that
//! proves it: a TCP proxy that sits between any HTTP client in the
//! stack and a `serve` instance, misbehaving on a **seeded, replayable
//! schedule**.
//!
//! Determinism is the design center, inherited from the campaign
//! engine's own seed discipline: which connection faults, which fault
//! it draws, which byte gets corrupted, where a truncation cuts — all
//! are pure functions of `(plan_seed, connection_index)` through the
//! same SplitMix64 derivation used for scenario seeds. A chaos failure
//! in CI is reproduced exactly by re-running with the printed seed.
//!
//! ```no_run
//! use chunkpoint_chaos::{ChaosProxy, FaultPlan};
//!
//! // 30% of connections misbehave, drawn from the full fault palette.
//! let plan = FaultPlan::new(0xBAD5EED, 0.3);
//! // A client with more strikes than the longest fault streak always
//! // survives this plan (deterministically):
//! let strikes = plan.max_fault_run(512) + 1;
//! let proxy = ChaosProxy::start("127.0.0.1:8077", plan).expect("bind proxy");
//! println!("point clients at {} (survives with {strikes} strikes)", proxy.addr());
//! ```
//!
//! The `chaos` binary wraps the same proxy for shell use (CI smoke
//! tests front a real `serve` process with it).

pub mod plan;
pub mod proxy;

pub use plan::{ConnFault, FaultKind, FaultPlan};
pub use proxy::ChaosProxy;
