//! Deterministic fault plans: which fault (if any) hits connection `n`
//! is a pure function of `(plan_seed, n)`, using the same SplitMix64
//! derivation discipline as scenario seeds — so a failing chaos run is
//! replayed exactly by re-running with the same seed, and a fault
//! schedule can be analyzed (e.g. longest fault run) without opening a
//! single socket.

use chunkpoint_campaign::seed::{mix64, GOLDEN_GAMMA};

/// One way a proxied connection can go wrong.
///
/// The variants cover the observable failure surface of a TCP backend:
/// connection-level faults (refused, accepted-then-closed), response
/// tearing (head or body truncation), payload damage (a corrupted body
/// byte), time faults (a fixed stall, a slow-loris dribble), and an
/// application-level injected `500`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Close the client connection immediately, before reading anything
    /// — observed as connection refused / reset.
    Refuse,
    /// Read the request, then close without answering a byte.
    AcceptThenClose,
    /// Relay the response but cut it off inside the head (status line +
    /// a partial header), then close.
    TruncateHead,
    /// Relay the full head but only half the body, then close.
    TruncateBody,
    /// Relay the response with one body byte XORed with `0x80` — always
    /// detectable, because every chunkpoint payload is ASCII JSON and
    /// the flip makes the body invalid UTF-8.
    CorruptByte,
    /// Sleep a fixed delay before relaying anything, then answer
    /// faithfully.
    Stall,
    /// Dribble the faithful response one byte at a time with a pause
    /// between bytes (the slow-loris shape, server-to-client).
    SlowLoris,
    /// Ignore the upstream entirely and answer a canned `500`.
    Inject500,
}

impl FaultKind {
    /// Every kind, in the canonical order used by index-based selection
    /// and the `--kinds` CLI flag.
    pub const ALL: [FaultKind; 8] = [
        FaultKind::Refuse,
        FaultKind::AcceptThenClose,
        FaultKind::TruncateHead,
        FaultKind::TruncateBody,
        FaultKind::CorruptByte,
        FaultKind::Stall,
        FaultKind::SlowLoris,
        FaultKind::Inject500,
    ];

    /// Canonical lowercase name (CLI `--kinds` vocabulary).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Refuse => "refuse",
            FaultKind::AcceptThenClose => "close",
            FaultKind::TruncateHead => "truncate-head",
            FaultKind::TruncateBody => "truncate-body",
            FaultKind::CorruptByte => "corrupt",
            FaultKind::Stall => "stall",
            FaultKind::SlowLoris => "slow-loris",
            FaultKind::Inject500 => "inject-500",
        }
    }

    /// Parses a canonical name back to its kind.
    #[must_use]
    pub fn from_name(name: &str) -> Option<FaultKind> {
        FaultKind::ALL.iter().copied().find(|k| k.name() == name)
    }
}

/// The fault assigned to one connection: its kind plus 64 bits of
/// connection-specific entropy for intra-fault decisions (which byte to
/// corrupt, where to cut a truncated head).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnFault {
    /// What goes wrong.
    pub kind: FaultKind,
    /// Connection-specific entropy, derived — like the kind — purely
    /// from `(plan_seed, connection_index)`.
    pub entropy: u64,
}

/// A seeded, replayable schedule of connection faults.
///
/// `fault_for(n)` is a pure function: connection `n` draws two
/// SplitMix64 outputs from the stream seeded with `seed` — one deciding
/// *whether* it faults (against `rate`), one deciding *which* fault and
/// carrying the entropy. Two proxies built from the same plan misbehave
/// identically, byte for byte and sleep for sleep.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Stream seed; the whole schedule derives from it.
    pub seed: u64,
    /// Fraction of connections faulted, in `[0, 1]`. `1.0` faults every
    /// connection; `0.0` is a faithful relay.
    pub rate: f64,
    /// The fault kinds this plan draws from (uniformly, by the second
    /// SplitMix64 draw). Empty means no faults regardless of `rate`.
    pub kinds: Vec<FaultKind>,
    /// Sleep for [`FaultKind::Stall`].
    pub stall: std::time::Duration,
    /// Inter-byte pause for [`FaultKind::SlowLoris`].
    pub dribble_pause: std::time::Duration,
}

impl FaultPlan {
    /// A plan over every fault kind with 50 ms stalls and 1 ms dribble
    /// pauses — aggressive enough to bite, bounded enough for tests.
    #[must_use]
    pub fn new(seed: u64, rate: f64) -> Self {
        Self {
            seed,
            rate: rate.clamp(0.0, 1.0),
            kinds: FaultKind::ALL.to_vec(),
            stall: std::time::Duration::from_millis(50),
            dribble_pause: std::time::Duration::from_millis(1),
        }
    }

    /// Restricts the plan to the given kinds.
    #[must_use]
    pub fn kinds(mut self, kinds: &[FaultKind]) -> Self {
        self.kinds = kinds.to_vec();
        self
    }

    /// The `index`-th output of SplitMix64(`seed`) — the same stream
    /// discipline as scenario seed derivation.
    fn draw(&self, index: u64) -> u64 {
        mix64(
            self.seed
                .wrapping_add(index.wrapping_add(1).wrapping_mul(GOLDEN_GAMMA)),
        )
    }

    /// The fault (if any) for connection `connection_index` — pure,
    /// stateless, replayable.
    #[must_use]
    pub fn fault_for(&self, connection_index: u64) -> Option<ConnFault> {
        if self.kinds.is_empty() || self.rate <= 0.0 {
            return None;
        }
        // Two draws per connection: gate, then kind + entropy.
        let gate = self.draw(connection_index.wrapping_mul(2));
        // Top 53 bits → an IEEE-exact uniform in [0, 1).
        #[allow(clippy::cast_precision_loss)]
        let unit = (gate >> 11) as f64 / (1u64 << 53) as f64;
        if unit >= self.rate {
            return None;
        }
        let pick = self.draw(connection_index.wrapping_mul(2).wrapping_add(1));
        let kind = self.kinds[(pick % self.kinds.len() as u64) as usize];
        Some(ConnFault {
            kind,
            entropy: mix64(pick),
        })
    }

    /// The longest run of consecutive faulted connections among the
    /// first `n` — what a retrying client must outlast. A client whose
    /// strike budget exceeds this is guaranteed (deterministically, for
    /// this plan) to get a clean connection before striking out.
    #[must_use]
    pub fn max_fault_run(&self, n: u64) -> u64 {
        let mut longest = 0;
        let mut current = 0;
        for index in 0..n {
            if self.fault_for(index).is_some() {
                current += 1;
                longest = longest.max(current);
            } else {
                current = 0;
            }
        }
        longest
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let a = FaultPlan::new(0xC0FFEE, 0.4);
        let b = FaultPlan::new(0xC0FFEE, 0.4);
        for index in 0..256 {
            assert_eq!(a.fault_for(index), b.fault_for(index));
        }
    }

    #[test]
    fn rate_bounds_are_exact() {
        let never = FaultPlan::new(7, 0.0);
        let always = FaultPlan::new(7, 1.0);
        for index in 0..256 {
            assert!(never.fault_for(index).is_none());
            assert!(always.fault_for(index).is_some());
        }
        assert_eq!(never.max_fault_run(256), 0);
        assert_eq!(always.max_fault_run(256), 256);
    }

    #[test]
    fn mid_rate_hits_roughly_the_rate_and_every_kind() {
        let plan = FaultPlan::new(0xDECADE, 0.5);
        let faults: Vec<ConnFault> = (0..4096).filter_map(|i| plan.fault_for(i)).collect();
        let frac = faults.len() as f64 / 4096.0;
        assert!((frac - 0.5).abs() < 0.05, "fault fraction {frac}");
        for kind in FaultKind::ALL {
            assert!(
                faults.iter().any(|f| f.kind == kind),
                "{} never drawn",
                kind.name()
            );
        }
    }

    #[test]
    fn restricted_kinds_only_draw_those() {
        let plan = FaultPlan::new(3, 1.0).kinds(&[FaultKind::Stall, FaultKind::Inject500]);
        for index in 0..128 {
            let fault = plan.fault_for(index).expect("rate 1.0 always faults");
            assert!(matches!(
                fault.kind,
                FaultKind::Stall | FaultKind::Inject500
            ));
        }
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in FaultKind::ALL {
            assert_eq!(FaultKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(FaultKind::from_name("nope"), None);
    }
}
