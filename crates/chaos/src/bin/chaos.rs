//! The `chaos` binary: a deterministic fault-injecting TCP proxy in
//! front of one upstream.
//!
//! ```text
//! chaos --upstream HOST:PORT [--seed N] [--rate F] [--kinds LIST]
//!       [--stall-ms N] [--dribble-ms N] [--port-file PATH]
//! ```
//!
//! Point any chunkpoint client (`shard`, the executor, `curl`) at the
//! printed address instead of the upstream. The fault schedule is a
//! pure function of `--seed` and the connection index, so a failing run
//! replays exactly. Shut down with SIGTERM/SIGKILL — the proxy holds no
//! state worth draining.

use std::path::PathBuf;
use std::time::Duration;

use chunkpoint_chaos::{ChaosProxy, FaultKind, FaultPlan};

const USAGE: &str = "chunkpoint chaos proxy:
  --upstream HOST:PORT  address to proxy to (required)
  --seed N              fault plan seed (default 0)
  --rate F              fraction of connections faulted, 0..=1 (default 0.3)
  --kinds LIST          comma-separated fault kinds (default: all of
                        refuse,close,truncate-head,truncate-body,corrupt,
                        stall,slow-loris,inject-500)
  --stall-ms N          stall fault delay in milliseconds (default 50)
  --dribble-ms N        slow-loris inter-byte pause in milliseconds (default 1)
  --port-file PATH      write the bound port here once listening
  --help                this text";

struct Args {
    upstream: String,
    plan: FaultPlan,
    port_file: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut upstream = None;
    let mut seed = 0u64;
    let mut rate = 0.3f64;
    let mut kinds = FaultKind::ALL.to_vec();
    let mut stall = Duration::from_millis(50);
    let mut dribble = Duration::from_millis(1);
    let mut port_file = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value_of = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value\n\n{USAGE}"))
        };
        match flag.as_str() {
            "--upstream" => upstream = Some(value_of("--upstream")?),
            "--seed" => {
                seed = value_of("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}\n\n{USAGE}"))?;
            }
            "--rate" => {
                rate = value_of("--rate")?
                    .parse()
                    .map_err(|e| format!("--rate: {e}\n\n{USAGE}"))?;
                if !(0.0..=1.0).contains(&rate) {
                    return Err(format!("--rate must be within 0..=1\n\n{USAGE}"));
                }
            }
            "--kinds" => {
                kinds = value_of("--kinds")?
                    .split(',')
                    .map(str::trim)
                    .filter(|part| !part.is_empty())
                    .map(|name| {
                        FaultKind::from_name(name)
                            .ok_or_else(|| format!("--kinds: unknown kind {name:?}\n\n{USAGE}"))
                    })
                    .collect::<Result<Vec<FaultKind>, String>>()?;
            }
            "--stall-ms" => {
                let ms: u64 = value_of("--stall-ms")?
                    .parse()
                    .map_err(|e| format!("--stall-ms: {e}\n\n{USAGE}"))?;
                stall = Duration::from_millis(ms);
            }
            "--dribble-ms" => {
                let ms: u64 = value_of("--dribble-ms")?
                    .parse()
                    .map_err(|e| format!("--dribble-ms: {e}\n\n{USAGE}"))?;
                dribble = Duration::from_millis(ms);
            }
            "--port-file" => port_file = Some(PathBuf::from(value_of("--port-file")?)),
            "--help" | "-h" => return Err(USAGE.to_owned()),
            other => return Err(format!("unknown flag {other}\n\n{USAGE}")),
        }
    }
    let upstream = upstream.ok_or_else(|| format!("--upstream is required\n\n{USAGE}"))?;
    let mut plan = FaultPlan::new(seed, rate).kinds(&kinds);
    plan.stall = stall;
    plan.dribble_pause = dribble;
    Ok(Args {
        upstream,
        plan,
        port_file,
    })
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(if message == USAGE { 0 } else { 2 });
        }
    };
    let kinds = args
        .plan
        .kinds
        .iter()
        .map(|kind| kind.name())
        .collect::<Vec<_>>()
        .join(",");
    let seed = args.plan.seed;
    let rate = args.plan.rate;
    let proxy = match ChaosProxy::start(&args.upstream, args.plan) {
        Ok(proxy) => proxy,
        Err(e) => {
            eprintln!("chaos: binding proxy: {e}");
            std::process::exit(1);
        }
    };
    let addr = proxy.addr();
    if let Some(path) = &args.port_file {
        let port = addr.rsplit(':').next().unwrap_or_default();
        if let Err(e) = std::fs::write(path, format!("{port}\n")) {
            eprintln!("chaos: writing {}: {e}", path.display());
            std::process::exit(1);
        }
    }
    println!(
        "chaos: {addr} -> {} (seed {seed}, rate {rate}, kinds {kinds})",
        args.upstream
    );
    // The proxy runs on its own threads; park forever (kill to stop).
    loop {
        std::thread::park();
    }
}
