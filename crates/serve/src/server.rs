//! The HTTP front: bind, accept, route, and gracefully shut down.
//!
//! Endpoints:
//!
//! | Method & path                | Meaning                                      |
//! |------------------------------|----------------------------------------------|
//! | `POST /campaigns`            | submit a spec (body: canonical spec JSON)    |
//! | `GET /campaigns/:id`         | job status                                   |
//! | `GET /campaigns/:id/result`  | final report (cache-served once done)        |
//! | `GET /campaigns/:id/journal` | sealed per-scenario rows journaled so far    |
//! | `DELETE /campaigns/:id`      | cancel and remove a job                      |
//! | `GET /healthz`               | liveness + job counts + uptime               |
//! | `GET /metrics`               | Prometheus-style text exposition             |
//! | `POST /shutdown`             | graceful shutdown (used by CI and tests)     |
//!
//! Connections are handled one request each (`Connection: close`) on
//! short-lived threads; campaign execution happens on the job manager's
//! bounded runner pool, so a slow client can never stall a simulation
//! and vice versa.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use chunkpoint_campaign::{CampaignSpec, JsonValue};
use chunkpoint_telemetry::{
    install_campaign_metrics_traced, render_text, Span, Tracer, SCENARIO_WALL_BUCKETS,
};

use crate::http::{read_request, Request, Response};
use crate::jobs::{JobManager, SubmitError};
use crate::metrics::{endpoint_of, metrics};
use crate::store::JobStore;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`host:port`; port `0` picks an ephemeral port).
    pub addr: String,
    /// Store root; journals and cached results live here across
    /// restarts.
    pub data_dir: PathBuf,
    /// Concurrent campaign jobs (runner threads).
    pub max_jobs: usize,
    /// Worker threads per campaign (`0` = all cores).
    pub campaign_threads: usize,
    /// Admission bound: *new* submissions are shed with `429 +
    /// Retry-After` while this many jobs are queued (`0` = unbounded).
    /// Joins, cache hits, and recovered jobs are never shed.
    pub max_queued: usize,
    /// Trace sink: when set, structured span/event records are written
    /// as JSON lines to this file (created/truncated at bind).
    pub trace_out: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:8077".to_owned(),
            data_dir: PathBuf::from("chunkpoint-serve-data"),
            max_jobs: 2,
            campaign_threads: 0,
            max_queued: 1024,
            trace_out: None,
        }
    }
}

/// A bound, recovered, not-yet-serving service.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    manager: Arc<JobManager>,
    stop: Arc<AtomicBool>,
    runners: Vec<JoinHandle<()>>,
    started: Instant,
    serve_span: Arc<Span>,
}

impl Server {
    /// Binds the listener, opens the store, recovers persisted jobs
    /// (journaled-but-unfinished campaigns re-enqueue and will resume),
    /// spawns the runner pool, and wires the campaign engine's
    /// telemetry seam into the process-wide metrics registry.
    ///
    /// # Errors
    ///
    /// Propagates bind/store/trace-sink I/O errors.
    pub fn bind(config: &ServeConfig) -> std::io::Result<Self> {
        let tracer = match &config.trace_out {
            Some(path) => Tracer::to_file(path)?,
            None => Tracer::disabled(),
        };
        // The process root span opens first so the trace's first record
        // is always the `serve` span_begin; everything else hangs off it.
        let serve_span = Arc::new(tracer.root("serve"));
        // Idempotent (first caller wins): scenario wall-time histograms,
        // pool queue-depth gauges, and expect-verdict counters record
        // for every campaign this process runs; under a trace sink each
        // expect verdict also lands as an `expect_evaluated` span event.
        // Strictly out-of-band — results are unaffected.
        let _ = install_campaign_metrics_traced(serve_span.child("campaign"));
        // Register the request/job metric surface eagerly so the very
        // first `/metrics` scrape already exposes every series at zero
        // (scrapers difference counters; absent-then-present reads as
        // a reset).
        let _ = metrics();
        let store = JobStore::open(&config.data_dir)?;
        let manager = JobManager::recover(store, config.campaign_threads, config.max_queued);
        let runners = manager.spawn_runners(config.max_jobs);
        let listener = TcpListener::bind(&config.addr)?;
        Ok(Self {
            listener,
            manager,
            stop: Arc::new(AtomicBool::new(false)),
            runners,
            started: Instant::now(),
            serve_span,
        })
    }

    /// The bound address (useful with port `0`).
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failures.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until a `POST /shutdown` arrives, then drains: stops
    /// accepting, cancels running campaigns (journals keep them
    /// resumable), and joins every runner thread before returning.
    pub fn run(self) {
        let Server {
            listener,
            manager,
            stop,
            runners,
            started,
            serve_span,
        } = self;
        loop {
            let stream = match listener.accept() {
                Ok((stream, _peer)) => stream,
                Err(_) => {
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(20));
                    continue;
                }
            };
            // The /shutdown handler sets the flag and then knocks with a
            // bare connection to unblock this accept; checking after the
            // accept turns that knock into the exit.
            if stop.load(Ordering::Acquire) {
                break;
            }
            let manager = Arc::clone(&manager);
            let stop = Arc::clone(&stop);
            let serve_span = Arc::clone(&serve_span);
            std::thread::spawn(move || {
                handle_connection(stream, &manager, &stop, started, &serve_span);
            });
        }
        manager.shutdown(runners);
    }
}

fn handle_connection(
    mut stream: TcpStream,
    manager: &JobManager,
    stop: &AtomicBool,
    started: Instant,
    serve_span: &chunkpoint_telemetry::Span,
) {
    let t0 = Instant::now();
    let request = match read_request(&mut stream) {
        Ok(Ok(request)) => request,
        Ok(Err(bad_request)) => {
            // Protocol violations (408 slow-loris, 413, malformed
            // framing) never reach the router; meter them under "bad".
            if bad_request.status == 408 {
                metrics().request_timeouts.inc();
            }
            metrics().observe_request("bad", t0.elapsed().as_secs_f64());
            let _ = bad_request.write_to(&mut stream);
            return;
        }
        Err(_) => return, // socket died; nobody to answer
    };
    let endpoint = endpoint_of(&request.method, &request.path);
    let span = serve_span.child(endpoint);
    let response = route(&request, manager, stop, started);
    span.event(
        "handled",
        JsonValue::object()
            .field("method", request.method.as_str())
            .field("path", request.path.as_str())
            .field("status", u64::from(response.status)),
    );
    metrics().observe_request(endpoint, t0.elapsed().as_secs_f64());
    let _ = response.write_to(&mut stream);
    if request.method == "POST" && request.path == "/shutdown" {
        // Wake the (blocking) accept loop so it observes the stop flag.
        if let Ok(addr) = stream.local_addr() {
            let _ = TcpStream::connect(addr);
        }
    }
}

/// Splits `/campaigns/:id[/result|/journal]` into its id and trailing
/// segment.
fn campaign_route(path: &str) -> Option<(&str, Option<&str>)> {
    let rest = path.strip_prefix("/campaigns/")?;
    match rest.split_once('/') {
        None => Some((rest, None)),
        Some((id, tail)) => Some((id, Some(tail))),
    }
}

fn route(request: &Request, manager: &JobManager, stop: &AtomicBool, started: Instant) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => Response::json(
            200,
            manager
                .counts()
                .to_json()
                .field("uptime_secs", started.elapsed().as_secs())
                .field("status", "ok")
                .render(),
        ),
        ("GET", "/metrics") => Response::text(200, render_text(chunkpoint_telemetry::global())),
        ("POST", "/shutdown") => {
            stop.store(true, Ordering::Release);
            Response::json(
                200,
                JsonValue::object().field("status", "stopping").render(),
            )
        }
        ("POST", "/campaigns") => submit(request, manager),
        (method, path) => match campaign_route(path) {
            Some((id, tail)) if JobStore::valid_id(id) => match (method, tail) {
                ("GET", None) => match manager.status(id) {
                    Some(status) => Response::json(200, status.to_json().render()),
                    None => Response::error(404, "unknown campaign"),
                },
                ("GET", Some("journal")) => match manager.journal(id) {
                    Some(doc) => Response::json(200, doc),
                    None => Response::error(404, "unknown campaign"),
                },
                ("GET", Some("result")) => match manager.status(id) {
                    None => Response::error(404, "unknown campaign"),
                    Some(status) => match manager.result(id) {
                        Some(report) => Response::json(200, report),
                        None => Response::error(
                            409,
                            &format!("campaign is {}, not done", status.state.name()),
                        ),
                    },
                },
                ("DELETE", None) => match manager.delete(id) {
                    Some(state) => Response::json(
                        200,
                        JsonValue::object()
                            .field("id", id)
                            .field("was", state.name())
                            .field("status", "deleted")
                            .render(),
                    ),
                    None => Response::error(404, "unknown campaign"),
                },
                _ => Response::error(405, "unsupported method for this resource"),
            },
            Some(_) => Response::error(404, "malformed campaign id"),
            None => Response::error(404, "no such route"),
        },
    }
}

/// Retry-After for a shed submission: the estimated time for the queue
/// to drain at the observed mean scenario wall time, clamped to
/// `[1, 60]` seconds. The clamp floor keeps the header honest when the
/// process has not completed a scenario yet (mean 0); the ceiling stops
/// a deep queue of slow campaigns from telling clients to go away for
/// hours — past a minute the estimate is noise anyway.
fn retry_after_hint(queued: usize, mean_scenario_secs: f64) -> u64 {
    #[allow(clippy::cast_precision_loss)]
    let estimate = (queued as f64 * mean_scenario_secs).ceil();
    if !estimate.is_finite() || estimate <= 1.0 {
        1
    } else if estimate >= 60.0 {
        60
    } else {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        {
            estimate as u64
        }
    }
}

/// Derives the shed Retry-After from live telemetry: the mean of the
/// process-wide scenario wall-time histogram (the same series
/// `install_campaign_metrics` records into — re-fetching by name and
/// identical registration dedupes onto it), falling back to one second
/// per queued job before the first scenario completes.
fn shed_retry_after(queued: usize) -> u64 {
    let wall = chunkpoint_telemetry::global().histogram(
        "campaign_scenario_wall_seconds",
        &SCENARIO_WALL_BUCKETS,
        "Wall-clock execution time of completed scenarios",
    );
    let completed = wall.count();
    #[allow(clippy::cast_precision_loss)]
    let mean = if completed == 0 {
        1.0
    } else {
        wall.sum() / completed as f64
    };
    retry_after_hint(queued, mean)
}

fn submit(request: &Request, manager: &JobManager) -> Response {
    let value = match JsonValue::parse(&request.body) {
        Ok(value) => value,
        Err(e) => return Response::error(400, &format!("body is not JSON: {e}")),
    };
    let spec = match CampaignSpec::from_json(&value) {
        Ok(spec) => spec,
        Err(e) => return Response::error(400, &e),
    };
    match manager.submit(&spec) {
        Ok(submission) => {
            let status = if submission.cached { 200 } else { 202 };
            let doc = submission
                .status
                .to_json()
                .field("cached", submission.cached)
                .field("created", submission.created);
            Response::json(status, doc.render())
        }
        // 400 is reserved for "the spec itself is bad" (every replica
        // would refuse it); overload (429) and this backend's own
        // trouble (500/503) are retryable elsewhere, so shard
        // coordinators re-dispatch instead of aborting the campaign.
        Err(ref error @ SubmitError::Shed { queued, .. }) => {
            Response::error(429, &error.to_string()).with_retry_after(shed_retry_after(queued))
        }
        Err(ref error @ SubmitError::ShuttingDown) => Response::error(503, &error.to_string()),
        Err(SubmitError::Store(detail)) => Response::error(500, &detail),
        Err(SubmitError::Invalid(detail)) => Response::error(400, &detail),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_routes_split() {
        assert_eq!(
            campaign_route("/campaigns/0123456789abcdef"),
            Some(("0123456789abcdef", None))
        );
        assert_eq!(
            campaign_route("/campaigns/0123456789abcdef/result"),
            Some(("0123456789abcdef", Some("result")))
        );
        assert_eq!(campaign_route("/healthz"), None);
        // Traversal-shaped ids never reach the store (valid_id gate).
        let (id, _) = campaign_route("/campaigns/../../etc/passwd").unwrap();
        assert!(!JobStore::valid_id(id));
    }

    #[test]
    fn retry_after_scales_with_queue_depth_and_clamps() {
        // Floor: empty-ish queues and unmeasured means never advertise 0.
        assert_eq!(retry_after_hint(0, 2.5), 1);
        assert_eq!(retry_after_hint(3, 0.0), 1);
        // Proportional region: ceil(queued × mean).
        assert_eq!(retry_after_hint(4, 1.0), 4);
        assert_eq!(retry_after_hint(7, 0.5), 4);
        assert_eq!(retry_after_hint(10, 2.0), 20);
        // Ceiling: a deep queue of slow campaigns caps at a minute.
        assert_eq!(retry_after_hint(500, 30.0), 60);
        // Degenerate means degrade to the floor, never a panic.
        assert_eq!(retry_after_hint(10, f64::NAN), 1);
        assert_eq!(retry_after_hint(10, f64::INFINITY), 1);
    }

    #[test]
    fn shed_retry_after_uses_the_live_histogram_mean() {
        // The fallback before any scenario completes in this process
        // is one second per queued job (still clamped).
        let hint = shed_retry_after(2);
        assert!((1..=60).contains(&hint), "hint {hint} escaped the clamp");
        // Feed the shared histogram a completion and the hint tracks
        // the (now measured) mean. Other tests in this process may
        // also have observed scenarios, so assert the clamp bounds
        // rather than an exact product.
        chunkpoint_telemetry::global()
            .histogram(
                "campaign_scenario_wall_seconds",
                &SCENARIO_WALL_BUCKETS,
                "Wall-clock execution time of completed scenarios",
            )
            .observe(0.5);
        let hint = shed_retry_after(120);
        assert!((1..=60).contains(&hint), "hint {hint} escaped the clamp");
    }
}
