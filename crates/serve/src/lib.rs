//! # chunkpoint-serve
//!
//! A dependency-free (std-only) HTTP/1.1 **campaign service** over the
//! [`chunkpoint_campaign`] engine: submit a Monte Carlo campaign spec
//! over the wire, run it on a bounded pool with cooperative
//! cancellation, journal every completed scenario to disk, resume
//! interrupted campaigns bit-identically after a crash or restart, and
//! answer repeated submissions of the same spec from a content-addressed
//! result cache.
//!
//! The four layers:
//!
//! * [`http`] — a minimal HTTP/1.1 server *and* client: request parsing
//!   under hard size limits, JSON responses, one request per connection.
//! * [`jobs`] — the job manager: `max_jobs` runner threads drain a
//!   queue, each driving [`chunkpoint_campaign::run_campaign_streaming`]
//!   with a [`chunkpoint_campaign::CancelToken`], a journal-derived skip
//!   set, and a journal-first result sink.
//! * [`store`] — the checkpoint store: per-job directories keyed by the
//!   spec's content hash, holding the canonical spec, an append-only
//!   `journal.jsonl` of [`chunkpoint_campaign::ScenarioResult`] rows,
//!   and the final `result.json`.
//! * [`server`] — the router and accept loop with graceful shutdown.
//!
//! ## Why resume is bit-identical
//!
//! Every scenario's fault seed derives from `(campaign_seed,
//! scenario_index)` (SplitMix64), never from time, thread, or process.
//! A restarted service re-enumerates the grid from the persisted spec,
//! skips the journaled indices, and computes exactly the numbers the
//! crashed process would have. The final report is the timing-free
//! [`chunkpoint_campaign::canonical_report_json`], so an interrupted-
//! then-resumed campaign renders **byte-identical** report JSON to an
//! uninterrupted run — which the integration tests assert by `SIGKILL`ing
//! a live service mid-campaign.
//!
//! ## Example
//!
//! ```
//! use chunkpoint_campaign::{CampaignSpec, SchemeSpec};
//! use chunkpoint_core::{MitigationScheme, SystemConfig};
//! use chunkpoint_serve::server::{ServeConfig, Server};
//! use chunkpoint_workloads::Benchmark;
//!
//! let dir = std::env::temp_dir().join(format!("chunkpoint-doc-{}", std::process::id()));
//! let config = ServeConfig {
//!     addr: "127.0.0.1:0".to_owned(),
//!     data_dir: dir.clone(),
//!     max_jobs: 1,
//!     campaign_threads: 1,
//!     max_queued: 0, // unbounded
//!     trace_out: None,
//! };
//! let server = Server::bind(&config).expect("bind");
//! let addr = server.local_addr().expect("addr");
//! std::thread::spawn(move || server.run());
//!
//! let mut base = SystemConfig::paper(0);
//! base.scale = 0.25;
//! let spec = CampaignSpec::new(base, 1)
//!     .benchmarks(&[Benchmark::AdpcmEncode])
//!     .scheme("Default", SchemeSpec::Fixed(MitigationScheme::Default))
//!     .normalize(false)
//!     .golden_check(false);
//! let (status, body) = chunkpoint_serve::http::request(
//!     addr,
//!     "POST",
//!     "/campaigns",
//!     Some(&spec.to_json().render()),
//! )
//! .expect("submit");
//! assert_eq!(status, 202, "{body}");
//! let (_, _) = chunkpoint_serve::http::request(addr, "POST", "/shutdown", None).expect("stop");
//! let _ = std::fs::remove_dir_all(dir);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod http;
pub mod jobs;
pub mod metrics;
pub mod server;
pub mod store;

pub use jobs::{JobCounts, JobManager, JobState, JobStatus, REPORT_AXES};
pub use server::{ServeConfig, Server};
pub use store::{JobStore, JournalWriter, LoadedJournal};
