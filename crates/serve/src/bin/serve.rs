//! The `serve` binary: the chunkpoint campaign service.
//!
//! ```text
//! serve [--addr HOST:PORT] [--data-dir PATH] [--jobs N] [--threads N]
//!       [--max-queued N] [--port-file PATH] [--trace-out PATH]
//! ```
//!
//! `--addr 127.0.0.1:0` binds an ephemeral port; `--port-file` writes
//! the bound port as decimal text once listening (how CI scripts and
//! tests find the service). Shut down with `POST /shutdown`.

use std::path::PathBuf;

use chunkpoint_serve::server::{ServeConfig, Server};

const USAGE: &str = "chunkpoint campaign service:
  --addr HOST:PORT   bind address (default 127.0.0.1:8077; port 0 = ephemeral)
  --data-dir PATH    job store root (default ./chunkpoint-serve-data)
  --jobs N           concurrent campaign jobs (default 2)
  --threads N        worker threads per campaign (default: all cores)
  --max-queued N     shed new submissions (429) past N queued jobs
                     (default 1024; 0 = unbounded)
  --port-file PATH   write the bound port here once listening
  --trace-out PATH   write structured trace spans (JSON lines) here
  --help             this text

endpoints: POST /campaigns, GET /campaigns/:id, GET /campaigns/:id/result,
           DELETE /campaigns/:id, GET /healthz, GET /metrics, POST /shutdown";

fn parse_args() -> Result<(ServeConfig, Option<PathBuf>), String> {
    let mut config = ServeConfig::default();
    let mut port_file = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value_of = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value\n\n{USAGE}"))
        };
        match flag.as_str() {
            "--addr" => config.addr = value_of("--addr")?,
            "--data-dir" => config.data_dir = PathBuf::from(value_of("--data-dir")?),
            "--jobs" => {
                config.max_jobs = value_of("--jobs")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}\n\n{USAGE}"))?;
                if config.max_jobs == 0 {
                    return Err(format!("--jobs must be at least 1\n\n{USAGE}"));
                }
            }
            "--threads" => {
                config.campaign_threads = value_of("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}\n\n{USAGE}"))?;
            }
            "--max-queued" => {
                config.max_queued = value_of("--max-queued")?
                    .parse()
                    .map_err(|e| format!("--max-queued: {e}\n\n{USAGE}"))?;
            }
            "--port-file" => port_file = Some(PathBuf::from(value_of("--port-file")?)),
            "--trace-out" => config.trace_out = Some(PathBuf::from(value_of("--trace-out")?)),
            "--help" | "-h" => return Err(USAGE.to_owned()),
            other => return Err(format!("unknown flag {other}\n\n{USAGE}")),
        }
    }
    Ok((config, port_file))
}

fn main() {
    let (config, port_file) = match parse_args() {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(if message == USAGE { 0 } else { 2 });
        }
    };
    let server = match Server::bind(&config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("serve: binding {}: {e}", config.addr);
            std::process::exit(1);
        }
    };
    let addr = server.local_addr().expect("bound listener has an address");
    if let Some(path) = port_file {
        if let Err(e) = std::fs::write(&path, format!("{}\n", addr.port())) {
            eprintln!("serve: writing {}: {e}", path.display());
            std::process::exit(1);
        }
    }
    println!(
        "listening on http://{addr} (data: {}, jobs: {}, threads/campaign: {})",
        config.data_dir.display(),
        config.max_jobs,
        if config.campaign_threads == 0 {
            "all".to_owned()
        } else {
            config.campaign_threads.to_string()
        }
    );
    server.run();
    println!("serve: drained, bye");
}
