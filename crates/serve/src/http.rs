//! A minimal HTTP/1.1 layer on `std::net` — just enough protocol for the
//! campaign service and its clients, with no external dependencies.
//!
//! Server side: [`read_request`] parses a request head plus
//! `Content-Length`-framed body off a [`TcpStream`] under hard size
//! limits (network input is untrusted); [`Response::write_to`] emits a
//! well-formed `Connection: close` response. Client side:
//! [`request`] performs one round trip — the std-only client used by the
//! `serve_client` example, the `bench_serve` harness, and the crash
//! -resume integration tests.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Upper bound on the request head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on a request/response body. Campaign specs are small;
/// reports of big grids are not, so the ceiling is generous.
const MAX_BODY_BYTES: usize = 64 * 1024 * 1024;
/// Per-connection socket timeout: a stalled peer cannot pin a handler
/// thread forever.
const IO_TIMEOUT: Duration = Duration::from_secs(30);

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, `DELETE`, …).
    pub method: String,
    /// Path component of the request target (query strings are not used
    /// by this service and are kept attached).
    pub path: String,
    /// Request body (empty when no `Content-Length` was sent).
    pub body: String,
}

/// One HTTP response; the body is always `application/json`.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// JSON body.
    pub body: String,
}

impl Response {
    /// A JSON response from a rendered document.
    #[must_use]
    pub fn json(status: u16, body: String) -> Self {
        Self { status, body }
    }

    /// A JSON error envelope: `{"error": message}`.
    #[must_use]
    pub fn error(status: u16, message: &str) -> Self {
        let body = chunkpoint_campaign::JsonValue::object()
            .field("error", message)
            .render();
        Self { status, body }
    }

    /// Serializes the response onto `stream` (HTTP/1.1, connection
    /// closed after the exchange — one request per connection keeps the
    /// server trivially correct under slow or misbehaving peers).
    ///
    /// # Errors
    ///
    /// Propagates socket write errors.
    pub fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            status_text(self.status),
            self.body.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(self.body.as_bytes())?;
        stream.flush()
    }
}

/// Canonical reason phrases for the handful of statuses the service uses.
#[must_use]
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Reads and parses one request off `stream`.
///
/// Returns `Ok(Err(response))` for protocol violations the caller should
/// answer with (oversized head/body, missing framing, bad request line)
/// and `Err(_)` only for socket-level failures.
///
/// # Errors
///
/// Propagates socket read errors and timeouts.
pub fn read_request(stream: &mut TcpStream) -> std::io::Result<Result<Request, Response>> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    // `Take` enforces the head bound *inside* read_line: a peer streaming
    // an endless newline-less header cannot grow memory past the limit —
    // read_line simply hits the cap and returns what it has.
    let mut reader = BufReader::new((&mut *stream).take(MAX_HEAD_BYTES as u64));
    let mut head = String::new();
    // Request line + headers, CRLF-delimited, bounded.
    loop {
        let before = head.len();
        let read = reader.read_line(&mut head)?;
        if read == 0 {
            return Ok(Err(if head.len() >= MAX_HEAD_BYTES {
                Response::error(413, "request head too large")
            } else {
                Response::error(400, "connection closed mid-request")
            }));
        }
        if head.len() >= MAX_HEAD_BYTES {
            return Ok(Err(Response::error(413, "request head too large")));
        }
        if head[before..].trim_end_matches(['\r', '\n']).is_empty() {
            break; // blank line: end of head
        }
    }
    let mut lines = head.lines();
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) if v.starts_with("HTTP/1.") => {
            (m.to_ascii_uppercase(), p.to_owned(), v)
        }
        _ => return Ok(Err(Response::error(400, "malformed request line"))),
    };
    let _ = version;
    let mut content_length: usize = 0;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = match value.trim().parse() {
                    Ok(n) => n,
                    Err(_) => return Ok(Err(Response::error(400, "bad Content-Length"))),
                };
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Ok(Err(Response::error(413, "request body too large")));
    }
    // Re-arm the limiter for the body (the buffer may already hold a
    // body prefix pulled during the head reads — it was counted against
    // the head allowance, so this bound is if anything generous), then
    // read incrementally: memory grows with bytes actually received, so
    // a peer declaring a huge Content-Length and stalling costs this
    // thread a timeout, not a 64 MB allocation.
    reader.get_mut().set_limit(content_length as u64);
    let mut body = Vec::new();
    let mut chunk = [0u8; 8 * 1024];
    while body.len() < content_length {
        let want = (content_length - body.len()).min(chunk.len());
        let read = reader.read(&mut chunk[..want])?;
        if read == 0 {
            return Ok(Err(Response::error(
                400,
                "body shorter than Content-Length",
            )));
        }
        body.extend_from_slice(&chunk[..read]);
    }
    let body = match String::from_utf8(body) {
        Ok(s) => s,
        Err(_) => return Ok(Err(Response::error(400, "body is not UTF-8"))),
    };
    Ok(Ok(Request { method, path, body }))
}

/// Performs one HTTP exchange as a client: connect, send, read the
/// response, return `(status, body)`. Std-only — the client half used by
/// the example client, the benchmark harness, and the tests.
///
/// # Errors
///
/// Returns socket errors, timeouts, and malformed responses as
/// [`std::io::Error`].
pub fn request(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: chunkpoint\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("malformed status line {status_line:?}"),
            )
        })?;
    let mut content_length: Option<usize> = None;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok();
            }
        }
    }
    let mut body = Vec::new();
    match content_length {
        Some(n) => {
            body.resize(n, 0);
            reader.read_exact(&mut body)?;
        }
        // Connection: close framing — read to EOF.
        None => {
            reader.read_to_end(&mut body)?;
        }
    }
    let body = String::from_utf8(body)
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "non-UTF-8 body"))?;
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// One-shot echo server: accepts a single connection, parses the
    /// request, responds with a JSON summary of what it saw.
    fn spawn_one_shot() -> std::net::SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().expect("accept");
            let response = match read_request(&mut stream).expect("read") {
                Ok(request) => Response::json(
                    200,
                    chunkpoint_campaign::JsonValue::object()
                        .field("method", request.method.as_str())
                        .field("path", request.path.as_str())
                        .field("body", request.body.as_str())
                        .render(),
                ),
                Err(error) => error,
            };
            response.write_to(&mut stream).expect("write");
        });
        addr
    }

    #[test]
    fn client_and_server_round_trip() {
        let addr = spawn_one_shot();
        let (status, body) =
            request(addr, "POST", "/campaigns", Some("{\"x\":1}")).expect("round trip");
        assert_eq!(status, 200);
        let doc = chunkpoint_campaign::JsonValue::parse(&body).expect("json body");
        assert_eq!(doc.get("method").unwrap().as_str(), Some("POST"));
        assert_eq!(doc.get("path").unwrap().as_str(), Some("/campaigns"));
        assert_eq!(doc.get("body").unwrap().as_str(), Some("{\"x\":1}"));
    }

    #[test]
    fn malformed_requests_get_400s() {
        let addr = spawn_one_shot();
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(b"NONSENSE\r\n\r\n").expect("send garbage");
        let mut response = String::new();
        BufReader::new(stream)
            .read_to_string(&mut response)
            .expect("read response");
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");
    }
}
