//! A minimal HTTP/1.1 layer on `std::net` — just enough protocol for the
//! campaign service and its clients, with no external dependencies.
//!
//! Server side: [`read_request`] parses a request head plus
//! `Content-Length`-framed body off a [`TcpStream`] under hard size
//! limits (network input is untrusted); [`Response::write_to`] emits a
//! well-formed `Connection: close` response. Client side:
//! [`request`] performs one round trip — the std-only client used by the
//! `serve_client` example, the `bench_serve` harness, and the crash
//! -resume integration tests.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Upper bound on the request head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on a request/response body. Campaign specs are small;
/// reports of big grids are not, so the ceiling is generous.
const MAX_BODY_BYTES: usize = 64 * 1024 * 1024;
/// Per-connection socket timeout: a stalled peer cannot pin a handler
/// thread forever.
const IO_TIMEOUT: Duration = Duration::from_secs(30);
/// Deadline for the **whole** request head. Re-armed before every read
/// with what is left, so a slow-loris peer dribbling one header byte
/// per (almost-)timeout cannot stretch the head read indefinitely —
/// the failure mode a flat per-syscall timeout leaves open.
const HEAD_DEADLINE: Duration = Duration::from_secs(10);
/// Deadline for the whole request body, same re-arming discipline.
const BODY_DEADLINE: Duration = Duration::from_secs(30);

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, `DELETE`, …).
    pub method: String,
    /// Path component of the request target (query strings are not used
    /// by this service and are kept attached).
    pub path: String,
    /// Request body (empty when no `Content-Length` was sent).
    pub body: String,
}

/// One HTTP response; `application/json` unless built with
/// [`Response::text`] (the `/metrics` exposition endpoint).
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Response body.
    pub body: String,
    /// Seconds for a `Retry-After` header — set on 429s by admission
    /// control so shedding tells clients *when*, not just *no*.
    pub retry_after: Option<u64>,
    /// `Content-Type` header value.
    pub content_type: &'static str,
}

impl Response {
    /// A JSON response from a rendered document.
    #[must_use]
    pub fn json(status: u16, body: String) -> Self {
        Self {
            status,
            body,
            retry_after: None,
            content_type: "application/json",
        }
    }

    /// A plain-text response — the Prometheus exposition content type,
    /// which scrapers accept for the text format.
    #[must_use]
    pub fn text(status: u16, body: String) -> Self {
        Self {
            status,
            body,
            retry_after: None,
            content_type: "text/plain; version=0.0.4",
        }
    }

    /// A JSON error envelope: `{"error": message}`.
    #[must_use]
    pub fn error(status: u16, message: &str) -> Self {
        let body = chunkpoint_campaign::JsonValue::object()
            .field("error", message)
            .render();
        Self::json(status, body)
    }

    /// Attaches a `Retry-After: seconds` header.
    #[must_use]
    pub fn with_retry_after(mut self, seconds: u64) -> Self {
        self.retry_after = Some(seconds);
        self
    }

    /// Serializes the response onto `stream` (HTTP/1.1, connection
    /// closed after the exchange — one request per connection keeps the
    /// server trivially correct under slow or misbehaving peers).
    ///
    /// # Errors
    ///
    /// Propagates socket write errors.
    pub fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let retry_after = self
            .retry_after
            .map(|seconds| format!("Retry-After: {seconds}\r\n"))
            .unwrap_or_default();
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n{retry_after}Connection: close\r\n\r\n",
            self.status,
            status_text(self.status),
            self.content_type,
            self.body.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(self.body.as_bytes())?;
        stream.flush()
    }
}

/// Canonical reason phrases for the handful of statuses the service uses.
#[must_use]
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// What is left of `deadline`, or `None` once it is spent.
fn remaining(deadline: Instant) -> Option<Duration> {
    let now = Instant::now();
    (now < deadline).then(|| deadline - now)
}

/// Reads and parses one request off `stream`.
///
/// Returns `Ok(Err(response))` for protocol violations the caller should
/// answer with (oversized head/body, missing framing, bad request line,
/// a head or body dribbled past its deadline — answered with a `408`)
/// and `Err(_)` only for socket-level failures.
///
/// The head and body each get a **whole-phase deadline**
/// ([`HEAD_DEADLINE`], [`BODY_DEADLINE`]), re-armed before every read
/// with what is left — a slow-loris peer trickling one byte per
/// near-timeout interval is dropped at the deadline instead of pinning
/// a handler thread for as long as it cares to dribble.
///
/// # Errors
///
/// Propagates socket read errors and timeouts.
pub fn read_request(stream: &mut TcpStream) -> std::io::Result<Result<Request, Response>> {
    read_request_within(stream, HEAD_DEADLINE, BODY_DEADLINE)
}

/// [`read_request`] with caller-chosen head/body deadlines — the seam
/// the slow-loris tests drive with tight deadlines so they finish in
/// milliseconds, not tens of seconds.
pub fn read_request_within(
    stream: &mut TcpStream,
    head_timeout: Duration,
    body_timeout: Duration,
) -> std::io::Result<Result<Request, Response>> {
    let timed_out = || Response::error(408, "request not completed before the read deadline");
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    // Head phase: raw chunked reads until the blank line, re-arming the
    // socket timeout with what is left of the head deadline before each
    // read — the deadline bounds the *phase*, not each syscall, so a
    // peer dribbling one byte per near-timeout interval (with or
    // without newlines) is dropped at the deadline. Memory stays
    // bounded by MAX_HEAD_BYTES: no terminator within the cap is a 413.
    let head_deadline = Instant::now() + head_timeout;
    let mut buffered: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 2 * 1024];
    let (head_len, body_start) = loop {
        if let Some(bounds) = find_head_end(&buffered) {
            break bounds;
        }
        if buffered.len() >= MAX_HEAD_BYTES {
            return Ok(Err(Response::error(413, "request head too large")));
        }
        let Some(left) = remaining(head_deadline) else {
            return Ok(Err(timed_out()));
        };
        stream.set_read_timeout(Some(left))?;
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(Err(Response::error(400, "connection closed mid-request"))),
            Ok(read) => buffered.extend_from_slice(&chunk[..read]),
            Err(e) if is_timeout(&e) => return Ok(Err(timed_out())),
            Err(e) => return Err(e),
        }
    };
    let head = String::from_utf8_lossy(&buffered[..head_len]).into_owned();
    let mut lines = head.lines();
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) if v.starts_with("HTTP/1.") => {
            (m.to_ascii_uppercase(), p.to_owned(), v)
        }
        _ => return Ok(Err(Response::error(400, "malformed request line"))),
    };
    let _ = version;
    let mut content_length: usize = 0;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = match value.trim().parse() {
                    Ok(n) => n,
                    Err(_) => return Ok(Err(Response::error(400, "bad Content-Length"))),
                };
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Ok(Err(Response::error(413, "request body too large")));
    }
    // Body phase: whatever arrived behind the head seeds the body, the
    // rest reads incrementally under its own whole-phase deadline.
    // Memory grows with bytes actually received, so a peer declaring a
    // huge Content-Length and stalling costs this thread a deadline,
    // not a 64 MB allocation.
    let mut body = buffered[body_start..].to_vec();
    body.truncate(content_length); // ignore pipelined bytes past the frame
    let body_deadline = Instant::now() + body_timeout;
    while body.len() < content_length {
        let want = (content_length - body.len()).min(chunk.len());
        let Some(left) = remaining(body_deadline) else {
            return Ok(Err(timed_out()));
        };
        stream.set_read_timeout(Some(left))?;
        match stream.read(&mut chunk[..want]) {
            Ok(0) => {
                return Ok(Err(Response::error(
                    400,
                    "body shorter than Content-Length",
                )))
            }
            Ok(read) => body.extend_from_slice(&chunk[..read]),
            Err(e) if is_timeout(&e) => return Ok(Err(timed_out())),
            Err(e) => return Err(e),
        }
    }
    let body = match String::from_utf8(body) {
        Ok(s) => s,
        Err(_) => return Ok(Err(Response::error(400, "body is not UTF-8"))),
    };
    Ok(Ok(Request { method, path, body }))
}

/// Whether an I/O error is a read-timeout expiry (platform-dependent
/// kind: `WouldBlock` on Unix, `TimedOut` on Windows).
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Finds the head/body boundary: `(head_len, body_start)` around the
/// first blank line (`\r\n\r\n`, tolerating bare `\n\n`).
fn find_head_end(buffered: &[u8]) -> Option<(usize, usize)> {
    let crlf = buffered.windows(4).position(|w| w == b"\r\n\r\n");
    let lf = buffered.windows(2).position(|w| w == b"\n\n");
    match (crlf, lf) {
        (Some(c), Some(l)) if l + 1 < c => Some((l, l + 2)),
        (Some(c), _) => Some((c, c + 4)),
        (None, Some(l)) => Some((l, l + 2)),
        (None, None) => None,
    }
}

/// Performs one HTTP exchange as a client: connect, send, read the
/// response, return `(status, body)`. Std-only — the client half used by
/// the example client, the benchmark harness, and the tests.
///
/// # Errors
///
/// Returns socket errors, timeouts, and malformed responses as
/// [`std::io::Error`].
pub fn request(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: chunkpoint\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("malformed status line {status_line:?}"),
            )
        })?;
    let mut content_length: Option<usize> = None;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok();
            }
        }
    }
    let mut body = Vec::new();
    match content_length {
        Some(n) => {
            body.resize(n, 0);
            reader.read_exact(&mut body)?;
        }
        // Connection: close framing — read to EOF.
        None => {
            reader.read_to_end(&mut body)?;
        }
    }
    let body = String::from_utf8(body)
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "non-UTF-8 body"))?;
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// One-shot echo server: accepts a single connection, parses the
    /// request, responds with a JSON summary of what it saw.
    fn spawn_one_shot() -> std::net::SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().expect("accept");
            let response = match read_request(&mut stream).expect("read") {
                Ok(request) => Response::json(
                    200,
                    chunkpoint_campaign::JsonValue::object()
                        .field("method", request.method.as_str())
                        .field("path", request.path.as_str())
                        .field("body", request.body.as_str())
                        .render(),
                ),
                Err(error) => error,
            };
            response.write_to(&mut stream).expect("write");
        });
        addr
    }

    #[test]
    fn client_and_server_round_trip() {
        let addr = spawn_one_shot();
        let (status, body) =
            request(addr, "POST", "/campaigns", Some("{\"x\":1}")).expect("round trip");
        assert_eq!(status, 200);
        let doc = chunkpoint_campaign::JsonValue::parse(&body).expect("json body");
        assert_eq!(doc.get("method").unwrap().as_str(), Some("POST"));
        assert_eq!(doc.get("path").unwrap().as_str(), Some("/campaigns"));
        assert_eq!(doc.get("body").unwrap().as_str(), Some("{\"x\":1}"));
    }

    #[test]
    fn malformed_requests_get_400s() {
        let addr = spawn_one_shot();
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(b"NONSENSE\r\n\r\n").expect("send garbage");
        let mut response = String::new();
        BufReader::new(stream)
            .read_to_string(&mut response)
            .expect("read response");
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");
    }
}
