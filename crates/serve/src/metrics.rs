//! The service's metric surface: per-endpoint request counters and
//! latency histograms, job-lifecycle counters, and the journal/cache
//! counters — all registered once in the process-wide registry and
//! rendered by `GET /metrics`.
//!
//! Handles are acquired once at first use ([`metrics`] is a
//! `OnceLock`), so the per-request cost is the lock-free atomic adds in
//! [`chunkpoint_telemetry::registry`]. Everything here is out-of-band:
//! no campaign result depends on any of these series.

use std::sync::{Arc, OnceLock};

use chunkpoint_telemetry::{global, Counter, Histogram, LATENCY_BUCKETS};

/// The request-classification label set: every request maps onto one of
/// these endpoint names (unknown routes and protocol violations fall
/// into `other`/`bad` so the scrape's totals still add up).
pub const ENDPOINTS: [&str; 10] = [
    "healthz", "metrics", "shutdown", "submit", "status", "journal", "result", "delete", "other",
    "bad",
];

/// Classifies a parsed request into its endpoint label.
#[must_use]
pub fn endpoint_of(method: &str, path: &str) -> &'static str {
    match (method, path) {
        ("GET", "/healthz") => "healthz",
        ("GET", "/metrics") => "metrics",
        ("POST", "/shutdown") => "shutdown",
        ("POST", "/campaigns") => "submit",
        (method, path) if path.starts_with("/campaigns/") => {
            match (method, path.rsplit_once('/').map(|(_, tail)| tail)) {
                ("GET", Some("journal")) => "journal",
                ("GET", Some("result")) => "result",
                ("GET", _) => "status",
                ("DELETE", _) => "delete",
                _ => "other",
            }
        }
        _ => "other",
    }
}

/// The service's registered metric handles.
#[derive(Debug)]
pub struct ServeMetrics {
    requests: Vec<(&'static str, Arc<Counter>, Arc<Histogram>)>,
    /// New jobs admitted and enqueued.
    pub jobs_submitted: Arc<Counter>,
    /// Submissions answered from the finished-result cache.
    pub jobs_cached: Arc<Counter>,
    /// Journaled jobs re-enqueued at startup recovery.
    pub jobs_recovered: Arc<Counter>,
    /// Submissions refused by admission control (the 429 path).
    pub jobs_shed: Arc<Counter>,
    /// Requests dropped at a read deadline (the 408 slow-loris path).
    pub request_timeouts: Arc<Counter>,
    /// Scenario rows sealed into job journals.
    pub journal_rows: Arc<Counter>,
    /// `GET /campaigns/:id/result` responses served from the cache.
    pub result_cache_hits: Arc<Counter>,
}

impl ServeMetrics {
    fn new() -> Self {
        let registry = global();
        let requests = ENDPOINTS
            .iter()
            .map(|&endpoint| {
                (
                    endpoint,
                    registry.counter_with(
                        "serve_requests_total",
                        &[("endpoint", endpoint)],
                        "HTTP requests handled, by endpoint",
                    ),
                    registry.histogram_with(
                        "serve_request_seconds",
                        &[("endpoint", endpoint)],
                        &LATENCY_BUCKETS,
                        "Request handling latency, by endpoint",
                    ),
                )
            })
            .collect();
        Self {
            requests,
            jobs_submitted: registry.counter(
                "serve_jobs_submitted_total",
                "New campaign jobs admitted and enqueued",
            ),
            jobs_cached: registry.counter(
                "serve_jobs_cached_total",
                "Submissions answered from the finished-result cache",
            ),
            jobs_recovered: registry.counter(
                "serve_jobs_recovered_total",
                "Journaled jobs re-enqueued by startup recovery",
            ),
            jobs_shed: registry.counter(
                "serve_jobs_shed_total",
                "Submissions refused by admission control (429)",
            ),
            request_timeouts: registry.counter(
                "serve_request_timeouts_total",
                "Requests dropped at a read deadline (408)",
            ),
            journal_rows: registry.counter(
                "serve_journal_rows_total",
                "Scenario rows sealed into job journals",
            ),
            result_cache_hits: registry.counter(
                "serve_result_cache_hits_total",
                "Result requests served from the cached report",
            ),
        }
    }

    /// Records one handled request: bumps the endpoint's counter and
    /// observes its latency.
    pub fn observe_request(&self, endpoint: &str, seconds: f64) {
        if let Some((_, counter, histogram)) =
            self.requests.iter().find(|(name, _, _)| *name == endpoint)
        {
            counter.inc();
            histogram.observe(seconds);
        }
    }
}

static METRICS: OnceLock<ServeMetrics> = OnceLock::new();

/// The service's metric handles, registered on first use.
pub fn metrics() -> &'static ServeMetrics {
    METRICS.get_or_init(ServeMetrics::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_classify() {
        assert_eq!(endpoint_of("GET", "/healthz"), "healthz");
        assert_eq!(endpoint_of("GET", "/metrics"), "metrics");
        assert_eq!(endpoint_of("POST", "/shutdown"), "shutdown");
        assert_eq!(endpoint_of("POST", "/campaigns"), "submit");
        assert_eq!(endpoint_of("GET", "/campaigns/0123456789abcdef"), "status");
        assert_eq!(
            endpoint_of("GET", "/campaigns/0123456789abcdef/journal"),
            "journal"
        );
        assert_eq!(
            endpoint_of("GET", "/campaigns/0123456789abcdef/result"),
            "result"
        );
        assert_eq!(
            endpoint_of("DELETE", "/campaigns/0123456789abcdef"),
            "delete"
        );
        assert_eq!(endpoint_of("PUT", "/campaigns"), "other");
        assert_eq!(endpoint_of("GET", "/nope"), "other");
    }

    #[test]
    fn every_endpoint_label_is_pre_registered() {
        for endpoint in ENDPOINTS {
            metrics().observe_request(endpoint, 0.001);
        }
        let text = chunkpoint_telemetry::render_text(global());
        for endpoint in ENDPOINTS {
            assert!(
                text.contains(&format!("serve_requests_total{{endpoint=\"{endpoint}\"}}")),
                "missing endpoint {endpoint} in scrape"
            );
        }
    }
}
