//! The job manager: a bounded pool of campaign-runner threads over the
//! checkpoint store.
//!
//! Submissions enqueue job ids; `max_jobs` runner threads pull from the
//! queue and drive [`run_campaign_streaming`] with three hooks wired in:
//! the job's [`CancelToken`] (DELETE and shutdown stop a grid between
//! scenarios), the journal's skip set (restarted services resume instead
//! of recomputing), and an `on_result` sink that appends every completed
//! scenario to the journal before anything else sees it.
//!
//! Each campaign itself runs on the engine's work-stealing pool with
//! `campaign_threads` workers, so total simulation parallelism is
//! bounded by `max_jobs × campaign_threads`.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use chunkpoint_campaign::{
    canonical_report_json, run_campaign_streaming, Axis, CampaignSpec, CancelToken, JsonValue,
};

use crate::metrics::metrics;
use crate::store::JobStore;

/// Axes of the canonical report's aggregate section. Fixed, so a cached
/// report is a pure function of the spec.
pub const REPORT_AXES: [Axis; 3] = [Axis::Benchmark, Axis::Scheme, Axis::ErrorRate];

/// Lifecycle of a submitted job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    /// Waiting for a runner thread.
    Queued,
    /// A runner is executing (or resuming) the campaign.
    Running,
    /// Finished; `result.json` is present and cached.
    Done,
    /// Cancelled by DELETE or service shutdown; the journal survives
    /// unless the job was deleted.
    Cancelled,
    /// The runner hit an error; the message explains it.
    Failed(String),
}

impl JobState {
    /// Wire name of the state.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Cancelled => "cancelled",
            JobState::Failed(_) => "failed",
        }
    }
}

/// One tracked job.
#[derive(Debug, Clone)]
pub struct JobStatus {
    /// Content-hash id.
    pub id: String,
    /// Current lifecycle state.
    pub state: JobState,
    /// Scenarios this job executes: its `scenario_range` slice for a
    /// ranged sub-spec, the whole grid otherwise.
    pub scenarios: usize,
    /// Scenarios journaled so far (monotonic across restarts).
    pub completed: usize,
}

impl JobStatus {
    /// The status document served by `GET /campaigns/:id`.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let mut doc = JsonValue::object()
            .field("id", self.id.as_str())
            .field("status", self.state.name())
            .field("scenarios", self.scenarios)
            .field("completed", self.completed);
        if let JobState::Failed(message) = &self.state {
            doc = doc.field("error", message.as_str());
        }
        doc
    }
}

/// Jobs known to the manager, counted by lifecycle state — the payload
/// of `GET /healthz` and the capacity signal a shard coordinator can
/// weight its partitioning by.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobCounts {
    /// Waiting for a runner thread.
    pub queued: usize,
    /// Currently executing on a runner.
    pub running: usize,
    /// Finished with a cached result.
    pub done: usize,
    /// Cancelled (journal kept unless deleted).
    pub cancelled: usize,
    /// Failed with an error message.
    pub failed: usize,
    /// Submits refused by admission control since startup (cumulative,
    /// not a lifecycle state — shed submissions never became jobs).
    /// The overload signal for healthz-driven backend weighting.
    pub shed: usize,
}

impl JobCounts {
    /// Total jobs known to the manager. Shed submissions are not jobs
    /// and do not count.
    #[must_use]
    pub fn total(&self) -> usize {
        self.queued + self.running + self.done + self.cancelled + self.failed
    }

    /// The per-state fields of the `/healthz` document.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object()
            .field("queued", self.queued)
            .field("running", self.running)
            .field("done", self.done)
            .field("cancelled", self.cancelled)
            .field("failed", self.failed)
            .field("shed", self.shed)
    }
}

/// Why a submission was refused, typed by the HTTP answer it deserves —
/// the seam that lets admission control shed load as `429 +
/// Retry-After` (retryable elsewhere or later) without being mistaken
/// for "the spec is bad" (fatal everywhere).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// Admission control: the submit queue is full. Answered `429` with
    /// a `Retry-After` hint; a shard coordinator treats it as a strike
    /// against this backend's breaker, not as a spec rejection.
    Shed {
        /// Jobs waiting when the submit was refused.
        queued: usize,
        /// The queue bound that refused it.
        limit: usize,
    },
    /// The service is draining; answered `503`.
    ShuttingDown,
    /// The spec itself is bad (unenumerable grid, range past the grid,
    /// hash collision); answered `400` — every replica would refuse it.
    Invalid(String),
    /// This backend's store failed; answered `500` so coordinators
    /// re-dispatch instead of aborting the campaign.
    Store(String),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Shed { queued, limit } => write!(
                f,
                "submit queue is full ({queued} queued, limit {limit}): shedding load"
            ),
            SubmitError::ShuttingDown => write!(f, "service is shutting down"),
            SubmitError::Invalid(why) => write!(f, "{why}"),
            SubmitError::Store(why) => write!(f, "{why}"),
        }
    }
}

impl std::error::Error for SubmitError {}

#[derive(Debug)]
struct JobEntry {
    state: JobState,
    scenarios: usize,
    completed: usize,
    cancel: CancelToken,
    /// DELETE on a running job: cancel now, remove the directory when
    /// the runner lets go of it.
    delete_after_cancel: bool,
    /// Canonical spec rendering, cached so the collision check on
    /// duplicate submissions is a lock-held string compare instead of
    /// disk I/O under the manager mutex.
    canonical: String,
}

#[derive(Debug, Default)]
struct ManagerState {
    jobs: HashMap<String, JobEntry>,
    queue: VecDeque<String>,
    shutdown: bool,
    /// Cumulative count of submits refused by admission control.
    shed: usize,
}

/// The bounded job manager. All HTTP handlers and runner threads share
/// one instance behind an [`Arc`].
#[derive(Debug)]
pub struct JobManager {
    store: JobStore,
    state: Mutex<ManagerState>,
    wake: Condvar,
    campaign_threads: usize,
    /// Admission bound: new jobs are refused (shed) while this many are
    /// already queued. Joins onto known jobs and cache hits are exempt —
    /// they add no work.
    max_queued: usize,
}

/// The outcome of a submission, for the POST handler.
#[derive(Debug, Clone)]
pub struct Submission {
    /// Status snapshot after the submit.
    pub status: JobStatus,
    /// Whether the result cache answered (job already `Done`).
    pub cached: bool,
    /// Whether this submit created the job (false: already known).
    pub created: bool,
}

impl JobManager {
    /// Locks the manager state, tolerating a poisoned mutex. Runner
    /// panics are caught and turned into [`JobState::Failed`] inside
    /// `run_one`, but a panic on any other path (an allocator abort
    /// short of aborting, a bug in a handler) would poison this lock —
    /// and every HTTP handler locks it, so honoring the poison would
    /// turn one wounded request into a permanently dead service. The
    /// guarded state is updated with single-field writes (no
    /// multi-step invariant is ever left half-applied across a
    /// panic), so the data is safe to keep serving.
    fn locked(&self) -> std::sync::MutexGuard<'_, ManagerState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Builds a manager over `store`, **recovering** persisted jobs:
    /// directories with a `result.json` register as done (cache hits),
    /// everything else re-enqueues and resumes from its journal.
    ///
    /// `max_queued` is the admission bound for *new* jobs (`0` means
    /// unbounded); recovered jobs re-enqueue regardless — they were
    /// admitted before the restart and their journals are real work
    /// already done.
    #[must_use]
    pub fn recover(store: JobStore, campaign_threads: usize, max_queued: usize) -> Arc<Self> {
        let manager = Arc::new(Self {
            store,
            state: Mutex::new(ManagerState::default()),
            wake: Condvar::new(),
            campaign_threads,
            max_queued: if max_queued == 0 {
                usize::MAX
            } else {
                max_queued
            },
        });
        let ids = manager.store.list_jobs();
        {
            let mut state = manager.locked();
            for id in ids {
                let scenarios = manager.store.load_scenario_count(&id).unwrap_or(0);
                // The stored spec is the collision-check reference; a job
                // whose spec no longer parses is skipped (a runner would
                // only mark it Failed anyway).
                let Ok(canonical) = manager
                    .store
                    .load_spec(&id)
                    .map(|spec| spec.to_json().render())
                else {
                    continue;
                };
                if manager.store.read_result(&id).is_some() {
                    state.jobs.insert(
                        id,
                        JobEntry {
                            state: JobState::Done,
                            scenarios,
                            completed: scenarios,
                            cancel: CancelToken::new(),
                            delete_after_cancel: false,
                            canonical,
                        },
                    );
                } else {
                    // Journaled progress survives the restart: report the
                    // sealed row count so `completed` stays monotonic
                    // while the job waits for a runner.
                    let completed = manager.store.journal_line_count(&id);
                    state.jobs.insert(
                        id.clone(),
                        JobEntry {
                            state: JobState::Queued,
                            scenarios,
                            completed,
                            cancel: CancelToken::new(),
                            delete_after_cancel: false,
                            canonical,
                        },
                    );
                    state.queue.push_back(id);
                    metrics().jobs_recovered.inc();
                }
            }
        }
        manager
    }

    /// Spawns `max_jobs` runner threads draining the queue. The handles
    /// are joined by [`JobManager::shutdown`].
    #[must_use]
    pub fn spawn_runners(self: &Arc<Self>, max_jobs: usize) -> Vec<JoinHandle<()>> {
        (0..max_jobs.max(1))
            .map(|_| {
                let manager = Arc::clone(self);
                std::thread::spawn(move || manager.runner_loop())
            })
            .collect()
    }

    /// Submits a spec: instant cache hit if this content hash already
    /// finished, join onto the live job if it is queued/running,
    /// re-enqueue (resuming from the journal) if a previous attempt
    /// failed or was cancelled, otherwise persist and enqueue.
    ///
    /// # Errors
    ///
    /// Typed [`SubmitError`]: `Invalid` for unenumerable grids
    /// (infeasible optimizer points surface here, at submit time),
    /// ranges past the grid, and — because the id is a 64-bit content
    /// hash — a submitted spec whose canonical bytes differ from the
    /// stored spec under the same id (hash collision: refused rather
    /// than serving the wrong report); `Shed` when admission control
    /// refuses a *new* job over a full queue; `ShuttingDown` while
    /// draining; `Store` for this backend's own I/O trouble.
    pub fn submit(&self, spec: &CampaignSpec) -> Result<Submission, SubmitError> {
        let id = JobStore::job_id(spec);
        // Enumerate outside the lock: optimizer-backed scheme axes do
        // real work, and an infeasible point panics — turn that into a
        // client error instead of a dead runner.
        let grid = catch_unwind(AssertUnwindSafe(|| spec.scenarios().len())).map_err(|_| {
            SubmitError::Invalid(
                "spec enumerates no feasible grid (optimizer found no design point)".to_owned(),
            )
        })?;
        // A ranged sub-spec must fit the grid it claims to slice: a
        // range past the end means the submitter partitioned a different
        // campaign.
        if let Some((start, end)) = spec.range() {
            if end > grid {
                return Err(SubmitError::Invalid(format!(
                    "scenario_range [{start}, {end}) exceeds the {grid}-scenario grid"
                )));
            }
        }
        // A job's size is what it will actually execute (its range for
        // sub-specs), not the whole grid — `completed` counts toward it.
        let scenarios = spec.active_range(grid).len();
        let canonical = spec.to_json().render();
        let mut state = self.locked();
        if state.shutdown {
            return Err(SubmitError::ShuttingDown);
        }
        if state.jobs.contains_key(&id) {
            // The id is a 64-bit hash: before treating this as the same
            // campaign, make sure the known spec really is this spec
            // (string compare against the cached canonical rendering —
            // no disk I/O under the lock).
            if state.jobs[&id].canonical != canonical {
                return Err(SubmitError::Invalid(format!(
                    "spec hash collision: {id} already names a different campaign"
                )));
            }
            // Failed/cancelled attempts re-enqueue and resume from their
            // journal; done/queued/running jobs are simply reported.
            let entry = state.jobs.get_mut(&id).expect("checked above");
            // Resubmission revokes any pending DELETE: the spec is
            // wanted again, so a racing delete must not remove the job
            // (a deletion-pending Running job still ends Cancelled —
            // its token already fired — but keeps its journal, and the
            // next submit resumes it).
            entry.delete_after_cancel = false;
            if matches!(entry.state, JobState::Failed(_) | JobState::Cancelled) {
                entry.state = JobState::Queued;
                entry.cancel = CancelToken::new();
                state.queue.push_back(id.clone());
                self.wake.notify_one();
            }
            let entry = state.jobs.get(&id).expect("entry just touched");
            if entry.state == JobState::Done {
                metrics().jobs_cached.inc();
            }
            return Ok(Submission {
                cached: entry.state == JobState::Done,
                created: false,
                status: JobStatus {
                    id,
                    state: entry.state.clone(),
                    scenarios: entry.scenarios,
                    completed: entry.completed,
                },
            });
        }
        // Admission control: only *new* jobs are bounded. Joins and
        // cache hits above cost nothing to serve; shedding them would
        // refuse work the service already did.
        if state.queue.len() >= self.max_queued {
            state.shed += 1;
            metrics().jobs_shed.inc();
            return Err(SubmitError::Shed {
                queued: state.queue.len(),
                limit: self.max_queued,
            });
        }
        self.store
            .create_job(&id, spec, scenarios)
            .map_err(|e| SubmitError::Store(format!("persisting job: {e}")))?;
        state.jobs.insert(
            id.clone(),
            JobEntry {
                state: JobState::Queued,
                scenarios,
                completed: 0,
                cancel: CancelToken::new(),
                delete_after_cancel: false,
                canonical,
            },
        );
        state.queue.push_back(id.clone());
        self.wake.notify_one();
        metrics().jobs_submitted.inc();
        Ok(Submission {
            cached: false,
            created: true,
            status: JobStatus {
                id,
                state: JobState::Queued,
                scenarios,
                completed: 0,
            },
        })
    }

    /// Status of one job.
    #[must_use]
    pub fn status(&self, id: &str) -> Option<JobStatus> {
        let state = self.locked();
        state.jobs.get(id).map(|entry| JobStatus {
            id: id.to_owned(),
            state: entry.state.clone(),
            scenarios: entry.scenarios,
            completed: entry.completed,
        })
    }

    /// Counts of known jobs per lifecycle state.
    #[must_use]
    pub fn counts(&self) -> JobCounts {
        let state = self.locked();
        let mut counts = JobCounts::default();
        for entry in state.jobs.values() {
            match entry.state {
                JobState::Queued => counts.queued += 1,
                JobState::Running => counts.running += 1,
                JobState::Done => counts.done += 1,
                JobState::Cancelled => counts.cancelled += 1,
                JobState::Failed(_) => counts.failed += 1,
            }
        }
        counts.shed = state.shed;
        counts
    }

    /// The cached final report, if the job is done.
    #[must_use]
    pub fn result(&self, id: &str) -> Option<String> {
        // Serve only completed jobs: a half-written journal is not a
        // result, and write_result is atomic, so presence ⇒ complete.
        let report = self
            .status(id)
            .filter(|s| s.state == JobState::Done)
            .and_then(|_| self.store.read_result(id));
        if report.is_some() {
            metrics().result_cache_hits.inc();
        }
        report
    }

    /// The job's sealed journal rows, rendered as one JSON document:
    /// `{"id": ..., "status": ..., "rows": [<ScenarioResult>, ...]}` —
    /// the payload of `GET /campaigns/:id/journal`, which a shard
    /// coordinator fetches to merge this job's slice of a campaign with
    /// its sibling shards. Rows are in journal (completion) order; the
    /// merge defines the canonical ordering, not the shard.
    ///
    /// The rows are raw sealed journal lines (each one a JSON object the
    /// service itself rendered), spliced in verbatim rather than
    /// re-parsed — serving a journal never costs a parse of every row.
    #[must_use]
    pub fn journal(&self, id: &str) -> Option<String> {
        let status = self.status(id)?;
        let rows = self.store.read_journal_rows(id);
        let mut doc = String::with_capacity(64 + rows.iter().map(|r| r.len() + 1).sum::<usize>());
        doc.push_str("{\"id\":\"");
        doc.push_str(id); // ids are 16 hex digits — nothing to escape
        doc.push_str("\",\"status\":\"");
        doc.push_str(status.state.name());
        doc.push_str("\",\"rows\":[");
        for (i, row) in rows.iter().enumerate() {
            if i > 0 {
                doc.push(',');
            }
            doc.push_str(row);
        }
        doc.push_str("]}");
        Some(doc)
    }

    /// Cancels and deletes a job. Queued/finished jobs are removed
    /// immediately; a running job is cancelled and its runner removes
    /// the directory once the campaign lets go. Returns the state the
    /// job was in, or `None` if unknown.
    #[must_use]
    pub fn delete(&self, id: &str) -> Option<JobState> {
        let mut state = self.locked();
        let entry = state.jobs.get_mut(id)?;
        let was = entry.state.clone();
        match was {
            JobState::Running => {
                entry.delete_after_cancel = true;
                entry.cancel.cancel();
            }
            _ => {
                state.queue.retain(|queued| queued != id);
                state.jobs.remove(id);
                // Deleted while still holding the lock: a concurrent
                // resubmit must not re-create the job directory between
                // the map removal and the filesystem removal.
                let _ = self.store.delete_job(id);
            }
        }
        Some(was)
    }

    /// Graceful shutdown: stop accepting, cancel running campaigns (their
    /// journals make the work resumable), wake and join every runner.
    pub fn shutdown(&self, runners: Vec<JoinHandle<()>>) {
        {
            let mut state = self.locked();
            state.shutdown = true;
            for entry in state.jobs.values() {
                entry.cancel.cancel();
            }
        }
        self.wake.notify_all();
        for runner in runners {
            let _ = runner.join();
        }
    }

    fn runner_loop(&self) {
        loop {
            let id = {
                let mut state = self.locked();
                loop {
                    if state.shutdown {
                        return;
                    }
                    if let Some(id) = state.queue.pop_front() {
                        break id;
                    }
                    state = self
                        .wake
                        .wait(state)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            };
            self.run_one(&id);
        }
    }

    /// Runs (or resumes) one job to completion, cancellation, or failure.
    fn run_one(&self, id: &str) {
        let outcome = catch_unwind(AssertUnwindSafe(|| self.drive(id)));
        let verdict = match outcome {
            Ok(verdict) => verdict,
            Err(panic) => {
                let message = panic
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_owned())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "campaign panicked".to_owned());
                Err(format!("campaign panicked: {message}"))
            }
        };
        let mut state = self.locked();
        let Some(entry) = state.jobs.get_mut(id) else {
            return;
        };
        entry.state = match verdict {
            Ok(true) => JobState::Done,
            Ok(false) => JobState::Cancelled,
            Err(message) => JobState::Failed(message),
        };
        // A DELETE can race any campaign ending (completion, the cancel
        // itself, or a failure): the client was told "deleted", so the
        // job goes regardless of which verdict won the race. The
        // directory is removed under the lock so a concurrent resubmit
        // cannot slip a fresh job dir in between.
        if entry.delete_after_cancel {
            state.jobs.remove(id);
            let _ = self.store.delete_job(id);
        }
    }

    /// The actual campaign drive. `Ok(true)` = finished, `Ok(false)` =
    /// cancelled.
    fn drive(&self, id: &str) -> Result<bool, String> {
        let spec = self.store.load_spec(id)?;
        let scenarios = spec.scenarios();
        let active = spec.active_range(scenarios.len());
        let journal = self.store.load_journal(id, &scenarios, &active)?;
        let cancel = {
            let mut state = self.locked();
            let entry = state
                .jobs
                .get_mut(id)
                .ok_or_else(|| format!("job {id} vanished from the registry"))?;
            entry.state = JobState::Running;
            entry.scenarios = active.len();
            entry.completed = journal.done.len();
            entry.cancel.clone()
        };
        let mut writer = self
            .store
            .open_journal(id)
            .map_err(|e| format!("job {id}: opening journal: {e}"))?;
        let mut io_error: Option<String> = None;
        let fresh = run_campaign_streaming(
            &spec,
            self.campaign_threads,
            &cancel,
            &journal.done,
            |result| {
                // Once an append has failed the file may end in partial
                // bytes; further appends would corrupt the line after
                // the tear. Drop everything until the cancel drains.
                if io_error.is_some() {
                    return;
                }
                // Journal first: a result the journal has not sealed does
                // not exist as far as crash recovery is concerned.
                if let Err(e) = writer.append(result) {
                    io_error.get_or_insert_with(|| format!("journal append: {e}"));
                    cancel.cancel();
                    return;
                }
                metrics().journal_rows.inc();
                let mut state = self.locked();
                if let Some(entry) = state.jobs.get_mut(id) {
                    entry.completed += 1;
                }
            },
        );
        if let Some(error) = io_error {
            return Err(error);
        }
        if cancel.is_cancelled() {
            return Ok(false);
        }
        // Merge journaled + fresh in scenario order; both sides carry
        // bit-identical numbers to an uninterrupted run by seed
        // construction, so the canonical report is too.
        let mut merged = journal.results;
        merged.extend(fresh);
        merged.sort_by_key(|r| r.scenario.index);
        if merged.len() != active.len() {
            return Err(format!(
                "job {id}: merged {} of {} scenarios — journal inconsistent",
                merged.len(),
                active.len()
            ));
        }
        let report = canonical_report_json(spec.campaign_seed, &merged, &REPORT_AXES).render();
        self.store
            .write_result(id, &report)
            .map_err(|e| format!("job {id}: writing result: {e}"))?;
        Ok(true)
    }
}
