//! The checkpointable job store: one directory per job holding the spec,
//! an append-only scenario journal, and (once finished) the cached
//! result.
//!
//! Layout under the store root:
//!
//! ```text
//! jobs/<id>/spec.json       canonical CampaignSpec wire form
//! jobs/<id>/meta.json       {"scenarios": N} — grid size, for status
//! jobs/<id>/journal.jsonl   one ScenarioResult JSON object per line
//! jobs/<id>/result.json     canonical timing-free campaign report
//! ```
//!
//! `<id>` is the 16-hex-digit content hash of the canonical spec
//! ([`CampaignSpec::spec_hash`]), which makes the store a
//! **content-addressed result cache**: resubmitting a byte-identical
//! spec lands on the same directory, and a present `result.json` answers
//! it without running anything.
//!
//! The journal is the crash-safety mechanism. Every completed scenario
//! appends one line and flushes; a process killed mid-campaign leaves a
//! journal whose complete lines are all trusted (an interrupted final
//! line is detected and dropped on load). On resume the grid is
//! re-enumerated from the spec and the journaled indices are skipped —
//! per-scenario seeds depend only on `(campaign_seed, index)`, so the
//! merged result is bit-identical to an uninterrupted run.

use std::collections::HashSet;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use chunkpoint_campaign::{CampaignSpec, JsonValue, Scenario, ScenarioResult};

/// A handle on the store root. Cheap to clone; all state lives on disk.
#[derive(Debug, Clone)]
pub struct JobStore {
    root: PathBuf,
}

/// A journal loaded from disk: the trusted rows plus their index set.
#[derive(Debug, Default)]
pub struct LoadedJournal {
    /// Journaled results, in journal (completion) order.
    pub results: Vec<ScenarioResult>,
    /// Scenario indices present — the resume skip set.
    pub done: HashSet<usize>,
}

impl JobStore {
    /// Opens (creating if needed) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors creating the directory tree.
    pub fn open(root: impl Into<PathBuf>) -> std::io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(root.join("jobs"))?;
        Ok(Self { root })
    }

    /// The store root.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Formats a spec hash as the job id: 16 lowercase hex digits.
    #[must_use]
    pub fn job_id(spec: &CampaignSpec) -> String {
        format!("{:016x}", spec.spec_hash())
    }

    /// Whether `id` has the shape of a job id. Guards every path that
    /// joins an id onto the filesystem — nothing traversal-shaped gets
    /// near [`Path::join`].
    #[must_use]
    pub fn valid_id(id: &str) -> bool {
        id.len() == 16
            && id
                .bytes()
                .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase())
    }

    fn job_dir(&self, id: &str) -> PathBuf {
        debug_assert!(Self::valid_id(id), "unvalidated job id {id:?}");
        self.root.join("jobs").join(id)
    }

    fn spec_path(&self, id: &str) -> PathBuf {
        self.job_dir(id).join("spec.json")
    }

    fn meta_path(&self, id: &str) -> PathBuf {
        self.job_dir(id).join("meta.json")
    }

    fn journal_path(&self, id: &str) -> PathBuf {
        self.job_dir(id).join("journal.jsonl")
    }

    fn result_path(&self, id: &str) -> PathBuf {
        self.job_dir(id).join("result.json")
    }

    /// Creates the job directory and persists the canonical spec and its
    /// grid size. Idempotent for the same spec (same content hash ⇒ same
    /// bytes).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn create_job(
        &self,
        id: &str,
        spec: &CampaignSpec,
        scenarios: usize,
    ) -> std::io::Result<()> {
        fs::create_dir_all(self.job_dir(id))?;
        fs::write(self.spec_path(id), spec.to_json().render() + "\n")?;
        fs::write(
            self.meta_path(id),
            JsonValue::object().field("scenarios", scenarios).render() + "\n",
        )?;
        Ok(())
    }

    /// Whether a job directory exists for `id`.
    #[must_use]
    pub fn job_exists(&self, id: &str) -> bool {
        self.spec_path(id).is_file()
    }

    /// Every job id present in the store, sorted (deterministic recovery
    /// order).
    #[must_use]
    pub fn list_jobs(&self) -> Vec<String> {
        let mut ids: Vec<String> = fs::read_dir(self.root.join("jobs"))
            .map(|entries| {
                entries
                    .filter_map(Result::ok)
                    .filter_map(|e| e.file_name().into_string().ok())
                    .filter(|id| Self::valid_id(id))
                    .collect()
            })
            .unwrap_or_default();
        ids.sort();
        ids
    }

    /// Loads and re-validates a job's spec.
    ///
    /// # Errors
    ///
    /// Reports unreadable files, unparseable JSON, and — because the id
    /// is the content hash — a spec whose bytes no longer hash to `id`
    /// (on-disk tampering or corruption).
    pub fn load_spec(&self, id: &str) -> Result<CampaignSpec, String> {
        let raw = fs::read_to_string(self.spec_path(id))
            .map_err(|e| format!("job {id}: reading spec: {e}"))?;
        let value =
            JsonValue::parse(&raw).map_err(|e| format!("job {id}: spec is not JSON: {e}"))?;
        let spec = CampaignSpec::from_json(&value).map_err(|e| format!("job {id}: {e}"))?;
        let expected = Self::job_id(&spec);
        if expected != id {
            return Err(format!(
                "job {id}: stored spec hashes to {expected} — store corrupted"
            ));
        }
        Ok(spec)
    }

    /// Loads a job's grid size from `meta.json`.
    ///
    /// # Errors
    ///
    /// Reports missing/corrupt metadata.
    pub fn load_scenario_count(&self, id: &str) -> Result<usize, String> {
        let raw = fs::read_to_string(self.meta_path(id))
            .map_err(|e| format!("job {id}: reading meta: {e}"))?;
        JsonValue::parse(&raw)
            .ok()
            .as_ref()
            .and_then(|v| v.get("scenarios"))
            .and_then(JsonValue::as_u64)
            .map(|n| n as usize)
            .ok_or_else(|| format!("job {id}: corrupt meta.json"))
    }

    /// Loads the journal against the spec's re-enumerated grid. `active`
    /// is the job's executable index range ([`CampaignSpec::active_range`]
    /// — the whole grid for unranged specs): a row outside it belongs to
    /// a different slice of the campaign and is rejected.
    ///
    /// Tolerates exactly the damage a `SIGKILL` can cause — a final line
    /// with no trailing newline (dropped) — and rejects everything else
    /// loudly: a parseable row with a wrong seed or index means the
    /// journal belongs to a different campaign and resuming from it
    /// would silently corrupt results.
    ///
    /// # Errors
    ///
    /// Reports unreadable files and rows inconsistent with `scenarios`
    /// or `active`.
    pub fn load_journal(
        &self,
        id: &str,
        scenarios: &[Scenario],
        active: &std::ops::Range<usize>,
    ) -> Result<LoadedJournal, String> {
        let path = self.journal_path(id);
        if !path.is_file() {
            return Ok(LoadedJournal::default());
        }
        let raw = fs::read_to_string(&path).map_err(|e| format!("job {id}: journal: {e}"))?;
        let complete_prefix = match raw.rfind('\n') {
            // A crash can sever the last line mid-write; only lines
            // sealed by a newline are trusted.
            Some(last_newline) => &raw[..=last_newline],
            None => "",
        };
        let mut journal = LoadedJournal::default();
        for (lineno, line) in complete_prefix.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let value = JsonValue::parse(line)
                .map_err(|e| format!("job {id}: journal line {}: {e}", lineno + 1))?;
            let index = value
                .get("index")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("job {id}: journal line {}: no index", lineno + 1))?
                as usize;
            let scenario = scenarios.get(index).ok_or_else(|| {
                format!(
                    "job {id}: journal line {} indexes scenario {index} outside the grid",
                    lineno + 1
                )
            })?;
            if !active.contains(&index) {
                return Err(format!(
                    "job {id}: journal line {} indexes scenario {index} outside this job's \
                     scenario range [{}, {})",
                    lineno + 1,
                    active.start,
                    active.end
                ));
            }
            let result = ScenarioResult::from_json(&value, scenario.clone())
                .map_err(|e| format!("job {id}: journal line {}: {e}", lineno + 1))?;
            if journal.done.insert(index) {
                journal.results.push(result);
            }
        }
        Ok(journal)
    }

    /// The sealed (newline-terminated) journal rows as raw JSON lines, in
    /// journal (completion) order — the payload of
    /// `GET /campaigns/:id/journal`, which a shard coordinator merges
    /// with its sibling shards' rows. A torn final line is dropped, same
    /// as [`JobStore::load_journal`]; a missing journal is simply empty.
    #[must_use]
    pub fn read_journal_rows(&self, id: &str) -> Vec<String> {
        let Ok(raw) = fs::read_to_string(self.journal_path(id)) else {
            return Vec::new();
        };
        let sealed = match raw.rfind('\n') {
            Some(last_newline) => &raw[..=last_newline],
            None => "",
        };
        sealed
            .lines()
            .filter(|line| !line.trim().is_empty())
            .map(str::to_owned)
            .collect()
    }

    /// Counts the sealed (newline-terminated) journal rows without
    /// validating them — the cheap progress figure service recovery
    /// reports before a runner re-loads the journal properly.
    #[must_use]
    pub fn journal_line_count(&self, id: &str) -> usize {
        std::fs::read_to_string(self.journal_path(id))
            .map(|raw| raw.bytes().filter(|&b| b == b'\n').count())
            .unwrap_or(0)
    }

    /// Opens the journal for appending, creating it if absent.
    ///
    /// A crash mid-append can leave a torn, newline-less tail;
    /// `load_journal` ignores it, but appending after it would weld the
    /// next row onto the torn bytes and corrupt that row too. So the
    /// tail is truncated away here, before the first fresh append —
    /// resume always writes from a sealed line boundary.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn open_journal(&self, id: &str) -> std::io::Result<JournalWriter> {
        let path = self.journal_path(id);
        if let Ok(raw) = fs::read(&path) {
            let sealed = raw.iter().rposition(|&b| b == b'\n').map_or(0, |p| p + 1);
            if sealed != raw.len() {
                let file = OpenOptions::new().write(true).open(&path)?;
                file.set_len(sealed as u64)?;
                file.sync_all()?;
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(JournalWriter { file })
    }

    /// Persists the final report atomically (temp file + rename): a
    /// crash during the write can never leave a half-result that a later
    /// cache hit would serve.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_result(&self, id: &str, report: &str) -> std::io::Result<()> {
        let tmp = self.job_dir(id).join("result.json.tmp");
        {
            let mut file = File::create(&tmp)?;
            file.write_all(report.as_bytes())?;
            file.write_all(b"\n")?;
            file.sync_all()?;
        }
        fs::rename(&tmp, self.result_path(id))
    }

    /// The cached final report, if the job has one — the cache-hit path.
    #[must_use]
    pub fn read_result(&self, id: &str) -> Option<String> {
        fs::read_to_string(self.result_path(id)).ok()
    }

    /// Removes a job and everything it journaled.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (absent directories are fine).
    pub fn delete_job(&self, id: &str) -> std::io::Result<()> {
        match fs::remove_dir_all(self.job_dir(id)) {
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            other => other,
        }
    }
}

/// An open append handle on a job's journal. One [`ScenarioResult`] per
/// line; every line is flushed to the OS before the write returns, so a
/// killed process loses at most the line being written (which the loader
/// detects and drops).
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
}

impl JournalWriter {
    /// Appends one result and flushes the line to the OS.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn append(&mut self, result: &ScenarioResult) -> std::io::Result<()> {
        let mut line = result.to_json().render();
        line.push('\n');
        self.file.write_all(line.as_bytes())?;
        self.file.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chunkpoint_campaign::{run_campaign, SchemeSpec};
    use chunkpoint_core::{MitigationScheme, SystemConfig};
    use chunkpoint_workloads::Benchmark;

    fn test_root(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("chunkpoint_store_{}_{tag}", std::process::id()))
    }

    fn tiny_spec() -> CampaignSpec {
        let mut config = SystemConfig::paper(0);
        config.scale = 0.25;
        CampaignSpec::new(config, 77)
            .benchmarks(&[Benchmark::AdpcmEncode])
            .scheme("Default", SchemeSpec::Fixed(MitigationScheme::Default))
            .replicates(3)
    }

    #[test]
    fn ids_are_validated_and_content_addressed() {
        let spec = tiny_spec();
        let id = JobStore::job_id(&spec);
        assert!(JobStore::valid_id(&id), "{id}");
        assert_eq!(id, JobStore::job_id(&tiny_spec()));
        for bad in ["", "..", "../../etc", "0123456789abcdeF", "0123456789abcde"] {
            assert!(!JobStore::valid_id(bad), "{bad:?}");
        }
    }

    #[test]
    fn journal_round_trips_and_drops_torn_tail() {
        let root = test_root("journal");
        let _ = fs::remove_dir_all(&root);
        let store = JobStore::open(&root).expect("open");
        let spec = tiny_spec();
        let id = JobStore::job_id(&spec);
        let scenarios = spec.scenarios();
        store
            .create_job(&id, &spec, scenarios.len())
            .expect("create");
        assert_eq!(store.load_scenario_count(&id).expect("meta"), 3);
        assert_eq!(
            store.load_spec(&id).expect("spec").to_json().render(),
            spec.to_json().render()
        );

        let campaign = run_campaign(&spec, 1);
        {
            let mut journal = store.open_journal(&id).expect("journal");
            for result in &campaign.results[..2] {
                journal.append(result).expect("append");
            }
        }
        // Simulate a SIGKILL mid-append: a torn, newline-less final line.
        let mut raw = fs::read_to_string(root.join("jobs").join(&id).join("journal.jsonl"))
            .expect("read journal");
        raw.push_str("{\"index\":2,\"seed\":12345,\"energy_pj\":1.0");
        fs::write(root.join("jobs").join(&id).join("journal.jsonl"), &raw).expect("tear");

        let loaded = store
            .load_journal(&id, &scenarios, &(0..scenarios.len()))
            .expect("load");
        assert_eq!(loaded.done, [0usize, 1].into_iter().collect());
        assert_eq!(loaded.results, campaign.results[..2].to_vec());

        // Re-opening for append seals the torn tail first, so the next
        // row lands on a fresh line instead of welding onto the tear.
        {
            let mut journal = store.open_journal(&id).expect("reopen");
            journal
                .append(&campaign.results[2])
                .expect("append after tear");
        }
        let healed = store
            .load_journal(&id, &scenarios, &(0..scenarios.len()))
            .expect("load healed");
        assert_eq!(healed.done, [0usize, 1, 2].into_iter().collect());
        assert_eq!(healed.results, campaign.results.to_vec());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn journal_from_another_campaign_is_rejected() {
        let root = test_root("foreign");
        let _ = fs::remove_dir_all(&root);
        let store = JobStore::open(&root).expect("open");
        let spec = tiny_spec();
        let id = JobStore::job_id(&spec);
        let scenarios = spec.scenarios();
        store
            .create_job(&id, &spec, scenarios.len())
            .expect("create");
        // Journal written under a different campaign seed: seeds differ.
        let mut config = SystemConfig::paper(0);
        config.scale = 0.25;
        let foreign = CampaignSpec::new(config, 78)
            .benchmarks(&[Benchmark::AdpcmEncode])
            .scheme("Default", SchemeSpec::Fixed(MitigationScheme::Default))
            .replicates(3);
        let foreign_run = run_campaign(&foreign, 1);
        let mut journal = store.open_journal(&id).expect("journal");
        journal.append(&foreign_run.results[0]).expect("append");
        let err = store
            .load_journal(&id, &scenarios, &(0..scenarios.len()))
            .expect_err("foreign journal");
        assert!(err.contains("different campaign"), "{err}");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn results_cache_and_delete() {
        let root = test_root("cache");
        let _ = fs::remove_dir_all(&root);
        let store = JobStore::open(&root).expect("open");
        let spec = tiny_spec();
        let id = JobStore::job_id(&spec);
        store.create_job(&id, &spec, 3).expect("create");
        assert!(store.read_result(&id).is_none());
        store.write_result(&id, "{\"ok\":true}").expect("write");
        assert_eq!(store.read_result(&id).expect("hit"), "{\"ok\":true}\n");
        assert_eq!(store.list_jobs(), vec![id.clone()]);
        store.delete_job(&id).expect("delete");
        assert!(store.read_result(&id).is_none());
        assert!(store.list_jobs().is_empty());
        store.delete_job(&id).expect("idempotent delete");
        let _ = fs::remove_dir_all(&root);
    }
}
