//! Malformed-input regression suite for the serving plane, proven
//! against a live server on a real socket: every class of bad input a
//! client can send — garbage framing, unparseable bodies, well-formed
//! JSON that is not a spec, and specs that are internally inconsistent
//! — answers with a typed 4xx, and the service keeps serving real work
//! afterwards. Plus the shed path's derived `Retry-After`: the header
//! value is an integer inside the documented `[1, 60]` clamp, not a
//! hard-coded constant that ignores the queue.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use chunkpoint_campaign::{CampaignSpec, JsonValue, SchemeSpec};
use chunkpoint_core::{MitigationScheme, SystemConfig};
use chunkpoint_serve::server::{ServeConfig, Server};
use chunkpoint_shard::exchange;
use chunkpoint_workloads::Benchmark;

const TIMEOUT: Duration = Duration::from_secs(5);

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("chunkpoint_hardening_{}_{tag}", std::process::id()))
}

/// Starts an in-process server on an ephemeral port; returns its
/// address, the serving thread's handle, and the data dir to clean up.
fn start_server(tag: &str, max_queued: usize) -> (String, std::thread::JoinHandle<()>, PathBuf) {
    let dir = temp_dir(tag);
    let _ = std::fs::remove_dir_all(&dir);
    let server = Server::bind(&ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        data_dir: dir.clone(),
        max_jobs: 1,
        campaign_threads: 1,
        max_queued,
        trace_out: None,
    })
    .expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let serving = std::thread::spawn(move || server.run());
    (addr, serving, dir)
}

/// Sends raw bytes and returns the full response text (head + body) —
/// the typed client cannot send malformed framing, and discards the
/// headers this suite asserts on.
fn raw_exchange(addr: &str, bytes: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(TIMEOUT))
        .expect("read timeout");
    stream.write_all(bytes).expect("send");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    String::from_utf8_lossy(&response).into_owned()
}

fn post_campaigns(addr: &str, body: &[u8]) -> String {
    let mut request = format!(
        "POST /campaigns HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    request.extend_from_slice(body);
    raw_exchange(addr, &request)
}

/// The service must answer `/healthz` with a 200 after every abuse —
/// the regression being guarded: one malformed request must never wedge
/// or kill the accept loop or the job manager.
fn assert_alive(addr: &str, after: &str) {
    let (status, _) = exchange(addr, "GET", "/healthz", None, TIMEOUT)
        .unwrap_or_else(|e| panic!("service dead after {after}: {e}"));
    assert_eq!(status, 200, "service unhealthy after {after}");
}

fn tiny_spec(seed: u64) -> CampaignSpec {
    let mut config = SystemConfig::paper(0);
    config.scale = 0.25;
    CampaignSpec::new(config, seed)
        .benchmarks(&[Benchmark::AdpcmEncode])
        .scheme("Default", SchemeSpec::Fixed(MitigationScheme::Default))
        .normalize(false)
        .golden_check(false)
}

#[test]
fn malformed_inputs_get_typed_errors_and_the_service_survives() {
    let (addr, serving, dir) = start_server("malformed", 1024);

    // 1. Garbage request line: no method/path/version triple.
    let response = raw_exchange(&addr, b"NONSENSE\r\n\r\n");
    assert!(response.starts_with("HTTP/1.1 400"), "{response}");
    assert!(response.contains("malformed request line"), "{response}");
    assert_alive(&addr, "a garbage request line");

    // 2. Unparseable Content-Length: well-formed line, broken framing.
    let response = raw_exchange(
        &addr,
        b"POST /campaigns HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
    );
    assert!(response.starts_with("HTTP/1.1 400"), "{response}");
    assert!(response.contains("bad Content-Length"), "{response}");
    assert_alive(&addr, "a bad Content-Length");

    // 3. A body that is not JSON at all.
    let response = post_campaigns(&addr, b"this is not json");
    assert!(response.starts_with("HTTP/1.1 400"), "{response}");
    assert!(response.contains("body is not JSON"), "{response}");
    assert_alive(&addr, "a non-JSON body");

    // 4. Valid JSON that is not a campaign spec.
    let response = post_campaigns(&addr, b"{\"x\":1}");
    assert!(response.starts_with("HTTP/1.1 400"), "{response}");
    assert_alive(&addr, "a non-spec JSON body");

    // 5. A non-UTF-8 body: rejected before JSON parsing ever runs.
    let response = post_campaigns(&addr, &[0xff, 0xfe, 0x80]);
    assert!(response.starts_with("HTTP/1.1 400"), "{response}");
    assert!(response.contains("body is not UTF-8"), "{response}");
    assert_alive(&addr, "a non-UTF-8 body");

    // 6. A well-formed spec whose scenario_range overruns its own grid.
    let bad_range = tiny_spec(0xBAD)
        .scenario_range(0, 10_000)
        .to_json()
        .render();
    let response = post_campaigns(&addr, bad_range.as_bytes());
    assert!(response.starts_with("HTTP/1.1 400"), "{response}");
    assert!(response.contains("exceeds"), "{response}");
    assert_alive(&addr, "an out-of-range sub-spec");

    // After all of it, the service still does real work end to end.
    let good = tiny_spec(0x60D).to_json().render();
    let response = post_campaigns(&addr, good.as_bytes());
    assert!(
        response.starts_with("HTTP/1.1 202") || response.starts_with("HTTP/1.1 200"),
        "a valid spec must still be accepted: {response}"
    );

    let _ = exchange(&addr, "POST", "/shutdown", None, TIMEOUT);
    serving.join().expect("server drained");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The shed `Retry-After` is derived from queue depth and the observed
/// scenario wall-time mean, and always lands inside the documented
/// `[1, 60]` second clamp — an integral header a client can sleep on.
#[test]
fn shed_retry_after_is_derived_and_clamped() {
    let (addr, serving, dir) = start_server("retry_after", 1);
    let slow = |seed: u64| {
        let mut config = SystemConfig::paper(0);
        config.scale = 0.25;
        CampaignSpec::new(config, seed)
            .benchmarks(&[Benchmark::AdpcmEncode])
            .scheme("Default", SchemeSpec::Fixed(MitigationScheme::Default))
            .replicates(4000)
            .normalize(false)
            .golden_check(false)
            .to_json()
            .render()
    };

    // Fill the single runner, wait for it to pick the job up, then
    // fill the queue bound of one.
    let first = post_campaigns(&addr, slow(0xA1).as_bytes());
    assert!(first.starts_with("HTTP/1.1 202"), "{first}");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (status, body) = exchange(&addr, "GET", "/healthz", None, TIMEOUT).expect("healthz");
        assert_eq!(status, 200);
        let counts = JsonValue::parse(&body).expect("healthz JSON");
        if counts.get("running").and_then(JsonValue::as_u64) == Some(1) {
            break;
        }
        assert!(Instant::now() < deadline, "job 1 never started running");
        std::thread::sleep(Duration::from_millis(10));
    }
    let second = post_campaigns(&addr, slow(0xA2).as_bytes());
    assert!(second.starts_with("HTTP/1.1 202"), "{second}");

    // The shed response's Retry-After parses as an integer in [1, 60].
    let third = post_campaigns(&addr, slow(0xA3).as_bytes());
    assert!(third.starts_with("HTTP/1.1 429"), "{third}");
    let seconds: u64 = third
        .lines()
        .find_map(|line| line.strip_prefix("Retry-After: "))
        .unwrap_or_else(|| panic!("no Retry-After header: {third}"))
        .trim()
        .parse()
        .expect("Retry-After must be integral seconds");
    assert!(
        (1..=60).contains(&seconds),
        "derived Retry-After {seconds} escaped the clamp"
    );

    let _ = exchange(&addr, "POST", "/shutdown", None, TIMEOUT);
    serving.join().expect("server drained");
    let _ = std::fs::remove_dir_all(&dir);
}
