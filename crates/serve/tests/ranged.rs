//! Ranged sub-specs through the service: a job restricted to a
//! `scenario_range` slice of the grid journals only its slice, resumes
//! from that journal after a restart with the range-restricted skip set
//! intact, and serves a canonical report identical to an in-process run
//! of the same slice.

use std::collections::HashSet;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use chunkpoint_campaign::{
    canonical_report_json, run_campaign_streaming, CampaignSpec, CancelToken, ScenarioResult,
    SchemeSpec,
};
use chunkpoint_core::{MitigationScheme, SystemConfig};
use chunkpoint_serve::{JobManager, JobState, JobStore, REPORT_AXES};
use chunkpoint_workloads::Benchmark;

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("chunkpoint_ranged_{}_{tag}", std::process::id()))
}

/// A 12-scenario grid; the job under test runs the slice `[4, 10)`.
fn base_spec() -> CampaignSpec {
    let mut config = SystemConfig::paper(0);
    config.scale = 0.25;
    CampaignSpec::new(config, 0x4A6E)
        .benchmarks(&[Benchmark::AdpcmEncode, Benchmark::AdpcmDecode])
        .scheme("Default", SchemeSpec::Fixed(MitigationScheme::Default))
        .scheme("SW-based", SchemeSpec::Fixed(MitigationScheme::SwRestart))
        .replicates(3)
}

fn wait_done(manager: &JobManager, id: &str) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let status = manager.status(id).expect("job known");
        match status.state {
            JobState::Done => return,
            JobState::Failed(message) => panic!("ranged job failed: {message}"),
            _ => {}
        }
        assert!(Instant::now() < deadline, "ranged job never finished");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// A ranged job interrupted after journaling part of its slice resumes
/// on a restarted service — skipping the journaled rows, running only
/// the rest of its range, never touching the rest of the grid — and the
/// final report is byte-identical to an uninterrupted in-process run of
/// the slice.
#[test]
fn ranged_job_resumes_from_journal_after_restart() {
    let root = temp_dir("resume");
    let _ = std::fs::remove_dir_all(&root);

    let sub = base_spec().scenario_range(4, 10);
    let grid = sub.scenarios();
    assert_eq!(grid.len(), 12);
    let id = JobStore::job_id(&sub);

    // The uninterrupted reference: the slice's rows, computed in-process.
    let reference: Vec<ScenarioResult> =
        run_campaign_streaming(&sub, 1, &CancelToken::new(), &HashSet::new(), |_| {});
    assert_eq!(reference.len(), 6);
    assert!(reference
        .iter()
        .all(|r| (4..10).contains(&r.scenario.index)));

    // "First service life": persist the job and journal two rows of the
    // slice, as if the process died mid-campaign.
    let store = JobStore::open(&root).expect("open store");
    store.create_job(&id, &sub, 6).expect("create job");
    {
        let mut journal = store.open_journal(&id).expect("journal");
        journal.append(&reference[0]).expect("append row 4");
        journal.append(&reference[1]).expect("append row 5");
    }

    // "Restart": recovery re-enqueues the unfinished job with its
    // journaled progress; a runner resumes it with the range-restricted
    // skip set and finishes only scenarios 6..10.
    let manager = JobManager::recover(JobStore::open(&root).expect("reopen"), 1, 0);
    let recovered = manager.status(&id).expect("recovered job");
    assert_eq!(recovered.state, JobState::Queued);
    assert_eq!(
        recovered.scenarios, 6,
        "status counts the slice, not the grid"
    );
    assert_eq!(recovered.completed, 2, "journaled progress survived");
    let runners = manager.spawn_runners(1);
    wait_done(&manager, &id);

    // The journal holds exactly the slice — nothing outside [4, 10) ran.
    let final_journal = store
        .load_journal(&id, &grid, &(4..10))
        .expect("final journal");
    assert_eq!(final_journal.done, (4..10).collect::<HashSet<_>>());

    // Byte-identical to the uninterrupted slice run.
    let expected = canonical_report_json(sub.campaign_seed, &reference, &REPORT_AXES).render();
    let served = manager.result(&id).expect("cached result");
    assert_eq!(
        served.trim_end(),
        expected,
        "resumed ranged report diverged"
    );

    manager.shutdown(runners);
    let _ = std::fs::remove_dir_all(&root);
}

/// A journal row outside the job's range is rejected loudly on load —
/// resuming from another shard's journal would corrupt the merge.
#[test]
fn out_of_range_journal_rows_are_rejected() {
    let root = temp_dir("foreign");
    let _ = std::fs::remove_dir_all(&root);

    let sub = base_spec().scenario_range(4, 10);
    let grid = sub.scenarios();
    let id = JobStore::job_id(&sub);
    let store = JobStore::open(&root).expect("open store");
    store.create_job(&id, &sub, 6).expect("create job");

    // Scenario 0 belongs to the sibling shard [0, 4).
    let foreign: Vec<ScenarioResult> = run_campaign_streaming(
        &base_spec().scenario_range(0, 1),
        1,
        &CancelToken::new(),
        &HashSet::new(),
        |_| {},
    );
    let mut journal = store.open_journal(&id).expect("journal");
    journal.append(&foreign[0]).expect("append foreign row");
    drop(journal);

    let err = store
        .load_journal(&id, &grid, &(4..10))
        .expect_err("foreign row");
    assert!(err.contains("scenario range"), "{err}");
    let _ = std::fs::remove_dir_all(&root);
}

/// Submitting a ranged spec over HTTP-free manager API validates the
/// range against the grid it slices.
#[test]
fn range_past_the_grid_is_rejected_at_submit() {
    let root = temp_dir("bounds");
    let _ = std::fs::remove_dir_all(&root);
    let manager = JobManager::recover(JobStore::open(&root).expect("open"), 1, 0);
    // Grid is 12 scenarios; [8, 20) overhangs it.
    let err = manager
        .submit(&base_spec().scenario_range(8, 20))
        .expect_err("overhanging range");
    assert!(err.to_string().contains("exceeds"), "{err}");
    // A range that fits is accepted and sized by its slice.
    let ok = manager
        .submit(&base_spec().scenario_range(8, 12))
        .expect("valid range");
    assert_eq!(ok.status.scenarios, 4);
    let _ = std::fs::remove_dir_all(&root);
}
