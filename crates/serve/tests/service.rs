//! In-process service lifecycle: submit → poll → result → cache hit →
//! delete → graceful shutdown, all over real HTTP on an ephemeral port.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use chunkpoint_campaign::{
    canonical_report_json, run_campaign, CampaignSpec, JsonValue, SchemeSpec,
};
use chunkpoint_core::{MitigationScheme, SystemConfig};
use chunkpoint_serve::http::request;
use chunkpoint_serve::server::{ServeConfig, Server};
use chunkpoint_serve::REPORT_AXES;
use chunkpoint_workloads::Benchmark;

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("chunkpoint_service_{}_{tag}", std::process::id()))
}

fn tiny_spec() -> CampaignSpec {
    let mut config = SystemConfig::paper(0);
    config.scale = 0.25;
    CampaignSpec::new(config, 0xAB)
        .benchmarks(&[Benchmark::AdpcmEncode])
        .scheme("Default", SchemeSpec::Fixed(MitigationScheme::Default))
        .scheme("SW-based", SchemeSpec::Fixed(MitigationScheme::SwRestart))
        .replicates(2)
}

fn wait_done(addr: std::net::SocketAddr, id: &str) -> JsonValue {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, body) =
            request(addr, "GET", &format!("/campaigns/{id}"), None).expect("status poll");
        assert_eq!(status, 200, "{body}");
        let doc = JsonValue::parse(&body).expect("status json");
        match doc.get("status").and_then(JsonValue::as_str) {
            Some("done") => return doc,
            Some("failed") => panic!("job failed: {body}"),
            _ => {}
        }
        assert!(Instant::now() < deadline, "job never finished: {body}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn submit_poll_result_cache_delete_shutdown() {
    let dir = temp_dir("lifecycle");
    let _ = std::fs::remove_dir_all(&dir);
    let server = Server::bind(&ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        data_dir: dir.clone(),
        max_jobs: 2,
        campaign_threads: 2,
        max_queued: 0,
        trace_out: None,
    })
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    let serving = std::thread::spawn(move || server.run());

    // Health before anything.
    let (status, body) = request(addr, "GET", "/healthz", None).expect("healthz");
    assert_eq!(status, 200);
    assert!(body.contains("\"status\":\"ok\""), "{body}");

    // Submit.
    let spec = tiny_spec();
    let spec_body = spec.to_json().render();
    let (status, body) = request(addr, "POST", "/campaigns", Some(&spec_body)).expect("submit");
    assert_eq!(status, 202, "{body}");
    let doc = JsonValue::parse(&body).expect("submit json");
    let id = doc.get("id").unwrap().as_str().expect("id").to_owned();
    assert_eq!(doc.get("cached").unwrap().as_bool(), Some(false));
    assert_eq!(doc.get("scenarios").unwrap().as_u64(), Some(4));

    // Poll to completion; fetch the report.
    let status_doc = wait_done(addr, &id);
    assert_eq!(status_doc.get("completed").unwrap().as_u64(), Some(4));
    let (status, report) =
        request(addr, "GET", &format!("/campaigns/{id}/result"), None).expect("result");
    assert_eq!(status, 200, "{report}");

    // The served report is the canonical timing-free report, byte for
    // byte identical to an in-process single-threaded run.
    let reference = run_campaign(&spec, 1);
    let expected = canonical_report_json(spec.campaign_seed, &reference.results, &REPORT_AXES);
    assert_eq!(report.trim_end(), expected.render());

    // The journal endpoint serves every sealed row of the finished job.
    let (status, body) =
        request(addr, "GET", &format!("/campaigns/{id}/journal"), None).expect("journal");
    assert_eq!(status, 200, "{body}");
    let journal = JsonValue::parse(&body).expect("journal json");
    assert_eq!(journal.get("id").unwrap().as_str(), Some(id.as_str()));
    let rows = journal.get("rows").unwrap().as_array().expect("rows");
    assert_eq!(rows.len(), 4);
    let mut journaled: Vec<u64> = rows
        .iter()
        .map(|row| row.get("index").unwrap().as_u64().expect("row index"))
        .collect();
    journaled.sort_unstable();
    assert_eq!(journaled, vec![0, 1, 2, 3]);

    // Resubmitting the identical spec is an instant cache hit.
    let t0 = Instant::now();
    let (status, body) = request(addr, "POST", "/campaigns", Some(&spec_body)).expect("resubmit");
    assert_eq!(status, 200, "{body}");
    let doc = JsonValue::parse(&body).expect("resubmit json");
    assert_eq!(doc.get("cached").unwrap().as_bool(), Some(true));
    assert!(
        t0.elapsed() < Duration::from_secs(2),
        "cache hit was not instant: {:?}",
        t0.elapsed()
    );

    // A different spec is a different content address.
    let other = tiny_spec().replicates(3);
    let (status, body) = request(addr, "POST", "/campaigns", Some(&other.to_json().render()))
        .expect("different spec");
    assert_eq!(status, 202, "{body}");
    let other_id = JsonValue::parse(&body)
        .unwrap()
        .get("id")
        .unwrap()
        .as_str()
        .unwrap()
        .to_owned();
    assert_ne!(other_id, id);
    wait_done(addr, &other_id);

    // Delete removes the job and its result.
    let (status, _) =
        request(addr, "DELETE", &format!("/campaigns/{other_id}"), None).expect("delete");
    assert_eq!(status, 200);
    let (status, _) =
        request(addr, "GET", &format!("/campaigns/{other_id}"), None).expect("post-delete");
    assert_eq!(status, 404);

    // Unknown and malformed ids are 404s, not store accesses.
    let (status, _) = request(addr, "GET", "/campaigns/ffffffffffffffff", None).expect("unknown");
    assert_eq!(status, 404);
    let (status, _) = request(addr, "GET", "/campaigns/../etc", None).expect("traversal");
    assert_eq!(status, 404);

    // Bad specs are 400s.
    let (status, _) = request(addr, "POST", "/campaigns", Some("{not json")).expect("bad json");
    assert_eq!(status, 400);
    let (status, _) =
        request(addr, "POST", "/campaigns", Some("{\"version\":1}")).expect("bad spec");
    assert_eq!(status, 400);

    // Result of a still-unknown id refuses politely, then shut down.
    let (status, _) = request(addr, "POST", "/shutdown", None).expect("shutdown");
    assert_eq!(status, 200);
    serving.join().expect("server drained");
    let _ = std::fs::remove_dir_all(&dir);
}
