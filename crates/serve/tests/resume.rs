//! Crash–resume: the acceptance test for the checkpoint store.
//!
//! A real `serve` process is `SIGKILL`ed mid-campaign; a fresh process
//! over the same data dir must resume from the journal and produce a
//! final report **byte-identical** to an uninterrupted single-threaded
//! in-process run of the same spec — the bit-exactness the SplitMix64
//! per-scenario seed derivation guarantees.

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use chunkpoint_campaign::{
    canonical_report_json, run_campaign, CampaignSpec, JsonValue, SchemeSpec,
};
use chunkpoint_core::{MitigationScheme, SystemConfig};
use chunkpoint_serve::http::request;
use chunkpoint_serve::{JobStore, REPORT_AXES};
use chunkpoint_workloads::Benchmark;

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("chunkpoint_resume_{}_{tag}", std::process::id()))
}

/// A grid big enough that the kill reliably lands mid-run even in a
/// fast release build (~120 scenarios, each with a same-seed Default
/// denominator and a golden comparison).
fn kill_spec() -> CampaignSpec {
    let config = SystemConfig::paper(0);
    CampaignSpec::new(config, 0xC4A5_11)
        .benchmarks(&[Benchmark::AdpcmEncode, Benchmark::G721Encode])
        .scheme("Default", SchemeSpec::Fixed(MitigationScheme::Default))
        .scheme("SW-based", SchemeSpec::Fixed(MitigationScheme::SwRestart))
        .scheme(
            "Proposed",
            SchemeSpec::Fixed(MitigationScheme::Hybrid {
                chunk_words: 16,
                l1_prime_t: 8,
            }),
        )
        .error_rates(&[1e-6, 1e-5])
        .replicates(10)
}

struct ServeProcess {
    child: Child,
    addr: std::net::SocketAddr,
}

/// Starts the real `serve` binary on an ephemeral port over `data_dir`
/// and waits until it answers `/healthz`.
fn start_serve(data_dir: &PathBuf, port_file: &PathBuf) -> ServeProcess {
    let _ = std::fs::remove_file(port_file);
    let child = Command::new(env!("CARGO_BIN_EXE_serve"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--data-dir",
            data_dir.to_str().expect("utf8 dir"),
            "--port-file",
            port_file.to_str().expect("utf8 path"),
            "--jobs",
            "1",
            "--threads",
            "1",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn serve");
    let deadline = Instant::now() + Duration::from_secs(60);
    let port: u16 = loop {
        if let Ok(raw) = std::fs::read_to_string(port_file) {
            if let Ok(port) = raw.trim().parse() {
                break port;
            }
        }
        assert!(Instant::now() < deadline, "serve never wrote its port");
        std::thread::sleep(Duration::from_millis(10));
    };
    let addr = std::net::SocketAddr::from(([127, 0, 0, 1], port));
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Ok((200, _)) = request(addr, "GET", "/healthz", None) {
            break;
        }
        assert!(Instant::now() < deadline, "serve never became healthy");
        std::thread::sleep(Duration::from_millis(10));
    }
    ServeProcess { child, addr }
}

#[test]
fn sigkilled_service_resumes_bit_identically() {
    let data_dir = temp_dir("kill");
    let port_file = temp_dir("kill_port");
    let _ = std::fs::remove_dir_all(&data_dir);

    let spec = kill_spec();
    let total = spec.scenarios().len();
    let expected_id = JobStore::job_id(&spec);

    // Phase 1: submit, let it get partway, then SIGKILL the service.
    let mut serve = start_serve(&data_dir, &port_file);
    let (status, body) = request(
        serve.addr,
        "POST",
        "/campaigns",
        Some(&spec.to_json().render()),
    )
    .expect("submit");
    assert_eq!(status, 202, "{body}");
    let id = JsonValue::parse(&body)
        .unwrap()
        .get("id")
        .unwrap()
        .as_str()
        .unwrap()
        .to_owned();
    assert_eq!(id, expected_id, "service and library disagree on the hash");

    let deadline = Instant::now() + Duration::from_secs(120);
    let completed_at_kill = loop {
        let (_, body) =
            request(serve.addr, "GET", &format!("/campaigns/{id}"), None).expect("poll");
        let doc = JsonValue::parse(&body).expect("status json");
        let completed = doc.get("completed").unwrap().as_u64().expect("completed") as usize;
        let state = doc.get("status").unwrap().as_str().unwrap().to_owned();
        assert_ne!(state, "failed", "{body}");
        if completed >= 3 {
            break completed;
        }
        assert!(
            Instant::now() < deadline,
            "campaign never got underway: {body}"
        );
        std::thread::sleep(Duration::from_millis(1));
    };
    // SIGKILL: no destructors, no flushing beyond what the journal
    // already pushed to the OS per line.
    serve.child.kill().expect("SIGKILL serve");
    let _ = serve.child.wait();
    assert!(
        completed_at_kill < total,
        "campaign finished ({completed_at_kill}/{total}) before the kill — \
         grow kill_spec so the crash lands mid-run"
    );

    // The journal survived with at least the observed progress.
    let journal = data_dir.join("jobs").join(&id).join("journal.jsonl");
    assert!(journal.is_file(), "no journal at {}", journal.display());
    let journaled_lines = std::fs::read_to_string(&journal)
        .expect("read journal")
        .lines()
        .count();
    assert!(journaled_lines >= 3, "journal holds {journaled_lines} rows");
    // No result was cached for the unfinished job.
    assert!(!data_dir.join("jobs").join(&id).join("result.json").exists());

    // Phase 2: restart over the same store; recovery re-enqueues and the
    // journaled scenarios are skipped, not recomputed.
    let mut serve = start_serve(&data_dir, &port_file);
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let (status, body) =
            request(serve.addr, "GET", &format!("/campaigns/{id}"), None).expect("poll resumed");
        assert_eq!(status, 200, "restarted service forgot the job: {body}");
        let doc = JsonValue::parse(&body).expect("status json");
        match doc.get("status").unwrap().as_str() {
            Some("done") => break,
            Some("failed") => panic!("resumed job failed: {body}"),
            _ => {}
        }
        assert!(Instant::now() < deadline, "resumed job never finished");
        std::thread::sleep(Duration::from_millis(10));
    }
    let (status, served_report) =
        request(serve.addr, "GET", &format!("/campaigns/{id}/result"), None).expect("result");
    assert_eq!(status, 200, "{served_report}");

    // The acceptance bar: byte-identical to an uninterrupted
    // single-threaded run of the same spec and seed.
    let uninterrupted = run_campaign(&spec, 1);
    let expected =
        canonical_report_json(spec.campaign_seed, &uninterrupted.results, &REPORT_AXES).render();
    assert_eq!(
        served_report.trim_end(),
        expected,
        "resumed report diverged from the uninterrupted run"
    );

    // And the resubmit of the same spec is now a cache hit.
    let (status, body) = request(
        serve.addr,
        "POST",
        "/campaigns",
        Some(&spec.to_json().render()),
    )
    .expect("resubmit");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"cached\":true"), "{body}");

    let (_, _) = request(serve.addr, "POST", "/shutdown", None).expect("shutdown");
    let _ = serve.child.wait();
    let _ = std::fs::remove_dir_all(&data_dir);
    let _ = std::fs::remove_file(&port_file);
}
