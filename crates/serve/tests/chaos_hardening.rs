//! The serve-side hardening satellites of the chaos work, proven
//! against real sockets: slow-loris requests die with a `408` inside
//! the phase deadline (never hold a handler hostage), and admission
//! control sheds new submissions past the queue bound with
//! `429 + Retry-After`, counting every shed in `/healthz`.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use chunkpoint_campaign::{CampaignSpec, JsonValue, SchemeSpec};
use chunkpoint_core::{MitigationScheme, SystemConfig};
use chunkpoint_serve::http::read_request_within;
use chunkpoint_serve::server::{ServeConfig, Server};
use chunkpoint_shard::exchange;
use chunkpoint_workloads::Benchmark;

const TIMEOUT: Duration = Duration::from_secs(5);

/// Runs `read_request_within` with tight deadlines against whatever the
/// client closure dribbles in, returning the parse outcome's status
/// (`None` = a well-formed request got through).
fn parse_under_deadline(
    head_deadline: Duration,
    body_deadline: Duration,
    client: impl FnOnce(TcpStream) + Send + 'static,
) -> (Option<u16>, Duration) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().expect("accept");
        let started = Instant::now();
        let outcome = read_request_within(&mut stream, head_deadline, body_deadline);
        let status = match outcome {
            Ok(Ok(_)) => None,
            Ok(Err(response)) => Some(response.status),
            Err(_) => Some(0), // socket died
        };
        tx.send((status, started.elapsed())).expect("report");
    });
    let stream = TcpStream::connect(addr).expect("connect");
    std::thread::spawn(move || client(stream));
    rx.recv_timeout(Duration::from_secs(30))
        .expect("parser must return, not hang")
}

/// A head dribbler: one byte every 50 ms, never reaching the head
/// terminator. The whole-phase deadline must cut it off with a `408` —
/// per-read timeouts alone would let this run for as long as the
/// attacker keeps dripping.
#[test]
fn slow_loris_head_times_out_with_408() {
    let deadline = Duration::from_millis(300);
    let (status, elapsed) = parse_under_deadline(deadline, deadline, |mut stream| {
        for byte in b"GET /healthz HTTP/1.1\r\nHost: victim\r\n" {
            if stream.write_all(&[*byte]).is_err() {
                return;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        // Never send the terminating blank line; park on the socket.
        std::thread::sleep(Duration::from_secs(10));
    });
    assert_eq!(status, Some(408), "expected a request timeout");
    assert!(
        elapsed >= deadline && elapsed < deadline + Duration::from_secs(2),
        "408 must land at the deadline, not before or long after ({elapsed:?})"
    );
}

/// A body dribbler: complete head declaring a 64-byte body, then one
/// body byte every 50 ms. The body-phase deadline must 408 it.
#[test]
fn slow_loris_body_times_out_with_408() {
    let head_deadline = Duration::from_secs(5);
    let body_deadline = Duration::from_millis(300);
    let (status, elapsed) = parse_under_deadline(head_deadline, body_deadline, |mut stream| {
        let head = b"POST /campaigns HTTP/1.1\r\nContent-Length: 64\r\n\r\n";
        if stream.write_all(head).is_err() {
            return;
        }
        for _ in 0..64 {
            if stream.write_all(b"x").is_err() {
                return;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    });
    assert_eq!(status, Some(408), "expected a request timeout");
    assert!(
        elapsed < Duration::from_secs(4),
        "body dribble must die at the body deadline ({elapsed:?})"
    );
}

/// A fast, complete request under the same tight deadlines parses fine
/// — the deadlines only bite the slow.
#[test]
fn prompt_requests_parse_under_tight_deadlines() {
    let deadline = Duration::from_millis(300);
    let (status, _) = parse_under_deadline(deadline, deadline, |mut stream| {
        let _ = stream.write_all(b"POST /campaigns HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}");
    });
    assert_eq!(status, None, "a prompt request must parse");
}

/// A campaign spec with a per-call seed (distinct seeds → distinct
/// jobs) and enough replicates to still be queued/running when the
/// next submission lands.
fn slow_spec(seed: u64) -> String {
    let mut config = SystemConfig::paper(0);
    config.scale = 0.25;
    CampaignSpec::new(config, seed)
        .benchmarks(&[Benchmark::AdpcmEncode])
        .scheme("Default", SchemeSpec::Fixed(MitigationScheme::Default))
        .replicates(4000)
        .normalize(false)
        .golden_check(false)
        .to_json()
        .render()
}

/// Raw submit that captures the response head verbatim — `Retry-After`
/// is a header, so the typed client's `(status, body)` view cannot see
/// it.
fn raw_submit(addr: &str, body: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(TIMEOUT))
        .expect("read timeout");
    write!(
        stream,
        "POST /campaigns HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    String::from_utf8_lossy(&response).into_owned()
}

fn healthz(addr: &str) -> JsonValue {
    let (status, body) = exchange(addr, "GET", "/healthz", None, TIMEOUT).expect("healthz");
    assert_eq!(status, 200);
    JsonValue::parse(&body).expect("healthz JSON")
}

/// Admission control end to end: with one runner and a queue bound of
/// one, the third concurrent submission is shed as `429` with a
/// `Retry-After` header, `/healthz` counts the shed, and joining a job
/// that is already known stays exempt from the bound.
#[test]
fn overload_sheds_429_with_retry_after_and_counts_it() {
    let dir = std::env::temp_dir().join(format!("chunkpoint_serve_shed_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let server = Server::bind(&ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        data_dir: dir.clone(),
        max_jobs: 1,
        campaign_threads: 1,
        max_queued: 1,
        trace_out: None,
    })
    .expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let serving = std::thread::spawn(move || server.run());

    // Job 1: wait until the runner picks it up (queue drains to 0).
    let first = raw_submit(&addr, &slow_spec(0x51));
    assert!(first.starts_with("HTTP/1.1 202"), "{first}");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let counts = healthz(&addr);
        if counts.get("running").and_then(JsonValue::as_u64) == Some(1) {
            break;
        }
        assert!(Instant::now() < deadline, "job 1 never started running");
        std::thread::sleep(Duration::from_millis(10));
    }

    // Job 2 fills the queue bound; job 3 must be shed.
    let second = raw_submit(&addr, &slow_spec(0x52));
    assert!(second.starts_with("HTTP/1.1 202"), "{second}");
    let third = raw_submit(&addr, &slow_spec(0x53));
    assert!(third.starts_with("HTTP/1.1 429"), "{third}");
    assert!(
        third.contains("Retry-After:"),
        "shed response must carry Retry-After: {third}"
    );
    assert!(third.contains("shedding load"), "{third}");

    // The shed is counted, and shed submissions never became jobs.
    let counts = healthz(&addr);
    assert_eq!(counts.get("shed").and_then(JsonValue::as_u64), Some(1));
    let known: u64 = ["queued", "running", "done", "cancelled", "failed"]
        .iter()
        .filter_map(|key| counts.get(key).and_then(JsonValue::as_u64))
        .sum();
    assert_eq!(known, 2, "the shed submission must not appear as a job");

    // Joining an already-known job is exempt: resubmitting job 2's spec
    // answers its status, even with the queue still full.
    let rejoin = raw_submit(&addr, &slow_spec(0x52));
    assert!(
        rejoin.starts_with("HTTP/1.1 202") || rejoin.starts_with("HTTP/1.1 200"),
        "joins must never be shed: {rejoin}"
    );
    assert_eq!(
        healthz(&addr).get("shed").and_then(JsonValue::as_u64),
        Some(1),
        "a join must not count as a shed"
    );

    let _ = exchange(&addr, "POST", "/shutdown", None, TIMEOUT);
    serving.join().expect("server drained");
    let _ = std::fs::remove_dir_all(&dir);
}
