//! `/metrics` acceptance: a **real** `serve` process under concurrent
//! load, scraped over real TCP, the exposition parsed by the telemetry
//! crate's own scraper — request, latency, job, and cache metric
//! families present, every counter monotone across scrapes, and the
//! `--trace-out` sink holding well-formed span records at shutdown.

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use chunkpoint_campaign::{CampaignSpec, JsonValue, SchemeSpec};
use chunkpoint_core::{MitigationScheme, SystemConfig};
use chunkpoint_serve::http::request;
use chunkpoint_telemetry::Scrape;
use chunkpoint_workloads::Benchmark;

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("chunkpoint_metrics_{}_{tag}", std::process::id()))
}

/// A one-scenario spec, unique per seed, cheap enough that the runner
/// drains the queue in well under a second.
fn tiny_spec(seed: u64) -> CampaignSpec {
    let mut config = SystemConfig::paper(0);
    config.scale = 0.25;
    CampaignSpec::new(config, seed)
        .benchmarks(&[Benchmark::AdpcmEncode])
        .scheme("Default", SchemeSpec::Fixed(MitigationScheme::Default))
        .normalize(false)
        .golden_check(false)
}

struct ServeProcess {
    child: Child,
    addr: std::net::SocketAddr,
}

/// Starts the real `serve` binary on an ephemeral port and waits for
/// `/healthz`.
fn start_serve(data_dir: &PathBuf, port_file: &PathBuf, trace_out: &PathBuf) -> ServeProcess {
    let _ = std::fs::remove_file(port_file);
    let child = Command::new(env!("CARGO_BIN_EXE_serve"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--data-dir",
            data_dir.to_str().expect("utf8 dir"),
            "--port-file",
            port_file.to_str().expect("utf8 path"),
            "--trace-out",
            trace_out.to_str().expect("utf8 path"),
            "--jobs",
            "2",
            "--threads",
            "1",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn serve");
    let deadline = Instant::now() + Duration::from_secs(60);
    let port: u16 = loop {
        if let Ok(raw) = std::fs::read_to_string(port_file) {
            if let Ok(port) = raw.trim().parse() {
                break port;
            }
        }
        assert!(Instant::now() < deadline, "serve never wrote its port");
        std::thread::sleep(Duration::from_millis(10));
    };
    let addr = std::net::SocketAddr::from(([127, 0, 0, 1], port));
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Ok((200, _)) = request(addr, "GET", "/healthz", None) {
            break;
        }
        assert!(Instant::now() < deadline, "serve never became healthy");
        std::thread::sleep(Duration::from_millis(10));
    }
    ServeProcess { child, addr }
}

fn scrape(addr: std::net::SocketAddr) -> Scrape {
    let (status, body) = request(addr, "GET", "/metrics", None).expect("scrape");
    assert_eq!(status, 200, "{body}");
    Scrape::parse(&body).unwrap_or_else(|e| panic!("exposition does not parse: {e}\n{body}"))
}

/// Polls a job's status document until it reports `done`.
fn wait_done(addr: std::net::SocketAddr, id: &str) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (_, body) = request(addr, "GET", &format!("/campaigns/{id}"), None).expect("poll");
        if body.contains("\"status\":\"done\"") {
            return;
        }
        assert!(Instant::now() < deadline, "job {id} never finished: {body}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn metrics_scrape_under_concurrent_load() {
    let data_dir = temp_path("data");
    let port_file = temp_path("port");
    let trace_out = temp_path("trace");
    let _ = std::fs::remove_dir_all(&data_dir);
    let _ = std::fs::remove_file(&trace_out);
    let serve = start_serve(&data_dir, &port_file, &trace_out);
    let addr = serve.addr;
    let mut child = serve.child;

    let before = scrape(addr);

    // Concurrent load: four clients, each interleaving health checks
    // with unique-spec submissions over real TCP connections.
    const CLIENTS: u64 = 4;
    const SUBMITS_PER_CLIENT: u64 = 2;
    const HEALTHZ_PER_CLIENT: u64 = 3;
    let ids: Vec<String> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..CLIENTS)
            .map(|client| {
                scope.spawn(move || {
                    let mut ids = Vec::new();
                    for k in 0..SUBMITS_PER_CLIENT {
                        let (status, _) = request(addr, "GET", "/healthz", None).expect("healthz");
                        assert_eq!(status, 200);
                        let body = tiny_spec(0x4EED + client * 100 + k).to_json().render();
                        let (status, response) =
                            request(addr, "POST", "/campaigns", Some(&body)).expect("submit");
                        assert!(status == 202 || status == 200, "{response}");
                        ids.push(
                            JsonValue::parse(&response)
                                .expect("submit json")
                                .get("id")
                                .and_then(|v| v.as_str().map(str::to_owned))
                                .expect("id"),
                        );
                    }
                    for _ in 0..HEALTHZ_PER_CLIENT - SUBMITS_PER_CLIENT {
                        let (status, _) = request(addr, "GET", "/healthz", None).expect("healthz");
                        assert_eq!(status, 200);
                    }
                    ids
                })
            })
            .collect();
        workers
            .into_iter()
            .flat_map(|w| w.join().expect("client thread"))
            .collect()
    });
    for id in &ids {
        wait_done(addr, id);
    }

    // One result fetch (the result-cache read path) and one identical
    // resubmission (the content-addressed cache-hit path).
    let (status, _) =
        request(addr, "GET", &format!("/campaigns/{}/result", ids[0]), None).expect("result");
    assert_eq!(status, 200);
    let warm = tiny_spec(0x4EED).to_json().render();
    let (status, response) = request(addr, "POST", "/campaigns", Some(&warm)).expect("resubmit");
    assert_eq!(status, 200, "{response}");
    assert!(response.contains("\"cached\":true"), "{response}");

    let after = scrape(addr);

    // Request metrics: the submit counter advanced by exactly the
    // submissions made (8 unique + 1 cache hit), healthz by at least
    // the load loops' calls, and each histogram's _count matches its
    // endpoint counter — latency is observed on the same path.
    let submits = (CLIENTS * SUBMITS_PER_CLIENT + 1) as f64;
    let delta = |name: &str, labels: &[(&str, &str)]| {
        after
            .value(name, labels)
            .unwrap_or_else(|| panic!("{name} missing"))
            - before.value(name, labels).unwrap_or(0.0)
    };
    assert_eq!(
        delta("serve_requests_total", &[("endpoint", "submit")]),
        submits
    );
    assert!(
        delta("serve_requests_total", &[("endpoint", "healthz")])
            >= (CLIENTS * HEALTHZ_PER_CLIENT) as f64
    );
    assert!(delta("serve_requests_total", &[("endpoint", "status")]) >= ids.len() as f64);
    assert_eq!(
        delta("serve_requests_total", &[("endpoint", "result")]),
        1.0
    );
    assert!(
        after.value("serve_requests_total", &[("endpoint", "metrics")]) >= Some(1.0),
        "the scrape endpoint meters itself"
    );
    for endpoint in ["submit", "healthz", "status", "result"] {
        assert_eq!(
            after.value("serve_request_seconds_count", &[("endpoint", endpoint)]),
            after.value("serve_requests_total", &[("endpoint", endpoint)]),
            "endpoint {endpoint}: histogram count must track the request counter"
        );
        assert_eq!(
            after.value(
                "serve_request_seconds_bucket",
                &[("endpoint", endpoint), ("le", "+Inf")]
            ),
            after.value("serve_request_seconds_count", &[("endpoint", endpoint)]),
            "endpoint {endpoint}: +Inf bucket must equal _count"
        );
    }

    // Job-lifecycle and cache metrics.
    assert_eq!(
        delta("serve_jobs_submitted_total", &[]),
        (CLIENTS * SUBMITS_PER_CLIENT) as f64,
        "one new job per unique spec"
    );
    assert!(delta("serve_jobs_cached_total", &[]) >= 1.0, "the resubmit");
    assert!(delta("serve_journal_rows_total", &[]) >= (CLIENTS * SUBMITS_PER_CLIENT) as f64);
    assert!(delta("serve_result_cache_hits_total", &[]) >= 1.0);

    // Monotonicity: no counter sample present in the first scrape went
    // backwards (gauges are exempt by name).
    for sample in &before.samples {
        if !sample.name.ends_with("_total")
            && !sample.name.ends_with("_count")
            && !sample.name.ends_with("_bucket")
        {
            continue;
        }
        let labels: Vec<(&str, &str)> = sample
            .labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        let now = after
            .value(&sample.name, &labels)
            .unwrap_or_else(|| panic!("{} vanished between scrapes", sample.name));
        assert!(
            now >= sample.value,
            "{}{:?} went backwards: {} -> {now}",
            sample.name,
            sample.labels,
            sample.value
        );
    }

    // Shut down and check the trace sink: every line is a JSON record
    // with a kind/span/name, and the root "serve" span begins it.
    let (status, _) = request(addr, "POST", "/shutdown", None).expect("shutdown");
    assert_eq!(status, 200);
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        match child.try_wait().expect("try_wait") {
            Some(code) => {
                assert!(code.success(), "serve exited {code:?}");
                break;
            }
            None => {
                assert!(Instant::now() < deadline, "serve never exited");
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
    let trace = std::fs::read_to_string(&trace_out).expect("trace file");
    let records: Vec<JsonValue> = trace
        .lines()
        .map(|line| {
            JsonValue::parse(line).unwrap_or_else(|e| panic!("bad trace line: {e}\n{line}"))
        })
        .collect();
    assert!(!records.is_empty(), "trace sink stayed empty");
    let kind = |r: &JsonValue| r.get("kind").and_then(JsonValue::as_str).map(str::to_owned);
    assert_eq!(
        kind(&records[0]).as_deref(),
        Some("span_begin"),
        "first record opens the root span"
    );
    assert_eq!(
        records[0].get("name").and_then(JsonValue::as_str),
        Some("serve")
    );
    for record in &records {
        let kind = kind(record).unwrap_or_else(|| panic!("record without kind: {record:?}"));
        assert!(
            matches!(kind.as_str(), "span_begin" | "event" | "span_end"),
            "unknown kind {kind}"
        );
        assert!(record.get("span").and_then(JsonValue::as_str).is_some());
        assert!(record.get("t_us").and_then(JsonValue::as_u64).is_some());
    }
    assert!(
        records.iter().any(|r| {
            kind(r).as_deref() == Some("event")
                && r.get("name").and_then(JsonValue::as_str) == Some("handled")
        }),
        "no request was traced"
    );

    let _ = std::fs::remove_dir_all(&data_dir);
    let _ = std::fs::remove_file(&port_file);
    let _ = std::fs::remove_file(&trace_out);
}
