//! Property tests over the scenario wire format: for any generated
//! scenario set, `render → parse → render` must be a fixed point and
//! parsing must reproduce the definitions exactly — the invariant the
//! campaign spec hash (and therefore every cache and diff key built on
//! it) depends on. Plus strictness spot checks: out-of-order instants
//! and unknown event kinds are rejected with the typed error, never
//! silently normalised.

use chunkpoint_scenario::{
    parse_scenarios, ExpectField, ExpectOp, ExpectValue, Expectation, JsonValue, ScenarioDef,
    ScenarioError, TimelineEvent,
};
use proptest::prelude::*;

/// SplitMix64 step: the deterministic randomness source for shapes.
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A non-empty name exercising the renderer's escape table.
fn arbitrary_name(state: &mut u64, index: usize) -> String {
    const ALPHABET: &[char] = &['a', 'Z', '0', ' ', '"', '\\', '\n', 'é', 'π', '😀'];
    let len = 1 + (next(state) % 8) as usize;
    let mut name: String = (0..len)
        .map(|_| ALPHABET[(next(state) as usize) % ALPHABET.len()])
        .collect();
    // Distinct suffix: parse_scenarios rejects duplicate names.
    name.push_str(&index.to_string());
    name
}

/// A valid timeline: an optional leading task switch (which must sit at
/// cycle 0), then instant-carrying events at non-decreasing cycles with
/// scrub policies interleaved anywhere.
fn arbitrary_timeline(state: &mut u64) -> Vec<TimelineEvent> {
    let mut events = Vec::new();
    if next(state) % 4 == 0 {
        events.push(TimelineEvent::TaskSwitch {
            cycle: 0,
            task: "ADPCM encode".to_owned(),
        });
    }
    let mut cycle = 0u64;
    for _ in 0..(next(state) % 5) {
        cycle += next(state) % 10_000;
        match next(state) % 3 {
            0 => events.push(TimelineEvent::FaultBurst {
                cycle,
                words: 1 + (next(state) % 4096) as u32,
                rate: (1 + next(state) % 1000) as f64 / 1000.0,
            }),
            1 => events.push(TimelineEvent::ErrorRateShift {
                cycle,
                rate: (next(state) % 1000) as f64 / 1000.0,
            }),
            // No instant: legal at any position.
            _ => events.push(TimelineEvent::Scrub {
                period: 1 + next(state) % 100_000,
            }),
        }
    }
    events
}

/// A valid expect block: boolean fields get `== bool`, numeric fields
/// any operator with a uint or a `.5`-fraction float (exact in binary,
/// so canonicalization cannot fold it into an integer).
fn arbitrary_expect(state: &mut u64) -> Vec<Expectation> {
    (0..(next(state) % 4))
        .map(|_| {
            let field = ExpectField::ALL[(next(state) as usize) % ExpectField::ALL.len()];
            if field.is_boolean() {
                Expectation {
                    field,
                    op: ExpectOp::Eq,
                    value: ExpectValue::Bool(next(state) % 2 == 0),
                }
            } else {
                let op = match next(state) % 3 {
                    0 => ExpectOp::Eq,
                    1 => ExpectOp::Ge,
                    _ => ExpectOp::Le,
                };
                let value = if next(state) % 2 == 0 {
                    ExpectValue::Uint(next(state) % 1_000_000)
                } else {
                    ExpectValue::Float((next(state) % 1_000) as f64 + 0.5)
                };
                Expectation { field, op, value }
            }
        })
        .collect()
}

fn arbitrary_scenario(state: &mut u64, index: usize) -> ScenarioDef {
    let mut def = ScenarioDef::named(arbitrary_name(state, index));
    def.tags = (0..(next(state) % 3))
        .map(|t| arbitrary_name(state, t as usize))
        .collect();
    def.timeline = arbitrary_timeline(state);
    def.expect = arbitrary_expect(state);
    def
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, .. ProptestConfig::default() })]

    /// `from_json` inverts `to_json` for arbitrary valid definitions,
    /// and one round trip reaches the rendering fixed point.
    #[test]
    fn parse_inverts_render(seed in any::<u64>()) {
        let mut state = seed;
        let def = arbitrary_scenario(&mut state, 0);
        let rendered = def.to_json().render();
        let reparsed = JsonValue::parse(&rendered)
            .unwrap_or_else(|e| panic!("renderer produced unparseable JSON {rendered:?}: {e}"));
        let restored = ScenarioDef::from_json(&reparsed)
            .unwrap_or_else(|e| panic!("renderer produced a rejected scenario {rendered:?}: {e}"));
        prop_assert_eq!(&restored, &def);
        prop_assert_eq!(restored.to_json().render(), rendered);
    }

    /// The whole-set entry point round-trips too — the exact path the
    /// campaign spec's `scenarios` axis takes over the wire.
    #[test]
    fn scenario_sets_round_trip(seed in any::<u64>()) {
        let mut state = seed;
        let defs: Vec<ScenarioDef> = (0..1 + (next(&mut state) % 4) as usize)
            .map(|i| arbitrary_scenario(&mut state, i))
            .collect();
        let doc = JsonValue::Array(defs.iter().map(ScenarioDef::to_json).collect());
        let rendered = doc.render();
        let restored = parse_scenarios(&JsonValue::parse(&rendered).expect("parses"))
            .unwrap_or_else(|e| panic!("rejected own rendering {rendered:?}: {e}"));
        prop_assert_eq!(restored, defs);
    }
}

#[test]
fn out_of_order_instants_are_rejected() {
    let raw = r#"{"name":"backwards","timeline":[
        {"event":"error_rate_shift","cycle":500,"rate":0.5},
        {"event":"scrub","period":64},
        {"event":"fault_burst","cycle":499,"words":4,"rate":1.0}
    ]}"#;
    let value = JsonValue::parse(raw).expect("valid JSON");
    match ScenarioDef::from_json(&value) {
        Err(ScenarioError::OutOfOrderInstant {
            index,
            cycle,
            previous,
        }) => {
            assert_eq!((index, cycle, previous), (2, 499, 500));
        }
        other => panic!("expected OutOfOrderInstant, got {other:?}"),
    }
}

#[test]
fn unknown_event_kinds_are_rejected() {
    let raw = r#"{"name":"novel","timeline":[
        {"event":"scrub","period":64},
        {"event":"cosmic_ray_storm","cycle":10}
    ]}"#;
    let value = JsonValue::parse(raw).expect("valid JSON");
    match ScenarioDef::from_json(&value) {
        Err(ScenarioError::UnknownEventKind { index, kind }) => {
            assert_eq!(index, 1);
            assert_eq!(kind, "cosmic_ray_storm");
        }
        other => panic!("expected UnknownEventKind, got {other:?}"),
    }
}
